//! Cross-crate integration: drive the kernel directly under the KLOC
//! policy and verify the registry mirrors kernel state exactly.

use klocs::core::KlocRegistry;
use klocs::kernel::hooks::Ctx;
use klocs::kernel::{Kernel, KernelParams};
use klocs::mem::{MemorySystem, PAGE_SIZE};
use klocs::policy::{KlocPolicy, Policy};

fn registry_members(reg: &KlocRegistry) -> usize {
    reg.kmap().iter().map(|k| k.member_count()).sum()
}

#[test]
fn registry_mirrors_kernel_objects_through_file_lifecycle() {
    let mut mem = MemorySystem::two_tier(1024 * PAGE_SIZE, 8);
    let mut policy = KlocPolicy::new();
    let mut kernel = Kernel::new(KernelParams::default());
    let mut ctx = Ctx::new(&mut mem, &mut policy);

    // Create files, write, close some, unlink others.
    let mut fds = Vec::new();
    for i in 0..8 {
        let fd = kernel.create(&mut ctx, &format!("/f{i}")).unwrap();
        kernel.write(&mut ctx, fd, 0, 8 * PAGE_SIZE).unwrap();
        fds.push(fd);
    }
    let _ = ctx;

    // Every tracked member must correspond to a live kernel object with
    // an inode, and vice versa (for included types).
    let reg = policy.kloc_registry();
    let tracked = registry_members(reg);
    let live_with_inode = kernel
        .objects()
        .iter()
        .filter(|o| o.info.inode.is_some() && reg.includes(o.info.ty))
        .count();
    assert_eq!(
        tracked, live_with_inode,
        "knode members must equal live inode-owned objects"
    );

    // Close half, destroy the other half.
    let mut ctx = Ctx::new(&mut mem, &mut policy);
    for (i, fd) in fds.into_iter().enumerate() {
        kernel.close(&mut ctx, fd).unwrap();
        if i % 2 == 0 {
            kernel.unlink(&mut ctx, &format!("/f{i}")).unwrap();
        }
    }
    kernel.commit_journal(&mut ctx).unwrap();
    let _ = ctx;

    let reg = policy.kloc_registry();
    assert_eq!(reg.kmap().len(), 4, "unlinked files lose their knodes");
    let tracked = registry_members(reg);
    let live_with_inode = kernel
        .objects()
        .iter()
        .filter(|o| o.info.inode.is_some() && reg.includes(o.info.ty))
        .count();
    assert_eq!(tracked, live_with_inode, "mirror holds after teardown");
}

#[test]
fn socket_lifecycle_with_early_demux() {
    let mut mem = MemorySystem::two_tier(1024 * PAGE_SIZE, 8);
    let mut policy = KlocPolicy::new();
    let mut kernel = Kernel::new(KernelParams::default());
    let mut ctx = Ctx::new(&mut mem, &mut policy);

    let sock = kernel.socket(&mut ctx).unwrap();
    kernel.deliver(&mut ctx, sock, 4096).unwrap();
    // Early demux: every ingress packet was associated in the driver.
    assert_eq!(
        kernel.net_stats().early_demuxed,
        kernel.net_stats().rx_packets
    );
    kernel.recv(&mut ctx, sock, 8192).unwrap();
    kernel.send(&mut ctx, sock, 4096).unwrap();
    kernel.close(&mut ctx, sock).unwrap();
    kernel.commit_journal(&mut ctx).unwrap();
    let _ = ctx;

    assert_eq!(
        policy.kloc_registry().kmap().len(),
        0,
        "socket knode destroyed on close"
    );
    assert_eq!(ctx_free_frames(&kernel), 0, "no kernel objects leaked");
    fn ctx_free_frames(k: &Kernel) -> usize {
        k.objects().len()
    }
}

#[test]
fn relocatable_interface_makes_slab_objects_migratable() {
    // Under the KLOC policy every slab-class object can move; under a
    // baseline policy none can.
    use klocs::kernel::Backing;

    let mut mem = MemorySystem::two_tier(1024 * PAGE_SIZE, 8);
    let mut policy = KlocPolicy::new();
    let mut kernel = Kernel::new(KernelParams::default());
    let mut ctx = Ctx::new(&mut mem, &mut policy);
    let fd = kernel.create(&mut ctx, "/f").unwrap();
    kernel.write(&mut ctx, fd, 0, 4 * PAGE_SIZE).unwrap();

    for obj in kernel.objects().iter() {
        if obj.info.ty.backing() == Backing::Slab {
            let frame = ctx.mem.frame(obj.frame).unwrap();
            assert!(
                !frame.pinned(),
                "{}: slab-class object must be relocatable under KLOCs",
                obj.info.ty
            );
        }
    }
}

#[test]
fn policy_tick_is_safe_at_any_time() {
    // Ticks interleaved with syscalls at arbitrary points never corrupt
    // state (mini fuzz, deterministic).
    let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
    let mut policy = KlocPolicy::new();
    let mut kernel = Kernel::new(KernelParams::default());

    for i in 0..50u64 {
        {
            let mut ctx = Ctx::new(&mut mem, &mut policy);
            let path = format!("/t{i}");
            let fd = kernel.create(&mut ctx, &path).unwrap();
            kernel
                .write(&mut ctx, fd, 0, (1 + i % 4) * PAGE_SIZE)
                .unwrap();
            if i % 3 == 0 {
                kernel.fsync(&mut ctx, fd).unwrap();
            }
            kernel.close(&mut ctx, fd).unwrap();
            if i % 2 == 0 {
                kernel.unlink(&mut ctx, &path).unwrap();
            }
        }
        mem.charge(klocs::mem::Nanos::from_micros(300));
        policy.tick(&kernel, &mut mem);
    }
    // Registry and kernel agree at the end.
    let reg = policy.kloc_registry();
    assert_eq!(reg.kmap().len(), kernel.vfs().inode_count());
}
