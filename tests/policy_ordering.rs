//! Cross-crate integration: the paper's headline orderings must hold on
//! end-to-end runs (workload -> kernel -> policy -> tiered memory).

use klocs::policy::PolicyKind;
use klocs::sim::engine::{self, Platform, RunConfig};
use klocs::workloads::{Scale, WorkloadKind};

fn run(w: WorkloadKind, p: PolicyKind, scale: &Scale) -> engine::RunReport {
    engine::run(&RunConfig {
        workload: w,
        policy: p,
        scale: scale.clone(),
        platform: Platform::TwoTier {
            fast_bytes: scale.fast_bytes,
            bw_ratio: 8,
        },
        kernel_params: None,
        faults: None,
        budgets: Vec::new(),
    })
    .expect("run completes")
}

#[test]
fn kloc_beats_every_baseline_on_io_workloads() {
    let scale = Scale::tiny();
    for w in [
        WorkloadKind::RocksDb,
        WorkloadKind::Redis,
        WorkloadKind::Filebench,
    ] {
        let slow = run(w, PolicyKind::AllSlow, &scale);
        let kloc = run(w, PolicyKind::Kloc, &scale);
        let nimble = run(w, PolicyKind::Nimble, &scale);
        let naive = run(w, PolicyKind::Naive, &scale);
        assert!(
            kloc.throughput() > slow.throughput(),
            "{w}: KLOCs {:.0} must beat All-Slow {:.0}",
            kloc.throughput(),
            slow.throughput()
        );
        assert!(
            kloc.throughput() > nimble.throughput(),
            "{w}: KLOCs {:.0} must beat Nimble {:.0}",
            kloc.throughput(),
            nimble.throughput()
        );
        // At tiny scale some filesets are uniformly hot and leave no
        // placement headroom; KLOCs must still stay within a small margin
        // of FCFS (the Large-scale benches assert the actual win).
        assert!(
            kloc.throughput() >= naive.throughput() * 0.9,
            "{w}: KLOCs {:.0} must not lose to Naive {:.0}",
            kloc.throughput(),
            naive.throughput()
        );
    }
}

#[test]
fn all_fast_is_the_upper_bound() {
    let scale = Scale::tiny();
    for w in WorkloadKind::EVALUATED {
        let fast = run(w, PolicyKind::AllFast, &scale);
        for p in [PolicyKind::Naive, PolicyKind::Nimble, PolicyKind::Kloc] {
            let r = run(w, p, &scale);
            assert!(
                fast.throughput() >= r.throughput() * 0.98,
                "{w}/{p}: All-Fast {:.0} must bound {:.0}",
                fast.throughput(),
                r.throughput()
            );
        }
    }
}

#[test]
fn nimble_strands_kernel_objects_in_slow_memory() {
    // The paper's observation about prior art: application-only tiering
    // leaves kernel pages in slow memory, so its fast-access share stays
    // tiny on I/O-intensive workloads.
    let scale = Scale::tiny();
    let nimble = run(WorkloadKind::Filebench, PolicyKind::Nimble, &scale);
    let kloc = run(WorkloadKind::Filebench, PolicyKind::Kloc, &scale);
    assert!(
        nimble.fast_access_fraction() < 0.2,
        "Nimble fast-access share should be small, got {:.2}",
        nimble.fast_access_fraction()
    );
    assert!(
        kloc.fast_access_fraction() > nimble.fast_access_fraction() + 0.1,
        "KLOCs must serve far more accesses from fast memory"
    );
}

#[test]
fn runs_are_deterministic() {
    let scale = Scale::tiny();
    let a = run(WorkloadKind::Redis, PolicyKind::Kloc, &scale);
    let b = run(WorkloadKind::Redis, PolicyKind::Kloc, &scale);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.kernel.cache_hits, b.kernel.cache_hits);
    assert_eq!(a.kloc, b.kloc);
}

#[test]
fn different_seeds_change_the_run_but_not_the_ordering() {
    let scale = Scale::tiny();
    let s1 = scale.clone().with_seed(1);
    let s2 = scale.clone().with_seed(2);
    let a = run(WorkloadKind::RocksDb, PolicyKind::Kloc, &s1);
    let b = run(WorkloadKind::RocksDb, PolicyKind::Kloc, &s2);
    assert_ne!(a.elapsed, b.elapsed, "seed must matter");
    // Ordering vs All-Slow holds for both seeds.
    for (s, r) in [(&s1, &a), (&s2, &b)] {
        let slow = run(WorkloadKind::RocksDb, PolicyKind::AllSlow, s);
        assert!(r.throughput() > slow.throughput());
    }
}

#[test]
fn kloc_tracks_and_releases_all_objects() {
    let scale = Scale::tiny();
    let r = run(WorkloadKind::RocksDb, PolicyKind::Kloc, &scale);
    let stats = r.kloc.expect("registry stats");
    assert!(stats.knodes_created > 0);
    assert!(stats.objects_tracked > 0);
    assert!(
        stats.objects_untracked <= stats.objects_tracked,
        "cannot untrack more than tracked"
    );
    assert!(
        stats.knodes_destroyed <= stats.knodes_created,
        "cannot destroy more knodes than created"
    );
    // Metadata overhead stays under the paper's 1% claim.
    let overhead = r.overhead.expect("overhead");
    assert!(overhead.fraction_of(scale.data_bytes) < 0.01);
}
