//! Policy shootout: every Table-5 strategy on every workload, printed as
//! the paper's Fig. 4 table — the repository's headline result.
//!
//! ```text
//! cargo run --release --example policy_shootout [tiny|small|large]
//! ```

use klocs::sim::engine::Platform;
use klocs::sim::experiments::fig4;
use klocs::sim::Runner;
use klocs::workloads::{Scale, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::tiny(),
        Some("small") => Scale::small(),
        _ => Scale::large(),
    };
    let platform = Platform::TwoTier {
        fast_bytes: scale.fast_bytes,
        bw_ratio: 8,
    };
    eprintln!(
        "running {} workloads x 7 policies at scale {} ...",
        WorkloadKind::ALL.len(),
        scale.label
    );
    let rows = fig4::run(&Runner::auto(), &scale, platform, &WorkloadKind::ALL)?;
    println!("{}", fig4::table(&rows));

    // Highlight the headline comparisons the paper calls out.
    for row in &rows {
        let kloc = row.speedup(klocs::policy::PolicyKind::Kloc).unwrap_or(0.0);
        let nimble = row
            .speedup(klocs::policy::PolicyKind::Nimble)
            .unwrap_or(1.0);
        println!(
            "{:<10} KLOCs vs Nimble: {:.2}x",
            row.workload,
            kloc / nimble
        );
    }
    Ok(())
}
