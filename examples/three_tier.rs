//! Three-tier extension: the paper evaluates two tiers, but its
//! introduction motivates deeper hierarchies (die-stacked/HBM over DRAM
//! over slow memory). This example builds a bespoke *waterfall* KLOC
//! policy on the public API — active knodes allocate as high as
//! possible, cold knodes cascade one tier down per epoch — showing the
//! hook interface generalizes beyond the calibrated two-tier policies.
//!
//! ```text
//! cargo run --release --example three_tier
//! ```

use klocs::core::{KlocConfig, KlocRegistry};
use klocs::kernel::hooks::{CpuId, Ctx, KernelHooks, PageRequest, Placement};
use klocs::kernel::{InodeId, Kernel, KernelParams, ObjectId, ObjectInfo};
use klocs::mem::{FrameId, MemorySystem, Nanos, PageKind, TenantId, TierId};
use klocs::workloads::{RocksDb, Scale, Workload};

/// A minimal three-tier KLOC policy: allocation prefers the fastest tier
/// with room; cold knodes cascade downward one tier at a time.
struct Waterfall {
    registry: KlocRegistry,
    tiers: u8,
}

impl Waterfall {
    fn new(tiers: u8) -> Self {
        Waterfall {
            registry: KlocRegistry::new(KlocConfig::default()),
            tiers,
        }
    }

    /// Cascades every sufficiently cold knode one tier down.
    fn cascade(&mut self, mem: &mut MemorySystem) {
        // The kmap's inactive index yields cold knodes directly; the
        // warm population is never examined.
        let mut cold: Vec<InodeId> = Vec::new();
        self.registry
            .cold_member_candidates(4, usize::MAX, &mut cold);
        for ino in cold {
            // Demote each member one level from wherever it is.
            for frame in self.registry.member_frames(ino) {
                let Ok(f) = mem.frame(frame) else { continue };
                let next = f.tier().0 + 1;
                if !f.pinned() && next < self.tiers {
                    let _ = mem.migrate(frame, TierId(next));
                }
            }
        }
        self.registry.age_epoch();
    }
}

impl KernelHooks for Waterfall {
    fn place_page(&mut self, req: &PageRequest, _mem: &MemorySystem) -> Placement {
        let all: Vec<TierId> = (0..self.tiers).map(TierId).collect();
        if req.kind == PageKind::AppData {
            return Placement { preference: all };
        }
        match req.inode.and_then(|i| self.registry.is_active(i)) {
            // Inactive knodes start in the middle of the hierarchy.
            Some(false) => Placement {
                preference: all[1..].to_vec(),
            },
            _ => Placement { preference: all },
        }
    }

    fn relocatable_kernel_alloc(&self) -> bool {
        true
    }

    fn on_inode_create(
        &mut self,
        inode: InodeId,
        cpu: CpuId,
        _tenant: TenantId,
        mem: &mut MemorySystem,
    ) {
        self.registry.inode_created(inode, cpu, mem.now());
    }
    fn on_inode_open(&mut self, inode: InodeId, cpu: CpuId, mem: &mut MemorySystem) {
        self.registry.inode_opened(inode, cpu, mem.now());
    }
    fn on_inode_close(&mut self, inode: InodeId, mem: &mut MemorySystem) {
        self.registry.inode_closed(inode, mem.now());
    }
    fn on_inode_destroy(&mut self, inode: InodeId, mem: &mut MemorySystem) {
        self.registry.inode_destroyed(inode, mem.now());
    }
    fn on_object_alloc(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        frame: FrameId,
        cpu: CpuId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .object_allocated(obj, info, frame, cpu, mem.now());
    }
    fn on_object_free(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        _frame: FrameId,
        _mem: &mut MemorySystem,
    ) {
        self.registry.object_freed(obj, info);
    }
    fn on_object_access(
        &mut self,
        _obj: ObjectId,
        info: &ObjectInfo,
        _frame: FrameId,
        cpu: CpuId,
        _tenant: TenantId,
        mem: &mut MemorySystem,
    ) {
        self.registry.object_accessed(info, cpu, mem.now());
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // HBM (1 MB) over DRAM (4 MB) over slow memory — capacities scaled
    // like the rest of the repository.
    let mut mem = MemorySystem::three_tier(1 << 20, 4 << 20, 8);
    mem.set_cpu_parallelism(16);
    let mut policy = Waterfall::new(3);
    let mut kernel = Kernel::new(KernelParams::default());

    let scale = Scale::tiny();
    let mut workload = RocksDb::new(&scale);
    {
        let mut ctx = Ctx::new(&mut mem, &mut policy);
        workload.setup(&mut kernel, &mut ctx)?;
    }
    let t0 = mem.now();
    let mut next_tick = t0;
    while !workload.is_done() {
        {
            let mut ctx = Ctx::new(&mut mem, &mut policy);
            workload.step(&mut kernel, &mut ctx)?;
        }
        if mem.now() >= next_tick {
            policy.cascade(&mut mem);
            next_tick = mem.now() + Nanos::from_micros(250);
        }
    }
    let elapsed = mem.now() - t0;

    println!(
        "RocksDB over HBM/DRAM/slow with a waterfall KLOC policy: {:.0} ops/s",
        workload.ops_done() as f64 / elapsed.as_secs_f64()
    );
    for t in 0..3u8 {
        let tier = mem.tier_alloc(TierId(t))?;
        let stats = mem.stats().tier(TierId(t));
        println!(
            "  tier{t}: {:>5} frames resident, {:>8} accesses  ({})",
            stats.frames_resident,
            stats.reads + stats.writes,
            if tier.frame_capacity() == u64::MAX {
                "unbounded".to_owned()
            } else {
                format!("{} frames", tier.frame_capacity())
            }
        );
    }
    println!(
        "  demotions: {} (cascading one tier per cold epoch), promotions: {}",
        mem.migration_stats().demotions,
        mem.migration_stats().promotions
    );
    // Sanity: the middle tier actually holds pages (waterfall worked).
    assert!(mem.stats().tier(TierId(1)).frames_resident > 0);
    assert_eq!(workload.ops_done(), scale.ops);
    {
        let mut ctx = Ctx::new(&mut mem, &mut policy);
        workload.teardown(&mut kernel, &mut ctx)?;
    }
    Ok(())
}
