//! Quickstart: run one workload under the KLOC policy on the paper's
//! two-tier platform and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use klocs::policy::PolicyKind;
use klocs::sim::engine::{self, RunConfig};
use klocs::workloads::{Scale, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's two-tier configuration (8 GB fast over 1:8-bandwidth
    // slow memory), scaled 1024x down so this runs in milliseconds.
    let scale = Scale::large();

    println!("RocksDB on the two-tier platform, KLOCs vs All-Slow:\n");

    let baseline = engine::run(&RunConfig::two_tier(
        WorkloadKind::RocksDb,
        PolicyKind::AllSlow,
        scale.clone(),
    ))?;
    let kloc = engine::run(&RunConfig::two_tier(
        WorkloadKind::RocksDb,
        PolicyKind::Kloc,
        scale.clone(),
    ))?;

    println!(
        "  All-Slow : {:>10.0} ops/s  ({} of virtual time)",
        baseline.throughput(),
        baseline.elapsed
    );
    println!(
        "  KLOCs    : {:>10.0} ops/s  ({} of virtual time)",
        kloc.throughput(),
        kloc.elapsed
    );
    println!(
        "  speedup  : {:.2}x  (fast-tier accesses: {:.0}%)",
        kloc.speedup_over(&baseline),
        kloc.fast_access_fraction() * 100.0
    );

    let stats = kloc.kloc.expect("KLOC policy reports registry stats");
    println!("\nKLOC registry activity:");
    println!("  knodes created    : {}", stats.knodes_created);
    println!("  objects tracked   : {}", stats.objects_tracked);
    println!(
        "  en-masse demotions: {} ({} pages)",
        stats.knode_demotions, stats.pages_demoted
    );
    println!(
        "  promotions        : {} ({} pages)",
        stats.knode_promotions, stats.pages_promoted
    );
    let overhead = kloc.overhead.expect("overhead measured");
    println!(
        "  metadata overhead : {} bytes ({:.2}% of the dataset)",
        overhead.total(),
        overhead.fraction_of(scale.data_bytes) * 100.0
    );
    Ok(())
}
