//! The Optane Memory Mode scenario (paper Fig. 5a): a workload shares a
//! socket with a memory-streaming antagonist; when interference begins,
//! the scheduler moves the task to the other socket. Vanilla AutoNUMA
//! migrates only application pages — kernel objects stay stranded on the
//! contended socket. KLOCs move them too.
//!
//! ```text
//! cargo run --release --example optane_numa
//! ```

use klocs::sim::experiments::fig5::{self, OptaneStrategy};
use klocs::sim::Runner;
use klocs::workloads::{Scale, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::large();
    eprintln!("staging interference scenarios (4 workloads x 4 strategies)...");
    let rows = fig5::fig5a(&Runner::auto(), &scale, &WorkloadKind::EVALUATED)?;
    println!("{}", fig5::fig5a_table(&rows));

    // The paper's headline: KLOCs ~1.5x over AutoNUMA, ~1.4x over Nimble.
    let mut over_auto = Vec::new();
    let mut over_nimble = Vec::new();
    for r in &rows {
        let kloc = r.speedup(OptaneStrategy::Kloc).unwrap_or(0.0);
        over_auto.push(kloc / r.speedup(OptaneStrategy::AutoNuma).unwrap_or(1.0));
        over_nimble.push(kloc / r.speedup(OptaneStrategy::Nimble).unwrap_or(1.0));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "KLOCs over AutoNUMA: {:.2}x mean (paper: ~1.5x); over Nimble: {:.2}x mean (paper: ~1.4x)",
        mean(&over_auto),
        mean(&over_nimble)
    );
    Ok(())
}
