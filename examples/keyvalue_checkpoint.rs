//! A Redis-style scenario driven directly against the public kernel API
//! (no prebuilt workload): an in-memory store serves requests over a
//! socket and periodically checkpoints to disk. Shows how the KLOC
//! abstraction reacts to the lifecycle — socket buffers stay hot in fast
//! memory while checkpoint files go cold and are demoted en masse.
//!
//! ```text
//! cargo run --release --example keyvalue_checkpoint
//! ```

use klocs::kernel::hooks::Ctx;
use klocs::kernel::{Kernel, KernelParams};
use klocs::mem::{MemorySystem, TierId, PAGE_SIZE};
use klocs::policy::{KlocPolicy, Policy};

const STORE_PAGES: u64 = 64;
const CHECKPOINTS: usize = 6;
const REQUESTS_PER_ROUND: usize = 400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 512 KB fast tier over slow memory at a 1:8 bandwidth differential
    // — small enough that the checkpoint files create real pressure.
    let mut mem = MemorySystem::two_tier(128 * PAGE_SIZE, 8);
    let mut policy = KlocPolicy::new();
    mem.set_migration_cost(policy.migration_cost());
    let mut kernel = Kernel::new(KernelParams::default());

    // Application store memory + server socket.
    let (sock, store) = {
        let mut ctx = Ctx::new(&mut mem, &mut policy);
        let sock = kernel.socket(&mut ctx)?;
        let mut store = Vec::new();
        for _ in 0..STORE_PAGES {
            store.push(kernel.alloc_app_page(&mut ctx)?);
        }
        (sock, store)
    };

    for round in 0..CHECKPOINTS {
        // Serve a burst of requests: ingress packet -> store update ->
        // response.
        {
            let mut ctx = Ctx::new(&mut mem, &mut policy);
            for i in 0..REQUESTS_PER_ROUND {
                kernel.deliver(&mut ctx, sock, 256)?;
                kernel.recv(&mut ctx, sock, 256)?;
                kernel.app_access(&mut ctx, store[i % store.len()], 1024, true);
                kernel.send(&mut ctx, sock, 512)?;
            }
        }

        // Checkpoint the store to a dump file, then close it — the file
        // is now a cold KLOC.
        let path = format!("/dump{round}");
        {
            let mut ctx = Ctx::new(&mut mem, &mut policy);
            let fd = kernel.create(&mut ctx, &path)?;
            for p in 0..STORE_PAGES {
                kernel.write(&mut ctx, fd, p * PAGE_SIZE, PAGE_SIZE)?;
            }
            kernel.fsync(&mut ctx, fd)?;
            kernel.close(&mut ctx, fd)?;
        }

        // Give the policy time to react (virtual time + ticks).
        for _ in 0..32 {
            mem.charge(klocs::mem::Nanos::from_micros(250));
            policy.tick(&kernel, &mut mem);
        }

        let fast = mem.tier_alloc(TierId::FAST)?;
        println!(
            "round {round}: fast {:>3}/{} frames, {:>4} pages demoted so far (checkpoint files pushed to slow memory)",
            fast.used_frames(),
            fast.frame_capacity(),
            mem.migration_stats().demotions,
        );

        // Drop the previous dump entirely (deleted objects are freed,
        // never migrated — paper section 3.2).
        if round > 0 {
            let mut ctx = Ctx::new(&mut mem, &mut policy);
            kernel.unlink(&mut ctx, &format!("/dump{}", round - 1))?;
        }
    }

    let m = mem.migration_stats();
    println!(
        "\ntotals: {} demotions, {} promotions, migration time {}",
        m.demotions, m.promotions, m.time_spent
    );
    println!(
        "socket buffers stayed hot: {} packets delivered, {} early-demuxed in the driver",
        kernel.net_stats().rx_packets,
        kernel.net_stats().early_demuxed
    );
    Ok(())
}
