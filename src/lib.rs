//! # klocs — Kernel-Level Object Contexts for heterogeneous memory
//!
//! A full-system, deterministic reproduction of *KLOCs: Kernel-Level
//! Object Contexts for Heterogeneous Memory Systems* (Kannan, Ren,
//! Bhattacharjee — ASPLOS 2021), built as a pure-Rust simulation: a
//! tiered memory substrate, a simulated kernel (VFS, page cache, slab,
//! journal, block layer, network stack), the KLOC abstraction itself,
//! every tiering policy the paper evaluates, workload models for the
//! paper's applications, and an experiment harness that regenerates
//! every figure and table.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`mem`] | `kloc-mem` | tiers, frames, virtual clock, migration |
//! | [`kernel`] | `kloc-kernel` | syscalls, VFS, page cache, journal, net |
//! | [`core`] | `kloc-core` | knodes, kmap, per-CPU lists, registry |
//! | [`policy`] | `kloc-policy` | Naive/Nimble/Nimble++/KLOCs/AutoNUMA |
//! | [`workloads`] | `kloc-workloads` | RocksDB/Redis/Filebench/Cassandra/Spark |
//! | [`sim`] | `kloc-sim` | run engine + per-figure experiments |
//!
//! ## Quickstart
//!
//! ```
//! use klocs::policy::PolicyKind;
//! use klocs::sim::engine::{self, RunConfig};
//! use klocs::workloads::{Scale, WorkloadKind};
//!
//! # fn main() -> Result<(), klocs::kernel::KernelError> {
//! let config = RunConfig::two_tier(
//!     WorkloadKind::RocksDb,
//!     PolicyKind::Kloc,
//!     Scale::tiny(),
//! );
//! let report = engine::run(&config)?;
//! assert!(report.throughput() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! To regenerate the paper's evaluation from the command line:
//!
//! ```text
//! cargo run --release -p kloc-sim --bin repro -- all --scale large
//! ```

#![warn(missing_docs)]

pub use kloc_core as core;
pub use kloc_kernel as kernel;
pub use kloc_mem as mem;
pub use kloc_policy as policy;
pub use kloc_sim as sim;
pub use kloc_workloads as workloads;
