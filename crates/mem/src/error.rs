//! Error type for the memory substrate.

use std::error::Error;
use std::fmt;

use crate::frame::FrameId;
use crate::tier::TierId;

/// Errors returned by the memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The requested tier has no free frames left.
    TierFull(TierId),
    /// No tier in the system could satisfy the allocation.
    OutOfMemory,
    /// The frame id does not name a live (allocated) frame.
    BadFrame(FrameId),
    /// The tier id does not exist in this topology.
    BadTier(TierId),
    /// A migration was requested to the tier the frame already lives on.
    AlreadyResident(FrameId, TierId),
    /// The frame is pinned and cannot be migrated.
    Pinned(FrameId),
    /// The tier is offline (kfault injection): no allocations or inbound
    /// migrations until the fault window closes.
    TierOffline(TierId),
    /// A page migration failed mid-copy (kfault injection); the frame
    /// stays resident on its source tier.
    MigrationFault(FrameId),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::TierFull(t) => write!(f, "memory tier {t} is full"),
            MemError::OutOfMemory => write!(f, "no memory tier can satisfy the allocation"),
            MemError::BadFrame(id) => write!(f, "frame {id} is not allocated"),
            MemError::BadTier(t) => write!(f, "tier {t} does not exist in this topology"),
            MemError::AlreadyResident(id, t) => {
                write!(f, "frame {id} already resides on tier {t}")
            }
            MemError::Pinned(id) => write!(f, "frame {id} is pinned and cannot be migrated"),
            MemError::TierOffline(t) => write!(f, "memory tier {t} is offline"),
            MemError::MigrationFault(id) => write!(f, "migration of frame {id} failed"),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msg = MemError::OutOfMemory.to_string();
        assert!(msg.starts_with("no memory tier"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
