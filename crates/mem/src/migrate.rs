//! Migration cost model and statistics.
//!
//! Moving a page between tiers costs a read from the source, a write to
//! the destination, and a fixed remap overhead (page-table manipulation +
//! TLB shootdown). Nimble (ASPLOS '19) parallelizes the copy across
//! threads; the [`MigrationCost::parallelism`] knob models that speedup
//! and is used by the Nimble/Nimble++/KLOC policies (the paper's KLOC
//! prototype reuses Nimble's parallel page copy, §6.2 Table 5).

use crate::clock::Nanos;
use crate::frame::{PageKind, PAGE_SIZE};
use crate::tier::{TierId, TierSpec};

/// Cost model for page migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MigrationCost {
    /// Fixed per-page remap cost (unmap + TLB shootdown + remap).
    pub remap: Nanos,
    /// Number of parallel copy threads (Nimble-style). `1` = sequential.
    pub parallelism: u64,
    /// Percent of the migration cost charged to the foreground clock.
    /// Migration on dedicated kernel threads (paper §5: "migrations are
    /// asynchronous, and we use dedicated kernel threads") only steals a
    /// fraction of the application's time; synchronous migration (NUMA
    /// hint faults) charges 100.
    pub charge_pct: u64,
}

impl MigrationCost {
    /// Sequential migration, 1.5 us remap (calibrated to Linux
    /// `move_pages` costs reported by Nimble).
    pub fn sequential() -> Self {
        MigrationCost {
            remap: Nanos::new(1_500),
            parallelism: 1,
            charge_pct: 100,
        }
    }

    /// Nimble-style parallel copy with four background threads: cheaper
    /// per page and mostly off the critical path.
    pub fn parallel() -> Self {
        MigrationCost {
            remap: Nanos::new(1_500),
            parallelism: 4,
            charge_pct: 30,
        }
    }

    /// Time to move one 4 KB page from `src` to `dst`.
    ///
    /// The copy (read + write) is divided by the parallelism factor; the
    /// remap cost is not parallelizable.
    pub fn page_cost(&self, src: &TierSpec, dst: &TierSpec) -> Nanos {
        let copy = src.read_cost(PAGE_SIZE) + dst.write_cost(PAGE_SIZE);
        copy / self.parallelism.max(1) + self.remap
    }

    /// The memory-bus portion of one page move (read + write over the
    /// shared bus, divided across the copy threads).
    pub fn copy_cost(&self, src: &TierSpec, dst: &TierSpec) -> Nanos {
        (src.read_cost(PAGE_SIZE) + dst.write_cost(PAGE_SIZE)) / self.parallelism.max(1)
    }

    /// The portion of [`MigrationCost::page_cost`] charged to the
    /// foreground clock: the bus share of the copy (scaled by
    /// `charge_pct`) plus the remap CPU work divided across
    /// `cpu_parallelism` overlapping threads.
    pub fn foreground_cost(&self, src: &TierSpec, dst: &TierSpec, cpu_parallelism: u64) -> Nanos {
        let copy = self.copy_cost(src, dst);
        Nanos::new(copy.as_nanos() * self.charge_pct.min(100) / 100)
            + self.remap / cpu_parallelism.max(1)
    }
}

impl Default for MigrationCost {
    fn default() -> Self {
        MigrationCost::sequential()
    }
}

/// Counters for migration activity (paper Fig. 5b plots these).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MigrationStats {
    /// Pages moved from a faster tier to a slower tier (demotions).
    pub demotions: u64,
    /// Pages moved from a slower tier to a faster tier (promotions).
    pub promotions: u64,
    /// Demotions broken down by page kind.
    pub demotions_by_kind: std::collections::BTreeMap<PageKind, u64>,
    /// Promotions broken down by page kind.
    pub promotions_by_kind: std::collections::BTreeMap<PageKind, u64>,
    /// Total virtual time spent migrating.
    pub time_spent: Nanos,
    /// Migrations that failed mid-copy (kfault injection); zero unless
    /// faults were scheduled.
    pub failed: u64,
}

impl MigrationStats {
    /// Total migrations in both directions.
    pub fn total(&self) -> u64 {
        self.demotions + self.promotions
    }

    pub(crate) fn record(&mut self, kind: PageKind, from: TierId, to: TierId, cost: Nanos) {
        // Lower tier id = faster tier by topology convention.
        if to.index() > from.index() {
            self.demotions += 1;
            *self.demotions_by_kind.entry(kind).or_default() += 1;
        } else {
            self.promotions += 1;
            *self.promotions_by_kind.entry(kind).or_default() += 1;
        }
        self.time_spent += cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_copy_is_cheaper() {
        let fast = TierSpec::fast_dram(1 << 30);
        let slow = fast.slow_variant(8);
        let seq = MigrationCost::sequential().page_cost(&fast, &slow);
        let par = MigrationCost::parallel().page_cost(&fast, &slow);
        assert!(par < seq);
        // Remap portion is not parallelized.
        assert!(par > MigrationCost::parallel().remap);
    }

    #[test]
    fn page_cost_reflects_slow_tier_write() {
        let fast = TierSpec::fast_dram(1 << 30);
        let slow = fast.slow_variant(8);
        let demote = MigrationCost::sequential().page_cost(&fast, &slow);
        let promote = MigrationCost::sequential().page_cost(&slow, &fast);
        // Writing to the slow tier is the dominant term; both directions
        // cost the same here because read/write specs are symmetric.
        assert_eq!(demote, promote);
    }

    #[test]
    fn stats_classify_directions() {
        let mut s = MigrationStats::default();
        s.record(
            PageKind::PageCache,
            TierId::FAST,
            TierId::SLOW,
            Nanos::new(10),
        );
        s.record(
            PageKind::AppData,
            TierId::SLOW,
            TierId::FAST,
            Nanos::new(10),
        );
        assert_eq!(s.demotions, 1);
        assert_eq!(s.promotions, 1);
        assert_eq!(s.total(), 2);
        assert_eq!(s.demotions_by_kind[&PageKind::PageCache], 1);
        assert_eq!(s.time_spent, Nanos::new(20));
    }

    #[test]
    fn zero_parallelism_treated_as_sequential() {
        let fast = TierSpec::fast_dram(1 << 30);
        let cost = MigrationCost {
            remap: Nanos::ZERO,
            parallelism: 0,
            charge_pct: 100,
        };
        assert_eq!(
            cost.page_cost(&fast, &fast),
            fast.read_cost(PAGE_SIZE) + fast.write_cost(PAGE_SIZE)
        );
    }
}
