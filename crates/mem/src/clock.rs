//! Virtual time for the simulation.
//!
//! The whole reproduction is a deterministic discrete-time simulation: no
//! wall-clock time is ever consulted. [`Nanos`] is a newtype over `u64`
//! nanoseconds and [`Clock`] is a monotonically advancing counter owned by
//! the memory system (everything that costs time is charged through it).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration or instant in virtual nanoseconds.
///
/// ```
/// use kloc_mem::Nanos;
/// let t = Nanos::from_micros(2) + Nanos::new(500);
/// assert_eq!(t.as_nanos(), 2_500);
/// assert!(t < Nanos::from_millis(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Time to move `bytes` at `bytes_per_sec` bandwidth.
    ///
    /// Returns zero if `bytes_per_sec` is zero (infinite bandwidth is used
    /// by tests that want latency-only accounting).
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Nanos {
        if bytes_per_sec == 0 {
            return Nanos::ZERO;
        }
        // ns = bytes / (bytes/s) * 1e9, multiply first to keep
        // sub-nanosecond precision for small transfers. Every real
        // transfer (object touch to multi-MB migration) keeps
        // `bytes * 1e9` inside u64, where the division is a single
        // hardware instruction; the u128 path exists only for the
        // >18 GB tail and computes the identical value.
        if let Some(scaled) = bytes.checked_mul(1_000_000_000) {
            return Nanos(scaled / bytes_per_sec);
        }
        let ns = (bytes as u128 * 1_000_000_000u128) / bytes_per_sec as u128;
        Nanos(ns as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Monotonic virtual clock.
///
/// ```
/// use kloc_mem::{Clock, Nanos};
/// let mut clock = Clock::new();
/// clock.advance(Nanos::from_micros(5));
/// assert_eq!(clock.now(), Nanos::from_micros(5));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Clock {
    now: Nanos,
}

impl Clock {
    /// New clock at time zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `dt`.
    pub fn advance(&mut self, dt: Nanos) {
        self.now += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Nanos::from_millis(3).as_micros(), 3_000);
        assert_eq!(Nanos::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Nanos::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::new(100);
        let b = Nanos::new(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 4 KB at 30 GB/s => ~136 ns.
        let t = Nanos::for_transfer(4096, 30_000_000_000);
        assert_eq!(t.as_nanos(), 136);
        // Zero bandwidth means "don't charge bandwidth".
        assert_eq!(Nanos::for_transfer(4096, 0), Nanos::ZERO);
    }

    #[test]
    fn transfer_time_no_overflow_for_large_values() {
        let t = Nanos::for_transfer(u64::from(u32::MAX) * 4096, 1_000_000_000);
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Nanos::ZERO);
        c.advance(Nanos::new(10));
        c.advance(Nanos::new(5));
        assert_eq!(c.now(), Nanos::new(15));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Nanos::new(500).to_string(), "500ns");
        assert_eq!(Nanos::from_micros(2).to_string(), "2.000us");
        assert_eq!(Nanos::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_nanos() {
        let total: Nanos = [Nanos::new(1), Nanos::new(2), Nanos::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Nanos::new(6));
    }
}
