//! Dependency-free deterministic pseudo-random number generation.
//!
//! The simulation must build with no registry access, so instead of the
//! `rand` crate the workloads (and the randomized model tests) draw from
//! this seeded [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! generator. SplitMix64 passes BigCrush, needs only a 64-bit state, and
//! is trivially reproducible from a `u64` seed — exactly what a
//! deterministic simulator wants. Streams differ from `rand::StdRng`
//! for the same seed, so absolute workload numbers shifted once when the
//! workspace switched over; all paper *shapes* are seed-invariant.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform draw in `[0, bound)` via Lemire's multiply-shift reduction
    /// (unbiased enough for simulation purposes; the modulo bias of a
    /// plain `% bound` would be below measurement noise anyway, but the
    /// multiply is also faster).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_below(range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // First outputs of splitmix64 with seed 1234567 (from the
        // reference C implementation).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            let k = r.gen_range(0..16);
            seen[k as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform draw should hit every bucket"
        );
        for _ in 0..1_000 {
            let k = r.gen_range(5..8);
            assert!((5..8).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        SplitMix64::seed_from_u64(0).gen_range(3..3);
    }
}
