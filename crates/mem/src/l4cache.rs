//! Hardware-managed DRAM cache (Optane "Memory Mode").
//!
//! In Intel Optane DC Memory Mode, each socket's DRAM acts as a
//! direct-mapped, hardware-managed L4 cache in front of persistent memory;
//! software sees only the PMEM capacity (paper §6.2). The [`L4Cache`]
//! models this as a fully-associative LRU cache of 4 KB frames: hits are
//! served at DRAM cost, misses at PMEM cost (plus fill). The paper reports
//! the DRAM cache achieving 3-4x faster latency than persistent memory.

use std::collections::{BTreeMap, HashMap};

use crate::clock::Nanos;
use crate::frame::{FrameId, PAGE_SIZE};
use crate::tier::TierSpec;

/// One socket's hardware-managed DRAM cache over PMEM.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct L4Cache {
    dram: TierSpec,
    pmem: TierSpec,
    capacity_frames: u64,
    /// LRU order: stamp -> frame.
    order: BTreeMap<u64, FrameId>,
    /// Frame -> current stamp.
    stamps: HashMap<FrameId, u64>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
}

impl L4Cache {
    /// Creates a cache of `capacity_bytes` DRAM (spec `dram`) caching the
    /// `pmem` tier. A capacity smaller than one page (a cache that could
    /// hold nothing) is clamped to the documented minimum of one frame.
    pub fn new(capacity_bytes: u64, dram: TierSpec, pmem: TierSpec) -> Self {
        let capacity_frames = (capacity_bytes / PAGE_SIZE).max(1);
        L4Cache {
            dram,
            pmem,
            capacity_frames,
            order: BTreeMap::new(),
            stamps: HashMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of frames the cache can hold.
    pub fn capacity_frames(&self) -> u64 {
        self.capacity_frames
    }

    /// Current number of cached frames.
    pub fn len(&self) -> u64 {
        self.stamps.len() as u64
    }

    /// Whether the cache holds no frames.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all accesses (0 when no accesses yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Charges one access of `bytes` to the cached frame and returns its
    /// cost: DRAM cost on hit, PMEM cost plus a page fill on miss.
    pub fn access(&mut self, frame: FrameId, bytes: u64, write: bool) -> Nanos {
        let hit = self.touch(frame);
        let (fast, slow) = (&self.dram, &self.pmem);
        if hit {
            self.hits += 1;
            if write {
                fast.write_cost(bytes)
            } else {
                fast.read_cost(bytes)
            }
        } else {
            self.misses += 1;
            // Miss: access goes to PMEM, and the line is filled into DRAM.
            let access = if write {
                slow.write_cost(bytes)
            } else {
                slow.read_cost(bytes)
            };
            access + fast.write_cost(PAGE_SIZE.min(bytes.max(PAGE_SIZE)))
        }
    }

    /// Drops a frame from the cache (e.g. when it is freed or migrated to
    /// another socket). Returns whether the frame was cached.
    pub fn invalidate(&mut self, frame: FrameId) -> bool {
        if let Some(stamp) = self.stamps.remove(&frame) {
            self.order.remove(&stamp);
            true
        } else {
            false
        }
    }

    /// Moves `frame` to MRU position; returns whether it was present.
    fn touch(&mut self, frame: FrameId) -> bool {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(old) = self.stamps.insert(frame, stamp) {
            self.order.remove(&old);
            self.order.insert(stamp, frame);
            true
        } else {
            self.order.insert(stamp, frame);
            if self.stamps.len() as u64 > self.capacity_frames {
                // Evict LRU (smallest stamp).
                if let Some((&victim_stamp, &victim)) = self.order.iter().next() {
                    self.order.remove(&victim_stamp);
                    self.stamps.remove(&victim);
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(frames: u64) -> L4Cache {
        L4Cache::new(
            frames * PAGE_SIZE,
            TierSpec::fast_dram(u64::MAX),
            TierSpec::pmem(u64::MAX),
        )
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = cache(4);
        let miss = c.access(FrameId(1), 64, false);
        let hit = c.access(FrameId(1), 64, false);
        assert!(miss > hit, "miss should cost more than hit");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction() {
        let mut c = cache(2);
        c.access(FrameId(1), 64, false);
        c.access(FrameId(2), 64, false);
        c.access(FrameId(1), 64, false); // 1 is now MRU
        c.access(FrameId(3), 64, false); // evicts 2
        assert_eq!(c.len(), 2);
        c.access(FrameId(2), 64, false);
        assert_eq!(c.misses(), 4, "frame 2 must have been evicted");
    }

    #[test]
    fn invalidate_removes_frame() {
        let mut c = cache(4);
        c.access(FrameId(7), 64, true);
        assert!(c.invalidate(FrameId(7)));
        assert!(!c.invalidate(FrameId(7)));
        c.access(FrameId(7), 64, false);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn hit_is_dram_speed_miss_is_pmem_speed() {
        let mut c = cache(4);
        let dram = TierSpec::fast_dram(u64::MAX);
        let pmem = TierSpec::pmem(u64::MAX);
        let miss = c.access(FrameId(1), 64, false);
        assert!(miss >= pmem.read_cost(64));
        let hit = c.access(FrameId(1), 64, false);
        assert_eq!(hit, dram.read_cost(64));
        // The paper reports 3-4x faster DRAM-cache latency than PMEM.
        assert!(pmem.read_cost(64).as_nanos() >= 3 * dram.read_cost(64).as_nanos());
    }

    #[test]
    fn zero_capacity_clamped_to_one_frame() {
        let mut c = cache(0);
        c.access(FrameId(1), 64, false);
        let hit = c.access(FrameId(1), 64, false);
        assert_eq!(c.hits(), 1, "one frame still caches");
        assert_eq!(hit, TierSpec::fast_dram(u64::MAX).read_cost(64));
        c.access(FrameId(2), 64, false); // evicts 1
        c.access(FrameId(1), 64, false);
        assert_eq!(c.misses(), 3, "a one-frame cache holds exactly one frame");
    }
}
