//! Deterministic virtual-time fault injection (the `kfault` subsystem).
//!
//! A [`FaultPlan`] schedules failures against the simulated hardware —
//! NVMe read/write/fsync errors, tier-capacity exhaustion, whole-tier
//! offlining, migration failures, and a crash point — all keyed to the
//! *virtual* clock (or, for crashes, to journal commit ordinals), so a
//! plan plus a seed reproduces the exact same failure history on every
//! run. Plans are either built explicitly (the crash sweep does this) or
//! generated from a seed via the in-tree [`SplitMix64`], the same RNG
//! the workloads use.
//!
//! The plan **types** always compile so configs can carry them, but the
//! injection hooks inside [`crate::MemorySystem`] and the kernel exist
//! only behind the workspace `kfault` feature; without it the hooks are
//! inline no-ops and a scheduled plan is ignored. With the feature on
//! but no faults scheduled, no hook ever fires, no RNG is drawn, and no
//! virtual time is charged — faultless runs stay byte-identical to the
//! committed goldens.

use crate::clock::Nanos;
use crate::rng::SplitMix64;
use crate::tier::TierId;

/// Disk operation classes a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// A synchronous or readahead disk read.
    Read,
    /// An asynchronous (writeback/journal) disk write submission.
    Write,
    /// An fsync barrier (drain of in-flight writes).
    Fsync,
}

impl DiskOp {
    /// Stable label used in trace events and error messages.
    pub fn label(self) -> &'static str {
        match self {
            DiskOp::Read => "read",
            DiskOp::Write => "write",
            DiskOp::Fsync => "fsync",
        }
    }
}

impl std::fmt::Display for DiskOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What happens to a tier inside a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierFaultKind {
    /// The tier behaves as if at capacity: new allocations fail with
    /// [`crate::MemError::TierFull`] (and spill down the preference
    /// list), but resident frames stay accessible and migratable.
    Exhaust,
    /// The whole tier is offline for placement: allocations *and*
    /// inbound migrations fail with [`crate::MemError::TierOffline`].
    /// Resident frames remain readable (a degraded device, not a dead
    /// one) and may be migrated away.
    Offline,
}

impl TierFaultKind {
    /// Stable label used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            TierFaultKind::Exhaust => "exhaust",
            TierFaultKind::Offline => "offline",
        }
    }
}

/// One scheduled disk fault: starting at virtual time `at`, the next
/// `count` operations of class `op` fail (and are then retried by the
/// kernel's blk-mq layer with exponential backoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    /// Virtual time at/after which the fault arms.
    pub at: Nanos,
    /// Operation class that fails.
    pub op: DiskOp,
    /// Consecutive failures injected before the device recovers.
    pub count: u32,
}

/// One tier fault window `[at, until)`; `until = None` means the rest
/// of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierFault {
    /// Affected tier.
    pub tier: TierId,
    /// Exhaustion or offlining.
    pub kind: TierFaultKind,
    /// Window start (virtual time).
    pub at: Nanos,
    /// Window end, exclusive (`None` = never recovers).
    pub until: Option<Nanos>,
}

/// One scheduled migration fault: starting at `at`, the next `count`
/// migrations fail with [`crate::MemError::MigrationFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationFault {
    /// Virtual time at/after which the fault arms.
    pub at: Nanos,
    /// Consecutive migration failures injected.
    pub count: u32,
}

/// Where the simulated machine crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash at the first syscall entered at/after this virtual time.
    At(Nanos),
    /// Crash at the `index`-th journal commit (0-based, counting every
    /// commit the run performs): `after_blocks = 0` crashes at the
    /// commit boundary before any journal block reaches the disk;
    /// `after_blocks = j > 0` crashes mid-commit after `j` of the
    /// commit's blocks were written, leaving a torn record.
    Commit {
        /// Commit ordinal (0-based).
        index: u64,
        /// Journal blocks durably written before the crash.
        after_blocks: u32,
    },
}

/// A complete deterministic fault schedule. Built empty, explicitly, or
/// from a seed; consumed by [`FaultState`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled disk faults.
    pub disk: Vec<DiskFault>,
    /// Scheduled tier fault windows.
    pub tiers: Vec<TierFault>,
    /// Scheduled migration faults.
    pub migrations: Vec<MigrationFault>,
    /// At most one crash per run.
    pub crash: Option<CrashPoint>,
}

impl FaultPlan {
    /// An empty plan (no faults; runs stay byte-identical to goldens).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
            && self.tiers.is_empty()
            && self.migrations.is_empty()
            && self.crash.is_none()
    }

    /// Adds a disk fault (builder style).
    #[must_use]
    pub fn with_disk_fault(mut self, at: Nanos, op: DiskOp, count: u32) -> Self {
        self.disk.push(DiskFault { at, op, count });
        self
    }

    /// Adds a tier fault window (builder style).
    #[must_use]
    pub fn with_tier_fault(
        mut self,
        tier: TierId,
        kind: TierFaultKind,
        at: Nanos,
        until: Option<Nanos>,
    ) -> Self {
        self.tiers.push(TierFault {
            tier,
            kind,
            at,
            until,
        });
        self
    }

    /// Adds a migration fault (builder style).
    #[must_use]
    pub fn with_migration_fault(mut self, at: Nanos, count: u32) -> Self {
        self.migrations.push(MigrationFault { at, count });
        self
    }

    /// Sets the crash point (builder style; at most one crash per run).
    #[must_use]
    pub fn with_crash(mut self, crash: CrashPoint) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Generates a representative seeded plan over a virtual-time
    /// `horizon`: two faults per disk-op class (1-2 consecutive errors
    /// each, always recoverable within the kernel's default retry
    /// budget), two migration faults, one fast-tier exhaustion window
    /// in the middle third of the horizon, and one fast-tier offlining
    /// window in the last third (exercising the drain path). Identical
    /// `(seed, horizon)` pairs yield identical plans.
    pub fn seeded(seed: u64, horizon: Nanos) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xFA_017);
        let h = horizon.as_nanos().max(1);
        fn at(rng: &mut SplitMix64, h: u64, lo_frac: u64, hi_frac: u64) -> Nanos {
            let lo = h * lo_frac / 8;
            let hi = (h * hi_frac / 8).max(lo + 1);
            Nanos::new(rng.gen_range(lo..hi))
        }
        let mut plan = FaultPlan::new();
        // These DiskOps parameterize a fault plan; they are never
        // submitted to the device model from here.
        // lint: charge-ok
        for op in [DiskOp::Read, DiskOp::Write, DiskOp::Fsync] {
            for window in [(0, 4), (4, 8)] {
                let t = at(&mut rng, h, window.0, window.1);
                let count = 1 + (rng.next_u64() % 2) as u32;
                plan = plan.with_disk_fault(t, op, count);
            }
        }
        for window in [(1, 4), (5, 8)] {
            let t = at(&mut rng, h, window.0, window.1);
            plan = plan.with_migration_fault(t, 1 + (rng.next_u64() % 2) as u32);
        }
        let start = at(&mut rng, h, 2, 4);
        let end = start + Nanos::new(h / 6);
        plan = plan.with_tier_fault(TierId::FAST, TierFaultKind::Exhaust, start, Some(end));
        let off = at(&mut rng, h, 5, 6);
        let off_end = off + Nanos::new(h / 8);
        plan.with_tier_fault(TierId::FAST, TierFaultKind::Offline, off, Some(off_end))
    }
}

/// Runtime consumption state over a [`FaultPlan`]. Owned by the
/// [`crate::MemorySystem`] (next to the clock) when the `kfault`
/// feature is on; every query is answered from the plan plus the
/// current virtual time, so fault firing order is deterministic.
#[derive(Debug, Clone)]
pub struct FaultState {
    disk: Vec<DiskFault>,
    tiers: Vec<TierFault>,
    /// Whether each tier window already announced itself (one `fault`
    /// trace event per window, not one per rejected allocation).
    tier_announced: Vec<bool>,
    migrations: Vec<MigrationFault>,
    crash: Option<CrashPoint>,
}

impl FaultState {
    /// Builds consumption state; entries are sorted by arm time so
    /// faults fire in schedule order regardless of plan construction
    /// order.
    pub fn new(plan: FaultPlan) -> Self {
        let FaultPlan {
            mut disk,
            tiers,
            mut migrations,
            crash,
        } = plan;
        disk.sort_by_key(|f| f.at);
        migrations.sort_by_key(|f| f.at);
        let tier_announced = vec![false; tiers.len()];
        FaultState {
            disk,
            tiers,
            tier_announced,
            migrations,
            crash,
        }
    }

    /// Consumes one pending disk fault of class `op` armed at/before
    /// `now`. Returns whether the operation fails.
    pub fn take_disk(&mut self, op: DiskOp, now: Nanos) -> bool {
        for f in &mut self.disk {
            if f.at <= now && f.op == op && f.count > 0 {
                f.count -= 1;
                return true;
            }
        }
        false
    }

    /// The fault affecting `tier` at `now`, if any, plus whether this is
    /// the window's first application (for one-shot trace emission).
    pub fn tier_fault(&mut self, tier: TierId, now: Nanos) -> Option<(TierFaultKind, bool)> {
        for (i, w) in self.tiers.iter().enumerate() {
            let active = w.tier == tier && w.at <= now && w.until.is_none_or(|u| now < u);
            if active {
                let first = !self.tier_announced[i];
                self.tier_announced[i] = true;
                return Some((w.kind, first));
            }
        }
        None
    }

    /// Tiers with an active [`TierFaultKind::Offline`] window at `now`,
    /// in schedule order with duplicates removed. Read-only (does not
    /// mark windows announced); the drain path polls this each tick to
    /// discover tiers that need their resident frames migrated away.
    pub fn offline_tiers(&self, now: Nanos) -> Vec<TierId> {
        let mut out: Vec<TierId> = Vec::new();
        for w in &self.tiers {
            let active = w.kind == TierFaultKind::Offline
                && w.at <= now
                && w.until.is_none_or(|u| now < u);
            if active && !out.contains(&w.tier) {
                out.push(w.tier);
            }
        }
        out
    }

    /// Whether any tier fault window (exhaustion or offlining) is
    /// active at `now`. Read-only; QoS-aware reclaim and placement use
    /// this to decide when degradation ordering applies.
    pub fn tier_fault_active(&self, now: Nanos) -> bool {
        self.tiers
            .iter()
            .any(|w| w.at <= now && w.until.is_none_or(|u| now < u))
    }

    /// Consumes one pending migration fault armed at/before `now`.
    pub fn take_migration(&mut self, now: Nanos) -> bool {
        for f in &mut self.migrations {
            if f.at <= now && f.count > 0 {
                f.count -= 1;
                return true;
            }
        }
        false
    }

    /// Consumes a time-scheduled crash due at/before `now`.
    pub fn take_crash_at(&mut self, now: Nanos) -> bool {
        if let Some(CrashPoint::At(t)) = self.crash {
            if t <= now {
                self.crash = None;
                return true;
            }
        }
        false
    }

    /// Consumes a commit-scheduled crash targeting commit ordinal
    /// `index`, returning how many journal blocks survive (`0` =
    /// boundary crash, nothing of this commit is durable).
    pub fn take_crash_commit(&mut self, index: u64) -> Option<u32> {
        if let Some(CrashPoint::Commit {
            index: want,
            after_blocks,
        }) = self.crash
        {
            if want == index {
                self.crash = None;
                return Some(after_blocks);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut s = FaultState::new(FaultPlan::new());
        let t = Nanos::from_secs(1);
        assert!(!s.take_disk(DiskOp::Read, t));
        assert!(s.tier_fault(TierId::FAST, t).is_none());
        assert!(!s.take_migration(t));
        assert!(!s.take_crash_at(t));
        assert_eq!(s.take_crash_commit(0), None);
    }

    #[test]
    fn disk_faults_arm_at_time_and_drain_counts() {
        let plan = FaultPlan::new().with_disk_fault(Nanos::new(100), DiskOp::Write, 2);
        let mut s = FaultState::new(plan);
        assert!(!s.take_disk(DiskOp::Write, Nanos::new(99)), "not armed yet");
        assert!(!s.take_disk(DiskOp::Read, Nanos::new(200)), "wrong op");
        assert!(s.take_disk(DiskOp::Write, Nanos::new(100)));
        assert!(s.take_disk(DiskOp::Write, Nanos::new(101)));
        assert!(!s.take_disk(DiskOp::Write, Nanos::new(102)), "drained");
    }

    #[test]
    fn tier_windows_open_and_close() {
        let plan = FaultPlan::new().with_tier_fault(
            TierId::FAST,
            TierFaultKind::Exhaust,
            Nanos::new(10),
            Some(Nanos::new(20)),
        );
        let mut s = FaultState::new(plan);
        assert!(s.tier_fault(TierId::FAST, Nanos::new(9)).is_none());
        assert_eq!(
            s.tier_fault(TierId::FAST, Nanos::new(10)),
            Some((TierFaultKind::Exhaust, true)),
            "first application announces"
        );
        assert_eq!(
            s.tier_fault(TierId::FAST, Nanos::new(15)),
            Some((TierFaultKind::Exhaust, false))
        );
        assert!(s.tier_fault(TierId::SLOW, Nanos::new(15)).is_none());
        assert!(
            s.tier_fault(TierId::FAST, Nanos::new(20)).is_none(),
            "closed"
        );
    }

    #[test]
    fn offline_window_without_end_persists() {
        let plan = FaultPlan::new().with_tier_fault(
            TierId::SLOW,
            TierFaultKind::Offline,
            Nanos::ZERO,
            None,
        );
        let mut s = FaultState::new(plan);
        assert_eq!(
            s.tier_fault(TierId::SLOW, Nanos::from_secs(1000)),
            Some((TierFaultKind::Offline, true))
        );
    }

    #[test]
    fn offline_tiers_is_read_only_and_windowed() {
        let plan = FaultPlan::new()
            .with_tier_fault(
                TierId::FAST,
                TierFaultKind::Offline,
                Nanos::new(10),
                Some(Nanos::new(20)),
            )
            .with_tier_fault(TierId::SLOW, TierFaultKind::Exhaust, Nanos::ZERO, None);
        let mut s = FaultState::new(plan);
        assert!(s.offline_tiers(Nanos::new(5)).is_empty(), "not open yet");
        assert_eq!(s.offline_tiers(Nanos::new(10)), vec![TierId::FAST]);
        assert!(
            s.offline_tiers(Nanos::new(20)).is_empty(),
            "window closed (exhaust windows never drain)"
        );
        assert!(s.tier_fault_active(Nanos::new(5)), "exhaust window counts");
        // Read-only: polling must not consume the one-shot announce.
        assert_eq!(
            s.tier_fault(TierId::FAST, Nanos::new(12)),
            Some((TierFaultKind::Offline, true))
        );
    }

    #[test]
    fn crash_points_are_one_shot() {
        let mut s = FaultState::new(FaultPlan::new().with_crash(CrashPoint::At(Nanos::new(50))));
        assert!(!s.take_crash_at(Nanos::new(49)));
        assert!(s.take_crash_at(Nanos::new(50)));
        assert!(!s.take_crash_at(Nanos::new(51)), "consumed");

        let mut s = FaultState::new(FaultPlan::new().with_crash(CrashPoint::Commit {
            index: 3,
            after_blocks: 1,
        }));
        assert_eq!(s.take_crash_commit(2), None);
        assert_eq!(s.take_crash_commit(3), Some(1));
        assert_eq!(s.take_crash_commit(3), None, "consumed");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let h = Nanos::from_millis(10);
        let a = FaultPlan::seeded(42, h);
        let b = FaultPlan::seeded(42, h);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(43, h));
        assert_eq!(a.disk.len(), 6, "two faults per disk-op class");
        assert_eq!(a.migrations.len(), 2);
        assert_eq!(a.tiers.len(), 2, "one exhaust + one offline window");
        assert_eq!(a.tiers[0].kind, TierFaultKind::Exhaust);
        assert_eq!(a.tiers[1].kind, TierFaultKind::Offline);
        assert!(a.crash.is_none(), "seeded plans never crash");
        for f in &a.disk {
            assert!(f.count >= 1 && f.count <= 2, "recoverable within retries");
            assert!(f.at < h);
        }
    }
}
