//! # kloc-mem — tiered heterogeneous memory substrate
//!
//! This crate models the memory hardware underneath the KLOCs reproduction:
//! a set of memory *tiers* (fast DRAM, slow/throttled DRAM, persistent
//! memory, remote NUMA sockets), a table of 4 KB page *frames*, a virtual
//! nanosecond *clock*, and a *migration* engine with a calibrated cost
//! model.
//!
//! The paper (ASPLOS '21) evaluates KLOCs on two platforms:
//!
//! * a **two-tier** system — one socket's DRAM bandwidth-throttled to act
//!   as slow memory (fast tier: 8 GB @ 30 GB/s), and
//! * an **Intel Optane DC Memory Mode** system — per-socket DRAM acting as
//!   a hardware-managed L4 cache in front of persistent memory.
//!
//! Both are expressible with [`MemorySystem`] topology builders; see
//! [`MemorySystem::two_tier`] and [`MemorySystem::optane_memory_mode`].
//!
//! All timing in the simulation flows through this crate: each page or
//! object access is charged `latency + bytes / bandwidth` against the tier
//! it resides on, and migrations are charged a read + write + remap cost
//! (optionally divided by a parallel-copy factor, modeling Nimble's
//! parallelized page copies).
//!
//! ```
//! use kloc_mem::{MemorySystem, PageKind, TierId};
//!
//! # fn main() -> Result<(), kloc_mem::MemError> {
//! // 4 MB fast tier over an (effectively) unbounded slow tier, 1:8 bandwidth.
//! let mut mem = MemorySystem::two_tier(4 << 20, 8);
//! let frame = mem.allocate(TierId::FAST, PageKind::AppData)?;
//! mem.read(frame, 4096); // charges fast-tier latency + bandwidth
//! mem.migrate(frame, TierId::SLOW)?; // demote to slow memory
//! assert_eq!(mem.tier_of(frame), TierId::SLOW);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod allocator;
pub mod clock;
pub mod error;
pub mod fault;
pub mod frame;
pub mod frametable;
#[cfg(feature = "ksan")]
pub mod ksan;
pub mod l4cache;
pub mod migrate;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod system;
pub mod tenant;
pub mod tier;

pub use clock::{Clock, Nanos};
pub use error::MemError;
pub use fault::{CrashPoint, DiskOp, FaultPlan, TierFaultKind};
pub use frame::{FrameId, FrameSet, PageKind, PAGE_SIZE};
pub use frametable::{FrameMeta, FrameTable};
pub use migrate::{MigrationCost, MigrationStats};
pub use rng::SplitMix64;
pub use shard::{ShardConfig, ShardedFreeLists};
pub use stats::{MemStats, TierStats};
pub use system::{AccessOp, DrainStats, MemorySystem};
pub use tenant::TenantId;
pub use tier::{TierId, TierKind, TierSpec};
