//! Struct-of-arrays frame table with sharded free lists.
//!
//! Every simulated memory access looks up its frame record, which makes
//! the frame table the single hottest data structure in the simulator.
//! Earlier revisions stored a `Vec<Option<Frame>>` (array-of-structs);
//! this table splits the metadata into parallel dense columns keyed by
//! slot — identity, tier, kind, flags, migration count, access times and
//! counts each in their own `Vec` — so the access path touches only the
//! handful of bytes it reads and the whole table is half the footprint
//! (no `Option` discriminant, no padding to the widest field).
//!
//! [`FrameId`]s stay unique for the lifetime of the table: an id packs
//! `generation << 32 | slot`, and the generation increments each time a
//! slot is reused, so a stale id for a reused slot misses (the identity
//! column no longer matches). Free slots are reused through
//! [`ShardedFreeLists`], whose stamp ordering reproduces the exact
//! global LIFO of the old single free list at any shard count.

use crate::clock::Nanos;
use crate::frame::{Frame, FrameId, PageKind};
use crate::shard::{ShardConfig, ShardedFreeLists};
use crate::tenant::TenantId;
use crate::tier::TierId;

const SLOT_BITS: u32 = 32;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// Flag bit: frame is pinned (non-migratable).
const FLAG_PINNED: u8 = 1 << 0;

/// The subset of a frame record migration policies filter on. Returned
/// by [`FrameTable::meta`] so candidate walks read five columns instead
/// of materializing a full [`Frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Tier the frame resides on.
    pub tier: TierId,
    /// What the frame backs.
    pub kind: PageKind,
    /// Whether the frame is pinned (non-migratable).
    pub pinned: bool,
    /// Saturating migration count (paper §4.5 anti-ping-pong).
    pub migrations: u8,
    /// Time of the most recent access.
    pub last_access: Nanos,
}

/// O(1) slab of live frame records in struct-of-arrays layout, indexed
/// by [`FrameId`].
#[derive(Debug, Clone)]
pub struct FrameTable {
    /// Identity column: the live frame's full id, or the free sentinel
    /// (generation `u32::MAX`) when the slot is empty. Lookups compare
    /// against this to reject stale ids.
    ids: Vec<FrameId>,
    /// Tier residency column.
    tiers: Vec<TierId>,
    /// Page-kind column.
    kinds: Vec<PageKind>,
    /// Flag bits column ([`FLAG_PINNED`]).
    flags: Vec<u8>,
    /// Migration-count column (saturating 8-bit, paper §4.5).
    migrations: Vec<u8>,
    /// Allocation-time column (cold: read on free and in age reports).
    allocated_at: Vec<Nanos>,
    /// Last-access-time column.
    last_access: Vec<Nanos>,
    /// Access-count column.
    accesses: Vec<u64>,
    /// Owning-tenant column. Frames are born owned by
    /// [`TenantId::DEFAULT`]; the kernel restamps them when an
    /// allocation is attributable to a specific tenant.
    tenants: Vec<TenantId>,
    /// Generation of the *next* id handed out for each slot.
    generations: Vec<u32>,
    /// Free slots, allocated in exact global-LIFO order.
    free: ShardedFreeLists,
    live: usize,
}

impl Default for FrameTable {
    fn default() -> Self {
        FrameTable::new()
    }
}

impl FrameTable {
    /// Creates an empty table with the default shard config.
    pub fn new() -> Self {
        FrameTable::with_shards(ShardConfig::default())
    }

    /// Creates an empty table whose free lists use `cfg`.
    pub fn with_shards(cfg: ShardConfig) -> Self {
        FrameTable {
            ids: Vec::new(),
            tiers: Vec::new(),
            kinds: Vec::new(),
            flags: Vec::new(),
            migrations: Vec::new(),
            allocated_at: Vec::new(),
            last_access: Vec::new(),
            accesses: Vec::new(),
            tenants: Vec::new(),
            generations: Vec::new(),
            free: ShardedFreeLists::new(cfg),
            live: 0,
        }
    }

    /// Re-shards the free lists in place (observation-equivalent; see
    /// [`ShardedFreeLists::reshard`]).
    pub fn reshard(&mut self, cfg: ShardConfig) {
        self.free.reshard(cfg);
    }

    /// The free lists' current shard config.
    pub fn shard_config(&self) -> ShardConfig {
        self.free.config()
    }

    /// Number of live frames.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no frames are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Capacity in slots (live + free; high-water mark of concurrent
    /// liveness).
    pub fn slot_capacity(&self) -> usize {
        self.ids.len()
    }

    /// Reserves the id the next insertion will use, without inserting.
    /// The caller builds the [`Frame`] around the id and passes it to
    /// [`FrameTable::insert`].
    pub fn next_id(&self) -> FrameId {
        match self.free.peek() {
            Some(slot) => pack(self.generations[slot as usize], slot),
            None => {
                let slot = self.ids.len() as u32;
                pack(0, slot)
            }
        }
    }

    /// Inserts a frame built around [`FrameTable::next_id`] and returns
    /// its id.
    ///
    /// # Panics
    /// Panics if the frame's id is not the one `next_id` promised (an
    /// insert raced a second allocation, which a single-threaded
    /// simulation never does).
    pub fn insert(&mut self, frame: Frame) -> FrameId {
        let id = frame.id();
        assert_eq!(id, self.next_id(), "frame built for a stale id");
        let mut flags = 0u8;
        if frame.pinned() {
            flags |= FLAG_PINNED;
        }
        match self.free.pop() {
            Some(slot) => {
                let slot = slot as usize;
                debug_assert_eq!(self.ids[slot], free_sentinel(slot as u32));
                self.ids[slot] = id;
                self.tiers[slot] = frame.tier();
                self.kinds[slot] = frame.kind();
                self.flags[slot] = flags;
                self.migrations[slot] = frame.migrations();
                self.allocated_at[slot] = frame.allocated_at();
                self.last_access[slot] = frame.last_access();
                self.accesses[slot] = frame.accesses();
                self.tenants[slot] = TenantId::DEFAULT;
            }
            None => {
                self.ids.push(id);
                self.tiers.push(frame.tier());
                self.kinds.push(frame.kind());
                self.flags.push(flags);
                self.migrations.push(frame.migrations());
                self.allocated_at.push(frame.allocated_at());
                self.last_access.push(frame.last_access());
                self.accesses.push(frame.accesses());
                self.tenants.push(TenantId::DEFAULT);
                self.generations.push(1); // generation 0 handed out
            }
        }
        self.live += 1;
        id
    }

    /// Removes and returns the frame for `id`, recycling its slot.
    pub fn remove(&mut self, id: FrameId) -> Option<Frame> {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return None;
        }
        let frame = self.materialize(slot);
        self.ids[slot] = free_sentinel(slot as u32);
        // Wrapping like the original single-list table: after 2^32
        // reuses of one slot the generation would collide with the free
        // sentinel, which no simulation length approaches.
        self.generations[slot] = self.generations[slot].wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        Some(frame)
    }

    /// Looks up a frame, materializing the record from the columns.
    #[inline]
    pub fn get(&self, id: FrameId) -> Option<Frame> {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return None;
        }
        Some(self.materialize(slot))
    }

    /// Looks up just the columns migration policies filter on, without
    /// materializing a full [`Frame`] record. Policy candidate walks
    /// probe thousands of frames per tick and read only these fields.
    #[inline]
    pub fn meta(&self, id: FrameId) -> Option<FrameMeta> {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return None;
        }
        Some(FrameMeta {
            tier: self.tiers[slot],
            kind: self.kinds[slot],
            pinned: self.flags[slot] & FLAG_PINNED != 0,
            migrations: self.migrations[slot],
            last_access: self.last_access[slot],
        })
    }

    /// Looks up just the tier column; `None` for stale ids. The
    /// cheapest liveness-plus-residency probe — migration walks use it
    /// to reject frames already on the target tier before paying for
    /// the full [`FrameMeta`] read.
    #[inline]
    pub fn tier_of_live(&self, id: FrameId) -> Option<TierId> {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return None;
        }
        Some(self.tiers[slot])
    }

    /// Looks up just the owning-tenant column; `None` for stale ids.
    /// Budget checks and eviction attribution read only this field, so
    /// the probe stays a single column access.
    #[inline]
    pub fn tenant_of_live(&self, id: FrameId) -> Option<TenantId> {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return None;
        }
        Some(self.tenants[slot])
    }

    /// Restamps a live frame's owning tenant, returning the previous
    /// owner; `None` for stale ids.
    #[inline]
    pub fn set_tenant(&mut self, id: FrameId, tenant: TenantId) -> Option<TenantId> {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return None;
        }
        Some(std::mem::replace(&mut self.tenants[slot], tenant))
    }

    /// Looks up just the last-access column; `None` for stale ids.
    /// Recency-filtered walks (member-granular demotion) probe this
    /// first: most members of an active knode were touched recently, so
    /// the reject path reads one column.
    #[inline]
    pub fn last_access_of_live(&self, id: FrameId) -> Option<Nanos> {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return None;
        }
        Some(self.last_access[slot])
    }

    /// Records an access: bumps the access count and last-access time,
    /// returning the columns the cost model needs. This is the whole
    /// per-touch hot path — four column reads, two column writes.
    #[inline]
    pub fn touch(&mut self, id: FrameId, now: Nanos) -> Option<(TierId, PageKind)> {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return None;
        }
        self.last_access[slot] = now;
        self.accesses[slot] += 1;
        Some((self.tiers[slot], self.kinds[slot]))
    }

    /// Moves a live frame to `tier` and bumps its migration counter.
    /// Returns `false` for stale ids.
    #[inline]
    pub fn record_migration(&mut self, id: FrameId, tier: TierId) -> bool {
        let slot = slot_of(id);
        if self.ids.get(slot) != Some(&id) {
            return false;
        }
        self.tiers[slot] = tier;
        self.migrations[slot] = self.migrations[slot].saturating_add(1);
        true
    }

    /// Whether `id` names a live frame.
    #[inline]
    pub fn contains(&self, id: FrameId) -> bool {
        self.ids.get(slot_of(id)) == Some(&id)
    }

    /// Iterates live frames in slot order, materializing each record.
    pub fn iter(&self) -> impl Iterator<Item = Frame> + '_ {
        self.ids
            .iter()
            .enumerate()
            .filter(|(slot, id)| !is_free_sentinel(**id, *slot as u32))
            .map(|(slot, _)| self.materialize(slot))
    }

    #[inline]
    fn materialize(&self, slot: usize) -> Frame {
        Frame {
            id: self.ids[slot],
            tier: self.tiers[slot],
            kind: self.kinds[slot],
            pinned: self.flags[slot] & FLAG_PINNED != 0,
            allocated_at: self.allocated_at[slot],
            last_access: self.last_access[slot],
            accesses: self.accesses[slot],
            migrations: self.migrations[slot],
        }
    }
}

#[cfg(feature = "ksan")]
impl FrameTable {
    /// Cross-checks the table's internal invariants: every SoA column
    /// the same length, the live counter against the occupied slots, the
    /// sharded free lists against the empty slots (disjoint entries that
    /// partition the slot space with the live frames, local + pool
    /// occupancy summing to the global accounting, stamps ordered within
    /// each shard), and every identity entry against the slot holding
    /// it. Observation only.
    pub fn ksan_audit(&self, out: &mut Vec<crate::ksan::Violation>) {
        use crate::ksan::Violation;
        let slots = self.ids.len();
        let columns = [
            ("tiers", self.tiers.len()),
            ("kinds", self.kinds.len()),
            ("flags", self.flags.len()),
            ("migrations", self.migrations.len()),
            ("allocated_at", self.allocated_at.len()),
            ("last_access", self.last_access.len()),
            ("accesses", self.accesses.len()),
            ("tenants", self.tenants.len()),
            ("generations", self.generations.len()),
        ];
        for (name, len) in columns {
            if len != slots {
                out.push(Violation::new(
                    "FrameTable SoA columns",
                    format!("column {name}"),
                    "every metadata column is as long as the identity column",
                    format!("{slots} slots"),
                    format!("{len} entries"),
                ));
            }
        }
        let occupied = self
            .ids
            .iter()
            .enumerate()
            .filter(|(slot, id)| !is_free_sentinel(**id, *slot as u32))
            .count();
        if occupied != self.live {
            out.push(Violation::new(
                "FrameTable.live <-> FrameTable.ids",
                "frame table",
                "live counter equals the number of occupied slots",
                format!("{occupied} occupied slots"),
                format!("live = {}", self.live),
            ));
        }
        if self.free.len() + self.live != slots {
            out.push(Violation::new(
                "FrameTable.free <-> FrameTable.ids",
                "frame table",
                "free + live partition the slot space",
                format!("{slots} slots"),
                format!("{} free + {} live", self.free.len(), self.live),
            ));
        }
        let (local, pool) = self.free.occupancy();
        let held: usize = local.iter().sum::<usize>() + pool;
        if held != self.free.len() {
            out.push(Violation::new(
                "ShardedFreeLists occupancy",
                "free lists",
                "shard local + pool entry counts sum to the free total",
                format!("{} free", self.free.len()),
                format!("{} local + {pool} pool", local.iter().sum::<usize>()),
            ));
        }
        let mut seen = vec![false; slots];
        let mut last_stamp = vec![0u64; local.len()];
        for (shard, stamp, slot) in self.free.entries() {
            if let Some(shard) = shard {
                if stamp <= last_stamp[shard] {
                    out.push(Violation::new(
                        "ShardedFreeLists stamps",
                        format!("shard {shard}"),
                        "stamps strictly increase within a local list",
                        format!("> {}", last_stamp[shard]),
                        format!("{stamp}"),
                    ));
                }
                last_stamp[shard] = stamp;
            }
            match seen.get_mut(slot as usize) {
                Some(flag) if !*flag => *flag = true,
                Some(_) => out.push(Violation::new(
                    "ShardedFreeLists disjointness",
                    format!("slot {slot}"),
                    "a free slot appears in exactly one list",
                    "one entry".to_owned(),
                    "duplicate entries".to_owned(),
                )),
                None => out.push(Violation::new(
                    "ShardedFreeLists <-> FrameTable.ids",
                    format!("slot {slot}"),
                    "free-list entries name real slots",
                    format!("slot < {slots}"),
                    format!("slot {slot}"),
                )),
            }
            if self
                .ids
                .get(slot as usize)
                .is_some_and(|id| !is_free_sentinel(*id, slot))
            {
                out.push(Violation::new(
                    "ShardedFreeLists <-> FrameTable.ids",
                    format!("slot {slot}"),
                    "free-list entries name empty slots",
                    "free sentinel".to_owned(),
                    "occupied slot".to_owned(),
                ));
            }
        }
        for (i, id) in self.ids.iter().enumerate() {
            if is_free_sentinel(*id, i as u32) {
                continue;
            }
            if slot_of(*id) != i {
                out.push(Violation::new(
                    "FrameTable.ids <-> Frame.id",
                    format!("frame {id}"),
                    "a frame lives in the slot its id names",
                    format!("slot {}", slot_of(*id)),
                    format!("slot {i}"),
                ));
            }
        }
    }

    /// Corruption hook for sanitizer self-tests: skews the live counter.
    #[doc(hidden)]
    pub fn ksan_break_live_count(&mut self) {
        self.live += 1;
    }

    /// Corruption hook for sanitizer self-tests: duplicates a free-list
    /// entry across lists, breaking shard disjointness.
    #[doc(hidden)]
    pub fn ksan_break_shard_duplicate(&mut self) {
        self.free.ksan_break_duplicate();
    }

    /// Corruption hook for sanitizer self-tests: drops a free-list entry
    /// without fixing the accounting.
    #[doc(hidden)]
    pub fn ksan_break_shard_accounting(&mut self) {
        self.free.ksan_break_accounting();
    }

    /// Corruption hook for sanitizer self-tests: grows one SoA column
    /// out of step with the identity column.
    #[doc(hidden)]
    pub fn ksan_break_soa_column(&mut self) {
        self.accesses.push(0);
    }
}

#[inline]
fn slot_of(id: FrameId) -> usize {
    (id.0 & SLOT_MASK) as usize
}

#[inline]
fn pack(generation: u32, slot: u32) -> FrameId {
    FrameId((u64::from(generation) << SLOT_BITS) | u64::from(slot))
}

#[inline]
fn free_sentinel(slot: u32) -> FrameId {
    pack(u32::MAX, slot)
}

#[inline]
fn is_free_sentinel(id: FrameId, slot: u32) -> bool {
    id == free_sentinel(slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Nanos;
    use crate::frame::PageKind;
    use crate::tier::TierId;

    fn table_with(n: usize) -> (FrameTable, Vec<FrameId>) {
        let mut t = FrameTable::new();
        let ids = (0..n)
            .map(|_| {
                let id = t.next_id();
                t.insert(Frame::new(id, TierId::FAST, PageKind::AppData, Nanos::ZERO))
            })
            .collect();
        (t, ids)
    }

    #[test]
    fn first_generation_ids_are_sequential() {
        let (_, ids) = table_with(4);
        assert_eq!(ids, vec![FrameId(0), FrameId(1), FrameId(2), FrameId(3)]);
    }

    #[test]
    fn alloc_free_realloc_reuses_slot_with_fresh_id() {
        let (mut t, ids) = table_with(3);
        assert_eq!(t.len(), 3);
        let freed = t.remove(ids[1]).expect("live");
        assert_eq!(freed.id(), ids[1]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.slot_capacity(), 3);

        // Reuse occupies the freed slot but mints a distinct id.
        let id = t.next_id();
        let new = t.insert(Frame::new(id, TierId::SLOW, PageKind::Slab, Nanos::ZERO));
        assert_ne!(new, ids[1], "reused slot must not reuse the id");
        assert_eq!(new.0 & SLOT_MASK, ids[1].0 & SLOT_MASK, "slot is recycled");
        assert_eq!(t.slot_capacity(), 3, "no new slot grown");
        assert_eq!(t.len(), 3);

        // The stale id misses; the new id hits.
        assert!(t.get(ids[1]).is_none());
        assert!(!t.contains(ids[1]));
        assert_eq!(t.get(new).unwrap().kind(), PageKind::Slab);
        assert!(t.get(new).unwrap().pinned(), "slab page pinned via flags");
    }

    #[test]
    fn double_remove_is_none() {
        let (mut t, ids) = table_with(1);
        assert!(t.remove(ids[0]).is_some());
        assert!(t.remove(ids[0]).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn unknown_ids_miss() {
        let (t, _) = table_with(2);
        assert!(t.get(FrameId(99)).is_none());
        assert!(t.get(FrameId((1 << 32) | 5)).is_none());
    }

    #[test]
    fn iter_visits_each_live_frame_once() {
        let (mut t, ids) = table_with(5);
        t.remove(ids[0]).unwrap();
        t.remove(ids[3]).unwrap();
        let seen: Vec<FrameId> = t.iter().map(|f| f.id()).collect();
        assert_eq!(seen, vec![ids[1], ids[2], ids[4]]);
    }

    #[test]
    fn generations_advance_per_slot() {
        let mut t = FrameTable::new();
        let mut last = None;
        for _ in 0..4 {
            let id = t.next_id();
            t.insert(Frame::new(id, TierId::FAST, PageKind::AppData, Nanos::ZERO));
            t.remove(id).unwrap();
            if let Some(prev) = last {
                assert_ne!(prev, id);
            }
            assert_eq!(id.0 & SLOT_MASK, 0, "same slot recycled every time");
            last = Some(id);
        }
    }

    #[test]
    fn touch_updates_access_columns() {
        let (mut t, ids) = table_with(1);
        let got = t.touch(ids[0], Nanos::new(42)).expect("live");
        assert_eq!(got, (TierId::FAST, PageKind::AppData));
        t.touch(ids[0], Nanos::new(50)).unwrap();
        let f = t.get(ids[0]).unwrap();
        assert_eq!(f.accesses(), 2);
        assert_eq!(f.last_access(), Nanos::new(50));
        assert!(t.touch(FrameId(99), Nanos::ZERO).is_none());
    }

    #[test]
    fn record_migration_moves_tier_and_counts() {
        let (mut t, ids) = table_with(1);
        assert!(t.record_migration(ids[0], TierId::SLOW));
        let f = t.get(ids[0]).unwrap();
        assert_eq!(f.tier(), TierId::SLOW);
        assert_eq!(f.migrations(), 1);
        assert!(!t.record_migration(FrameId(99), TierId::FAST));
    }

    #[test]
    fn tenant_stamp_survives_until_slot_reuse() {
        let (mut t, ids) = table_with(2);
        assert_eq!(t.tenant_of_live(ids[0]), Some(TenantId::DEFAULT));
        assert_eq!(t.set_tenant(ids[0], TenantId(7)), Some(TenantId::DEFAULT));
        assert_eq!(t.tenant_of_live(ids[0]), Some(TenantId(7)));
        assert_eq!(t.tenant_of_live(ids[1]), Some(TenantId::DEFAULT));

        // Recycling the slot resets ownership to the default tenant.
        t.remove(ids[0]).unwrap();
        assert_eq!(t.tenant_of_live(ids[0]), None);
        assert_eq!(t.set_tenant(ids[0], TenantId(9)), None, "stale id misses");
        let id = t.next_id();
        t.insert(Frame::new(id, TierId::FAST, PageKind::AppData, Nanos::ZERO));
        assert_eq!(id.0 & SLOT_MASK, ids[0].0 & SLOT_MASK, "slot recycled");
        assert_eq!(t.tenant_of_live(id), Some(TenantId::DEFAULT));
    }

    #[test]
    fn alloc_order_is_identical_at_any_shard_count() {
        // The shard-count determinism oracle at frame-table granularity:
        // the id sequence under churn is byte-identical for any S.
        let run = |shards: u32| -> Vec<FrameId> {
            let mut t = FrameTable::with_shards(ShardConfig::with_shards(shards));
            let mut live: Vec<FrameId> = Vec::new();
            let mut minted = Vec::new();
            for round in 0u64..120 {
                for _ in 0..(round % 5) + 1 {
                    let id = t.next_id();
                    t.insert(Frame::new(id, TierId::FAST, PageKind::AppData, Nanos::ZERO));
                    live.push(id);
                    minted.push(id);
                }
                // Deterministic churn: free from the middle.
                for _ in 0..(round % 3) {
                    if live.len() > 2 {
                        let id = live.remove(live.len() / 2);
                        t.remove(id).unwrap();
                    }
                }
            }
            minted
        };
        let baseline = run(1);
        for shards in [2, 4, 8] {
            assert_eq!(run(shards), baseline, "shards={shards}");
        }
    }
}
