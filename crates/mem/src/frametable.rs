//! Slab-backed frame table.
//!
//! Every simulated memory access looks up its [`Frame`] record, which
//! makes the frame table the single hottest data structure in the
//! simulator. A `HashMap<FrameId, Frame>` pays a hash + probe on that
//! path; this table instead stores frames in a `Vec` of slots indexed
//! directly by the low bits of the [`FrameId`], with a free-list for slot
//! reuse — O(1) lookup with no hashing, and allocation is a free-list pop.
//!
//! [`FrameId`]s stay unique for the lifetime of the table: an id packs
//! `generation << 32 | slot`, and the generation increments each time a
//! slot is reused, so a stale id for a reused slot misses (the stored
//! frame's own id no longer matches).

use crate::frame::{Frame, FrameId};

const SLOT_BITS: u32 = 32;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// O(1) slab of live [`Frame`] records, indexed by [`FrameId`].
#[derive(Debug, Default, Clone)]
pub struct FrameTable {
    /// Slot storage; `None` marks a free slot.
    slots: Vec<Option<Frame>>,
    /// Generation of the *next* id handed out for each slot.
    generations: Vec<u32>,
    /// Free slot indices, reused LIFO.
    free: Vec<u32>,
    live: usize,
}

impl FrameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FrameTable::default()
    }

    /// Number of live frames.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no frames are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Capacity in slots (live + free; high-water mark of concurrent
    /// liveness).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Reserves the id the next insertion will use, without inserting.
    /// The caller builds the [`Frame`] around the id and passes it to
    /// [`FrameTable::insert`].
    pub fn next_id(&self) -> FrameId {
        match self.free.last() {
            Some(&slot) => pack(self.generations[slot as usize], slot),
            None => {
                let slot = self.slots.len() as u32;
                pack(0, slot)
            }
        }
    }

    /// Inserts a frame built around [`FrameTable::next_id`] and returns
    /// its id.
    ///
    /// # Panics
    /// Panics if the frame's id is not the one `next_id` promised (an
    /// insert raced a second allocation, which a single-threaded
    /// simulation never does).
    pub fn insert(&mut self, frame: Frame) -> FrameId {
        let id = frame.id();
        assert_eq!(id, self.next_id(), "frame built for a stale id");
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(frame);
            }
            None => {
                self.slots.push(Some(frame));
                self.generations.push(1); // generation 0 handed out
            }
        }
        self.live += 1;
        id
    }

    /// Removes and returns the frame for `id`, recycling its slot.
    pub fn remove(&mut self, id: FrameId) -> Option<Frame> {
        let slot = slot_of(id);
        let entry = self.slots.get_mut(slot)?;
        if entry.as_ref().map(Frame::id) != Some(id) {
            return None;
        }
        let frame = entry.take();
        self.generations[slot] = self.generations[slot].wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        frame
    }

    /// Looks up a frame.
    #[inline]
    pub fn get(&self, id: FrameId) -> Option<&Frame> {
        self.slots
            .get(slot_of(id))?
            .as_ref()
            .filter(|f| f.id() == id)
    }

    /// Looks up a frame mutably.
    #[inline]
    pub fn get_mut(&mut self, id: FrameId) -> Option<&mut Frame> {
        self.slots
            .get_mut(slot_of(id))?
            .as_mut()
            .filter(|f| f.id() == id)
    }

    /// Whether `id` names a live frame.
    #[inline]
    pub fn contains(&self, id: FrameId) -> bool {
        self.get(id).is_some()
    }

    /// Iterates live frames in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &Frame> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

#[cfg(feature = "ksan")]
impl FrameTable {
    /// Cross-checks the table's internal invariants: the live counter
    /// against the occupied slots, the free list against the empty
    /// slots, and every stored frame's id against the slot holding it.
    /// Promotes the ad-hoc `debug_assert!`s on the insert/release paths
    /// into one auditable report. Observation only.
    pub fn ksan_audit(&self, out: &mut Vec<crate::ksan::Violation>) {
        use crate::ksan::Violation;
        let occupied = self.slots.iter().filter(|s| s.is_some()).count();
        if occupied != self.live {
            out.push(Violation::new(
                "FrameTable.live <-> FrameTable.slots",
                "frame table",
                "live counter equals the number of occupied slots",
                format!("{occupied} occupied slots"),
                format!("live = {}", self.live),
            ));
        }
        if self.generations.len() != self.slots.len() {
            out.push(Violation::new(
                "FrameTable.generations <-> FrameTable.slots",
                "frame table",
                "one generation counter per slot",
                format!("{} slots", self.slots.len()),
                format!("{} generations", self.generations.len()),
            ));
        }
        if self.free.len() + self.live != self.slots.len() {
            out.push(Violation::new(
                "FrameTable.free <-> FrameTable.slots",
                "frame table",
                "free + live partition the slot space",
                format!("{} slots", self.slots.len()),
                format!("{} free + {} live", self.free.len(), self.live),
            ));
        }
        for &slot in &self.free {
            if self
                .slots
                .get(slot as usize)
                .is_none_or(|entry| entry.is_some())
            {
                out.push(Violation::new(
                    "FrameTable.free <-> FrameTable.slots",
                    format!("slot {slot}"),
                    "free-list entries name empty slots",
                    "empty slot".to_owned(),
                    "occupied or out of range".to_owned(),
                ));
            }
        }
        for (i, frame) in self.slots.iter().enumerate() {
            let Some(f) = frame else { continue };
            if slot_of(f.id()) != i {
                out.push(Violation::new(
                    "FrameTable.slots <-> Frame.id",
                    format!("frame {}", f.id()),
                    "a frame lives in the slot its id names",
                    format!("slot {}", slot_of(f.id())),
                    format!("slot {i}"),
                ));
            }
        }
    }

    /// Corruption hook for sanitizer self-tests: skews the live counter.
    #[doc(hidden)]
    pub fn ksan_break_live_count(&mut self) {
        self.live += 1;
    }
}

#[inline]
fn slot_of(id: FrameId) -> usize {
    (id.0 & SLOT_MASK) as usize
}

#[inline]
fn pack(generation: u32, slot: u32) -> FrameId {
    FrameId((u64::from(generation) << SLOT_BITS) | u64::from(slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Nanos;
    use crate::frame::PageKind;
    use crate::tier::TierId;

    fn table_with(n: usize) -> (FrameTable, Vec<FrameId>) {
        let mut t = FrameTable::new();
        let ids = (0..n)
            .map(|_| {
                let id = t.next_id();
                t.insert(Frame::new(id, TierId::FAST, PageKind::AppData, Nanos::ZERO))
            })
            .collect();
        (t, ids)
    }

    #[test]
    fn first_generation_ids_are_sequential() {
        let (_, ids) = table_with(4);
        assert_eq!(ids, vec![FrameId(0), FrameId(1), FrameId(2), FrameId(3)]);
    }

    #[test]
    fn alloc_free_realloc_reuses_slot_with_fresh_id() {
        let (mut t, ids) = table_with(3);
        assert_eq!(t.len(), 3);
        let freed = t.remove(ids[1]).expect("live");
        assert_eq!(freed.id(), ids[1]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.slot_capacity(), 3);

        // Reuse occupies the freed slot but mints a distinct id.
        let id = t.next_id();
        let new = t.insert(Frame::new(id, TierId::SLOW, PageKind::Slab, Nanos::ZERO));
        assert_ne!(new, ids[1], "reused slot must not reuse the id");
        assert_eq!(new.0 & SLOT_MASK, ids[1].0 & SLOT_MASK, "slot is recycled");
        assert_eq!(t.slot_capacity(), 3, "no new slot grown");
        assert_eq!(t.len(), 3);

        // The stale id misses; the new id hits.
        assert!(t.get(ids[1]).is_none());
        assert!(!t.contains(ids[1]));
        assert_eq!(t.get(new).unwrap().kind(), PageKind::Slab);
    }

    #[test]
    fn double_remove_is_none() {
        let (mut t, ids) = table_with(1);
        assert!(t.remove(ids[0]).is_some());
        assert!(t.remove(ids[0]).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn unknown_ids_miss() {
        let (t, _) = table_with(2);
        assert!(t.get(FrameId(99)).is_none());
        assert!(t.get(FrameId((1 << 32) | 5)).is_none());
    }

    #[test]
    fn iter_visits_each_live_frame_once() {
        let (mut t, ids) = table_with(5);
        t.remove(ids[0]).unwrap();
        t.remove(ids[3]).unwrap();
        let seen: Vec<FrameId> = t.iter().map(Frame::id).collect();
        assert_eq!(seen, vec![ids[1], ids[2], ids[4]]);
    }

    #[test]
    fn generations_advance_per_slot() {
        let mut t = FrameTable::new();
        let mut last = None;
        for _ in 0..4 {
            let id = t.next_id();
            t.insert(Frame::new(id, TierId::FAST, PageKind::AppData, Nanos::ZERO));
            t.remove(id).unwrap();
            if let Some(prev) = last {
                assert_ne!(prev, id);
            }
            assert_eq!(id.0 & SLOT_MASK, 0, "same slot recycled every time");
            last = Some(id);
        }
    }

    #[test]
    fn get_mut_updates_in_place() {
        let (mut t, ids) = table_with(1);
        t.get_mut(ids[0]).unwrap().accesses = 7;
        assert_eq!(t.get(ids[0]).unwrap().accesses(), 7);
    }
}
