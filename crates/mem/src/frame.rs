//! Page frames.
//!
//! The substrate hands out 4 KB page frames identified by [`FrameId`].
//! Frames are tagged with a [`PageKind`] (what class of data lives on
//! them — this is what the motivation study in paper Fig. 2 breaks down)
//! plus bookkeeping used by tiering policies: allocation time, last access
//! time, access counts, an 8-bit migration counter (the paper uses one to
//! suppress migration ping-pong, §4.5), and a pinned flag for
//! non-relocatable memory (slab pages).

use std::fmt;

use crate::clock::Nanos;
use crate::tier::TierId;

/// Size of one page frame in bytes. The paper (and Linux) manage kernel
/// objects almost exclusively in 4 KB pages (§5).
pub const PAGE_SIZE: u64 = 4096;

/// Identifier of an allocated page frame. Ids are unique for the lifetime
/// of a [`crate::MemorySystem`] and never reused: the value packs
/// `generation << 32 | slot` of the backing [`crate::FrameTable`], so a
/// recycled slot mints a fresh id and stale ids miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrameId(pub u64);

impl FrameId {
    /// The frame table slot (low id bits). Slots are *dense* — the table
    /// hands them out sequentially and recycles freed ones — so they suit
    /// direct-mapped side tables, unlike the full id (whose generation
    /// bits make the value space sparse). A slot alone does not identify
    /// a frame across time: compare the full id to reject stale entries.
    pub fn slot(self) -> u32 {
        // Slot extraction is the point here: the low 32 bits *are* the
        // slot, the high bits the generation. lint: truncation-ok
        self.0 as u32
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame{}", self.0)
    }
}

/// A set of live frames, direct-mapped by [`FrameId::slot`].
///
/// The frame table keeps slots dense and guarantees at most one live
/// frame per slot, so membership is one array read against the stored
/// full id (stale generations miss automatically) — no hashing. This is
/// the side-table shape the hot paths want for per-frame flags like
/// "brought in by readahead".
///
/// ```
/// use kloc_mem::{FrameId, FrameSet};
/// let mut s = FrameSet::new();
/// assert!(s.insert(FrameId(7)));
/// assert!(s.contains(FrameId(7)));
/// // Same slot, newer generation: a different frame.
/// assert!(!s.contains(FrameId(1 << 32 | 7)));
/// assert!(s.remove(FrameId(7)));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameSet {
    /// Full frame id per slot, `EMPTY` when vacant.
    slots: Vec<u64>,
    len: usize,
}

impl FrameSet {
    /// Vacant-slot sentinel: a real id would need generation `u32::MAX`
    /// *and* slot `u32::MAX`, beyond any simulated allocation count.
    const EMPTY: u64 = u64::MAX;

    /// Creates an empty set.
    pub fn new() -> Self {
        FrameSet::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `frame` is a member.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.slots.get(frame.slot() as usize) == Some(&frame.0)
    }

    /// Adds `frame`; returns whether it was newly inserted. Replaces a
    /// stale generation occupying the same slot (that frame is gone).
    pub fn insert(&mut self, frame: FrameId) -> bool {
        let slot = frame.slot() as usize;
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, Self::EMPTY);
        }
        let prev = std::mem::replace(&mut self.slots[slot], frame.0);
        if prev == frame.0 {
            return false;
        }
        if prev == Self::EMPTY {
            self.len += 1;
        }
        true
    }

    /// Removes `frame`; returns whether it was a member.
    pub fn remove(&mut self, frame: FrameId) -> bool {
        match self.slots.get_mut(frame.slot() as usize) {
            Some(s) if *s == frame.0 => {
                *s = Self::EMPTY;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }
}

/// What class of data occupies a frame.
///
/// This is the granularity at which the paper's motivation study
/// (Fig. 2a/2b) separates memory footprint, and the granularity at which
/// placement policies decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum PageKind {
    /// Anonymous application data (heap, stacks).
    AppData,
    /// Anonymous application data backed by transparent huge pages
    /// (paper §5's multi-page-size discussion): cheaper per-access TLB
    /// cost, coarser (costlier) migration granularity.
    AppHuge,
    /// File page-cache page (buffer cache).
    PageCache,
    /// A slab page holding small kernel objects (non-relocatable).
    Slab,
    /// A page in the KLOC relocatable-allocation region (paper §4.4's new
    /// VMA-backed allocation interface for kernel objects).
    KernelVma,
    /// Kernel page allocated via vmalloc (relocatable, virtually mapped).
    Vmalloc,
    /// Network driver receive-ring buffer page.
    RxRing,
}

impl PageKind {
    /// Whether pages of this kind can be migrated between tiers.
    ///
    /// Slab pages are referenced by physical address and are not
    /// relocatable (paper §3.3); everything else is.
    pub fn relocatable(self) -> bool {
        !matches!(self, PageKind::Slab | PageKind::RxRing)
    }

    /// Whether this kind counts as a kernel object page (vs application).
    pub fn is_kernel(self) -> bool {
        !matches!(self, PageKind::AppData | PageKind::AppHuge)
    }

    /// All page kinds, for iteration in reports.
    pub const ALL: [PageKind; 7] = [
        PageKind::AppData,
        PageKind::AppHuge,
        PageKind::PageCache,
        PageKind::Slab,
        PageKind::KernelVma,
        PageKind::Vmalloc,
        PageKind::RxRing,
    ];
}

impl fmt::Display for PageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageKind::AppData => "app",
            PageKind::AppHuge => "app-huge",
            PageKind::PageCache => "page-cache",
            PageKind::Slab => "slab",
            PageKind::KernelVma => "kernel-vma",
            PageKind::Vmalloc => "vmalloc",
            PageKind::RxRing => "rx-ring",
        };
        f.write_str(s)
    }
}

/// Bookkeeping record for one allocated frame.
///
/// Stored column-wise in the [`crate::FrameTable`] (struct-of-arrays);
/// lookups materialize this view by value, so it is `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frame {
    pub(crate) id: FrameId,
    pub(crate) tier: TierId,
    pub(crate) kind: PageKind,
    pub(crate) pinned: bool,
    pub(crate) allocated_at: Nanos,
    pub(crate) last_access: Nanos,
    pub(crate) accesses: u64,
    /// 8-bit migration counter (paper §4.5: used to retain ping-ponging
    /// pages in fast memory).
    pub(crate) migrations: u8,
}

impl Frame {
    pub(crate) fn new(id: FrameId, tier: TierId, kind: PageKind, now: Nanos) -> Self {
        Frame {
            id,
            tier,
            kind,
            pinned: !kind.relocatable(),
            allocated_at: now,
            last_access: now,
            accesses: 0,
            migrations: 0,
        }
    }

    /// Frame id.
    pub fn id(&self) -> FrameId {
        self.id
    }

    /// Tier the frame currently resides on.
    pub fn tier(&self) -> TierId {
        self.tier
    }

    /// Data class on this frame.
    pub fn kind(&self) -> PageKind {
        self.kind
    }

    /// Whether the frame is pinned (non-migratable).
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// Virtual time of allocation.
    pub fn allocated_at(&self) -> Nanos {
        self.allocated_at
    }

    /// Virtual time of most recent access.
    pub fn last_access(&self) -> Nanos {
        self.last_access
    }

    /// Total accesses charged to this frame.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of times this frame has migrated (saturating 8-bit counter).
    pub fn migrations(&self) -> u8 {
        self.migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_pages_are_pinned_and_kernel() {
        let f = Frame::new(FrameId(1), TierId::FAST, PageKind::Slab, Nanos::ZERO);
        assert!(f.pinned());
        assert!(f.kind().is_kernel());
        assert!(!PageKind::Slab.relocatable());
    }

    #[test]
    fn app_pages_are_relocatable_and_not_kernel() {
        assert!(PageKind::AppData.relocatable());
        assert!(!PageKind::AppData.is_kernel());
    }

    #[test]
    fn kernel_vma_pages_are_relocatable_kernel_pages() {
        // This is the crux of the paper's new allocation interface: kernel
        // objects that would be slab-allocated become migratable.
        assert!(PageKind::KernelVma.relocatable());
        assert!(PageKind::KernelVma.is_kernel());
    }

    #[test]
    fn all_kinds_listed_once() {
        let mut kinds = PageKind::ALL.to_vec();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), PageKind::ALL.len());
    }

    #[test]
    fn display_names() {
        assert_eq!(PageKind::PageCache.to_string(), "page-cache");
        assert_eq!(FrameId(3).to_string(), "frame3");
    }

    #[test]
    fn frame_set_tracks_membership_by_full_id() {
        let mut s = FrameSet::new();
        assert!(!s.remove(FrameId(3)), "empty set has no members");
        assert!(s.insert(FrameId(3)));
        assert!(!s.insert(FrameId(3)), "double insert is a no-op");
        assert_eq!(s.len(), 1);
        // A recycled slot (new generation) is a distinct frame.
        let recycled = FrameId(1 << 32 | 3);
        assert!(!s.contains(recycled));
        assert!(!s.remove(recycled));
        // Inserting the recycled id displaces the stale entry in place.
        assert!(s.insert(recycled));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(FrameId(3)));
        assert!(s.remove(recycled));
        assert!(s.is_empty());
    }
}
