//! Sharded free-frame lists with a global overflow pool.
//!
//! The frame table used to keep one global LIFO free list. This module
//! splits it into `S` per-shard local lists (shard = slot mod S, the
//! freeing context's home shard) that evict their oldest entries to a
//! shared pool past a threshold and repopulate from it when they run
//! dry — the local/partial/empty block-list design of per-CPU kernel
//! allocators, with the thresholds exposed in [`ShardConfig`].
//!
//! Determinism contract: every freed slot is tagged with a globally
//! monotonic *stamp* (a free-operation counter), and allocation always
//! pops the **maximum-stamp** entry across all local lists and the pool.
//! The maximum stamp is by construction the most recently freed slot, so
//! the allocation order is exactly the single global LIFO the unsharded
//! table produced — reports are byte-identical at any shard count, which
//! is what the shard-determinism tests pin down.

/// Sizing knobs for the sharded free lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards; rounded up to a power of two, minimum 1.
    pub shards: u32,
    /// A local list longer than this evicts its oldest entries to the
    /// global pool.
    pub local_max: usize,
    /// How many (newest) entries a local list keeps after an eviction.
    pub local_keep: usize,
    /// How many entries an empty local list pulls back from the pool.
    pub repopulate: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            local_max: 64,
            local_keep: 16,
            repopulate: 16,
        }
    }
}

impl ShardConfig {
    /// Config with `shards` shards and default thresholds.
    pub fn with_shards(shards: u32) -> Self {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }

    fn shard_count(&self) -> usize {
        (self.shards.max(1) as usize).next_power_of_two()
    }
}

/// One free-list entry: the stamp orders frees globally, the slot is the
/// freed frame-table slot.
type Entry = (u64, u32);

/// Per-shard free-slot lists + global pool, allocation ordered by stamp.
#[derive(Debug, Clone)]
pub struct ShardedFreeLists {
    cfg: ShardConfig,
    /// Mask for the home-shard mapping (`slot & mask`).
    mask: u32,
    /// Global free-operation counter; strictly increasing, never reused.
    stamp: u64,
    /// Per-shard stacks, stamp-ascending (top of stack = newest).
    local: Vec<Vec<Entry>>,
    /// Overflow pool of evicted entries, max-heap by stamp.
    pool: std::collections::BinaryHeap<Entry>,
    len: usize,
}

impl Default for ShardedFreeLists {
    fn default() -> Self {
        ShardedFreeLists::new(ShardConfig::default())
    }
}

impl ShardedFreeLists {
    /// Empty lists with the given config.
    pub fn new(cfg: ShardConfig) -> Self {
        let shards = cfg.shard_count();
        ShardedFreeLists {
            cfg,
            mask: shards as u32 - 1,
            stamp: 0,
            local: vec![Vec::new(); shards],
            pool: std::collections::BinaryHeap::new(),
            len: 0,
        }
    }

    /// Total free entries across all lists and the pool.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are free.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.local.len()
    }

    /// Current config.
    pub fn config(&self) -> ShardConfig {
        self.cfg
    }

    /// Re-shards in place: replays every held entry, oldest first,
    /// through the new config's push path so thresholds apply as if the
    /// entries had been freed under it. Stamps are preserved, so the
    /// allocation order (max stamp first) is unchanged — resharding is
    /// observation-equivalent, merely relocating entries between lists.
    pub fn reshard(&mut self, cfg: ShardConfig) {
        let mut entries: Vec<Entry> = self.drain_all();
        entries.sort_unstable();
        let next_stamp = self.stamp;
        *self = ShardedFreeLists::new(cfg);
        for (stamp, slot) in entries {
            self.push_stamped(stamp, slot);
        }
        self.stamp = self.stamp.max(next_stamp);
    }

    fn drain_all(&mut self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.len);
        for list in &mut self.local {
            out.append(list);
        }
        out.extend(self.pool.drain());
        self.len = 0;
        out
    }

    /// Frees `slot`: stamps it and pushes it onto its home shard's local
    /// list, evicting the oldest local entries to the pool past
    /// `local_max`.
    pub fn push(&mut self, slot: u32) {
        let stamp = self.stamp + 1;
        self.push_stamped(stamp, slot);
    }

    fn push_stamped(&mut self, stamp: u64, slot: u32) {
        debug_assert!(stamp > self.stamp, "stamps are strictly increasing");
        self.stamp = stamp;
        let shard = (slot & self.mask) as usize;
        let list = &mut self.local[shard];
        list.push((stamp, slot));
        if list.len() > self.cfg.local_max {
            let keep = self.cfg.local_keep.min(self.cfg.local_max);
            let evict = list.len() - keep;
            self.pool.extend(list.drain(..evict));
        }
        self.len += 1;
    }

    /// The slot the next [`ShardedFreeLists::pop`] will return: the
    /// globally newest (maximum-stamp) free entry.
    pub fn peek(&self) -> Option<u32> {
        self.peek_entry().map(|(_, slot)| slot)
    }

    fn peek_entry(&self) -> Option<Entry> {
        let mut best: Option<Entry> = self.pool.peek().copied();
        for list in &self.local {
            if let Some(&top) = list.last() {
                if best.is_none_or(|b| top > b) {
                    best = Some(top);
                }
            }
        }
        best
    }

    /// Pops the globally newest free slot (exact LIFO over all frees).
    /// When the winner comes from the pool and its home shard's local
    /// list is empty, the shard repopulates with the pool's newest
    /// entries.
    pub fn pop(&mut self) -> Option<u32> {
        let best = self.peek_entry()?;
        let shard = (best.1 & self.mask) as usize;
        let from_local = self.local.iter().position(|l| l.last() == Some(&best));
        match from_local {
            Some(s) => {
                self.local[s].pop();
            }
            None => {
                self.pool.pop();
                if self.local[shard].is_empty() && !self.pool.is_empty() {
                    let take = self.cfg.repopulate.min(self.pool.len());
                    let mut grabbed: Vec<Entry> =
                        (0..take).filter_map(|_| self.pool.pop()).collect();
                    // Heap pops newest-first; local stacks store
                    // stamp-ascending.
                    grabbed.reverse();
                    self.local[shard] = grabbed;
                }
            }
        }
        self.len -= 1;
        Some(best.1)
    }

    /// Per-shard local list lengths plus the pool length, for accounting
    /// audits.
    pub fn occupancy(&self) -> (Vec<usize>, usize) {
        (self.local.iter().map(Vec::len).collect(), self.pool.len())
    }

    /// All free slots, for audits: (shard index or None for pool, stamp,
    /// slot).
    pub fn entries(&self) -> impl Iterator<Item = (Option<usize>, u64, u32)> + '_ {
        self.local
            .iter()
            .enumerate()
            .flat_map(|(s, list)| list.iter().map(move |&(st, sl)| (Some(s), st, sl)))
            .chain(self.pool.iter().map(|&(st, sl)| (None, st, sl)))
    }
}

#[cfg(feature = "ksan")]
impl ShardedFreeLists {
    /// Corruption hook for sanitizer self-tests: duplicates the newest
    /// free entry into a second list, breaking shard disjointness.
    #[doc(hidden)]
    pub fn ksan_break_duplicate(&mut self) {
        if let Some(entry) = self.peek_entry() {
            self.pool.push(entry);
        }
    }

    /// Corruption hook for sanitizer self-tests: skews the shard
    /// accounting by dropping an entry without decrementing `len`.
    #[doc(hidden)]
    pub fn ksan_break_accounting(&mut self) {
        for list in &mut self.local {
            if list.pop().is_some() {
                return;
            }
        }
        self.pool.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: one global LIFO stack.
    #[derive(Default)]
    struct GlobalLifo(Vec<u32>);

    impl GlobalLifo {
        fn push(&mut self, slot: u32) {
            self.0.push(slot);
        }
        fn pop(&mut self) -> Option<u32> {
            self.0.pop()
        }
    }

    #[test]
    fn matches_global_lifo_for_any_shard_count() {
        for shards in [1u32, 2, 4, 8] {
            let cfg = ShardConfig {
                shards,
                local_max: 4,
                local_keep: 2,
                repopulate: 2,
            };
            let mut sharded = ShardedFreeLists::new(cfg);
            let mut model = GlobalLifo::default();
            // Deterministic interleaving of pushes and pops exercising
            // eviction + repopulation.
            let mut next_slot = 0u32;
            let mut step = 0u64;
            for round in 0..200 {
                let pushes = (round % 7) + 1;
                for _ in 0..pushes {
                    sharded.push(next_slot);
                    model.push(next_slot);
                    next_slot += 1;
                    step += 1;
                }
                let pops = (step % 5) as usize;
                for _ in 0..pops {
                    assert_eq!(sharded.pop(), model.pop(), "shards={shards}");
                }
                assert_eq!(sharded.peek(), model.0.last().copied());
            }
            while let Some(slot) = model.pop() {
                assert_eq!(sharded.pop(), Some(slot));
            }
            assert!(sharded.is_empty());
            assert_eq!(sharded.pop(), None);
        }
    }

    #[test]
    fn eviction_moves_oldest_to_pool() {
        let cfg = ShardConfig {
            shards: 1,
            local_max: 3,
            local_keep: 1,
            repopulate: 2,
        };
        let mut f = ShardedFreeLists::new(cfg);
        for slot in 0..4 {
            f.push(slot);
        }
        let (local, pool) = f.occupancy();
        assert_eq!(local, vec![1], "keeps only local_keep newest");
        assert_eq!(pool, 3);
        // Pops still come newest-first across both.
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(2));
    }

    #[test]
    fn repopulation_refills_empty_shard() {
        let cfg = ShardConfig {
            shards: 1,
            local_max: 2,
            local_keep: 0,
            repopulate: 2,
        };
        let mut f = ShardedFreeLists::new(cfg);
        for slot in 0..5 {
            f.push(slot);
        }
        // local_keep=0: every eviction empties the local list.
        assert_eq!(f.pop(), Some(4));
        let (local, _) = f.occupancy();
        assert!(
            local[0] > 0,
            "pool pop repopulates the empty shard: {local:?}"
        );
        assert_eq!(f.pop(), Some(3));
    }

    #[test]
    fn reshard_preserves_order() {
        let mut f = ShardedFreeLists::new(ShardConfig::with_shards(1));
        for slot in 0..20 {
            f.push(slot);
        }
        for _ in 0..5 {
            f.pop();
        }
        let mut widened = f.clone();
        widened.reshard(ShardConfig::with_shards(8));
        assert_eq!(widened.len(), f.len());
        loop {
            let (a, b) = (f.pop(), widened.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(
            ShardedFreeLists::new(ShardConfig::with_shards(3)).shards(),
            4
        );
        assert_eq!(
            ShardedFreeLists::new(ShardConfig::with_shards(0)).shards(),
            1
        );
    }
}
