//! Per-tier frame capacity accounting.
//!
//! [`TierAllocator`] tracks how many frames of a tier's capacity are in
//! use and enforces the capacity limit. The actual frame records live in
//! the [`crate::MemorySystem`] frame table; this type only answers "is
//! there room" and keeps watermark statistics used by policies (e.g. the
//! Naive policy spills to slow memory exactly when the fast tier's
//! allocator reports it is full).

use crate::error::MemError;
use crate::tier::{TierId, TierSpec};

/// Capacity accountant for one tier.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TierAllocator {
    id: TierId,
    spec: TierSpec,
    used_frames: u64,
    peak_frames: u64,
}

impl TierAllocator {
    /// Creates an allocator for `id` described by `spec`.
    pub fn new(id: TierId, spec: TierSpec) -> Self {
        TierAllocator {
            id,
            spec,
            used_frames: 0,
            peak_frames: 0,
        }
    }

    /// The tier this allocator manages.
    pub fn id(&self) -> TierId {
        self.id
    }

    /// The hardware description of this tier.
    pub fn spec(&self) -> &TierSpec {
        &self.spec
    }

    /// Frames currently in use.
    pub fn used_frames(&self) -> u64 {
        self.used_frames
    }

    /// High-water mark of frames in use.
    pub fn peak_frames(&self) -> u64 {
        self.peak_frames
    }

    /// Total frame capacity (`u64::MAX` when unbounded).
    pub fn frame_capacity(&self) -> u64 {
        self.spec.frame_capacity()
    }

    /// Frames still available.
    pub fn free_frames(&self) -> u64 {
        self.frame_capacity().saturating_sub(self.used_frames)
    }

    /// Whether at least `frames` more frames fit.
    pub fn has_room(&self, frames: u64) -> bool {
        self.free_frames() >= frames
    }

    /// Fraction of capacity in use (0.0 for unbounded tiers).
    pub fn utilization(&self) -> f64 {
        let cap = self.frame_capacity();
        if cap == u64::MAX || cap == 0 {
            0.0
        } else {
            self.used_frames as f64 / cap as f64
        }
    }

    /// Reserves one frame.
    ///
    /// # Errors
    /// Returns [`MemError::TierFull`] when the tier is at capacity.
    pub fn reserve(&mut self) -> Result<(), MemError> {
        if !self.has_room(1) {
            return Err(MemError::TierFull(self.id));
        }
        self.used_frames += 1;
        self.peak_frames = self.peak_frames.max(self.used_frames);
        Ok(())
    }

    /// Releases one previously reserved frame.
    ///
    /// # Panics
    /// Panics (debug builds) if no frames are reserved — that indicates a
    /// double free in the frame table.
    pub fn release(&mut self) {
        debug_assert!(
            self.used_frames > 0,
            "release without reserve on {}",
            self.id
        );
        self.used_frames = self.used_frames.saturating_sub(1);
    }
}

#[cfg(feature = "ksan")]
impl TierAllocator {
    /// Corruption hook for sanitizer self-tests: leaks one reservation,
    /// desyncing this accountant from the frame table.
    #[doc(hidden)]
    pub fn ksan_break_accounting(&mut self) {
        self.used_frames += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PAGE_SIZE;

    fn tiny(frames: u64) -> TierAllocator {
        TierAllocator::new(TierId::FAST, TierSpec::fast_dram(frames * PAGE_SIZE))
    }

    #[test]
    fn reserve_until_full() {
        let mut a = tiny(2);
        assert!(a.reserve().is_ok());
        assert!(a.reserve().is_ok());
        assert_eq!(a.reserve(), Err(MemError::TierFull(TierId::FAST)));
        assert_eq!(a.used_frames(), 2);
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn release_makes_room_again() {
        let mut a = tiny(1);
        a.reserve().unwrap();
        a.release();
        assert!(a.reserve().is_ok());
        assert_eq!(a.peak_frames(), 1);
    }

    #[test]
    fn unbounded_tier_never_fills() {
        let mut a = TierAllocator::new(TierId::SLOW, TierSpec::fast_dram(1 << 20).slow_variant(8));
        for _ in 0..10_000 {
            a.reserve().unwrap();
        }
        assert_eq!(a.utilization(), 0.0);
        assert!(a.has_room(u64::MAX / 2));
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut a = tiny(4);
        a.reserve().unwrap();
        a.reserve().unwrap();
        assert!((a.utilization() - 0.5).abs() < 1e-12);
    }
}
