//! Counters collected by the memory substrate.
//!
//! These counters back the paper's motivation study (Fig. 2: footprint
//! breakdown, reference breakdown, lifetimes) and evaluation plots
//! (Fig. 5b: slow-tier allocations per class).

use std::collections::BTreeMap;

use crate::clock::Nanos;
use crate::frame::PageKind;
use crate::tier::TierId;

/// Counters for one tier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TierStats {
    /// Cumulative frames ever allocated on this tier.
    pub frames_allocated: u64,
    /// Cumulative frames freed from this tier.
    pub frames_freed: u64,
    /// Frames currently resident.
    pub frames_resident: u64,
    /// Cumulative allocations per page kind.
    pub allocated_by_kind: BTreeMap<PageKind, u64>,
    /// Currently resident frames per page kind.
    pub resident_by_kind: BTreeMap<PageKind, u64>,
    /// Read accesses charged to this tier.
    pub reads: u64,
    /// Write accesses charged to this tier.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Allocation attempts rejected because the tier was full.
    pub alloc_failures: u64,
}

impl TierStats {
    pub(crate) fn on_alloc(&mut self, kind: PageKind) {
        self.frames_allocated += 1;
        self.frames_resident += 1;
        *self.allocated_by_kind.entry(kind).or_default() += 1;
        *self.resident_by_kind.entry(kind).or_default() += 1;
    }

    pub(crate) fn on_free(&mut self, kind: PageKind) {
        self.frames_freed += 1;
        self.frames_resident -= 1;
        let r = self.resident_by_kind.entry(kind).or_default();
        debug_assert!(*r > 0, "resident_by_kind underflow for {kind}");
        *r -= 1;
    }

    pub(crate) fn on_arrive(&mut self, kind: PageKind) {
        self.frames_resident += 1;
        *self.resident_by_kind.entry(kind).or_default() += 1;
    }

    pub(crate) fn on_depart(&mut self, kind: PageKind) {
        self.frames_resident -= 1;
        let r = self.resident_by_kind.entry(kind).or_default();
        debug_assert!(*r > 0, "resident_by_kind underflow for {kind}");
        *r -= 1;
    }
}

/// Per-kind lifetime accumulators (paper Fig. 2d).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LifetimeStats {
    /// Sum of observed lifetimes (allocation to free).
    pub total: Nanos,
    /// Number of frees observed.
    pub count: u64,
}

impl LifetimeStats {
    /// Mean lifetime, or zero when nothing was freed yet.
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            self.total / self.count
        }
    }

    pub(crate) fn record(&mut self, lifetime: Nanos) {
        self.total += lifetime;
        self.count += 1;
    }
}

/// All substrate-level counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemStats {
    /// Per-tier counters, indexed by tier id.
    pub tiers: Vec<TierStats>,
    /// Total access operations (reads + writes) across tiers.
    pub total_accesses: u64,
    /// Accesses that touched kernel pages (any kind but `AppData`).
    pub kernel_accesses: u64,
    /// Lifetime accumulators per page kind.
    pub lifetimes: BTreeMap<PageKind, LifetimeStats>,
}

impl MemStats {
    pub(crate) fn new(tier_count: usize) -> Self {
        MemStats {
            tiers: vec![TierStats::default(); tier_count],
            ..MemStats::default()
        }
    }

    /// Counters for one tier.
    ///
    /// # Panics
    /// Panics if `tier` is not part of the topology.
    pub fn tier(&self, tier: TierId) -> &TierStats {
        &self.tiers[tier.index()]
    }

    /// Cumulative allocations of `kind` across all tiers.
    pub fn allocated(&self, kind: PageKind) -> u64 {
        self.tiers
            .iter()
            .map(|t| t.allocated_by_kind.get(&kind).copied().unwrap_or(0))
            .sum()
    }

    /// Cumulative allocations of kernel page kinds across all tiers.
    pub fn kernel_allocated(&self) -> u64 {
        PageKind::ALL
            .iter()
            .filter(|k| k.is_kernel())
            .map(|k| self.allocated(*k))
            .sum()
    }

    /// Cumulative allocations across all kinds and tiers.
    pub fn total_allocated(&self) -> u64 {
        self.tiers.iter().map(|t| t.frames_allocated).sum()
    }

    /// Fraction of accesses that hit kernel pages (paper Fig. 2c).
    pub fn kernel_access_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.kernel_accesses as f64 / self.total_accesses as f64
        }
    }

    /// Mean observed lifetime for a page kind (paper Fig. 2d).
    pub fn mean_lifetime(&self, kind: PageKind) -> Nanos {
        self.lifetimes.get(&kind).map_or(Nanos::ZERO, |l| l.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_balance() {
        let mut s = TierStats::default();
        s.on_alloc(PageKind::Slab);
        s.on_alloc(PageKind::Slab);
        s.on_free(PageKind::Slab);
        assert_eq!(s.frames_allocated, 2);
        assert_eq!(s.frames_resident, 1);
        assert_eq!(s.resident_by_kind[&PageKind::Slab], 1);
        assert_eq!(s.allocated_by_kind[&PageKind::Slab], 2);
    }

    #[test]
    fn migration_moves_residency_not_allocation() {
        let mut a = TierStats::default();
        let mut b = TierStats::default();
        a.on_alloc(PageKind::PageCache);
        a.on_depart(PageKind::PageCache);
        b.on_arrive(PageKind::PageCache);
        assert_eq!(a.frames_resident, 0);
        assert_eq!(b.frames_resident, 1);
        assert_eq!(b.frames_allocated, 0, "arrival is not an allocation");
    }

    #[test]
    fn lifetime_mean() {
        let mut l = LifetimeStats::default();
        assert_eq!(l.mean(), Nanos::ZERO);
        l.record(Nanos::from_millis(30));
        l.record(Nanos::from_millis(42));
        assert_eq!(l.mean(), Nanos::from_millis(36));
    }

    #[test]
    fn kernel_access_fraction() {
        let mut m = MemStats::new(2);
        m.total_accesses = 10;
        m.kernel_accesses = 4;
        assert!((m.kernel_access_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn aggregate_allocated_counts() {
        let mut m = MemStats::new(2);
        m.tiers[0].on_alloc(PageKind::AppData);
        m.tiers[0].on_alloc(PageKind::Slab);
        m.tiers[1].on_alloc(PageKind::Slab);
        assert_eq!(m.allocated(PageKind::Slab), 2);
        assert_eq!(m.kernel_allocated(), 2);
        assert_eq!(m.total_allocated(), 3);
    }
}
