//! Tenant identity.
//!
//! A *tenant* is a cgroup-style resource principal: every frame in the
//! [`crate::FrameTable`] carries the id of the tenant whose activity
//! allocated it, so budgets and attribution can be enforced per tenant
//! (the multi-tenant extension of the paper's single-application
//! `sys_kloc_memsize` budget, Table 2). The id lives in this crate —
//! below the kernel — because the substrate maintains the per-tenant
//! fast-tier residency counters that budget checks read in O(1).

/// Identifier of a tenant (cgroup-style resource principal).
///
/// Tenant ids are dense small integers assigned by the simulation
/// harness; id 0 is [`TenantId::DEFAULT`], the implicit tenant of
/// single-tenant runs and of shared kernel infrastructure (slab arenas,
/// journal metadata) that no single tenant owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TenantId(pub u16);

impl TenantId {
    /// The default tenant: single-tenant runs and shared kernel state.
    pub const DEFAULT: TenantId = TenantId(0);

    /// Dense index for per-tenant tables.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_tenant_zero() {
        assert_eq!(TenantId::default(), TenantId::DEFAULT);
        assert_eq!(TenantId::DEFAULT.index(), 0);
        assert_eq!(TenantId(3).to_string(), "tenant3");
    }
}
