//! Memory tier descriptions.
//!
//! A tier is one device class in the heterogeneous memory system: fast
//! DRAM, bandwidth-throttled "slow" DRAM, byte-addressable persistent
//! memory, or the remote socket of a NUMA pair. A [`TierSpec`] carries the
//! capacity / latency / bandwidth parameters the cost model charges.

use std::fmt;

use crate::clock::Nanos;

/// Identifier of a memory tier within a [`crate::MemorySystem`].
///
/// Tier ids are dense indices assigned in topology order; the conventional
/// two-tier topology uses [`TierId::FAST`] and [`TierId::SLOW`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TierId(pub u8);

impl TierId {
    /// The fast tier in the standard two-tier topology.
    pub const FAST: TierId = TierId(0);
    /// The slow tier in the standard two-tier topology.
    pub const SLOW: TierId = TierId(1);

    /// Index into the tier table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

/// Technology class of a tier, used for reporting and topology queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum TierKind {
    /// Conventional DRAM (or the fast, unthrottled socket).
    Dram,
    /// Bandwidth-throttled DRAM emulating a slower device (paper §6.2).
    ThrottledDram,
    /// Byte-addressable persistent memory (Optane DC PMEM).
    Pmem,
    /// DRAM on a remote NUMA socket.
    RemoteDram,
}

impl fmt::Display for TierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TierKind::Dram => "dram",
            TierKind::ThrottledDram => "throttled-dram",
            TierKind::Pmem => "pmem",
            TierKind::RemoteDram => "remote-dram",
        };
        f.write_str(s)
    }
}

/// Hardware parameters of one memory tier.
///
/// Defaults mirror the paper's two-tier platform (Table 4): the fast tier
/// is 30 GB/s DRAM with ~80 ns load latency. Use the builder-style `with_*`
/// methods to derive variants.
///
/// ```
/// use kloc_mem::{TierSpec, TierKind};
/// let fast = TierSpec::fast_dram(8 << 20);
/// let slow = fast.slow_variant(8); // 1:8 bandwidth differential
/// assert_eq!(slow.read_bw_bps, fast.read_bw_bps / 8);
/// assert!(slow.read_latency > fast.read_latency);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TierSpec {
    /// Technology class.
    pub kind: TierKind,
    /// Usable capacity in bytes. `u64::MAX` means effectively unbounded.
    pub capacity: u64,
    /// Read (load) latency per access.
    pub read_latency: Nanos,
    /// Write (store) latency per access.
    pub write_latency: Nanos,
    /// Read bandwidth in bytes/second (0 = don't charge bandwidth).
    pub read_bw_bps: u64,
    /// Write bandwidth in bytes/second (0 = don't charge bandwidth).
    pub write_bw_bps: u64,
}

impl TierSpec {
    /// Fast DRAM at the paper's two-tier platform parameters
    /// (30 GB/s, 80 ns) with the given capacity in bytes.
    pub fn fast_dram(capacity: u64) -> Self {
        TierSpec {
            kind: TierKind::Dram,
            capacity,
            read_latency: Nanos::new(80),
            write_latency: Nanos::new(80),
            read_bw_bps: 30_000_000_000,
            write_bw_bps: 30_000_000_000,
        }
    }

    /// A slow variant of `self`: bandwidth divided by `ratio`, latency
    /// doubled, unbounded capacity. This mirrors the paper's
    /// thermal-throttling emulation of a slow tier (§6.2). A zero ratio
    /// (division by zero) is clamped to the documented minimum of 1,
    /// i.e. a slow tier with the fast tier's bandwidth.
    pub fn slow_variant(&self, ratio: u64) -> Self {
        let ratio = ratio.max(1);
        TierSpec {
            kind: TierKind::ThrottledDram,
            capacity: u64::MAX,
            read_latency: self.read_latency * 2,
            write_latency: self.write_latency * 2,
            read_bw_bps: self.read_bw_bps / ratio,
            write_bw_bps: self.write_bw_bps / ratio,
        }
    }

    /// Die-stacked / high-bandwidth memory: the paper's §2 cites 2-10x
    /// higher bandwidth and ~1.5x lower latency than conventional DRAM,
    /// at 8-16x lower capacity.
    pub fn hbm(capacity: u64) -> Self {
        TierSpec {
            kind: TierKind::Dram,
            capacity,
            read_latency: Nanos::new(56),
            write_latency: Nanos::new(56),
            read_bw_bps: 120_000_000_000,
            write_bw_bps: 120_000_000_000,
        }
    }

    /// Optane-style persistent memory: 2-3x read latency, ~5x write
    /// latency, and 3-5x lower bandwidth than DRAM (paper §2).
    pub fn pmem(capacity: u64) -> Self {
        TierSpec {
            kind: TierKind::Pmem,
            capacity,
            read_latency: Nanos::new(300),
            write_latency: Nanos::new(400),
            read_bw_bps: 8_000_000_000,
            write_bw_bps: 3_000_000_000,
        }
    }

    /// DRAM on a remote NUMA socket: same bandwidth class, higher latency.
    pub fn remote_dram(capacity: u64) -> Self {
        TierSpec {
            kind: TierKind::RemoteDram,
            capacity,
            read_latency: Nanos::new(140),
            write_latency: Nanos::new(140),
            read_bw_bps: 20_000_000_000,
            write_bw_bps: 20_000_000_000,
        }
    }

    /// Returns a copy with the given capacity.
    pub fn with_capacity(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }

    /// Returns a copy with read/write latency set to `latency`.
    pub fn with_latency(mut self, latency: Nanos) -> Self {
        self.read_latency = latency;
        self.write_latency = latency;
        self
    }

    /// Returns a copy with read/write bandwidth set to `bps`.
    pub fn with_bandwidth(mut self, bps: u64) -> Self {
        self.read_bw_bps = bps;
        self.write_bw_bps = bps;
        self
    }

    /// Time to read `bytes` from this tier (latency + bandwidth term).
    pub fn read_cost(&self, bytes: u64) -> Nanos {
        self.read_latency + Nanos::for_transfer(bytes, self.read_bw_bps)
    }

    /// Time to write `bytes` to this tier (latency + bandwidth term).
    pub fn write_cost(&self, bytes: u64) -> Nanos {
        self.write_latency + Nanos::for_transfer(bytes, self.write_bw_bps)
    }

    /// Number of whole 4 KB frames this tier can hold.
    pub fn frame_capacity(&self) -> u64 {
        if self.capacity == u64::MAX {
            u64::MAX
        } else {
            self.capacity / crate::frame::PAGE_SIZE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_dram_matches_paper_parameters() {
        let spec = TierSpec::fast_dram(8 << 30);
        assert_eq!(spec.read_bw_bps, 30_000_000_000);
        assert_eq!(spec.read_latency, Nanos::new(80));
        assert_eq!(spec.frame_capacity(), (8 << 30) / 4096);
    }

    #[test]
    fn slow_variant_scales_bandwidth() {
        let fast = TierSpec::fast_dram(8 << 30);
        for ratio in [2, 4, 8] {
            let slow = fast.slow_variant(ratio);
            assert_eq!(slow.read_bw_bps, fast.read_bw_bps / ratio);
            assert_eq!(slow.kind, TierKind::ThrottledDram);
            assert_eq!(slow.frame_capacity(), u64::MAX);
        }
    }

    #[test]
    fn slow_variant_clamps_zero_ratio_to_one() {
        let fast = TierSpec::fast_dram(1 << 20);
        let slow = fast.slow_variant(0);
        assert_eq!(slow.read_bw_bps, fast.read_bw_bps, "clamped to ratio 1");
        assert_eq!(slow.kind, TierKind::ThrottledDram);
    }

    #[test]
    fn pmem_is_slower_than_dram() {
        let dram = TierSpec::fast_dram(1 << 30);
        let pmem = TierSpec::pmem(1 << 30);
        assert!(pmem.read_cost(4096) > dram.read_cost(4096));
        assert!(pmem.write_cost(4096) > pmem.read_cost(4096));
    }

    #[test]
    fn read_cost_includes_latency_and_bandwidth() {
        let spec = TierSpec::fast_dram(1 << 30);
        let cost = spec.read_cost(4096);
        // 80ns latency + 136ns transfer.
        assert_eq!(cost, Nanos::new(216));
    }

    #[test]
    fn builder_methods_override_fields() {
        let spec = TierSpec::fast_dram(1 << 20)
            .with_latency(Nanos::new(10))
            .with_bandwidth(1_000_000_000)
            .with_capacity(4096 * 4);
        assert_eq!(spec.read_latency, Nanos::new(10));
        assert_eq!(spec.write_bw_bps, 1_000_000_000);
        assert_eq!(spec.frame_capacity(), 4);
    }

    #[test]
    fn tier_id_display() {
        assert_eq!(TierId::FAST.to_string(), "tier0");
        assert_eq!(TierKind::Pmem.to_string(), "pmem");
    }
}
