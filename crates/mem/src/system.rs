//! The tiered memory system.
//!
//! [`MemorySystem`] owns the tiers, the frame table, the virtual clock,
//! and the migration engine. Every allocation, access, and migration in
//! the simulation is charged here, which makes the reported virtual run
//! time of a workload a function of *where its pages live* — exactly the
//! quantity the paper's tiering policies compete on.

use crate::allocator::TierAllocator;
use crate::clock::{Clock, Nanos};
use crate::error::MemError;
use crate::fault::{DiskOp, FaultPlan};
#[cfg(feature = "kfault")]
use crate::fault::{FaultState, TierFaultKind};
use crate::frame::{Frame, FrameId, PageKind};
use crate::frametable::FrameTable;
use crate::l4cache::L4Cache;
use crate::migrate::{MigrationCost, MigrationStats};
use crate::stats::MemStats;
use crate::tenant::TenantId;
use crate::tier::{TierId, TierSpec};

/// Interconnect latency added to cross-socket accesses in NUMA
/// topologies (QPI/UPI hop).
pub const REMOTE_ACCESS_PENALTY: Nanos = Nanos::new(60);

/// Retry budget per frame inside one drain pass; mirrors the blk-mq
/// layer's default `io_max_retries`.
#[cfg(feature = "kfault")]
const DRAIN_MAX_RETRIES: u32 = 5;

/// Counters for the tier-drain path: when a kfault `Offline` window
/// opens, [`MemorySystem::drain_offline`] live-migrates resident
/// relocatable frames off the tier instead of leaving them stranded on
/// a degraded device. All zeros without the `kfault` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DrainStats {
    /// Frames successfully migrated off offlining tiers.
    pub drained: u64,
    /// Migration-fault retries absorbed (each charged a backoff).
    pub retries: u64,
    /// Frames abandoned after the per-frame retry budget ran out.
    pub failed: u64,
    /// Drain passes that did any work (moved a frame or retried).
    pub passes: u64,
}

/// One access in a batched run; see [`MemorySystem::access_batch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOp {
    /// Frame touched.
    pub frame: FrameId,
    /// Bytes moved.
    pub bytes: u64,
    /// Write (`true`) or read (`false`).
    pub write: bool,
}

impl AccessOp {
    /// A read of `bytes` from `frame`.
    pub fn read(frame: FrameId, bytes: u64) -> Self {
        AccessOp {
            frame,
            bytes,
            write: false,
        }
    }

    /// A write of `bytes` to `frame`.
    pub fn write(frame: FrameId, bytes: u64) -> Self {
        AccessOp {
            frame,
            bytes,
            write: true,
        }
    }
}

/// A complete tiered memory system: tiers + frames + clock + migration.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct MemorySystem {
    tiers: Vec<TierAllocator>,
    /// NUMA socket each tier belongs to (0 for non-NUMA topologies).
    tier_socket: Vec<u8>,
    /// Optional hardware-managed DRAM cache in front of a tier
    /// (Optane Memory Mode).
    l4: Vec<Option<L4Cache>>,
    /// Per-tier contention multiplier (x1000; 1000 = no contention).
    contention_milli: Vec<u64>,
    frames: FrameTable,
    clock: Clock,
    stats: MemStats,
    migration_cost: MigrationCost,
    migration_stats: MigrationStats,
    drain_stats: DrainStats,
    /// Per-tenant count of kernel-kind frames resident on the fast tier
    /// (tier 0), dense by [`TenantId::index`] and grown on demand.
    /// Maintained incrementally at allocate/free/migrate/restamp so
    /// per-tenant budget checks are O(1) reads, exactly like the global
    /// `fast_budget_frames` check over [`MemStats`].
    tenant_fast_kernel: Vec<u64>,
    /// Number of workload threads whose CPU time overlaps. The virtual
    /// clock models the bottleneck-resource timeline: memory-bus time is
    /// shared (charged fully), while per-thread CPU work and I/O stalls
    /// overlap across threads (charged divided by this factor).
    cpu_parallelism: u64,
    /// Scheduled fault injection (kfault). `None` when no plan is
    /// installed, so faultless runs never consult it.
    #[cfg(feature = "kfault")]
    fault: Option<FaultState>,
}

impl MemorySystem {
    /// Builds a system from explicit tier specs. Tier ids are assigned in
    /// order; by convention faster tiers come first.
    ///
    /// # Panics
    /// Panics if `specs` is empty or has more than 255 entries.
    pub fn with_tiers(specs: Vec<TierSpec>) -> Self {
        assert!(!specs.is_empty(), "at least one tier is required");
        assert!(specs.len() <= 255, "at most 255 tiers supported");
        let tiers: Vec<TierAllocator> = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| TierAllocator::new(TierId(i as u8), s))
            .collect();
        let n = tiers.len();
        MemorySystem {
            tier_socket: vec![0; n],
            l4: (0..n).map(|_| None).collect(),
            contention_milli: vec![1000; n],
            stats: MemStats::new(n),
            tiers,
            frames: FrameTable::new(),
            clock: Clock::new(),
            migration_cost: MigrationCost::default(),
            migration_stats: MigrationStats::default(),
            drain_stats: DrainStats::default(),
            tenant_fast_kernel: Vec::new(),
            cpu_parallelism: 1,
            #[cfg(feature = "kfault")]
            fault: None,
        }
    }

    /// The paper's two-tier platform: a fast DRAM tier of
    /// `fast_capacity` bytes over an unbounded slow tier whose bandwidth
    /// is `bw_ratio`x lower (§6.2, Table 4; Fig. 6 sweeps `bw_ratio`
    /// over {8, 4, 2}).
    pub fn two_tier(fast_capacity: u64, bw_ratio: u64) -> Self {
        let fast = TierSpec::fast_dram(fast_capacity);
        let slow = fast.slow_variant(bw_ratio);
        MemorySystem::with_tiers(vec![fast, slow])
    }

    /// Optane Memory Mode: two sockets, each an (effectively unbounded)
    /// PMEM tier fronted by an `l4_capacity`-byte hardware-managed DRAM
    /// cache. Tier 0 is socket 0, tier 1 is socket 1.
    pub fn optane_memory_mode(l4_capacity: u64) -> Self {
        let pmem = TierSpec::pmem(u64::MAX);
        let mut sys = MemorySystem::with_tiers(vec![pmem, pmem]);
        sys.tier_socket = vec![0, 1];
        let dram = TierSpec::fast_dram(u64::MAX);
        sys.l4[0] = Some(L4Cache::new(l4_capacity, dram, pmem));
        sys.l4[1] = Some(L4Cache::new(l4_capacity, dram, pmem));
        sys
    }

    /// A three-tier system: a small high-bandwidth tier (die-stacked /
    /// HBM-class, paper §2) over `dram_capacity` of conventional DRAM
    /// over an unbounded slow tier at a `bw_ratio` differential to DRAM.
    pub fn three_tier(hbm_capacity: u64, dram_capacity: u64, bw_ratio: u64) -> Self {
        let hbm = TierSpec::hbm(hbm_capacity);
        let dram = TierSpec::fast_dram(dram_capacity);
        let slow = dram.slow_variant(bw_ratio);
        MemorySystem::with_tiers(vec![hbm, dram, slow])
    }

    /// Conventional two-socket NUMA: two equal DRAM tiers on sockets 0/1.
    pub fn numa_two_socket(capacity_per_socket: u64) -> Self {
        let local = TierSpec::fast_dram(capacity_per_socket);
        let mut sys = MemorySystem::with_tiers(vec![local, local]);
        sys.tier_socket = vec![0, 1];
        sys
    }

    /// Number of tiers.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Allocator (capacity view) of a tier.
    ///
    /// # Errors
    /// Returns [`MemError::BadTier`] for unknown tiers.
    pub fn tier_alloc(&self, tier: TierId) -> Result<&TierAllocator, MemError> {
        self.tiers.get(tier.index()).ok_or(MemError::BadTier(tier))
    }

    /// Hardware spec of a tier.
    ///
    /// # Panics
    /// Panics for unknown tiers.
    pub fn tier_spec(&self, tier: TierId) -> &TierSpec {
        self.tiers[tier.index()].spec()
    }

    /// NUMA socket of a tier.
    pub fn socket_of(&self, tier: TierId) -> u8 {
        self.tier_socket[tier.index()]
    }

    /// Sets a contention multiplier on a tier's access costs (1.0 = no
    /// contention). Used to model the streaming antagonist in the
    /// AutoNUMA experiment (§6.2). Factors below 1.0 (contention can
    /// only slow accesses down) are clamped to 1.0.
    pub fn set_contention(&mut self, tier: TierId, factor: f64) {
        self.contention_milli[tier.index()] = (factor.max(1.0) * 1000.0) as u64;
    }

    /// Sets the migration cost model (sequential vs Nimble-parallel).
    pub fn set_migration_cost(&mut self, cost: MigrationCost) {
        self.migration_cost = cost;
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Sets how many workload threads overlap CPU work (see the field
    /// docs; 1 = fully serialized). Zero (meaningless: some thread is
    /// always running) is clamped to 1.
    pub fn set_cpu_parallelism(&mut self, threads: u64) {
        self.cpu_parallelism = threads.max(1);
    }

    /// Re-shards the frame table's free lists. Allocation order — and
    /// therefore every report — is independent of the shard count (see
    /// [`crate::shard`]); this only changes how the free slots are
    /// partitioned.
    pub fn set_shards(&mut self, cfg: crate::shard::ShardConfig) {
        self.frames.reshard(cfg);
    }

    /// The frame table's current shard config.
    pub fn shard_config(&self) -> crate::shard::ShardConfig {
        self.frames.shard_config()
    }

    /// Charges per-thread CPU or I/O-stall time (computation that touches
    /// no simulated memory: think time, syscall entry, disk waits). With
    /// `cpu_parallelism` threads this overlaps, so the shared clock
    /// advances by `dt / parallelism`.
    pub fn charge(&mut self, dt: Nanos) {
        let dt = dt / self.cpu_parallelism;
        self.clock.advance(dt);
        kloc_trace::charge(dt.as_nanos());
    }

    /// Substrate counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Migration counters.
    pub fn migration_stats(&self) -> &MigrationStats {
        &self.migration_stats
    }

    /// Tier-drain counters (all zeros without `kfault`).
    pub fn drain_stats(&self) -> &DrainStats {
        &self.drain_stats
    }

    /// L4 cache attached to `tier`, if any.
    pub fn l4_cache(&self, tier: TierId) -> Option<&L4Cache> {
        self.l4.get(tier.index()).and_then(|c| c.as_ref())
    }

    /// Installs a [`FaultPlan`] (kfault). Without the `kfault` feature
    /// this is an inline no-op and the plan is ignored, so call sites
    /// need no `cfg`; with it, subsequent allocations, migrations, disk
    /// I/O, and journal commits consult the plan against the virtual
    /// clock. An empty plan installs nothing.
    #[cfg(feature = "kfault")]
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = if plan.is_empty() {
            None
        } else {
            Some(FaultState::new(plan))
        };
    }

    /// No-op shim: fault injection is compiled out.
    #[cfg(not(feature = "kfault"))]
    #[inline(always)]
    pub fn set_fault_plan(&mut self, _plan: FaultPlan) {}

    /// Consumes one scheduled disk fault of class `op` due at the
    /// current virtual time, emitting a `fault` trace event. The
    /// kernel's blk-mq layer calls this per I/O submission and retries
    /// with backoff when it returns `true`.
    #[cfg(feature = "kfault")]
    pub fn fault_take_disk(&mut self, op: DiskOp) -> bool {
        let now = self.clock.now();
        let fired = self.fault.as_mut().is_some_and(|s| s.take_disk(op, now));
        if fired {
            kloc_trace::emit(|| kloc_trace::Event::Fault {
                t: now.as_nanos(),
                kind: "disk".to_string(),
                info: op.label().to_string(),
            });
        }
        fired
    }

    /// No-op shim: fault injection is compiled out.
    #[cfg(not(feature = "kfault"))]
    #[inline(always)]
    pub fn fault_take_disk(&mut self, _op: DiskOp) -> bool {
        false
    }

    /// Consumes a time-scheduled crash due at the current virtual time.
    /// The kernel checks this at syscall entry and aborts the run with
    /// `KernelError::Crashed` when it fires.
    #[cfg(feature = "kfault")]
    pub fn fault_crash_due(&mut self) -> bool {
        let now = self.clock.now();
        let fired = self.fault.as_mut().is_some_and(|s| s.take_crash_at(now));
        if fired {
            kloc_trace::emit(|| kloc_trace::Event::Fault {
                t: now.as_nanos(),
                kind: "crash".to_string(),
                info: "time".to_string(),
            });
        }
        fired
    }

    /// No-op shim: fault injection is compiled out.
    #[cfg(not(feature = "kfault"))]
    #[inline(always)]
    pub fn fault_crash_due(&mut self) -> bool {
        false
    }

    /// Consumes a crash scheduled at journal commit ordinal `index`,
    /// returning how many of the commit's journal blocks become durable
    /// before the machine dies (`0` = crash at the commit boundary).
    #[cfg(feature = "kfault")]
    pub fn fault_crash_at_commit(&mut self, index: u64) -> Option<u32> {
        let now = self.clock.now();
        let blocks = self.fault.as_mut()?.take_crash_commit(index)?;
        kloc_trace::emit(|| kloc_trace::Event::Fault {
            t: now.as_nanos(),
            kind: "crash".to_string(),
            info: format!("commit {index} after {blocks} blocks"),
        });
        Some(blocks)
    }

    /// No-op shim: fault injection is compiled out.
    #[cfg(not(feature = "kfault"))]
    #[inline(always)]
    pub fn fault_crash_at_commit(&mut self, _index: u64) -> Option<u32> {
        None
    }

    /// Rejects placement on `tier` while a fault window covers it:
    /// `Exhaust` behaves as capacity pressure ([`MemError::TierFull`]),
    /// `Offline` as a lost device ([`MemError::TierOffline`]). Emits one
    /// `fault` trace event per window, on its first application.
    #[cfg(feature = "kfault")]
    fn fault_check_tier(&mut self, tier: TierId) -> Result<(), MemError> {
        let now = self.clock.now();
        let Some(s) = self.fault.as_mut() else {
            return Ok(());
        };
        match s.tier_fault(tier, now) {
            None => Ok(()),
            Some((kind, first)) => {
                if first {
                    kloc_trace::emit(|| kloc_trace::Event::Fault {
                        t: now.as_nanos(),
                        kind: "tier".to_string(),
                        info: format!("{} {tier}", kind.label()),
                    });
                }
                Err(match kind {
                    TierFaultKind::Exhaust => MemError::TierFull(tier),
                    TierFaultKind::Offline => MemError::TierOffline(tier),
                })
            }
        }
    }

    /// No-op shim: fault injection is compiled out.
    #[cfg(not(feature = "kfault"))]
    #[inline(always)]
    fn fault_check_tier(&mut self, _tier: TierId) -> Result<(), MemError> {
        Ok(())
    }

    /// Consumes one scheduled migration fault due at the current
    /// virtual time, counting it in [`MigrationStats::failed`].
    #[cfg(feature = "kfault")]
    fn fault_check_migrate(&mut self, frame: FrameId) -> Result<(), MemError> {
        let now = self.clock.now();
        if let Some(s) = self.fault.as_mut() {
            if s.take_migration(now) {
                self.migration_stats.failed += 1;
                kloc_trace::emit(|| kloc_trace::Event::Fault {
                    t: now.as_nanos(),
                    kind: "migrate".to_string(),
                    info: frame.to_string(),
                });
                return Err(MemError::MigrationFault(frame));
            }
        }
        Ok(())
    }

    /// No-op shim: fault injection is compiled out.
    #[cfg(not(feature = "kfault"))]
    #[inline(always)]
    fn fault_check_migrate(&mut self, _frame: FrameId) -> Result<(), MemError> {
        Ok(())
    }

    /// Allocates one frame of `kind` on `tier`.
    ///
    /// # Errors
    /// [`MemError::TierFull`] if the tier is at capacity (or under an
    /// injected exhaustion fault), [`MemError::TierOffline`] while an
    /// offlining fault covers the tier, [`MemError::BadTier`] for
    /// unknown tiers.
    pub fn allocate(&mut self, tier: TierId, kind: PageKind) -> Result<FrameId, MemError> {
        if tier.index() >= self.tiers.len() {
            return Err(MemError::BadTier(tier));
        }
        if let Err(e) = self.fault_check_tier(tier) {
            self.stats.tiers[tier.index()].alloc_failures += 1;
            return Err(e);
        }
        let alloc = &mut self.tiers[tier.index()];
        match alloc.reserve() {
            Ok(()) => {}
            Err(e) => {
                self.stats.tiers[tier.index()].alloc_failures += 1;
                return Err(e);
            }
        }
        let id = self.frames.next_id();
        let frame = Frame::new(id, tier, kind, self.clock.now());
        self.frames.insert(frame);
        self.stats.tiers[tier.index()].on_alloc(kind);
        if kind.is_kernel() && tier.index() == 0 {
            // Born owned by the default tenant; restamped via
            // `set_frame_tenant` when the kernel attributes it.
            self.fast_kernel_inc(TenantId::DEFAULT);
        }
        kloc_trace::with_counters(|c| {
            c.frame_allocs += 1;
            if tier.index() == 0 {
                c.fast_allocs += 1;
            }
        });
        Ok(id)
    }

    /// Allocates on the first tier in `preference` with room.
    ///
    /// # Errors
    /// [`MemError::TierOffline`] if every listed tier failed and at
    /// least one was offlined by a fault window (the degradation cause
    /// outranks plain capacity pressure for diagnostics), otherwise
    /// [`MemError::OutOfMemory`].
    pub fn allocate_preferring(
        &mut self,
        preference: &[TierId],
        kind: PageKind,
    ) -> Result<FrameId, MemError> {
        let mut offline: Option<MemError> = None;
        for &tier in preference {
            match self.allocate(tier, kind) {
                Ok(id) => return Ok(id),
                // Divert to the next preference both on capacity pressure
                // and when a fault window has the tier offline.
                Err(MemError::TierFull(_)) => continue,
                Err(e @ MemError::TierOffline(_)) => {
                    offline.get_or_insert(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(offline.unwrap_or(MemError::OutOfMemory))
    }

    /// Frees a frame, recording its lifetime (paper Fig. 2d).
    ///
    /// # Errors
    /// [`MemError::BadFrame`] if the frame is not allocated.
    pub fn free(&mut self, frame: FrameId) -> Result<(), MemError> {
        let tenant = self.frames.tenant_of_live(frame);
        let f = self.frames.remove(frame).ok_or(MemError::BadFrame(frame))?;
        if f.kind.is_kernel() && f.tier.index() == 0 {
            self.fast_kernel_dec(tenant.unwrap_or_default());
        }
        self.tiers[f.tier.index()].release();
        self.stats.tiers[f.tier.index()].on_free(f.kind);
        let lifetime = self.clock.now().saturating_sub(f.allocated_at);
        self.stats
            .lifetimes
            .entry(f.kind)
            .or_default()
            .record(lifetime);
        if let Some(l4) = self.l4[f.tier.index()].as_mut() {
            l4.invalidate(frame);
        }
        kloc_trace::with_counters(|c| c.frame_frees += 1);
        Ok(())
    }

    /// Looks up a frame record.
    ///
    /// # Errors
    /// [`MemError::BadFrame`] if the frame is not allocated.
    pub fn frame(&self, frame: FrameId) -> Result<Frame, MemError> {
        self.frames.get(frame).ok_or(MemError::BadFrame(frame))
    }

    /// Tier a frame currently resides on.
    ///
    /// # Panics
    /// Panics if the frame is not allocated.
    pub fn tier_of(&self, frame: FrameId) -> TierId {
        self.frames
            .get(frame)
            .unwrap_or_else(|| panic!("{frame} is not allocated"))
            .tier
    }

    /// Looks up the policy-relevant subset of a frame record without
    /// materializing a full [`Frame`]; `None` for freed frames. One
    /// probe replaces the `is_live` + `tier_of`/`frame` double lookup
    /// on policy candidate walks.
    #[inline]
    pub fn frame_meta(&self, frame: FrameId) -> Option<crate::frametable::FrameMeta> {
        self.frames.meta(frame)
    }

    /// Tier a frame resides on, or `None` if it has been freed — the
    /// single-probe form of `is_live` + `tier_of`.
    #[inline]
    pub fn tier_if_live(&self, frame: FrameId) -> Option<TierId> {
        self.frames.tier_of_live(frame)
    }

    /// Last access time of a frame, or `None` if it has been freed —
    /// the single-column probe recency-filtered walks reject on.
    #[inline]
    pub fn last_access_if_live(&self, frame: FrameId) -> Option<Nanos> {
        self.frames.last_access_of_live(frame)
    }

    /// Tenant a frame is attributed to, or `None` if it has been freed.
    #[inline]
    pub fn frame_tenant(&self, frame: FrameId) -> Option<TenantId> {
        self.frames.tenant_of_live(frame)
    }

    /// Restamps a frame's owning tenant, keeping the per-tenant
    /// fast-kernel residency counters square. The kernel calls this
    /// right after allocating a frame on behalf of a specific tenant
    /// (frames are born owned by [`TenantId::DEFAULT`]).
    ///
    /// # Errors
    /// [`MemError::BadFrame`] if the frame is not allocated.
    pub fn set_frame_tenant(&mut self, frame: FrameId, tenant: TenantId) -> Result<(), MemError> {
        let meta = self.frames.meta(frame).ok_or(MemError::BadFrame(frame))?;
        let old = self
            .frames
            .set_tenant(frame, tenant)
            .ok_or(MemError::BadFrame(frame))?;
        if old != tenant && meta.kind.is_kernel() && meta.tier.index() == 0 {
            self.fast_kernel_dec(old);
            self.fast_kernel_inc(tenant);
        }
        Ok(())
    }

    /// Number of kernel-kind frames `tenant` currently holds on the
    /// fast tier — the quantity per-tenant budget checks compare
    /// against a tenant's `fast_budget_frames`. O(1).
    pub fn tenant_fast_kernel(&self, tenant: TenantId) -> u64 {
        self.tenant_fast_kernel
            .get(tenant.index())
            .copied()
            .unwrap_or(0)
    }

    #[inline]
    fn fast_kernel_inc(&mut self, tenant: TenantId) {
        let i = tenant.index();
        if self.tenant_fast_kernel.len() <= i {
            self.tenant_fast_kernel.resize(i + 1, 0);
        }
        self.tenant_fast_kernel[i] += 1;
    }

    #[inline]
    fn fast_kernel_dec(&mut self, tenant: TenantId) {
        let i = tenant.index();
        debug_assert!(
            self.tenant_fast_kernel.get(i).is_some_and(|n| *n > 0),
            "fast-kernel counter underflow for {tenant}"
        );
        if let Some(n) = self.tenant_fast_kernel.get_mut(i) {
            *n = n.saturating_sub(1);
        }
    }

    /// Whether the frame is still allocated.
    pub fn is_live(&self, frame: FrameId) -> bool {
        self.frames.contains(frame)
    }

    /// Number of live frames.
    pub fn live_frames(&self) -> usize {
        self.frames.len()
    }

    /// Mean age (now - allocation time) of live frames of `kind`.
    /// Complements the freed-frame lifetime statistics for long-lived
    /// allocations (application pages) that outlive the measurement.
    pub fn mean_live_age(&self, kind: PageKind) -> Nanos {
        let now = self.clock.now();
        let (mut total, mut n) = (Nanos::ZERO, 0u64);
        for f in self.frames.iter() {
            if f.kind == kind {
                total += now.saturating_sub(f.allocated_at);
                n += 1;
            }
        }
        if n == 0 {
            Nanos::ZERO
        } else {
            total / n
        }
    }

    /// Reads `bytes` from a frame; advances the clock and returns the cost.
    pub fn read(&mut self, frame: FrameId, bytes: u64) -> Nanos {
        self.access(frame, bytes, false, None)
    }

    /// Writes `bytes` to a frame; advances the clock and returns the cost.
    pub fn write(&mut self, frame: FrameId, bytes: u64) -> Nanos {
        self.access(frame, bytes, true, None)
    }

    /// Like [`MemorySystem::read`] but performed by a CPU on `socket`,
    /// charging the interconnect penalty when the frame is remote.
    pub fn read_from(&mut self, socket: u8, frame: FrameId, bytes: u64) -> Nanos {
        self.access(frame, bytes, false, Some(socket))
    }

    /// Like [`MemorySystem::write`] but performed by a CPU on `socket`.
    pub fn write_from(&mut self, socket: u8, frame: FrameId, bytes: u64) -> Nanos {
        self.access(frame, bytes, true, Some(socket))
    }

    fn access(
        &mut self,
        frame: FrameId,
        bytes: u64,
        write: bool,
        from_socket: Option<u8>,
    ) -> Nanos {
        let now = self.clock.now();
        let Some((tier, kind)) = self.frames.touch(frame, now) else {
            // Accessing a freed frame is a simulation bug; make it loud in
            // debug builds but charge nothing in release.
            debug_assert!(false, "access to freed {frame}");
            return Nanos::ZERO;
        };
        let tier_idx = tier.index();
        let cost = self.access_cost(frame, bytes, write, from_socket, tier_idx, kind);
        self.record_access(tier_idx, kind, bytes, write);
        self.clock.advance(cost);
        kloc_trace::charge(cost.as_nanos());
        cost
    }

    /// Charges a run of accesses with one clock advance and one trace
    /// charge at the end, instead of one of each per page. Each op's
    /// `last_access` stamp is taken at *batch start + cost of the
    /// preceding ops* — the instant the op would start if issued one at
    /// a time — and its cost runs through the same pipeline as
    /// [`MemorySystem::read`]/[`MemorySystem::write`], so the clock,
    /// every statistic, every frame column, and the trace-attributed
    /// nanoseconds land identical to the unbatched sequence (the clock
    /// advance and the trace charge are both additive).
    ///
    /// On tiers without an L4 cache the per-op cost is a pure function
    /// of (tier, kind, bytes, write), so a run with a common profile
    /// pays one cost computation for the whole group. With an L4 the
    /// cache is stateful per frame and every op is priced individually.
    pub fn access_batch(&mut self, from_socket: Option<u8>, ops: &[AccessOp]) -> Nanos {
        let base = self.clock.now();
        let mut total = Nanos::ZERO;
        // Memoized cost of the current (tier, kind, bytes, write) group.
        let mut group: Option<(usize, PageKind, u64, bool, Nanos)> = None;
        for op in ops {
            let Some((tier, kind)) = self.frames.touch(op.frame, base + total) else {
                debug_assert!(false, "access to freed {}", op.frame);
                continue;
            };
            let tier_idx = tier.index();
            let cost = match group {
                Some((t, k, b, w, c))
                    if t == tier_idx && k == kind && b == op.bytes && w == op.write =>
                {
                    c
                }
                _ => {
                    let c =
                        self.access_cost(op.frame, op.bytes, op.write, from_socket, tier_idx, kind);
                    group = if self.l4[tier_idx].is_some() {
                        // The L4 is stateful per frame: never reuse.
                        None
                    } else {
                        Some((tier_idx, kind, op.bytes, op.write, c))
                    };
                    c
                }
            };
            self.record_access(tier_idx, kind, op.bytes, op.write);
            total += cost;
        }
        self.clock.advance(total);
        kloc_trace::charge(total.as_nanos());
        total
    }

    /// Virtual cost of one access with the frame already resolved to
    /// (`tier_idx`, `kind`): L4 or tier spec, THP discount, cross-socket
    /// penalty, contention multiplier, in that order.
    fn access_cost(
        &mut self,
        frame: FrameId,
        bytes: u64,
        write: bool,
        from_socket: Option<u8>,
        tier_idx: usize,
        kind: PageKind,
    ) -> Nanos {
        let mut cost = if let Some(l4) = self.l4[tier_idx].as_mut() {
            l4.access(frame, bytes, write)
        } else {
            let spec = self.tiers[tier_idx].spec();
            if write {
                spec.write_cost(bytes)
            } else {
                spec.read_cost(bytes)
            }
        };

        // Transparent huge pages: larger TLB reach shaves part of the
        // per-access latency (paper §5's multi-page-size support).
        if kind == PageKind::AppHuge {
            let spec = self.tiers[tier_idx].spec();
            let discount = if write {
                spec.write_latency / 4
            } else {
                spec.read_latency / 4
            };
            cost = cost.saturating_sub(discount);
        }

        // Cross-socket penalty.
        if let Some(socket) = from_socket {
            if socket != self.tier_socket[tier_idx] {
                cost += REMOTE_ACCESS_PENALTY;
            }
        }

        // Contention multiplier.
        let milli = self.contention_milli[tier_idx];
        if milli != 1000 {
            cost = Nanos::new(cost.as_nanos() * milli / 1000);
        }
        cost
    }

    #[inline]
    fn record_access(&mut self, tier_idx: usize, kind: PageKind, bytes: u64, write: bool) {
        let ts = &mut self.stats.tiers[tier_idx];
        if write {
            ts.writes += 1;
            ts.bytes_written += bytes;
        } else {
            ts.reads += 1;
            ts.bytes_read += bytes;
        }
        self.stats.total_accesses += 1;
        if kind.is_kernel() {
            self.stats.kernel_accesses += 1;
        }
    }

    /// Migrates a frame to `to`, charging the migration cost model.
    ///
    /// # Errors
    /// * [`MemError::BadFrame`] — frame not allocated.
    /// * [`MemError::BadTier`] — unknown destination.
    /// * [`MemError::Pinned`] — the frame is not relocatable (slab page).
    /// * [`MemError::AlreadyResident`] — already on `to`.
    /// * [`MemError::TierFull`] — no room on `to` (including injected
    ///   exhaustion faults).
    /// * [`MemError::TierOffline`] — a fault window has `to` offline.
    /// * [`MemError::MigrationFault`] — an injected mid-copy failure;
    ///   the frame stays on its source tier.
    pub fn migrate(&mut self, frame: FrameId, to: TierId) -> Result<Nanos, MemError> {
        if to.index() >= self.tiers.len() {
            return Err(MemError::BadTier(to));
        }
        let (from, kind, pinned) = {
            let f = self.frames.get(frame).ok_or(MemError::BadFrame(frame))?;
            (f.tier, f.kind, f.pinned)
        };
        if pinned {
            return Err(MemError::Pinned(frame));
        }
        if from == to {
            return Err(MemError::AlreadyResident(frame, to));
        }
        self.fault_check_tier(to)?;
        self.fault_check_migrate(frame)?;
        self.tiers[to.index()].reserve()?;
        self.tiers[from.index()].release();

        let (mut cost, mut foreground) = {
            let src = self.tiers[from.index()].spec();
            let dst = self.tiers[to.index()].spec();
            (
                self.migration_cost.page_cost(src, dst),
                self.migration_cost
                    .foreground_cost(src, dst, self.cpu_parallelism),
            )
        };
        // A huge page moves more data per migration decision (scaled 4x
        // here; 512x in real 2 MB pages before scale compression).
        if kind == PageKind::AppHuge {
            cost = cost * 4;
            foreground = foreground * 4;
        }
        self.stats.tiers[from.index()].on_depart(kind);
        self.stats.tiers[to.index()].on_arrive(kind);
        if let Some(l4) = self.l4[from.index()].as_mut() {
            l4.invalidate(frame);
        }
        let moved = self.frames.record_migration(frame, to);
        debug_assert!(moved, "caller checked the frame exists");
        if kind.is_kernel() {
            // `from != to` was rejected above, so at most one arm fires.
            let tenant = self.frames.tenant_of_live(frame).unwrap_or_default();
            if from.index() == 0 {
                self.fast_kernel_dec(tenant);
            }
            if to.index() == 0 {
                self.fast_kernel_inc(tenant);
            }
        }
        self.migration_stats.record(kind, from, to, cost);
        // Migration's foreground stall is itself the charge; the
        // kloc_trace::charge below keeps the audit ledger square.
        // lint: charge-ok
        self.clock.advance(foreground);
        kloc_trace::charge(foreground.as_nanos());
        kloc_trace::emit(|| kloc_trace::Event::Migrate {
            t: self.clock.now().as_nanos(),
            frame: frame.0,
            from: u64::from(from.0),
            to: u64::from(to.0),
            kind: kind.to_string(),
            cost: cost.as_nanos(),
        });
        Ok(cost)
    }

    /// Whether any tier fault window (`Exhaust` or `Offline`) is open
    /// at the current virtual time. The kernel and policy consult this
    /// to switch reclaim and placement into QoS-ordered degraded mode
    /// (DESIGN.md §13); read-only, never consumes fault state.
    #[cfg(feature = "kfault")]
    pub fn tier_fault_active(&self) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|s| s.tier_fault_active(self.clock.now()))
    }

    /// No-op shim: fault injection is compiled out.
    #[cfg(not(feature = "kfault"))]
    #[inline(always)]
    pub fn tier_fault_active(&self) -> bool {
        false
    }

    /// Live-migrates resident frames off tiers covered by an active
    /// `Offline` fault window — the graceful-degradation path that
    /// turns a lost device into bounded migration traffic instead of
    /// stranding its frames behind [`MemError::TierOffline`] for the
    /// rest of the window (DESIGN.md §13).
    ///
    /// At most `budget_frames` frames move per call (clamped to at
    /// least 1, the usual panic→clamp convention); victims are taken
    /// in frame-table slot order so the pass is deterministic.
    /// Injected migration faults are retried with exponential backoff
    /// starting at `backoff_base` (clamped to at least 1 ns) and
    /// capped at `backoff_cap` (clamped to at least the base), each
    /// wait charged through [`MemorySystem::charge`], for up to
    /// `DRAIN_MAX_RETRIES` attempts per frame. The destination is the
    /// highest-index tier not itself offline; capacity pressure there
    /// ends the tier's pass early. Pinned frames (slab pages) are not
    /// relocatable and are skipped — resident accesses never consult
    /// the fault plan, so they stay readable in place.
    ///
    /// Returns the number of frames moved and emits one `drain` trace
    /// event per tier that did any work (moved a frame or absorbed a
    /// retry), so a faultless run's trace stays byte-identical.
    #[cfg(feature = "kfault")]
    pub fn drain_offline(
        &mut self,
        budget_frames: u64,
        backoff_base: Nanos,
        backoff_cap: Nanos,
    ) -> u64 {
        let mut budget = budget_frames.max(1);
        let base = Nanos::new(backoff_base.as_nanos().max(1));
        let cap = Nanos::new(backoff_cap.as_nanos().max(base.as_nanos()));
        let offline = match &self.fault {
            Some(s) => s.offline_tiers(self.clock.now()),
            None => return 0,
        };
        if offline.is_empty() {
            return 0;
        }
        let mut total_moved = 0u64;
        let mut total_retries = 0u64;
        for &tier in &offline {
            if budget == 0 {
                break;
            }
            // Highest-index healthy tier hosts the refugees (the slow
            // tier in the standard topology).
            let Some(dest) = (0..self.tiers.len())
                .rev()
                .map(|i| TierId(i as u8))
                .find(|t| !offline.contains(t))
            else {
                // Every tier is offline: nowhere to drain to.
                continue;
            };
            let started = self.clock.now();
            let victims: Vec<FrameId> = self
                .frames
                .iter()
                .filter(|f| f.tier == tier && !f.pinned)
                .map(|f| f.id())
                .take(usize::try_from(budget).unwrap_or(usize::MAX))
                .collect();
            let mut moved = 0u64;
            let mut retries = 0u64;
            'frames: for frame in victims {
                let mut attempt: u32 = 0;
                loop {
                    match self.migrate(frame, dest) {
                        Ok(_) => {
                            moved += 1;
                            budget -= 1;
                            break;
                        }
                        Err(MemError::MigrationFault(_)) if attempt + 1 < DRAIN_MAX_RETRIES => {
                            attempt += 1;
                            retries += 1;
                            let backoff = Nanos::new(
                                base.as_nanos()
                                    .saturating_mul(1 << (attempt - 1).min(32))
                                    .min(cap.as_nanos()),
                            );
                            self.charge(backoff);
                        }
                        Err(MemError::MigrationFault(_)) => {
                            self.drain_stats.failed += 1;
                            break;
                        }
                        // Destination full or itself faulted: this
                        // tier's pass cannot make progress.
                        Err(MemError::TierFull(_) | MemError::TierOffline(_)) => break 'frames,
                        // Pinned/freed races cannot occur within one
                        // pass; skip rather than wedge the drain.
                        Err(_) => break,
                    }
                }
            }
            if moved + retries > 0 {
                let left = self
                    .frames
                    .iter()
                    .filter(|f| f.tier == tier && !f.pinned)
                    .count() as u64;
                let cost = self.clock.now().saturating_sub(started);
                kloc_trace::emit(|| kloc_trace::Event::Drain {
                    t: self.clock.now().as_nanos(),
                    tier: u64::from(tier.0),
                    moved,
                    left,
                    retries,
                    cost: cost.as_nanos(),
                });
            }
            total_moved += moved;
            total_retries += retries;
        }
        self.drain_stats.drained += total_moved;
        self.drain_stats.retries += total_retries;
        if total_moved + total_retries > 0 {
            self.drain_stats.passes += 1;
        }
        total_moved
    }

    /// No-op shim: fault injection is compiled out.
    #[cfg(not(feature = "kfault"))]
    #[inline(always)]
    pub fn drain_offline(
        &mut self,
        _budget_frames: u64,
        _backoff_base: Nanos,
        _backoff_cap: Nanos,
    ) -> u64 {
        0
    }
}

#[cfg(feature = "ksan")]
impl MemorySystem {
    /// Audits the whole memory substrate: the frame table's internal
    /// invariants, and per-tier agreement between the capacity
    /// accounting and the frames actually resident on each tier (the
    /// structured form of the `release without reserve` debug assertion
    /// and the freed-frame access check). Observation only.
    pub fn ksan_audit(&self, out: &mut Vec<crate::ksan::Violation>) {
        use crate::ksan::Violation;
        self.frames.ksan_audit(out);
        let mut resident = vec![0u64; self.tiers.len()];
        for f in self.frames.iter() {
            match resident.get_mut(f.tier.index()) {
                Some(n) => *n += 1,
                None => out.push(Violation::new(
                    "FrameTable <-> MemorySystem.tiers",
                    format!("frame {}", f.id()),
                    "every live frame resides on a known tier",
                    format!("tier < {}", self.tiers.len()),
                    format!("{}", f.tier),
                )),
            }
        }
        for (i, alloc) in self.tiers.iter().enumerate() {
            if alloc.used_frames() != resident[i] {
                out.push(Violation::new(
                    "TierAllocator.used_frames <-> FrameTable",
                    format!("{}", alloc.id()),
                    "tier accounting equals the frames resident on the tier",
                    format!("{} resident frames", resident[i]),
                    format!("used_frames = {}", alloc.used_frames()),
                ));
            }
            if alloc.used_frames() > alloc.frame_capacity() {
                out.push(Violation::new(
                    "TierAllocator.used_frames <-> TierSpec.capacity",
                    format!("{}", alloc.id()),
                    "a tier never exceeds its capacity",
                    format!("<= {} frames", alloc.frame_capacity()),
                    format!("used_frames = {}", alloc.used_frames()),
                ));
            }
        }
        // Per-tenant fast-kernel residency: the incremental counters
        // must agree with a recount over the live frames.
        let mut by_tenant = vec![0u64; self.tenant_fast_kernel.len()];
        for f in self.frames.iter() {
            if !f.kind.is_kernel() || f.tier.index() != 0 {
                continue;
            }
            let t = self.frames.tenant_of_live(f.id()).unwrap_or_default();
            if by_tenant.len() <= t.index() {
                by_tenant.resize(t.index() + 1, 0);
            }
            by_tenant[t.index()] += 1;
        }
        for (i, &counted) in by_tenant.iter().enumerate() {
            let stored = self.tenant_fast_kernel.get(i).copied().unwrap_or(0);
            if stored != counted {
                out.push(Violation::new(
                    "MemorySystem.tenant_fast_kernel <-> FrameTable",
                    format!("tenant{i}"),
                    "per-tenant fast-kernel counter equals the resident recount",
                    format!("{counted} resident kernel frames on tier 0"),
                    format!("counter = {stored}"),
                ));
            }
        }
    }

    /// Corruption hook for sanitizer self-tests: desyncs tier 0's
    /// capacity accounting from the frame table.
    #[doc(hidden)]
    pub fn ksan_break_tier_accounting(&mut self) {
        self.tiers[0].ksan_break_accounting();
    }

    /// Corruption hook for sanitizer self-tests: skews the frame table's
    /// live counter.
    #[doc(hidden)]
    pub fn ksan_break_frame_live_count(&mut self) {
        self.frames.ksan_break_live_count();
    }

    /// Corruption hook for sanitizer self-tests: duplicates a free-list
    /// entry across the frame table's shards.
    #[doc(hidden)]
    pub fn ksan_break_shard_duplicate(&mut self) {
        self.frames.ksan_break_shard_duplicate();
    }

    /// Corruption hook for sanitizer self-tests: drops a free-list entry
    /// without fixing the shard accounting.
    #[doc(hidden)]
    pub fn ksan_break_shard_accounting(&mut self) {
        self.frames.ksan_break_shard_accounting();
    }

    /// Corruption hook for sanitizer self-tests: grows one frame-table
    /// SoA column out of step with the others.
    #[doc(hidden)]
    pub fn ksan_break_soa_column(&mut self) {
        self.frames.ksan_break_soa_column();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemorySystem {
        // 4 frames of fast memory over unbounded slow memory, 1:8.
        MemorySystem::two_tier(4 * crate::frame::PAGE_SIZE, 8)
    }

    #[test]
    fn allocate_spills_nothing_by_itself() {
        let mut m = small();
        for _ in 0..4 {
            m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        }
        assert_eq!(
            m.allocate(TierId::FAST, PageKind::AppData),
            Err(MemError::TierFull(TierId::FAST))
        );
        assert_eq!(m.stats().tier(TierId::FAST).alloc_failures, 1);
    }

    #[test]
    fn allocate_preferring_falls_through() {
        let mut m = small();
        for _ in 0..4 {
            m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        }
        let id = m
            .allocate_preferring(&[TierId::FAST, TierId::SLOW], PageKind::AppData)
            .unwrap();
        assert_eq!(m.tier_of(id), TierId::SLOW);
    }

    #[test]
    fn read_costs_more_on_slow_tier() {
        let mut m = small();
        let fast = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        let slow = m.allocate(TierId::SLOW, PageKind::AppData).unwrap();
        let cf = m.read(fast, 4096);
        let cs = m.read(slow, 4096);
        assert!(cs > cf * 4, "slow tier at 1:8 should be much slower");
    }

    #[test]
    fn clock_advances_on_access() {
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        let before = m.now();
        let cost = m.read(f, 64);
        assert_eq!(m.now(), before + cost);
    }

    #[test]
    fn migrate_moves_frame_and_counts() {
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        let cost = m.migrate(f, TierId::SLOW).unwrap();
        assert!(cost > Nanos::ZERO);
        assert_eq!(m.tier_of(f), TierId::SLOW);
        assert_eq!(m.migration_stats().demotions, 1);
        assert_eq!(m.frame(f).unwrap().migrations(), 1);
        // Round trip promotes.
        m.migrate(f, TierId::FAST).unwrap();
        assert_eq!(m.migration_stats().promotions, 1);
    }

    #[test]
    fn slab_pages_cannot_migrate() {
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::Slab).unwrap();
        assert_eq!(m.migrate(f, TierId::SLOW), Err(MemError::Pinned(f)));
    }

    #[test]
    fn migrate_to_same_tier_rejected() {
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        assert_eq!(
            m.migrate(f, TierId::FAST),
            Err(MemError::AlreadyResident(f, TierId::FAST))
        );
    }

    #[test]
    fn free_records_lifetime() {
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::Slab).unwrap();
        m.charge(Nanos::from_millis(36));
        m.free(f).unwrap();
        assert_eq!(
            m.stats().mean_lifetime(PageKind::Slab),
            Nanos::from_millis(36)
        );
        assert!(!m.is_live(f));
        assert_eq!(m.free(f), Err(MemError::BadFrame(f)));
    }

    #[test]
    fn free_releases_capacity() {
        let mut m = small();
        let ids: Vec<_> = (0..4)
            .map(|_| m.allocate(TierId::FAST, PageKind::AppData).unwrap())
            .collect();
        m.free(ids[0]).unwrap();
        assert!(m.allocate(TierId::FAST, PageKind::AppData).is_ok());
    }

    #[test]
    fn kernel_access_fraction_counts_kinds() {
        let mut m = small();
        let app = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        let pc = m.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        m.read(app, 64);
        m.read(pc, 64);
        m.write(pc, 64);
        assert!((m.stats().kernel_access_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn remote_access_pays_penalty() {
        let mut m = MemorySystem::numa_two_socket(1 << 20);
        let f = m.allocate(TierId(0), PageKind::AppData).unwrap();
        let local = m.read_from(0, f, 64);
        let remote = m.read_from(1, f, 64);
        assert_eq!(remote, local + REMOTE_ACCESS_PENALTY);
    }

    #[test]
    fn contention_inflates_cost() {
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        let base = m.read(f, 4096);
        m.set_contention(TierId::FAST, 2.0);
        let contended = m.read(f, 4096);
        assert_eq!(contended.as_nanos(), base.as_nanos() * 2);
    }

    #[test]
    fn three_tier_orders_by_speed() {
        let mut m = MemorySystem::three_tier(4 * crate::frame::PAGE_SIZE, 1 << 20, 8);
        assert_eq!(m.tier_count(), 3);
        let f0 = m.allocate(TierId(0), PageKind::AppData).unwrap();
        let f1 = m.allocate(TierId(1), PageKind::AppData).unwrap();
        let f2 = m.allocate(TierId(2), PageKind::AppData).unwrap();
        let c0 = m.read(f0, 4096);
        let c1 = m.read(f1, 4096);
        let c2 = m.read(f2, 4096);
        assert!(c0 < c1 && c1 < c2, "hbm < dram < slow: {c0} {c1} {c2}");
        // Waterfall demotion across all three tiers.
        m.migrate(f0, TierId(1)).unwrap();
        m.migrate(f0, TierId(2)).unwrap();
        assert_eq!(m.migration_stats().demotions, 2);
    }

    #[test]
    fn optane_mode_has_l4_caches() {
        let mut m = MemorySystem::optane_memory_mode(16 * crate::frame::PAGE_SIZE);
        let f = m.allocate(TierId(0), PageKind::AppData).unwrap();
        let miss = m.read(f, 64);
        let hit = m.read(f, 64);
        assert!(miss > hit);
        assert_eq!(m.l4_cache(TierId(0)).unwrap().hits(), 1);
        assert_eq!(m.socket_of(TierId(1)), 1);
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn tier_exhaust_fault_diverts_to_slow() {
        use crate::fault::TierFaultKind;
        let mut m = small();
        m.set_fault_plan(FaultPlan::new().with_tier_fault(
            TierId::FAST,
            TierFaultKind::Exhaust,
            Nanos::ZERO,
            None,
        ));
        assert_eq!(
            m.allocate(TierId::FAST, PageKind::AppData),
            Err(MemError::TierFull(TierId::FAST))
        );
        assert_eq!(m.stats().tier(TierId::FAST).alloc_failures, 1);
        let id = m
            .allocate_preferring(&[TierId::FAST, TierId::SLOW], PageKind::AppData)
            .unwrap();
        assert_eq!(m.tier_of(id), TierId::SLOW);
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn offline_tier_rejects_allocation_and_inbound_migration() {
        use crate::fault::TierFaultKind;
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        // Fast tier goes offline for a window; resident frames can still
        // leave, but nothing can be placed on it.
        m.set_fault_plan(FaultPlan::new().with_tier_fault(
            TierId::FAST,
            TierFaultKind::Offline,
            Nanos::ZERO,
            Some(Nanos::from_secs(1)),
        ));
        assert_eq!(
            m.allocate(TierId::FAST, PageKind::AppData),
            Err(MemError::TierOffline(TierId::FAST))
        );
        m.migrate(f, TierId::SLOW).unwrap();
        assert_eq!(
            m.migrate(f, TierId::FAST),
            Err(MemError::TierOffline(TierId::FAST))
        );
        // Window closes with the virtual clock; the tier recovers.
        m.charge(Nanos::from_secs(2));
        assert!(m.migrate(f, TierId::FAST).is_ok());
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn migration_fault_counts_and_leaves_frame_in_place() {
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        m.set_fault_plan(FaultPlan::new().with_migration_fault(Nanos::ZERO, 1));
        assert_eq!(m.migrate(f, TierId::SLOW), Err(MemError::MigrationFault(f)));
        assert_eq!(m.tier_of(f), TierId::FAST, "failed migration is a no-op");
        assert_eq!(m.migration_stats().failed, 1);
        assert_eq!(m.migration_stats().total(), 0);
        // The fault is consumed; the retry succeeds.
        assert!(m.migrate(f, TierId::SLOW).is_ok());
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn drain_offline_moves_relocatable_frames_and_skips_pinned() {
        use crate::fault::TierFaultKind;
        let mut m = small();
        let a = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        let b = m.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        let s = m.allocate(TierId::FAST, PageKind::Slab).unwrap();
        m.set_fault_plan(FaultPlan::new().with_tier_fault(
            TierId::FAST,
            TierFaultKind::Offline,
            Nanos::ZERO,
            Some(Nanos::from_secs(1)),
        ));
        let moved = m.drain_offline(128, Nanos::new(1_000), Nanos::new(8_000));
        assert_eq!(moved, 2, "both relocatable frames leave the tier");
        assert_eq!(m.tier_of(a), TierId::SLOW);
        assert_eq!(m.tier_of(b), TierId::SLOW);
        assert_eq!(m.tier_of(s), TierId::FAST, "pinned slab page stays");
        assert_eq!(m.drain_stats().drained, 2);
        assert_eq!(m.drain_stats().passes, 1);
        // The drained frames stay readable from their new home.
        assert!(m.read(a, 64) > Nanos::ZERO);
        // Nothing left to drain: further passes are no-ops.
        assert_eq!(m.drain_offline(128, Nanos::new(1_000), Nanos::new(8_000)), 0);
        assert_eq!(m.drain_stats().passes, 1);
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn drain_retries_migration_faults_with_charged_backoff() {
        use crate::fault::TierFaultKind;
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        m.set_fault_plan(
            FaultPlan::new()
                .with_tier_fault(
                    TierId::FAST,
                    TierFaultKind::Offline,
                    Nanos::ZERO,
                    Some(Nanos::from_secs(1)),
                )
                .with_migration_fault(Nanos::ZERO, 2),
        );
        let before = m.now();
        let moved = m.drain_offline(128, Nanos::new(1_000), Nanos::new(8_000));
        assert_eq!(moved, 1, "frame lands on slow after two retries");
        assert_eq!(m.tier_of(f), TierId::SLOW);
        assert_eq!(m.drain_stats().retries, 2);
        assert_eq!(m.drain_stats().failed, 0);
        // Backoffs (1µs then 2µs) were charged to the virtual clock.
        assert!(
            m.now().saturating_sub(before) >= Nanos::new(3_000),
            "backoff waits must advance virtual time"
        );
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn drain_budget_clamps_to_one_and_bounds_a_pass() {
        use crate::fault::TierFaultKind;
        let mut m = small();
        let a = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        let b = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        m.set_fault_plan(FaultPlan::new().with_tier_fault(
            TierId::FAST,
            TierFaultKind::Offline,
            Nanos::ZERO,
            Some(Nanos::from_secs(1)),
        ));
        // Zero budget clamps to 1 (panic→clamp convention): exactly one
        // frame moves per pass, in frame-table order.
        assert_eq!(m.drain_offline(0, Nanos::ZERO, Nanos::ZERO), 1);
        assert_eq!(m.tier_of(a), TierId::SLOW);
        assert_eq!(m.tier_of(b), TierId::FAST);
        assert_eq!(m.drain_offline(1, Nanos::ZERO, Nanos::ZERO), 1);
        assert_eq!(m.tier_of(b), TierId::SLOW);
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn drain_without_offline_window_is_inert() {
        use crate::fault::TierFaultKind;
        let mut m = small();
        let f = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        // No plan at all.
        assert_eq!(m.drain_offline(128, Nanos::ZERO, Nanos::ZERO), 0);
        // Exhaust windows do not drain — the tier still holds its data.
        m.set_fault_plan(FaultPlan::new().with_tier_fault(
            TierId::FAST,
            TierFaultKind::Exhaust,
            Nanos::ZERO,
            None,
        ));
        assert_eq!(m.drain_offline(128, Nanos::ZERO, Nanos::ZERO), 0);
        assert_eq!(m.tier_of(f), TierId::FAST);
        assert_eq!(*m.drain_stats(), DrainStats::default());
        assert!(m.tier_fault_active(), "exhaust still reads as a fault");
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn all_tiers_offline_surfaces_tier_offline_not_oom() {
        use crate::fault::TierFaultKind;
        let mut m = small();
        m.set_fault_plan(
            FaultPlan::new()
                .with_tier_fault(TierId::FAST, TierFaultKind::Offline, Nanos::ZERO, None)
                .with_tier_fault(TierId::SLOW, TierFaultKind::Offline, Nanos::ZERO, None),
        );
        // The degradation cause outranks plain capacity pressure.
        assert_eq!(
            m.allocate_preferring(&[TierId::FAST, TierId::SLOW], PageKind::AppData),
            Err(MemError::TierOffline(TierId::FAST))
        );
        // Nowhere to drain to either: the pass is a no-op.
        assert_eq!(m.drain_offline(128, Nanos::ZERO, Nanos::ZERO), 0);
    }

    #[cfg(feature = "kfault")]
    #[test]
    fn disk_and_crash_hooks_consume_plan() {
        use crate::fault::CrashPoint;
        let mut m = small();
        m.set_fault_plan(
            FaultPlan::new()
                .with_disk_fault(Nanos::ZERO, DiskOp::Write, 1)
                .with_crash(CrashPoint::Commit {
                    index: 2,
                    after_blocks: 1,
                }),
        );
        assert!(!m.fault_take_disk(DiskOp::Read));
        assert!(m.fault_take_disk(DiskOp::Write));
        assert!(!m.fault_take_disk(DiskOp::Write), "count drained");
        assert_eq!(m.fault_crash_at_commit(1), None);
        assert_eq!(m.fault_crash_at_commit(2), Some(1));
        assert!(!m.fault_crash_due(), "no time crash scheduled");
    }

    #[test]
    fn empty_fault_plan_is_inert() {
        // Compiles with or without the kfault feature: the shim (or an
        // empty plan) must never perturb behavior.
        let mut m = small();
        m.set_fault_plan(FaultPlan::new());
        assert!(!m.fault_take_disk(DiskOp::Fsync));
        assert!(!m.fault_crash_due());
        assert_eq!(m.fault_crash_at_commit(0), None);
        assert!(m.allocate(TierId::FAST, PageKind::AppData).is_ok());
    }

    #[test]
    fn tenant_counters_track_alloc_restamp_migrate_free() {
        let mut m = small();
        let t1 = TenantId(1);
        // Kernel page on fast: born attributed to the default tenant.
        let f = m.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        assert_eq!(m.tenant_fast_kernel(TenantId::DEFAULT), 1);
        assert_eq!(m.frame_tenant(f), Some(TenantId::DEFAULT));
        // Restamp moves the residency between counters.
        m.set_frame_tenant(f, t1).unwrap();
        assert_eq!(m.frame_tenant(f), Some(t1));
        assert_eq!(m.tenant_fast_kernel(TenantId::DEFAULT), 0);
        assert_eq!(m.tenant_fast_kernel(t1), 1);
        // Demotion leaves the fast tier; promotion returns.
        m.migrate(f, TierId::SLOW).unwrap();
        assert_eq!(m.tenant_fast_kernel(t1), 0);
        m.migrate(f, TierId::FAST).unwrap();
        assert_eq!(m.tenant_fast_kernel(t1), 1);
        // Free releases the residency.
        m.free(f).unwrap();
        assert_eq!(m.tenant_fast_kernel(t1), 0);
        // App pages never count toward the kernel-object budget.
        let app = m.allocate(TierId::FAST, PageKind::AppData).unwrap();
        m.set_frame_tenant(app, t1).unwrap();
        assert_eq!(m.tenant_fast_kernel(t1), 0);
        // Unknown tenants read as zero; stale frames are rejected.
        assert_eq!(m.tenant_fast_kernel(TenantId(99)), 0);
        assert_eq!(m.set_frame_tenant(f, t1), Err(MemError::BadFrame(f)));
        assert_eq!(m.frame_tenant(f), None);
    }

    #[test]
    fn migration_cost_model_is_configurable() {
        let mut m = small();
        m.set_migration_cost(MigrationCost::parallel());
        let f = m.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        let par = m.migrate(f, TierId::SLOW).unwrap();
        let mut m2 = small();
        let f2 = m2.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        let seq = m2.migrate(f2, TierId::SLOW).unwrap();
        assert!(par < seq);
    }

    /// Runs `ops` through one system a call at a time and through a
    /// twin in one `access_batch`, then asserts total cost, clock,
    /// stats, and every frame's `last_access` stamp agree exactly.
    fn assert_batch_identical(mut a: MemorySystem, mut b: MemorySystem, ops: &[AccessOp]) {
        let mut serial = Nanos::ZERO;
        for op in ops {
            serial += if op.write {
                a.write_from(0, op.frame, op.bytes)
            } else {
                a.read_from(0, op.frame, op.bytes)
            };
        }
        let batched = b.access_batch(Some(0), ops);
        assert_eq!(serial, batched, "total cost");
        assert_eq!(a.now(), b.now(), "clock");
        assert_eq!(a.stats(), b.stats(), "stats");
        for op in ops {
            assert_eq!(
                a.last_access_if_live(op.frame),
                b.last_access_if_live(op.frame),
                "{} last_access",
                op.frame
            );
        }
    }

    #[test]
    fn access_batch_matches_serial_accesses() {
        let setup = || {
            let mut m = small();
            let f0 = m.allocate(TierId::FAST, PageKind::PageCache).unwrap();
            let f1 = m.allocate(TierId::SLOW, PageKind::PageCache).unwrap();
            let f2 = m.allocate(TierId::SLOW, PageKind::Slab).unwrap();
            m.set_contention(TierId::SLOW, 1.5);
            (m, [f0, f1, f2])
        };
        let (a, [f0, f1, f2]) = setup();
        let (b, _) = setup();
        let ops = [
            AccessOp::read(f1, 4096),
            AccessOp::read(f1, 4096), // same profile: memoized group
            AccessOp::write(f0, 4096),
            AccessOp::read(f2, 64),
            AccessOp::read(f1, 4096), // profile changed back: re-priced
        ];
        assert_batch_identical(a, b, &ops);
    }

    #[test]
    fn access_batch_matches_serial_with_l4() {
        // The Optane L4 is stateful per frame, so the batch must price
        // every op individually — including repeated same-frame hits.
        let setup = || {
            let mut m = MemorySystem::optane_memory_mode(2 * crate::frame::PAGE_SIZE);
            let f0 = m.allocate(TierId(0), PageKind::PageCache).unwrap();
            let f1 = m.allocate(TierId(0), PageKind::PageCache).unwrap();
            (m, [f0, f1])
        };
        let (a, [f0, f1]) = setup();
        let (b, _) = setup();
        let ops = [
            AccessOp::read(f0, 4096),
            AccessOp::read(f0, 4096),
            AccessOp::write(f1, 4096),
            AccessOp::read(f0, 4096),
        ];
        assert_batch_identical(a, b, &ops);
    }
}
