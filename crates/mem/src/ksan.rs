//! KSAN: the kernel-state invariant sanitizer.
//!
//! The simulator maintains several pairs of structures that must agree
//! at every operation boundary — the frame table and the per-tier
//! capacity accounting, the page-cache reverse map and the page LRU, the
//! kmap's knode slots and its activation indexes. Each of those pairs is
//! kept consistent *incrementally* (no structure is ever rebuilt from
//! another), which is exactly the kind of bookkeeping that rots silently
//! when an edge case forgets one side of an update.
//!
//! With the `ksan` feature enabled, every audited structure exposes a
//! `ksan_audit` method that cross-checks its invariants and reports
//! disagreements as structured [`Violation`]s; the sim engine runs the
//! full audit at a configurable operation interval and panics via
//! [`enforce`] on the first violation. Audits are **observation only**:
//! they never mutate simulation state (not even diagnostic counters), so
//! a run with `ksan` on is byte-identical to a run with it off.
//!
//! This module only exists when the `ksan` feature is enabled, so release
//! builds carry no sanitizer code at all.

use std::fmt;

use crate::clock::Nanos;

/// One detected invariant violation: which structures disagree, about
/// which object, and what each side believes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The structure pair (or single structure) that disagrees, e.g.
    /// `"FrameTable.live <-> FrameTable.slots"`.
    pub structures: String,
    /// The object the disagreement is about, e.g. `"frame f3"` or
    /// `"inode ino7"`.
    pub object: String,
    /// The invariant that failed, in words.
    pub invariant: String,
    /// What the authoritative side records.
    pub expected: String,
    /// What the other side records.
    pub actual: String,
}

impl Violation {
    /// Builds a violation; arguments mirror the field order.
    pub fn new(
        structures: impl Into<String>,
        object: impl Into<String>,
        invariant: impl Into<String>,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) -> Self {
        Violation {
            structures: structures.into(),
            object: object.into(),
            invariant: invariant.into(),
            expected: expected.into(),
            actual: actual.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ksan: {structures}\n  object:    {object}\n  invariant: {invariant}\n  expected:  {expected}\n  actual:    {actual}",
            structures = self.structures,
            object = self.object,
            invariant = self.invariant,
            expected = self.expected,
            actual = self.actual,
        )
    }
}

/// Panics with a structured report if `violations` is non-empty. The
/// report lists every violation found in this audit pass, not just the
/// first, so a cascading desync is visible in one failure.
///
/// # Panics
/// Panics when any violation is present — that is the point.
pub fn enforce(context: &str, violations: &[Violation]) {
    if violations.is_empty() {
        return;
    }
    let mut report = format!(
        "ksan audit failed ({context}): {n} violation(s)\n",
        n = violations.len()
    );
    for v in violations {
        report.push_str(&format!("{v}\n"));
    }
    panic!("{report}");
}

/// Watches the virtual clock for monotonicity. The simulation's clock
/// only ever advances; a regression means some component restored or
/// rebuilt clock state it should not own.
#[derive(Debug, Default)]
pub struct ClockMonitor {
    last: Option<Nanos>,
}

impl ClockMonitor {
    /// Creates a monitor that accepts any first observation.
    pub fn new() -> Self {
        ClockMonitor::default()
    }

    /// Records `now`, reporting a violation if the clock went backwards.
    pub fn observe(&mut self, now: Nanos, out: &mut Vec<Violation>) {
        if let Some(last) = self.last {
            if now < last {
                out.push(Violation::new(
                    "Clock",
                    "virtual clock",
                    "virtual time is monotonically non-decreasing",
                    format!(">= {last}"),
                    format!("{now}"),
                ));
            }
        }
        self.last = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforce_passes_empty() {
        enforce("test", &[]);
    }

    #[test]
    #[should_panic(expected = "ksan audit failed (test): 1 violation(s)")]
    fn enforce_panics_with_report() {
        let v = Violation::new("A <-> B", "frame f1", "agreement", "1", "2");
        enforce("test", &[v]);
    }

    #[test]
    fn violation_renders_all_fields() {
        let v = Violation::new("A <-> B", "frame f1", "agreement", "1", "2");
        let s = v.to_string();
        for needle in ["A <-> B", "frame f1", "agreement"] {
            assert!(s.contains(needle), "{s}");
        }
    }

    #[test]
    fn clock_monitor_flags_regression_only() {
        let mut mon = ClockMonitor::new();
        let mut out = Vec::new();
        mon.observe(Nanos::new(5), &mut out);
        mon.observe(Nanos::new(5), &mut out);
        mon.observe(Nanos::new(9), &mut out);
        assert!(out.is_empty());
        mon.observe(Nanos::new(8), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].structures, "Clock");
    }
}
