//! Property-based tests for the memory substrate: the frame table and
//! per-tier capacity accounting must agree under arbitrary interleavings
//! of allocate / free / migrate / access.

use proptest::prelude::*;

use kloc_mem::{FrameId, MemError, MemorySystem, PageKind, TierId, PAGE_SIZE};

#[derive(Debug, Clone)]
enum Op {
    Alloc(u8, PageKind),
    Free(usize),
    Migrate(usize, u8),
    Read(usize, u16),
    Write(usize, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let kind = prop_oneof![
        Just(PageKind::AppData),
        Just(PageKind::PageCache),
        Just(PageKind::Slab),
        Just(PageKind::KernelVma),
        Just(PageKind::Vmalloc),
    ];
    prop_oneof![
        (0u8..2, kind).prop_map(|(t, k)| Op::Alloc(t, k)),
        (0usize..64).prop_map(Op::Free),
        (0usize..64, 0u8..2).prop_map(|(i, t)| Op::Migrate(i, t)),
        (0usize..64, 1u16..4096).prop_map(|(i, b)| Op::Read(i, b)),
        (0usize..64, 1u16..4096).prop_map(|(i, b)| Op::Write(i, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Capacity accounting never drifts from the live-frame model, frames
    /// are never double-freed, and pinned pages never move.
    #[test]
    fn frame_table_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let fast_frames = 8u64;
        let mut mem = MemorySystem::two_tier(fast_frames * PAGE_SIZE, 8);
        // Model: (frame, tier, kind) for every live frame.
        let mut model: Vec<(FrameId, TierId, PageKind)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(t, kind) => {
                    let tier = TierId(t);
                    match mem.allocate(tier, kind) {
                        Ok(id) => model.push((id, tier, kind)),
                        Err(MemError::TierFull(f)) => {
                            prop_assert_eq!(f, tier);
                            let live_on = model.iter().filter(|(_, mt, _)| *mt == tier).count();
                            prop_assert_eq!(live_on as u64, fast_frames,
                                "tier reported full but model disagrees");
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Free(i) => {
                    if model.is_empty() { continue; }
                    let (id, _, _) = model.remove(i % model.len());
                    prop_assert!(mem.free(id).is_ok());
                    prop_assert_eq!(mem.free(id), Err(MemError::BadFrame(id)));
                }
                Op::Migrate(i, t) => {
                    if model.is_empty() { continue; }
                    let idx = i % model.len();
                    let (id, tier, kind) = model[idx];
                    let to = TierId(t);
                    match mem.migrate(id, to) {
                        Ok(_) => {
                            prop_assert!(kind.relocatable());
                            prop_assert_ne!(tier, to);
                            model[idx].1 = to;
                        }
                        Err(MemError::Pinned(_)) => prop_assert!(!kind.relocatable()),
                        Err(MemError::AlreadyResident(_, _)) => prop_assert_eq!(tier, to),
                        Err(MemError::TierFull(_)) => prop_assert_eq!(to, TierId::FAST),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Read(i, b) => {
                    if model.is_empty() { continue; }
                    let (id, _, _) = model[i % model.len()];
                    let before = mem.now();
                    let cost = mem.read(id, b as u64);
                    prop_assert_eq!(mem.now(), before + cost);
                }
                Op::Write(i, b) => {
                    if model.is_empty() { continue; }
                    let (id, _, _) = model[i % model.len()];
                    mem.write(id, b as u64);
                }
            }

            // Invariants checked after every step.
            prop_assert_eq!(mem.live_frames(), model.len());
            for &(id, tier, kind) in &model {
                prop_assert_eq!(mem.tier_of(id), tier);
                prop_assert_eq!(mem.frame(id).unwrap().kind(), kind);
            }
            let fast_used = mem.tier_alloc(TierId::FAST).unwrap().used_frames();
            let model_fast = model.iter().filter(|(_, t, _)| *t == TierId::FAST).count() as u64;
            prop_assert_eq!(fast_used, model_fast);
            prop_assert!(fast_used <= fast_frames);
        }
    }

    /// Residency statistics always sum to the number of live frames.
    #[test]
    fn residency_stats_sum_to_live(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut mem = MemorySystem::two_tier(16 * PAGE_SIZE, 4);
        let mut live: Vec<FrameId> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(t, k) => {
                    if let Ok(id) = mem.allocate(TierId(t), k) {
                        live.push(id);
                    }
                }
                Op::Free(i)
                    if !live.is_empty() => {
                        let id = live.remove(i % live.len());
                        mem.free(id).unwrap();
                    }
                Op::Migrate(i, t)
                    if !live.is_empty() => {
                        let id = live[i % live.len()];
                        let _ = mem.migrate(id, TierId(t));
                    }
                _ => {}
            }
            let resident: u64 = (0..mem.tier_count())
                .map(|i| mem.stats().tier(TierId(i as u8)).frames_resident)
                .sum();
            prop_assert_eq!(resident as usize, live.len());
        }
    }

    /// The clock never runs backwards and costs are monotone in bytes.
    #[test]
    fn access_cost_monotone_in_bytes(bytes in 1u64..65536) {
        let mut mem = MemorySystem::two_tier(16 * PAGE_SIZE, 8);
        let f = mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
        let small = mem.read(f, bytes);
        let big = mem.read(f, bytes * 2);
        prop_assert!(big >= small);
    }
}
