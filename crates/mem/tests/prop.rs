//! Randomized model tests for the memory substrate: the frame table and
//! per-tier capacity accounting must agree under arbitrary interleavings
//! of allocate / free / migrate / access.
//!
//! Sequences are generated from the in-tree seeded [`SplitMix64`] PRNG
//! (fixed seeds, so failures reproduce exactly) instead of an external
//! property-testing crate.

use kloc_mem::{FrameId, MemError, MemorySystem, PageKind, SplitMix64, TierId, PAGE_SIZE};

#[derive(Debug, Clone)]
enum Op {
    Alloc(u8, PageKind),
    Free(usize),
    Migrate(usize, u8),
    Read(usize, u16),
    Write(usize, u16),
}

const KINDS: [PageKind; 5] = [
    PageKind::AppData,
    PageKind::PageCache,
    PageKind::Slab,
    PageKind::KernelVma,
    PageKind::Vmalloc,
];

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_below(5) {
        0 => Op::Alloc(
            rng.gen_below(2) as u8,
            KINDS[rng.gen_below(KINDS.len() as u64) as usize],
        ),
        1 => Op::Free(rng.gen_below(64) as usize),
        2 => Op::Migrate(rng.gen_below(64) as usize, rng.gen_below(2) as u8),
        3 => Op::Read(rng.gen_below(64) as usize, rng.gen_range(1..4096) as u16),
        _ => Op::Write(rng.gen_below(64) as usize, rng.gen_range(1..4096) as u16),
    }
}

fn gen_ops(rng: &mut SplitMix64, min: u64, max: u64) -> Vec<Op> {
    (0..rng.gen_range(min..max)).map(|_| gen_op(rng)).collect()
}

/// Capacity accounting never drifts from the live-frame model, frames
/// are never double-freed, and pinned pages never move.
#[test]
fn frame_table_matches_model() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(0x000F_7A3E_0000 + case);
        let ops = gen_ops(&mut rng, 1, 200);

        let fast_frames = 8u64;
        let mut mem = MemorySystem::two_tier(fast_frames * PAGE_SIZE, 8);
        // Model: (frame, tier, kind) for every live frame.
        let mut model: Vec<(FrameId, TierId, PageKind)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(t, kind) => {
                    let tier = TierId(t);
                    match mem.allocate(tier, kind) {
                        Ok(id) => model.push((id, tier, kind)),
                        Err(MemError::TierFull(f)) => {
                            assert_eq!(f, tier);
                            let live_on = model.iter().filter(|(_, mt, _)| *mt == tier).count();
                            assert_eq!(
                                live_on as u64, fast_frames,
                                "case {case}: tier reported full but model disagrees"
                            );
                        }
                        Err(e) => panic!("case {case}: {e}"),
                    }
                }
                Op::Free(i) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (id, _, _) = model.remove(i % model.len());
                    assert!(mem.free(id).is_ok());
                    assert_eq!(mem.free(id), Err(MemError::BadFrame(id)));
                }
                Op::Migrate(i, t) => {
                    if model.is_empty() {
                        continue;
                    }
                    let idx = i % model.len();
                    let (id, tier, kind) = model[idx];
                    let to = TierId(t);
                    match mem.migrate(id, to) {
                        Ok(_) => {
                            assert!(kind.relocatable());
                            assert_ne!(tier, to);
                            model[idx].1 = to;
                        }
                        Err(MemError::Pinned(_)) => assert!(!kind.relocatable()),
                        Err(MemError::AlreadyResident(_, _)) => assert_eq!(tier, to),
                        Err(MemError::TierFull(_)) => assert_eq!(to, TierId::FAST),
                        Err(e) => panic!("case {case}: {e}"),
                    }
                }
                Op::Read(i, b) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (id, _, _) = model[i % model.len()];
                    let before = mem.now();
                    let cost = mem.read(id, b as u64);
                    assert_eq!(mem.now(), before + cost);
                }
                Op::Write(i, b) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (id, _, _) = model[i % model.len()];
                    mem.write(id, b as u64);
                }
            }

            // Invariants checked after every step.
            assert_eq!(mem.live_frames(), model.len());
            for &(id, tier, kind) in &model {
                assert_eq!(mem.tier_of(id), tier);
                assert_eq!(mem.frame(id).unwrap().kind(), kind);
            }
            let fast_used = mem.tier_alloc(TierId::FAST).unwrap().used_frames();
            let model_fast = model.iter().filter(|(_, t, _)| *t == TierId::FAST).count() as u64;
            assert_eq!(fast_used, model_fast);
            assert!(fast_used <= fast_frames);
        }
    }
}

/// Residency statistics always sum to the number of live frames.
#[test]
fn residency_stats_sum_to_live() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(0xBEE5_0000 + case);
        let ops = gen_ops(&mut rng, 1, 150);

        let mut mem = MemorySystem::two_tier(16 * PAGE_SIZE, 4);
        let mut live: Vec<FrameId> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(t, k) => {
                    if let Ok(id) = mem.allocate(TierId(t), k) {
                        live.push(id);
                    }
                }
                Op::Free(i) if !live.is_empty() => {
                    let id = live.remove(i % live.len());
                    mem.free(id).unwrap();
                }
                Op::Migrate(i, t) if !live.is_empty() => {
                    let id = live[i % live.len()];
                    let _ = mem.migrate(id, TierId(t));
                }
                _ => {}
            }
            let resident: u64 = (0..mem.tier_count())
                .map(|i| mem.stats().tier(TierId(i as u8)).frames_resident)
                .sum();
            assert_eq!(resident as usize, live.len(), "case {case}");
        }
    }
}

/// The clock never runs backwards and costs are monotone in bytes.
#[test]
fn access_cost_monotone_in_bytes() {
    let mut rng = SplitMix64::seed_from_u64(0xC0517);
    for _ in 0..256 {
        let bytes = rng.gen_range(1..65536);
        let mut mem = MemorySystem::two_tier(16 * PAGE_SIZE, 8);
        let f = mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
        let small = mem.read(f, bytes);
        let big = mem.read(f, bytes * 2);
        assert!(big >= small);
    }
}
