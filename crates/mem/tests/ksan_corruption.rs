//! Corruption-injection tests: desync each audited structure pair in the
//! memory substrate and assert the sanitizer reports exactly that pair.
//!
//! Gated on the `ksan` feature (see `[[test]]` in Cargo.toml); run with
//! `cargo test -p kloc-mem --features ksan`.

use kloc_mem::ksan::{enforce, ClockMonitor, Violation};
use kloc_mem::{MemorySystem, Nanos, PageKind, TierId, PAGE_SIZE};

fn audited(mem: &MemorySystem) -> Vec<Violation> {
    let mut out = Vec::new();
    mem.ksan_audit(&mut out);
    out
}

fn small() -> MemorySystem {
    let mut mem = MemorySystem::two_tier(4 * PAGE_SIZE, 8);
    for _ in 0..3 {
        mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
    }
    mem.allocate(TierId::SLOW, PageKind::PageCache).unwrap();
    mem
}

#[test]
fn clean_system_audits_clean() {
    let mem = small();
    assert_eq!(audited(&mem), vec![]);
}

#[test]
fn frame_table_live_count_desync_is_caught() {
    let mut mem = small();
    mem.ksan_break_frame_live_count();
    let out = audited(&mem);
    assert!(
        out.iter()
            .any(|v| v.structures == "FrameTable.live <-> FrameTable.ids"),
        "{out:#?}"
    );
    // The skewed live counter also breaks the slot-space partition.
    assert!(
        out.iter()
            .any(|v| v.structures == "FrameTable.free <-> FrameTable.ids"),
        "{out:#?}"
    );
}

/// A system with free-list population: allocate then free some frames so
/// the sharded free lists hold entries.
fn churned() -> MemorySystem {
    let mut mem = MemorySystem::two_tier(16 * PAGE_SIZE, 8);
    let ids: Vec<_> = (0..8)
        .map(|_| mem.allocate(TierId::FAST, PageKind::AppData).unwrap())
        .collect();
    for id in &ids[2..6] {
        mem.free(*id).unwrap();
    }
    mem
}

#[test]
fn churned_system_audits_clean() {
    assert_eq!(audited(&churned()), vec![]);
}

#[test]
fn shard_free_list_duplicate_is_caught() {
    let mut mem = churned();
    mem.ksan_break_shard_duplicate();
    let out = audited(&mem);
    assert!(
        out.iter()
            .any(|v| v.structures == "ShardedFreeLists disjointness"),
        "{out:#?}"
    );
}

#[test]
fn shard_accounting_desync_is_caught() {
    let mut mem = churned();
    mem.ksan_break_shard_accounting();
    let out = audited(&mem);
    // The free total still matches the slot space (the counter was not
    // touched), but the lists no longer hold what the counter claims.
    assert!(
        out.iter()
            .any(|v| v.structures == "ShardedFreeLists occupancy"),
        "{out:#?}"
    );
}

#[test]
fn soa_column_length_desync_is_caught() {
    let mut mem = churned();
    mem.ksan_break_soa_column();
    let out = audited(&mem);
    assert!(
        out.iter()
            .any(|v| v.structures == "FrameTable SoA columns" && v.object.contains("accesses")),
        "{out:#?}"
    );
}

#[test]
fn tier_accounting_desync_is_caught() {
    let mut mem = small();
    mem.ksan_break_tier_accounting();
    let out = audited(&mem);
    assert_eq!(out.len(), 1, "{out:#?}");
    assert_eq!(
        out[0].structures,
        "TierAllocator.used_frames <-> FrameTable"
    );
    assert_eq!(out[0].object, "tier0");
    assert!(out[0].expected.contains("3 resident frames"), "{out:#?}");
    assert!(out[0].actual.contains("used_frames = 4"), "{out:#?}");
}

#[test]
#[should_panic(expected = "TierAllocator.used_frames <-> FrameTable")]
fn enforce_panics_naming_the_desynced_pair() {
    let mut mem = small();
    mem.ksan_break_tier_accounting();
    enforce("corruption test", &audited(&mem));
}

#[test]
fn clock_regression_is_caught() {
    let mut mon = ClockMonitor::new();
    let mut out = Vec::new();
    mon.observe(Nanos::new(100), &mut out);
    mon.observe(Nanos::new(40), &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].structures, "Clock");
    assert!(out[0].actual.contains("40"), "{out:#?}");
}
