//! Redis model (paper Table 3).
//!
//! Sixteen in-memory key-value instances serving requests over sockets
//! (75 % sets / 25 % gets) and periodically checkpointing their store to
//! a dump file on disk. The paper highlights two KLOC-relevant
//! behaviours (§3.1, §7.1): a significant footprint of ingress/egress
//! socket buffers (whose placement KLOCs prioritize), and page-cache
//! pages from checkpoints of *large, quickly-cold* files (which KLOCs
//! rapidly demote — the source of the 2.2-2.7x Redis wins).

use crate::rng::WorkloadRng;

use kloc_kernel::hooks::{CpuId, Ctx};
use kloc_kernel::{Fd, Kernel, KernelError};
use kloc_mem::{Nanos, PAGE_SIZE};

use crate::keygen::Zipfian;
use crate::scale::Scale;
use crate::spec::{AppMemory, Workload};

const REQUEST_BYTES: u64 = 256;
const RESPONSE_BYTES: u64 = 2048;
/// Client requests arrive in pipelined bursts (redis-benchmark style),
/// so ingress socket buffers queue up and form sustained kernel-object
/// memory — the paper's "significant number of kernel object pages for
/// ingress and egress socket buffers" (§3.1).
const PIPELINE: u64 = 4;

/// Per-op application think time (hash lookup, encoding).
const THINK: Nanos = Nanos::new(450);

/// Redis persistence mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persistence {
    /// Periodic RDB snapshots: each BGSAVE writes the whole store to a
    /// fresh dump file and deletes the previous one (the paper's
    /// configuration: "periodically checkpoints to disk").
    Rdb,
    /// Append-only file: every set appends to a per-instance log that is
    /// periodically rewritten — a showcase for member-granular demotion
    /// (the AOF's old pages go cold while its tail stays hot).
    Aof,
}

#[derive(Debug)]
struct Instance {
    sock: Fd,
    store: AppMemory,
    dump_serial: u64,
    /// Requests delivered but not yet consumed (pipelining).
    queued: u64,
    /// Append-only file (AOF mode).
    aof: Option<Fd>,
    aof_offset: u64,
}

/// The Redis workload.
#[derive(Debug)]
pub struct Redis {
    scale: Scale,
    zipf: Zipfian,
    rng: WorkloadRng,
    persistence: Persistence,
    instances: Vec<Instance>,
    /// Checkpoint one instance every this many global operations
    /// (scaled so each instance checkpoints a few times per run, as with
    /// periodic `save` rules in a real deployment).
    checkpoint_every: u64,
    ops_done: u64,
    checkpoints: u64,
}

impl Redis {
    /// Creates the workload at `scale` with RDB snapshots (the paper's
    /// configuration).
    pub fn new(scale: &Scale) -> Self {
        Redis::with_persistence(scale, Persistence::Rdb)
    }

    /// Creates the workload with an explicit persistence mode.
    pub fn with_persistence(scale: &Scale, persistence: Persistence) -> Self {
        let n_keys = (scale.data_bytes / 1024).max(16);
        Redis {
            zipf: Zipfian::new(n_keys),
            rng: WorkloadRng::seed_from_u64(scale.seed ^ 0x8ED15),
            persistence,
            instances: Vec::new(),
            checkpoint_every: (scale.ops / 60).max(50),
            ops_done: 0,
            checkpoints: 0,
            scale: scale.clone(),
        }
    }

    /// Checkpoints taken so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Store pages per instance.
    fn pages_per_instance(&self) -> u64 {
        // Paper: 14 GB resident for a 40 GB-class config -> ~data/3.
        (self.scale.data_bytes / PAGE_SIZE / 3 / self.scale.threads as u64).max(4)
    }

    /// BGREWRITEAOF: write a compacted log and delete the old one.
    fn rewrite_aof(
        &mut self,
        k: &mut Kernel,
        ctx: &mut Ctx<'_>,
        idx: usize,
    ) -> Result<(), KernelError> {
        let serial = self.instances[idx].dump_serial;
        let new_path = format!("/redis/aof{idx}_r{serial}");
        let fd = k.create(ctx, &new_path)?;
        // Compacted log ~ one entry per store page.
        let pages = self.instances[idx].store.pages() / 4;
        k.write(ctx, fd, 0, (pages * 256).max(256))?;
        k.fsync(ctx, fd)?;
        // Swap logs: close and delete the old one.
        if let Some(old) = self.instances[idx].aof.take() {
            k.close(ctx, old)?;
        }
        let old_path = if serial == 0 {
            format!("/redis/aof{idx}")
        } else {
            format!("/redis/aof{idx}_r{}", serial - 1)
        };
        k.unlink(ctx, &old_path)?;
        self.instances[idx].aof = Some(fd);
        self.instances[idx].aof_offset = (pages * 256).max(256);
        self.instances[idx].dump_serial += 1;
        self.checkpoints += 1;
        Ok(())
    }

    /// BGSAVE: dump one instance's store to a fresh file, replacing its
    /// previous dump.
    fn checkpoint(
        &mut self,
        k: &mut Kernel,
        ctx: &mut Ctx<'_>,
        idx: usize,
    ) -> Result<(), KernelError> {
        let pages = {
            let inst = &self.instances[idx];
            inst.store.pages()
        };
        let serial = self.instances[idx].dump_serial;
        let path = format!("/redis/dump{idx}_{serial}");
        let fd = k.create(ctx, &path)?;
        // Serialize the store: read app memory, write the file.
        for p in 0..pages {
            self.instances[idx].store.touch(k, ctx, p, PAGE_SIZE, false);
            k.write(ctx, fd, p * PAGE_SIZE, PAGE_SIZE)?;
        }
        k.fsync(ctx, fd)?;
        k.close(ctx, fd)?;
        if serial > 0 {
            let old = format!("/redis/dump{idx}_{}", serial - 1);
            k.unlink(ctx, &old)?;
        }
        self.instances[idx].dump_serial += 1;
        self.checkpoints += 1;
        Ok(())
    }
}

impl Workload for Redis {
    fn name(&self) -> &'static str {
        "redis"
    }

    fn setup(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let pages = self.pages_per_instance();
        for _ in 0..self.scale.threads {
            let sock = k.socket(ctx)?;
            let store = AppMemory::allocate(k, ctx, pages)?;
            let aof = if self.persistence == Persistence::Aof {
                Some(k.create(ctx, &format!("/redis/aof{}", self.instances.len()))?)
            } else {
                None
            };
            self.instances.push(Instance {
                sock,
                store,
                dump_serial: 0,
                queued: 0,
                aof,
                aof_offset: 0,
            });
        }
        Ok(())
    }

    fn step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let idx = (self.ops_done % self.instances.len() as u64) as usize;
        ctx.cpu = CpuId(idx as u16);
        let key = self.zipf.next_key(&mut self.rng);
        let is_set = self.rng.gen_f64() < 0.75;

        // Pipelined requests arrive in bursts on the instance's socket;
        // each op consumes one, serves it from the in-memory store, and
        // answers.
        let sock = self.instances[idx].sock;
        if self.instances[idx].queued == 0 {
            for _ in 0..PIPELINE {
                k.deliver(ctx, sock, REQUEST_BYTES)?;
            }
            self.instances[idx].queued = PIPELINE;
        }
        k.recv(ctx, sock, REQUEST_BYTES)?;
        self.instances[idx].queued -= 1;
        ctx.mem.charge(THINK);
        // Heap churn (request/response objects) + hash walk + value.
        self.instances[idx].store.churn(k, ctx, 16)?;
        self.instances[idx].store.touch(k, ctx, key / 3, 64, false);
        self.instances[idx].store.touch(k, ctx, key, 1024, is_set);
        // AOF: every write appends to the instance's log.
        if is_set {
            if let Some(aof) = self.instances[idx].aof {
                let off = self.instances[idx].aof_offset;
                k.write(ctx, aof, off, 256)?;
                self.instances[idx].aof_offset = off + 256;
            }
        }
        k.send(ctx, sock, RESPONSE_BYTES)?;

        self.ops_done += 1;
        match self.persistence {
            Persistence::Rdb => {
                if self.ops_done.is_multiple_of(self.checkpoint_every) {
                    let victim = (self.checkpoints % self.instances.len() as u64) as usize;
                    self.checkpoint(k, ctx, victim)?;
                }
            }
            Persistence::Aof => {
                // Periodic AOF rewrite: replace one instance's log with a
                // compacted one (BGREWRITEAOF).
                if self.ops_done.is_multiple_of(self.checkpoint_every * 4) {
                    let idx = (self.checkpoints % self.instances.len() as u64) as usize;
                    self.rewrite_aof(k, ctx, idx)?;
                }
            }
        }
        Ok(())
    }

    fn target_ops(&self) -> u64 {
        self.scale.ops
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn teardown(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        for mut inst in self.instances.drain(..) {
            k.close(ctx, inst.sock)?;
            if let Some(aof) = inst.aof.take() {
                k.fsync(ctx, aof)?;
                k.close(ctx, aof)?;
            }
            inst.store.free_all(k, ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::NullHooks;
    use kloc_kernel::{KernelObjectType, KernelParams};
    use kloc_mem::MemorySystem;

    fn run(scale: Scale) -> (Kernel, Redis) {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut w = Redis::new(&scale);
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        while !w.is_done() {
            w.step(&mut k, &mut ctx).unwrap();
        }
        w.teardown(&mut k, &mut ctx).unwrap();
        (k, w)
    }

    #[test]
    fn exercises_sockets_and_checkpoints() {
        let (k, w) = run(Scale::tiny());
        assert!(w.checkpoints() > 0, "BGSAVE must fire");
        let s = k.stats();
        assert!(s.ty(KernelObjectType::SkBuff).allocated > 1000);
        assert!(s.ty(KernelObjectType::RxBuf).allocated > 500);
        assert!(s.ty(KernelObjectType::Sock).allocated >= 4);
        assert!(
            s.ty(KernelObjectType::PageCache).allocated > 0,
            "checkpoints hit the page cache"
        );
        // Old dumps unlinked -> page cache freed.
        assert!(s.ty(KernelObjectType::PageCache).freed > 0);
    }

    #[test]
    fn aof_mode_appends_and_rewrites() {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let scale = Scale::tiny();
        let mut w = Redis::with_persistence(&scale, Persistence::Aof);
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        while !w.is_done() {
            w.step(&mut k, &mut ctx).unwrap();
        }
        assert!(w.checkpoints() > 0, "AOF rewrites must fire");
        // Rewrites delete old logs.
        assert!(k.stats().ty(KernelObjectType::Inode).freed > 0);
        w.teardown(&mut k, &mut ctx).unwrap();
    }

    #[test]
    fn network_mix_is_heavier_than_fs() {
        // Redis should allocate more network object bytes than journal
        // bytes (it is network-intensive; Fig. 2a shows the mix).
        let (k, _) = run(Scale::tiny());
        let s = k.stats();
        let net = s.ty(KernelObjectType::SkBuff).bytes + s.ty(KernelObjectType::RxBuf).bytes;
        let journal = s.ty(KernelObjectType::JournalHead).bytes;
        assert!(net > journal);
    }
}
