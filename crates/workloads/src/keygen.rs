//! Deterministic key-distribution generators.
//!
//! YCSB-style zipfian (theta = 0.99) and uniform draws, used by the
//! key-value workloads. The zipfian implementation follows Gray et al.'s
//! "Quickly Generating Billion-Record Synthetic Databases" algorithm, as
//! used by YCSB itself.

use crate::rng::WorkloadRng;

/// Key distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Uniform over the key space.
    Uniform,
    /// Zipfian with theta = 0.99 (YCSB default).
    Zipfian,
}

/// YCSB-style zipfian generator over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Creates a generator over `n` items with theta = 0.99.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        Zipfian::with_theta(n, 0.99)
    }

    /// Creates a generator with an explicit skew parameter.
    ///
    /// # Panics
    /// Panics if `n` is zero or `theta` is not in (0, 1).
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a cap, then continue with the integral
        // approximation — keeps construction O(1)-ish for huge n.
        let exact = n.min(10_000);
        let mut sum = 0.0;
        for i in 1..=exact {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact {
            let a = exact as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the next key.
    pub fn next_key(&self, rng: &mut WorkloadRng) -> u64 {
        let u: f64 = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    /// Internal zeta(2) (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Draws a key from the chosen distribution.
pub fn draw(dist: KeyDist, zipf: &Zipfian, rng: &mut WorkloadRng) -> u64 {
    match dist {
        KeyDist::Uniform => rng.gen_range(0..zipf.n()),
        KeyDist::Zipfian => zipf.next_key(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed_toward_low_keys() {
        let z = Zipfian::new(10_000);
        let mut rng = WorkloadRng::seed_from_u64(42);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if z.next_key(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the top 1% of keys get well over a third of
        // the draws.
        assert!(
            head as f64 / draws as f64 > 0.35,
            "zipfian not skewed: {head}/{draws}"
        );
    }

    #[test]
    fn keys_in_range() {
        let z = Zipfian::new(100);
        let mut rng = WorkloadRng::seed_from_u64(1);
        for _ in 0..5_000 {
            assert!(z.next_key(&mut rng) < 100);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let z = Zipfian::new(1000);
        let mut a = WorkloadRng::seed_from_u64(7);
        let mut b = WorkloadRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.next_key(&mut a), z.next_key(&mut b));
        }
    }

    #[test]
    fn uniform_covers_space() {
        let z = Zipfian::new(16);
        let mut rng = WorkloadRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(draw(KeyDist::Uniform, &z, &mut rng));
        }
        assert_eq!(seen.len(), 16, "uniform should hit every bucket");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_keyspace_rejected() {
        Zipfian::new(0);
    }
}
