//! RocksDB model (dbbench, paper Table 3).
//!
//! A log-structured merge store: puts land in an in-memory memtable
//! (application pages) and a write-ahead log; full memtables flush by
//! merging into the SSTable covering the affected key range (read old
//! file, write replacement, delete old — the file churn that makes
//! RocksDB's kernel objects short-lived). Gets consult an app-level
//! block cache, then the table cache (a bounded open-file set — what
//! turns cold SSTables into *closed inodes*, the KLOC signal), then read
//! index + data pages.
//!
//! SSTables are organized as fixed key-range *slots*: the file backing a
//! slot is rewritten by merges, but the slot's key range (and therefore
//! its hotness under the zipfian key distribution) is stable — as in a
//! real leveled LSM where L1+ files tile the key space. Slot hotness is
//! decorrelated from file-creation order via a multiplicative
//! permutation, so first-come-first-served placement gets no accidental
//! advantage.
//!
//! The paper's characterization this reproduces: hundreds of small files
//! updated with key-value data, ~40-50 % of runtime inside the kernel
//! allocating inodes, block I/O, journals, dentries and radix nodes
//! (§3.1), with page-cache pages dominating the footprint (Fig. 2a).

use std::collections::VecDeque;

use crate::rng::WorkloadRng;

use kloc_kernel::hooks::{CpuId, Ctx};
use kloc_kernel::{Fd, Kernel, KernelError};
use kloc_mem::{Nanos, PAGE_SIZE};

use crate::keygen::Zipfian;
use crate::scale::Scale;
use crate::spec::{AppMemory, Workload};

const VALUE_BYTES: u64 = 1024;
const SSTABLE_PAGES: u64 = 16; // 64 KB SSTables (paper's 4 MB, scaled)
const MEMTABLE_PAGES: u64 = 16;
const COMPACT_EVERY_FLUSHES: u64 = 4;
/// Per-op application think time (key comparison, skiplist walk).
const THINK: Nanos = Nanos::new(600);

#[derive(Debug, Clone)]
struct Slot {
    path: String,
    generation: u64,
}

/// The RocksDB workload.
#[derive(Debug)]
pub struct RocksDb {
    scale: Scale,
    zipf: Zipfian,
    rng: WorkloadRng,
    memtable: AppMemory,
    block_cache: AppMemory,
    block_cache_pages: u64,
    memtable_fill: u64,
    wal: Option<Fd>,
    wal_offset: u64,
    /// Key-range slots; each holds the current SSTable for that range.
    slots: Vec<Slot>,
    /// Multiplier decorrelating slot index from key order.
    perm: u64,
    table_cache: VecDeque<(String, Fd)>,
    /// Bounded open-file set (RocksDB's max_open_files), scaled so cold
    /// SSTables actually close at every scale.
    table_cache_cap: usize,
    next_file: u64,
    flushes: u64,
    next_merge_slot: usize,
    ops_done: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl RocksDb {
    /// Creates the workload at `scale`.
    pub fn new(scale: &Scale) -> Self {
        let n_keys = (scale.data_bytes / VALUE_BYTES).max(16);
        let n_slots = (scale.data_bytes / (SSTABLE_PAGES * PAGE_SIZE)).max(8);
        // Odd multiplier coprime with the slot count: a permutation of
        // slot indices that scrambles hotness vs creation order.
        let mut perm = (2_654_435_761u64 % n_slots).max(2);
        while gcd(perm, n_slots) != 1 {
            perm += 1;
        }
        RocksDb {
            zipf: Zipfian::new(n_keys),
            rng: WorkloadRng::seed_from_u64(scale.seed ^ 0xDB),
            memtable: AppMemory::default(),
            block_cache: AppMemory::default(),
            block_cache_pages: (scale.data_bytes / PAGE_SIZE / 16).max(16),
            memtable_fill: 0,
            wal: None,
            wal_offset: 0,
            slots: Vec::with_capacity(n_slots as usize),
            perm,
            table_cache: VecDeque::new(),
            table_cache_cap: (n_slots as usize / 8).clamp(4, 32),
            next_file: 0,
            flushes: 0,
            next_merge_slot: 0,
            ops_done: 0,
            scale: scale.clone(),
        }
    }

    /// Live SSTable files.
    pub fn sstable_count(&self) -> usize {
        self.slots.len()
    }

    fn thread(&self, op: u64) -> CpuId {
        CpuId((op % self.scale.threads as u64) as u16)
    }

    /// Slot covering `key`: range-partitioned (hot keys concentrate in a
    /// hot subset of slots) then permuted (hotness decorrelated from
    /// creation order).
    fn slot_of(&self, key: u64) -> usize {
        let n = self.slots.len() as u64;
        let range = (key * n) / self.zipf.n().max(1);
        ((range.min(n - 1) * self.perm) % n) as usize
    }

    fn new_path(&mut self, slot: usize) -> String {
        let p = format!("/db/sst{slot}_{}", self.next_file);
        self.next_file += 1;
        p
    }

    /// Writes a fresh SSTable for `slot` and closes it. Like real
    /// RocksDB, flushes run on background threads: the foreground thread
    /// does not wait for the device (writeback drains asynchronously).
    fn write_slot(
        &mut self,
        k: &mut Kernel,
        ctx: &mut Ctx<'_>,
        slot: usize,
        merge_old: bool,
    ) -> Result<(), KernelError> {
        // Merge: read the slot's current file first.
        if merge_old {
            let old = self.slots[slot].path.clone();
            let fd = k.open(ctx, &old)?;
            k.read(ctx, fd, 0, SSTABLE_PAGES * PAGE_SIZE)?;
            k.close(ctx, fd)?;
        }
        let path = self.new_path(slot);
        let fd = k.create(ctx, &path)?;
        k.write(ctx, fd, 0, SSTABLE_PAGES * PAGE_SIZE)?;
        k.close(ctx, fd)?;
        if merge_old {
            let old = std::mem::replace(&mut self.slots[slot].path, path);
            self.drop_from_table_cache(k, ctx, &old)?;
            k.unlink(ctx, &old)?;
            self.slots[slot].generation += 1;
        } else {
            self.slots.push(Slot {
                path,
                generation: 0,
            });
        }
        Ok(())
    }

    /// Table-cache lookup: reuse an open fd or open (evicting LRU).
    fn cached_open(
        &mut self,
        k: &mut Kernel,
        ctx: &mut Ctx<'_>,
        path: &str,
    ) -> Result<Fd, KernelError> {
        if let Some(pos) = self.table_cache.iter().position(|(p, _)| p == path) {
            let entry = self.table_cache.remove(pos).expect("position valid"); // lint: unwrap-ok — position() just found the entry
            let fd = entry.1;
            self.table_cache.push_front(entry);
            return Ok(fd);
        }
        let fd = k.open(ctx, path)?;
        self.table_cache.push_front((path.to_owned(), fd));
        if self.table_cache.len() > self.table_cache_cap {
            if let Some((_, old)) = self.table_cache.pop_back() {
                k.close(ctx, old)?;
            }
        }
        Ok(fd)
    }

    fn drop_from_table_cache(
        &mut self,
        k: &mut Kernel,
        ctx: &mut Ctx<'_>,
        path: &str,
    ) -> Result<(), KernelError> {
        if let Some(pos) = self.table_cache.iter().position(|(p, _)| p == path) {
            let (_, fd) = self.table_cache.remove(pos).expect("position valid"); // lint: unwrap-ok — position() just found the entry
            k.close(ctx, fd)?;
        }
        Ok(())
    }

    /// Memtable flush: merge into the slot covering the flushed range,
    /// plus periodic background compaction of the next slot round-robin.
    fn flush_memtable(
        &mut self,
        k: &mut Kernel,
        ctx: &mut Ctx<'_>,
        key: u64,
    ) -> Result<(), KernelError> {
        let slot = self.slot_of(key);
        self.write_slot(k, ctx, slot, true)?;
        self.memtable_fill = 0;
        self.flushes += 1;
        if self.flushes.is_multiple_of(COMPACT_EVERY_FLUSHES) && !self.slots.is_empty() {
            let victim = self.next_merge_slot % self.slots.len();
            self.next_merge_slot += 1;
            self.write_slot(k, ctx, victim, true)?;
        }
        Ok(())
    }

    fn put(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>, key: u64) -> Result<(), KernelError> {
        ctx.mem.charge(THINK);
        // Heap churn (key/value buffers) + memtable insert (skiplist walk
        // touches a couple of nodes).
        self.block_cache.churn(k, ctx, 32)?;
        self.memtable.touch(k, ctx, key / 2, 64, false);
        self.memtable.touch(k, ctx, key, VALUE_BYTES, true);
        // WAL append (dbbench default: sync=false — durability comes
        // from background writeback, not per-write fsync).
        if let Some(wal) = self.wal {
            k.write(ctx, wal, self.wal_offset, VALUE_BYTES)?;
            self.wal_offset += VALUE_BYTES;
        }
        self.memtable_fill += 1;
        if self.memtable_fill >= MEMTABLE_PAGES * PAGE_SIZE / VALUE_BYTES {
            self.flush_memtable(k, ctx, key)?;
        }
        Ok(())
    }

    fn get(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>, key: u64) -> Result<(), KernelError> {
        ctx.mem.charge(THINK);
        self.block_cache.churn(k, ctx, 32)?;
        // App-level block cache (~35% hit for point reads).
        self.block_cache
            .touch(k, ctx, key % self.block_cache_pages, 256, false);
        self.block_cache
            .touch(k, ctx, (key / 7) % self.block_cache_pages, 256, false);
        if self.rng.gen_f64() < 0.35 {
            return Ok(());
        }
        if self.slots.is_empty() {
            return Ok(());
        }
        let slot = self.slot_of(key);
        let path = self.slots[slot].path.clone();
        let fd = self.cached_open(k, ctx, &path)?;
        // Index block + one data block.
        k.read(ctx, fd, 0, 4096)?;
        let data_page = 1 + key % (SSTABLE_PAGES - 1);
        k.read(ctx, fd, data_page * PAGE_SIZE, 4096)?;
        Ok(())
    }
}

impl Workload for RocksDb {
    fn name(&self) -> &'static str {
        "rocksdb"
    }

    fn setup(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        self.memtable = AppMemory::allocate(k, ctx, MEMTABLE_PAGES)?;
        self.block_cache = AppMemory::allocate(k, ctx, self.block_cache_pages)?;
        let wal = k.create(ctx, "/db/wal")?;
        self.wal = Some(wal);
        // Load phase: populate the dataset as one SSTable per slot.
        let slots = (self.scale.data_bytes / (SSTABLE_PAGES * PAGE_SIZE)).max(8);
        for s in 0..slots as usize {
            self.write_slot(k, ctx, s, false)?;
        }
        Ok(())
    }

    fn step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        ctx.cpu = self.thread(self.ops_done);
        let key = self.zipf.next_key(&mut self.rng);
        // dbbench: 50% reads, 50% writes.
        if self.rng.gen_bool() {
            self.get(k, ctx, key)?;
        } else {
            self.put(k, ctx, key)?;
        }
        self.ops_done += 1;
        Ok(())
    }

    fn target_ops(&self) -> u64 {
        self.scale.ops
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn teardown(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        while let Some((_, fd)) = self.table_cache.pop_front() {
            k.close(ctx, fd)?;
        }
        if let Some(wal) = self.wal.take() {
            k.fsync(ctx, wal)?;
            k.close(ctx, wal)?;
        }
        self.memtable.free_all(k, ctx)?;
        self.block_cache.free_all(k, ctx)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::NullHooks;
    use kloc_kernel::{KernelObjectType, KernelParams};
    use kloc_mem::MemorySystem;

    fn run(scale: Scale) -> (Kernel, MemorySystem, RocksDb) {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut w = RocksDb::new(&scale);
        {
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            w.setup(&mut k, &mut ctx).unwrap();
            while !w.is_done() {
                w.step(&mut k, &mut ctx).unwrap();
            }
            w.teardown(&mut k, &mut ctx).unwrap();
        }
        (k, mem, w)
    }

    #[test]
    fn produces_file_churn_and_kernel_objects() {
        let (k, _mem, w) = run(Scale::tiny());
        assert!(w.sstable_count() > 4, "live sstables remain");
        let s = k.stats();
        assert!(s.ty(KernelObjectType::PageCache).allocated > 100);
        assert!(s.ty(KernelObjectType::Inode).allocated > 10);
        assert!(s.ty(KernelObjectType::JournalHead).allocated > 10);
        assert!(s.ty(KernelObjectType::Bio).allocated > 0);
        assert!(
            s.ty(KernelObjectType::Inode).freed > 0,
            "merges must delete files"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (k1, m1, _) = run(Scale::tiny());
        let (k2, m2, _) = run(Scale::tiny());
        assert_eq!(m1.now(), m2.now(), "virtual time must be reproducible");
        assert_eq!(
            k1.stats().ty(KernelObjectType::PageCache).allocated,
            k2.stats().ty(KernelObjectType::PageCache).allocated
        );
    }

    #[test]
    fn ops_counted() {
        let (_, _, w) = run(Scale::tiny());
        assert_eq!(w.ops_done(), Scale::tiny().ops);
        assert!(w.is_done());
    }

    #[test]
    fn slot_mapping_is_stable_and_permuted() {
        // Exactly 8 slots so the permutation math is checked end to end.
        let mut scale = Scale::tiny();
        scale.data_bytes = 8 * SSTABLE_PAGES * PAGE_SIZE;
        let mut w = RocksDb::new(&scale);
        for i in 0..8 {
            w.slots.push(Slot {
                path: format!("/db/x{i}"),
                generation: 0,
            });
        }
        let a = w.slot_of(0);
        assert_eq!(a, w.slot_of(0), "mapping must be deterministic");
        // Hot (low) keys and the first-created slots must differ for at
        // least some keys: the permutation decorrelates them.
        let mapped: Vec<usize> = (0..8).map(|r| w.slot_of(r * w.zipf.n() / 8)).collect();
        assert_ne!(mapped, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // And it is a permutation (all slots reachable).
        let mut sorted = mapped.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }
}
