//! Cassandra model (YCSB, paper Table 3).
//!
//! A NoSQL store under YCSB's 50/50 read/write mix, accessed through
//! client sockets, with a *large application-level cache* (512 MB for
//! 200 K keys in the paper's configuration). That cache absorbs most
//! reads at the application level, reducing kernel I/O — which is
//! exactly why Cassandra is the workload where "KLOCs is similar to
//! Nimble++" and benefits least even from All-Fast placement (§7.1).
//! Java/GC overhead is modeled as extra per-op think time.

use crate::rng::WorkloadRng;

use kloc_kernel::hooks::{CpuId, Ctx};
use kloc_kernel::{Fd, Kernel, KernelError};
use kloc_mem::{Nanos, PAGE_SIZE};

use crate::keygen::Zipfian;
use crate::scale::Scale;
use crate::spec::{AppMemory, Workload};

/// App-cache hit probability (512 MB cache over 200 K keys).
const APP_CACHE_HIT: f64 = 0.85;

/// YCSB core workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// Workload A: 50% reads / 50% updates (the paper's configuration).
    A,
    /// Workload B: 95% reads / 5% updates.
    B,
    /// Workload C: 100% reads.
    C,
}

impl YcsbMix {
    /// Probability that an operation is a read.
    pub fn read_fraction(self) -> f64 {
        match self {
            YcsbMix::A => 0.5,
            YcsbMix::B => 0.95,
            YcsbMix::C => 1.0,
        }
    }
}
/// SSTable size flushed from the memtable.
const SSTABLE_PAGES: u64 = 32;
/// Writes per SSTable flush.
const FLUSH_EVERY: u64 = 512;
/// Java + YCSB client overhead per op (§7.1: "high Java and language
/// overheads towards storage access combined with the use of the YCSB
/// workload generator running in a client-server configuration"). This
/// part of the op does not overlap with other threads' memory work
/// (synchronous client round trip + GC), so it is charged serialized —
/// it is why Cassandra is the least memory-sensitive workload in Fig. 4.
const SERIAL_OVERHEAD: Nanos = Nanos::new(7_000);
const REQUEST_BYTES: u64 = 256;
const RESPONSE_BYTES: u64 = 1024;

/// The Cassandra workload.
#[derive(Debug)]
pub struct Cassandra {
    scale: Scale,
    zipf: Zipfian,
    rng: WorkloadRng,
    mix: YcsbMix,
    sockets: Vec<Fd>,
    app_cache: AppMemory,
    commitlog: Option<Fd>,
    commitlog_off: u64,
    sstables: Vec<String>,
    next_file: u64,
    writes_since_flush: u64,
    ops_done: u64,
}

impl Cassandra {
    /// Creates the workload at `scale` under YCSB workload A (the
    /// paper's 50/50 configuration).
    pub fn new(scale: &Scale) -> Self {
        Cassandra::with_mix(scale, YcsbMix::A)
    }

    /// Creates the workload with an explicit YCSB mix.
    pub fn with_mix(scale: &Scale, mix: YcsbMix) -> Self {
        let n_keys = (scale.data_bytes / 2048).max(16);
        Cassandra {
            zipf: Zipfian::new(n_keys),
            rng: WorkloadRng::seed_from_u64(scale.seed ^ 0xCA55),
            mix,
            sockets: Vec::new(),
            app_cache: AppMemory::default(),
            commitlog: None,
            commitlog_off: 0,
            sstables: Vec::new(),
            next_file: 0,
            writes_since_flush: 0,
            ops_done: 0,
            scale: scale.clone(),
        }
    }

    /// App-cache pages (paper: 512 MB, scaled with the dataset).
    fn cache_pages(&self) -> u64 {
        (self.scale.data_bytes / PAGE_SIZE / 80).max(16)
    }

    fn flush_sstable(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let path = format!("/cassandra/sst{}", self.next_file);
        self.next_file += 1;
        let fd = k.create(ctx, &path)?;
        k.write(ctx, fd, 0, SSTABLE_PAGES * PAGE_SIZE)?;
        k.fsync(ctx, fd)?;
        k.close(ctx, fd)?;
        self.sstables.push(path);
        Ok(())
    }
}

impl Workload for Cassandra {
    fn name(&self) -> &'static str {
        "cassandra"
    }

    fn setup(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        for _ in 0..self.scale.threads {
            self.sockets.push(k.socket(ctx)?);
        }
        self.app_cache = AppMemory::allocate(k, ctx, self.cache_pages())?;
        self.commitlog = Some(k.create(ctx, "/cassandra/commitlog")?);
        let files = (self.scale.data_bytes / (SSTABLE_PAGES * PAGE_SIZE)).max(4);
        for _ in 0..files {
            self.flush_sstable(k, ctx)?;
        }
        Ok(())
    }

    fn step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let t = (self.ops_done % self.sockets.len() as u64) as usize;
        ctx.cpu = CpuId(t as u16);
        let sock = self.sockets[t];
        let key = self.zipf.next_key(&mut self.rng);

        // YCSB client request over the socket.
        k.deliver(ctx, sock, REQUEST_BYTES)?;
        k.recv(ctx, sock, REQUEST_BYTES)?;
        // charge() divides by the thread-parallelism factor; scaling by
        // the thread count makes this overhead effectively serial.
        ctx.mem.charge(SERIAL_OVERHEAD * self.scale.threads as u64);
        // Java object churn.
        self.app_cache.churn(k, ctx, 48)?;

        let is_read = self.rng.gen_f64() < self.mix.read_fraction();
        if is_read {
            self.app_cache.touch(k, ctx, key, 1024, false);
            if self.rng.gen_f64() >= APP_CACHE_HIT && !self.sstables.is_empty() {
                // App-cache miss: hit an SSTable (range-partitioned so
                // key skew concentrates in a hot file subset).
                let n = self.sstables.len() as u64;
                let range = ((key * n) / self.zipf.n().max(1)).min(n - 1);
                // Golden-ratio permutation decorrelates hotness from
                // file-creation order.
                let idx = ((range * 2_654_435_761) % n) as usize;
                let path = self.sstables[idx].clone();
                let fd = k.open(ctx, &path)?;
                k.read(ctx, fd, (key % SSTABLE_PAGES) * PAGE_SIZE, 4096)?;
                k.close(ctx, fd)?;
            }
        } else {
            // Write: commitlog append + memtable (app cache) update.
            if let Some(cl) = self.commitlog {
                k.write(ctx, cl, self.commitlog_off, 1024)?;
                self.commitlog_off += 1024;
            }
            self.app_cache.touch(k, ctx, key, 1024, true);
            self.writes_since_flush += 1;
            if self.writes_since_flush >= FLUSH_EVERY {
                self.writes_since_flush = 0;
                self.flush_sstable(k, ctx)?;
            }
        }
        k.send(ctx, sock, RESPONSE_BYTES)?;
        self.ops_done += 1;
        Ok(())
    }

    fn target_ops(&self) -> u64 {
        self.scale.ops
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn teardown(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        for s in self.sockets.drain(..) {
            k.close(ctx, s)?;
        }
        if let Some(cl) = self.commitlog.take() {
            k.fsync(ctx, cl)?;
            k.close(ctx, cl)?;
        }
        self.app_cache.free_all(k, ctx)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::NullHooks;
    use kloc_kernel::KernelParams;
    use kloc_mem::MemorySystem;

    #[test]
    fn app_cache_absorbs_most_reads() {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let scale = Scale::tiny();
        let mut w = Cassandra::new(&scale);
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        let opens_after_setup = k
            .stats()
            .syscalls
            .get(&kloc_kernel::stats::Syscall::Open)
            .copied()
            .unwrap_or(0);
        while !w.is_done() {
            w.step(&mut k, &mut ctx).unwrap();
        }
        let opens = k
            .stats()
            .syscalls
            .get(&kloc_kernel::stats::Syscall::Open)
            .copied()
            .unwrap_or(0)
            - opens_after_setup;
        // Reads are ~50% of ops; only ~15% of reads miss the app cache.
        assert!(
            (opens as f64) < scale.ops as f64 * 0.2,
            "too many sstable opens: {opens}"
        );
        w.teardown(&mut k, &mut ctx).unwrap();
    }

    #[test]
    fn ycsb_mixes_change_write_volume() {
        let run_mix = |mix: YcsbMix| {
            let mut mem = MemorySystem::two_tier(u64::MAX, 8);
            let mut hooks = NullHooks::fast_first();
            let mut k = Kernel::new(KernelParams::default());
            let mut w = Cassandra::with_mix(&Scale::tiny(), mix);
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            w.setup(&mut k, &mut ctx).unwrap();
            while !w.is_done() {
                w.step(&mut k, &mut ctx).unwrap();
            }
            w.commitlog_off
        };
        let a = run_mix(YcsbMix::A);
        let c = run_mix(YcsbMix::C);
        assert!(a > 0, "workload A writes the commitlog");
        assert_eq!(c, 0, "workload C is read-only");
        assert!(YcsbMix::B.read_fraction() > YcsbMix::A.read_fraction());
    }

    #[test]
    fn serial_overhead_dominates_per_op_cost() {
        // Cassandra's Java/YCSB overhead makes it the least
        // memory-sensitive workload; sanity-check the constant dominates
        // the other per-op costs used here.
        assert!(SERIAL_OVERHEAD > Nanos::new(2_000));
    }
}
