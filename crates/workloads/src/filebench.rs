//! Filebench model (paper Table 3).
//!
//! Sixteen worker threads issue 4 KB reads (half sequential, half
//! random) and writes against a fileset, opening a file per operation
//! burst and closing it afterwards — the classic filebench
//! webserver/fileserver shape. The paper measures Filebench spending
//! 86 % of execution time inside the OS (§3.1), making it the most
//! kernel-object-sensitive workload.

use crate::rng::WorkloadRng;

use kloc_kernel::hooks::{CpuId, Ctx};
use kloc_kernel::{Kernel, KernelError};
use kloc_mem::{Nanos, PAGE_SIZE};

use crate::keygen::Zipfian;
use crate::scale::Scale;
use crate::spec::{AppMemory, Workload};

/// Pages per fileset file (256 KB files).
const FILE_PAGES: u64 = 64;
/// I/O bursts per open (accesses between open and close).
const BURST: u64 = 4;
/// Minimal think time: filebench is almost pure kernel time.
const THINK: Nanos = Nanos::new(150);

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The Filebench workload.
#[derive(Debug)]
pub struct Filebench {
    scale: Scale,
    zipf: Zipfian,
    rng: WorkloadRng,
    n_files: u64,
    /// Multiplier decorrelating file hotness from creation order.
    perm: u64,
    /// Per-thread sequential cursor.
    cursors: Vec<u64>,
    /// Per-thread I/O buffers (the small application footprint).
    buffers: AppMemory,
    ops_done: u64,
}

impl Filebench {
    /// Creates the workload at `scale`.
    pub fn new(scale: &Scale) -> Self {
        let n_files = (scale.data_bytes / (FILE_PAGES * PAGE_SIZE)).max(8);
        let mut perm = (2_654_435_761u64 % n_files).max(2);
        while gcd(perm, n_files) != 1 {
            perm += 1;
        }
        Filebench {
            zipf: Zipfian::new(n_files),
            rng: WorkloadRng::seed_from_u64(scale.seed ^ 0xF17E),
            n_files,
            perm,
            cursors: vec![0; scale.threads as usize],
            buffers: AppMemory::default(),
            ops_done: 0,
            scale: scale.clone(),
        }
    }

    /// Number of fileset files.
    pub fn file_count(&self) -> u64 {
        self.n_files
    }

    fn path(i: u64) -> String {
        format!("/fileset/f{i}")
    }
}

impl Workload for Filebench {
    fn name(&self) -> &'static str {
        "filebench"
    }

    fn setup(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        self.buffers = AppMemory::allocate(k, ctx, 4 * self.scale.threads as u64)?;
        k.mkdir(ctx, "/fileset")?;
        // Pre-create the fileset.
        for i in 0..self.n_files {
            let fd = k.create(ctx, &Self::path(i))?;
            k.write(ctx, fd, 0, FILE_PAGES * PAGE_SIZE)?;
            k.fsync(ctx, fd)?;
            k.close(ctx, fd)?;
        }
        Ok(())
    }

    fn step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let t = (self.ops_done % self.scale.threads as u64) as usize;
        ctx.cpu = CpuId(t as u16);
        ctx.mem.charge(THINK);

        // Touch the thread's I/O buffer (source/sink of the transfer).
        self.buffers.churn(k, ctx, 8)?;
        self.buffers.touch(k, ctx, t as u64, 4096, false);
        let file = (self.zipf.next_key(&mut self.rng) * self.perm) % self.n_files;
        let fd = k.open(ctx, &Self::path(file))?;
        for _ in 0..BURST {
            let is_read = self.rng.gen_f64() < 0.5;
            if is_read {
                // Half sequential, half random (Table 3).
                let idx = if self.rng.gen_bool() {
                    let c = self.cursors[t];
                    self.cursors[t] = (c + 1) % FILE_PAGES;
                    c
                } else {
                    self.rng.gen_range(0..FILE_PAGES)
                };
                k.read(ctx, fd, idx * PAGE_SIZE, 4096)?;
            } else {
                let idx = self.rng.gen_range(0..FILE_PAGES);
                k.write(ctx, fd, idx * PAGE_SIZE, 4096)?;
            }
        }
        k.close(ctx, fd)?;
        // Periodic directory listing (filebench personalities stat and
        // list their filesets), allocating transient dir buffers.
        if self.ops_done.is_multiple_of(64) {
            k.readdir(ctx, "/fileset", self.n_files.min(64))?;
        }
        self.ops_done += 1;
        Ok(())
    }

    fn target_ops(&self) -> u64 {
        self.scale.ops
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn teardown(&mut self, kernel: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        self.buffers.free_all(kernel, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::NullHooks;
    use kloc_kernel::{KernelObjectType, KernelParams};
    use kloc_mem::MemorySystem;

    #[test]
    fn open_close_churn_dominates() {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let scale = Scale::tiny();
        let mut w = Filebench::new(&scale);
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        while !w.is_done() {
            w.step(&mut k, &mut ctx).unwrap();
        }
        w.teardown(&mut k, &mut ctx).unwrap();

        let s = k.stats();
        // One open/close per op on top of setup creates.
        assert!(s.ty(KernelObjectType::FileHandle).allocated >= scale.ops);
        assert!(s.ty(KernelObjectType::FileHandle).freed >= scale.ops);
        // Kernel accesses dominate (the 86% characterization).
        assert!(
            ctx.mem.stats().kernel_access_fraction() > 0.7,
            "filebench must be kernel-heavy, got {}",
            ctx.mem.stats().kernel_access_fraction()
        );
    }

    #[test]
    fn dentry_cache_serves_reopens() {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut w = Filebench::new(&Scale::tiny());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        for _ in 0..50 {
            w.step(&mut k, &mut ctx).unwrap();
        }
        assert!(k.stats().dentry_hits > 0);
        assert_eq!(k.stats().dentry_misses, 0, "dentries stay cached");
    }
}
