//! Memory-streaming interference antagonist (paper §6.2).
//!
//! The Optane Memory Mode experiment runs the workload of interest
//! "concurrently with another workload that streams through memory and
//! hence interferes" on one socket, prompting AutoNUMA to migrate the
//! victim task away. This antagonist is that co-runner: it allocates a
//! large application buffer and streams writes through it.

use kloc_kernel::hooks::Ctx;
use kloc_kernel::{Kernel, KernelError};
use kloc_mem::PAGE_SIZE;

use crate::scale::Scale;
use crate::spec::{AppMemory, Workload};

/// The streaming antagonist.
#[derive(Debug)]
pub struct Interference {
    scale: Scale,
    buf: AppMemory,
    cursor: u64,
    ops_done: u64,
}

impl Interference {
    /// Creates the antagonist; its buffer is sized at a quarter of the
    /// scale's dataset.
    pub fn new(scale: &Scale) -> Self {
        Interference {
            buf: AppMemory::default(),
            cursor: 0,
            ops_done: 0,
            scale: scale.clone(),
        }
    }
}

impl Workload for Interference {
    fn name(&self) -> &'static str {
        "interference"
    }

    fn setup(&mut self, kernel: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let pages = (self.scale.data_bytes / PAGE_SIZE / 4).max(8);
        self.buf = AppMemory::allocate(kernel, ctx, pages)?;
        Ok(())
    }

    fn step(&mut self, kernel: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        // Stream: touch 16 pages per op, write-heavy.
        for _ in 0..16 {
            self.buf.touch(kernel, ctx, self.cursor, PAGE_SIZE, true);
            self.cursor += 1;
        }
        self.ops_done += 1;
        Ok(())
    }

    fn target_ops(&self) -> u64 {
        self.scale.ops
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn teardown(&mut self, kernel: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        self.buf.free_all(kernel, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::NullHooks;
    use kloc_kernel::KernelParams;
    use kloc_mem::MemorySystem;

    #[test]
    fn streams_through_its_buffer() {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut w = Interference::new(&Scale::tiny().with_ops(50));
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        let before = ctx.mem.stats().total_accesses;
        while !w.is_done() {
            w.step(&mut k, &mut ctx).unwrap();
        }
        let after = ctx.mem.stats().total_accesses;
        assert_eq!(after - before, 50 * 16, "16 page touches per op");
        w.teardown(&mut k, &mut ctx).unwrap();
        assert_eq!(ctx.mem.live_frames(), 0);
    }
}
