//! Spark TeraSort model (paper Table 3).
//!
//! TeraSort over an HDFS-style file layout: a generation phase writes
//! the input partitions; the measured phase streams input partitions,
//! sorts them in application memory, writes shuffle files, then merges
//! shuffle files into sorted output and deletes the intermediates. The
//! paper notes Spark/HDFS is heavily filesystem-intensive with
//! checkpointing behaviour (§3.1); the intermediate-file churn creates
//! large, quickly-cold page-cache populations.

use kloc_kernel::hooks::{CpuId, Ctx};
use kloc_kernel::{Kernel, KernelError};
use kloc_mem::{Nanos, PAGE_SIZE};

use crate::scale::Scale;
use crate::spec::{AppMemory, Workload};

/// Pages per partition file (1 MB scaled partitions).
const PARTITION_PAGES: u64 = 64;
/// Pages processed per operation (one map/reduce chunk).
const CHUNK_PAGES: u64 = 8;
/// Sort/serialization CPU per chunk page.
const THINK_PER_PAGE: Nanos = Nanos::new(700);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Read input partitions, write shuffle files.
    Map,
    /// Read shuffle files, write sorted output, delete shuffle files.
    Reduce,
}

/// The Spark TeraSort workload.
#[derive(Debug)]
pub struct Spark {
    scale: Scale,
    n_partitions: u64,
    sort_buf: AppMemory,
    phase: Phase,
    cursor: u64,
    ops_done: u64,
    shuffle_written: u64,
    outputs_written: u64,
}

impl Spark {
    /// Creates the workload at `scale`.
    pub fn new(scale: &Scale) -> Self {
        let n_partitions = (scale.data_bytes / (PARTITION_PAGES * PAGE_SIZE)).max(4);
        Spark {
            n_partitions,
            sort_buf: AppMemory::default(),
            phase: Phase::Map,
            cursor: 0,
            ops_done: 0,
            shuffle_written: 0,
            outputs_written: 0,
            scale: scale.clone(),
        }
    }

    /// Input partitions.
    pub fn partitions(&self) -> u64 {
        self.n_partitions
    }

    fn input(i: u64) -> String {
        format!("/spark/input{i}")
    }
    fn shuffle(i: u64) -> String {
        format!("/spark/shuffle{i}")
    }
    fn output(i: u64) -> String {
        format!("/spark/output{i}")
    }

    /// One map chunk: stream part of an input partition, sort in app
    /// memory, append to a shuffle file.
    fn map_chunk(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let part = self.cursor / (PARTITION_PAGES / CHUNK_PAGES);
        let chunk = self.cursor % (PARTITION_PAGES / CHUNK_PAGES);
        let part = part % self.n_partitions;

        let in_fd = k.open(ctx, &Self::input(part))?;
        k.read(
            ctx,
            in_fd,
            chunk * CHUNK_PAGES * PAGE_SIZE,
            CHUNK_PAGES * PAGE_SIZE,
        )?;
        k.close(ctx, in_fd)?;

        ctx.mem.charge(THINK_PER_PAGE * CHUNK_PAGES);
        self.sort_buf.churn(k, ctx, 16)?;
        for p in 0..CHUNK_PAGES {
            self.sort_buf.touch(k, ctx, p, PAGE_SIZE, true);
        }

        let sh = Self::shuffle(part);
        let sh_fd = match k.open(ctx, &sh) {
            Ok(fd) => fd,
            Err(KernelError::NoEntry(_)) => k.create(ctx, &sh)?,
            Err(e) => return Err(e),
        };
        k.write(
            ctx,
            sh_fd,
            chunk * CHUNK_PAGES * PAGE_SIZE,
            CHUNK_PAGES * PAGE_SIZE,
        )?;
        k.close(ctx, sh_fd)?;
        self.shuffle_written += 1;

        self.cursor += 1;
        if self.cursor >= self.n_partitions * (PARTITION_PAGES / CHUNK_PAGES) {
            self.phase = Phase::Reduce;
            self.cursor = 0;
        }
        Ok(())
    }

    /// One reduce chunk: read a shuffle chunk, merge, append to output;
    /// delete the shuffle file when fully consumed.
    fn reduce_chunk(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let chunks_per_part = PARTITION_PAGES / CHUNK_PAGES;
        let part = (self.cursor / chunks_per_part) % self.n_partitions;
        let chunk = self.cursor % chunks_per_part;

        let sh = Self::shuffle(part);
        if let Ok(sh_fd) = k.open(ctx, &sh) {
            k.read(
                ctx,
                sh_fd,
                chunk * CHUNK_PAGES * PAGE_SIZE,
                CHUNK_PAGES * PAGE_SIZE,
            )?;
            k.close(ctx, sh_fd)?;
        }

        ctx.mem.charge(THINK_PER_PAGE * CHUNK_PAGES);
        self.sort_buf.churn(k, ctx, 16)?;
        for p in 0..CHUNK_PAGES {
            self.sort_buf.touch(k, ctx, p, PAGE_SIZE, false);
        }

        let out = Self::output(part);
        let out_fd = match k.open(ctx, &out) {
            Ok(fd) => fd,
            Err(KernelError::NoEntry(_)) => k.create(ctx, &out)?,
            Err(e) => return Err(e),
        };
        k.write(
            ctx,
            out_fd,
            chunk * CHUNK_PAGES * PAGE_SIZE,
            CHUNK_PAGES * PAGE_SIZE,
        )?;
        if chunk == chunks_per_part - 1 {
            k.fsync(ctx, out_fd)?;
        }
        k.close(ctx, out_fd)?;

        if chunk == chunks_per_part - 1 {
            // Shuffle partition fully merged: delete the intermediate.
            match k.unlink(ctx, &sh) {
                Ok(()) | Err(KernelError::NoEntry(_)) => {}
                Err(e) => return Err(e),
            }
            self.outputs_written += 1;
        }

        self.cursor += 1;
        if self.cursor >= self.n_partitions * chunks_per_part {
            // Wrap around: regenerate shuffle data (steady-state loop).
            self.phase = Phase::Map;
            self.cursor = 0;
        }
        Ok(())
    }
}

impl Workload for Spark {
    fn name(&self) -> &'static str {
        "spark"
    }

    fn setup(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        self.sort_buf = AppMemory::allocate(k, ctx, CHUNK_PAGES * 4)?;
        // TeraGen: write the input partitions.
        for i in 0..self.n_partitions {
            let fd = k.create(ctx, &Self::input(i))?;
            k.write(ctx, fd, 0, PARTITION_PAGES * PAGE_SIZE)?;
            k.fsync(ctx, fd)?;
            k.close(ctx, fd)?;
        }
        Ok(())
    }

    fn step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        ctx.cpu = CpuId((self.ops_done % self.scale.threads as u64) as u16);
        match self.phase {
            Phase::Map => self.map_chunk(k, ctx)?,
            Phase::Reduce => self.reduce_chunk(k, ctx)?,
        }
        self.ops_done += 1;
        Ok(())
    }

    fn target_ops(&self) -> u64 {
        self.scale.ops
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn teardown(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        self.sort_buf.free_all(k, ctx)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::NullHooks;
    use kloc_kernel::{KernelObjectType, KernelParams};
    use kloc_mem::MemorySystem;

    #[test]
    fn map_then_reduce_with_intermediate_deletion() {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let scale = Scale::tiny().with_ops(600);
        let mut w = Spark::new(&scale);
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        while !w.is_done() {
            w.step(&mut k, &mut ctx).unwrap();
        }
        assert!(w.shuffle_written > 0);
        assert!(w.outputs_written > 0, "reduce phase must have run");
        // Inodes freed by shuffle deletion.
        assert!(k.stats().ty(KernelObjectType::Inode).freed > 0);
        w.teardown(&mut k, &mut ctx).unwrap();
    }

    #[test]
    fn streaming_reads_use_readahead() {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        // Force cache pressure so map-phase reads miss and stream from
        // disk (tiny cache budget).
        let params = KernelParams {
            page_cache_budget: 64,
            ..KernelParams::default()
        };
        let mut k2 = Kernel::new(params);
        std::mem::swap(&mut k, &mut k2);
        let scale = Scale::tiny().with_ops(200);
        let mut w = Spark::new(&scale);
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        while !w.is_done() {
            w.step(&mut k, &mut ctx).unwrap();
        }
        assert!(
            k.readahead().stats().issued > 0,
            "sequential streaming must trigger prefetch"
        );
    }
}
