//! Multi-tenant traffic generator (consolidated server, paper §5).
//!
//! The paper evaluates KLOCs on consolidated servers where independent
//! applications share one kernel and one fast tier: "kernel objects
//! created on behalf of one application can evict another application's
//! hot objects". This workload reproduces that contention with three
//! tenants multiplexed over one simulated kernel:
//!
//! * **frontend** (tenant 1, guaranteed) — a Redis-style server: many
//!   concurrent client sessions over sockets, each request touching a
//!   hot file whose page-cache pages are the latency-critical working
//!   set, plus a telemetry socket it feeds for the analytics tenant.
//! * **analytics** (tenant 2, burstable) — a Cassandra-lite pipeline:
//!   commitlog appends, SSTable scans, periodic reads of the frontend's
//!   shared config file (shared-inode attribution), and reads from the
//!   frontend-owned telemetry socket (shared-socket attribution).
//! * **churn** (tenant 3, best-effort) — an antagonist that creates,
//!   writes, and unlinks short-lived files, churning page-cache pages
//!   far past the global budget.
//!
//! Steps are interleaved by a weighted draw from the in-tree
//! deterministic SplitMix64 generator, so the schedule is identical on
//! every run. With [`MultiTenant::specs`]`(budgeted = true)` each tenant
//! gets a page-cache cap (caps sum below the global budget, so an
//! over-cap tenant self-evicts instead of triggering the global
//! shrinker) and the churn tenant gets a fast-tier cap; with
//! `budgeted = false` the tenants share the kernel unprotected and the
//! churn tenant's allocations evict its neighbours' hot pages.

use std::collections::VecDeque;

use kloc_kernel::hooks::{CpuId, Ctx};
use kloc_kernel::{Fd, Kernel, KernelError, QosClass, TenantSpec};
use kloc_mem::{TenantId, PAGE_SIZE};

use crate::keygen::Zipfian;
use crate::rng::WorkloadRng;
use crate::scale::Scale;
use crate::spec::Workload;

/// The latency-critical server tenant.
pub const FRONTEND: TenantId = TenantId(1);
/// The throughput-oriented pipeline tenant.
pub const ANALYTICS: TenantId = TenantId(2);
/// The best-effort file-churn antagonist.
pub const CHURN: TenantId = TenantId(3);

const REQUEST_BYTES: u64 = 256;
const RESPONSE_BYTES: u64 = 1024;
const TELEMETRY_BYTES: u64 = 512;
/// Pages written per churn file.
const CHURN_PAGES: u64 = 8;

/// The multi-tenant workload.
#[derive(Debug)]
pub struct MultiTenant {
    scale: Scale,
    budgeted: bool,
    rng: WorkloadRng,
    zipf: Zipfian,
    // Frontend state.
    sessions: Vec<Fd>,
    front_ops: u64,
    hot_fd: Option<Fd>,
    hot_pages: u64,
    telemetry: Option<Fd>,
    /// Telemetry bytes delivered but not yet consumed by analytics.
    telemetry_queued: u64,
    // Analytics state.
    commitlog: Option<Fd>,
    commitlog_off: u64,
    sstables: Vec<String>,
    analytics_ops: u64,
    // Churn state.
    churn_live: VecDeque<String>,
    /// Files kept alive before the oldest is unlinked — sized to ~3/4
    /// of the global page-cache budget, so an unbudgeted churn tenant
    /// overflows the shared cache while a capped one self-evicts long
    /// before the global shrinker is reached.
    churn_lag: usize,
    churn_serial: u64,
    ops_done: u64,
}

impl MultiTenant {
    /// Creates the workload at `scale`; `budgeted` selects whether
    /// [`MultiTenant::specs`] carries per-tenant budgets.
    pub fn new(scale: &Scale, budgeted: bool) -> Self {
        let hot_pages = (scale.page_cache_frames / 4).max(8);
        MultiTenant {
            budgeted,
            rng: WorkloadRng::seed_from_u64(scale.seed ^ 0x7E_A27),
            zipf: Zipfian::new(hot_pages),
            sessions: Vec::new(),
            front_ops: 0,
            hot_fd: None,
            hot_pages,
            telemetry: None,
            telemetry_queued: 0,
            commitlog: None,
            commitlog_off: 0,
            sstables: Vec::new(),
            analytics_ops: 0,
            churn_live: VecDeque::new(),
            churn_lag: (scale.page_cache_frames * 3 / 4 / CHURN_PAGES).max(8) as usize,
            churn_serial: 0,
            ops_done: 0,
            scale: scale.clone(),
        }
    }

    /// The tenant specs this workload runs under.
    ///
    /// With `budgeted = true`, page-cache caps are fractions of the
    /// scale's global budget that sum to ~82 % of it — an over-cap
    /// tenant self-evicts before the global shrinker can fire, which is
    /// what makes cross-tenant evictions structurally impossible — and
    /// the churn tenant's kernel pages are capped to an eighth of the
    /// fast tier. With `budgeted = false` every cap is `None`.
    pub fn specs(scale: &Scale, budgeted: bool) -> Vec<TenantSpec> {
        let pc = scale.page_cache_frames;
        let cap = |num: u64, den: u64| budgeted.then(|| (pc * num / den).max(8));
        vec![
            TenantSpec {
                id: FRONTEND,
                name: "frontend".to_owned(),
                qos: QosClass::Guaranteed,
                fast_budget_frames: None,
                pc_budget: cap(2, 5),
            },
            TenantSpec {
                id: ANALYTICS,
                name: "analytics".to_owned(),
                qos: QosClass::Burstable,
                fast_budget_frames: None,
                pc_budget: cap(3, 10),
            },
            TenantSpec {
                id: CHURN,
                name: "churn".to_owned(),
                qos: QosClass::BestEffort,
                fast_budget_frames: budgeted.then(|| (scale.fast_bytes / PAGE_SIZE / 8).max(8)),
                pc_budget: cap(1, 8),
            },
        ]
    }

    /// One frontend request: deliver/serve/answer on the next session,
    /// re-reading a zipf-hot page of the hot file, and feed the
    /// telemetry socket.
    fn frontend_step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let idx = (self.front_ops % self.sessions.len() as u64) as usize;
        ctx.cpu = CpuId(idx as u16);
        let sock = self.sessions[idx];
        k.deliver(ctx, sock, REQUEST_BYTES)?;
        k.recv(ctx, sock, REQUEST_BYTES)?;
        let page = self.zipf.next_key(&mut self.rng);
        let hot = self.hot_fd.expect("setup opened the hot file"); // lint: unwrap-ok — set in setup
        k.read(ctx, hot, (page % self.hot_pages) * PAGE_SIZE, 4096)?;
        k.send(ctx, sock, RESPONSE_BYTES)?;
        // Publish telemetry for the analytics tenant (bounded queue so
        // ingress buffers cannot grow without limit if analytics lags).
        if self.telemetry_queued < 64 {
            let tele = self.telemetry.expect("setup opened telemetry"); // lint: unwrap-ok — set in setup
            k.deliver(ctx, tele, TELEMETRY_BYTES)?;
            self.telemetry_queued += 1;
        }
        self.front_ops += 1;
        Ok(())
    }

    /// One analytics op: commitlog append, an SSTable scan read, and
    /// periodic cross-tenant reads (shared config file, telemetry
    /// socket) that exercise shared-object attribution.
    fn analytics_step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        ctx.cpu = CpuId(self.sessions.len() as u16);
        if let Some(cl) = self.commitlog {
            k.write(ctx, cl, self.commitlog_off, 1024)?;
            self.commitlog_off += 1024;
        }
        let n = self.sstables.len() as u64;
        if n > 0 {
            let pick = self.rng.gen_below(n);
            let path = self.sstables[pick as usize].clone();
            let fd = k.open(ctx, &path)?;
            let page = self.rng.gen_below(self.sstable_pages());
            k.read(ctx, fd, page * PAGE_SIZE, 4096)?;
            k.close(ctx, fd)?;
        }
        // Every few ops, read the frontend-owned config file: the pages
        // stay charged to the frontend (the inode's owner) and the
        // access counts as a shared-object access by analytics.
        if self.analytics_ops.is_multiple_of(4) {
            let fd = k.open(ctx, "/tenants/shared.cfg")?;
            k.read(ctx, fd, 0, 4096)?;
            k.close(ctx, fd)?;
        }
        // Drain the frontend-owned telemetry socket: rx bytes are
        // charged to analytics (the reading tenant), the socket knode
        // stays the frontend's.
        if self.telemetry_queued > 0 {
            let tele = self.telemetry.expect("setup opened telemetry"); // lint: unwrap-ok — set in setup
            k.recv(ctx, tele, TELEMETRY_BYTES)?;
            self.telemetry_queued -= 1;
        }
        self.analytics_ops += 1;
        Ok(())
    }

    /// One churn op: write a short-lived file and unlink the oldest
    /// once the lag window is full.
    fn churn_step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        ctx.cpu = CpuId(self.sessions.len() as u16 + 1);
        let path = format!("/churn/f{}", self.churn_serial);
        self.churn_serial += 1;
        let fd = k.create(ctx, &path)?;
        k.write(ctx, fd, 0, CHURN_PAGES * PAGE_SIZE)?;
        k.fsync(ctx, fd)?;
        k.close(ctx, fd)?;
        self.churn_live.push_back(path);
        while self.churn_live.len() > self.churn_lag {
            let old = self.churn_live.pop_front().expect("non-empty"); // lint: unwrap-ok — the loop guard ensures non-empty
            k.unlink(ctx, &old)?;
        }
        Ok(())
    }

    fn sstable_pages(&self) -> u64 {
        (self.scale.page_cache_frames / 16).max(4)
    }
}

impl Workload for MultiTenant {
    fn name(&self) -> &'static str {
        "tenants"
    }

    fn tenant_specs(&self) -> Vec<TenantSpec> {
        MultiTenant::specs(&self.scale, self.budgeted)
    }

    fn setup(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        // Frontend: hot file, shared config, client sessions, telemetry.
        ctx.tenant = FRONTEND;
        let hot = k.create(ctx, "/tenants/hot")?;
        k.write(ctx, hot, 0, self.hot_pages * PAGE_SIZE)?;
        k.fsync(ctx, hot)?;
        self.hot_fd = Some(hot);
        let cfg = k.create(ctx, "/tenants/shared.cfg")?;
        k.write(ctx, cfg, 0, 4 * PAGE_SIZE)?;
        k.fsync(ctx, cfg)?;
        k.close(ctx, cfg)?;
        for _ in 0..self.scale.threads {
            self.sessions.push(k.socket(ctx)?);
        }
        self.telemetry = Some(k.socket(ctx)?);
        // Analytics: commitlog plus a small SSTable set.
        ctx.tenant = ANALYTICS;
        self.commitlog = Some(k.create(ctx, "/analytics/commitlog")?);
        for i in 0..4 {
            let path = format!("/analytics/sst{i}");
            let fd = k.create(ctx, &path)?;
            k.write(ctx, fd, 0, self.sstable_pages() * PAGE_SIZE)?;
            k.fsync(ctx, fd)?;
            k.close(ctx, fd)?;
            self.sstables.push(path);
        }
        ctx.tenant = TenantId::DEFAULT;
        Ok(())
    }

    fn step(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        // Weighted deterministic interleave: 45 % frontend, 25 %
        // analytics, 30 % churn.
        let draw = self.rng.gen_below(100);
        if draw < 45 {
            ctx.tenant = FRONTEND;
            self.frontend_step(k, ctx)?;
        } else if draw < 70 {
            ctx.tenant = ANALYTICS;
            self.analytics_step(k, ctx)?;
        } else {
            ctx.tenant = CHURN;
            self.churn_step(k, ctx)?;
        }
        self.ops_done += 1;
        Ok(())
    }

    fn target_ops(&self) -> u64 {
        self.scale.ops
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn teardown(&mut self, k: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        ctx.tenant = FRONTEND;
        for s in self.sessions.drain(..) {
            k.close(ctx, s)?;
        }
        if let Some(t) = self.telemetry.take() {
            k.close(ctx, t)?;
        }
        if let Some(hot) = self.hot_fd.take() {
            k.close(ctx, hot)?;
        }
        ctx.tenant = ANALYTICS;
        if let Some(cl) = self.commitlog.take() {
            k.fsync(ctx, cl)?;
            k.close(ctx, cl)?;
        }
        ctx.tenant = CHURN;
        for path in self.churn_live.drain(..) {
            k.unlink(ctx, &path)?;
        }
        ctx.tenant = TenantId::DEFAULT;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::NullHooks;
    use kloc_kernel::KernelParams;
    use kloc_mem::MemorySystem;

    fn run(budgeted: bool) -> (Kernel, MultiTenant) {
        let scale = Scale::tiny();
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams {
            page_cache_budget: scale.page_cache_frames,
            ..KernelParams::default()
        });
        for spec in MultiTenant::specs(&scale, budgeted) {
            k.register_tenant(spec);
        }
        let mut w = MultiTenant::new(&scale, budgeted);
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        w.setup(&mut k, &mut ctx).unwrap();
        while !w.is_done() {
            w.step(&mut k, &mut ctx).unwrap();
        }
        w.teardown(&mut k, &mut ctx).unwrap();
        (k, w)
    }

    #[test]
    fn all_three_tenants_act_and_attribution_lands() {
        let (k, _) = run(false);
        let f = k.tenant_stats(FRONTEND);
        let a = k.tenant_stats(ANALYTICS);
        let c = k.tenant_stats(CHURN);
        assert!(f.pc_inserted > 0, "frontend caches its hot file");
        assert!(f.tx_bytes > 0 && f.rx_bytes > 0, "frontend serves sockets");
        assert!(a.pc_inserted > 0, "analytics caches logs and sstables");
        assert!(a.rx_bytes > 0, "analytics drains the telemetry socket");
        assert_eq!(a.tx_bytes, 0, "analytics never sends");
        assert!(c.pc_inserted > c.pc_resident, "churn unlinks its files");
        assert_eq!(c.tx_bytes + c.rx_bytes, 0, "churn is file-only");
    }

    #[test]
    fn unbudgeted_churn_causes_cross_evictions() {
        let (k, _) = run(false);
        let c = k.tenant_stats(CHURN);
        assert!(
            c.cross_evictions_caused > 0,
            "churn must evict neighbours' pages without budgets"
        );
        assert_eq!(c.pc_self_evicted, 0, "no cap, no self-eviction");
    }

    #[test]
    fn budgets_confine_eviction_to_the_offender() {
        let (k, _) = run(true);
        for id in [FRONTEND, ANALYTICS, CHURN] {
            let s = k.tenant_stats(id);
            assert_eq!(
                s.cross_evictions_caused, 0,
                "{id}: caps sum below the global budget, so the global shrinker never fires"
            );
            assert_eq!(s.cross_evictions_suffered, 0, "{id}: isolated");
        }
        let c = k.tenant_stats(CHURN);
        assert!(c.pc_self_evicted > 0, "churn reclaims from itself");
        let specs = MultiTenant::specs(&Scale::tiny(), true);
        let f_cap = specs[0].pc_budget.unwrap();
        assert!(
            k.tenant_stats(FRONTEND).pc_resident <= f_cap,
            "frontend stays within its own cap"
        );
    }

    #[test]
    fn specs_caps_sum_below_global_budget() {
        let scale = Scale::tiny();
        let specs = MultiTenant::specs(&scale, true);
        let total: u64 = specs.iter().filter_map(|s| s.pc_budget).sum();
        assert!(
            total < scale.page_cache_frames,
            "caps ({total}) must undercut the global budget ({})",
            scale.page_cache_frames
        );
        assert!(MultiTenant::specs(&scale, false)
            .iter()
            .all(|s| s.pc_budget.is_none() && s.fast_budget_frames.is_none()));
    }
}
