//! # kloc-workloads — workload models
//!
//! Deterministic models of the paper's evaluation workloads (Table 3),
//! driving the simulated kernel through its syscall interface. Each model
//! reproduces the *kernel object mix* and access pattern the paper
//! attributes to its real counterpart:
//!
//! * [`RocksDb`] — LSM key-value store: memtable in app memory, WAL
//!   appends, flushes to hundreds of small SSTable files, leveled
//!   compaction that creates and deletes file churn; dbbench-style 50/50
//!   random/sequential reads and writes. Page-cache dominated (Fig. 2a).
//! * [`Redis`] — 16 instances serving 75 % sets / 25 % gets over
//!   sockets, periodically checkpointing the in-memory store to a dump
//!   file. Mix of socket buffers and page cache.
//! * [`Filebench`] — 16 threads doing 4 KB reads (half sequential, half
//!   random) and writes against a large file set; 86 % of time in the
//!   kernel.
//! * [`Cassandra`] — YCSB 50/50 with a large application-level cache
//!   that absorbs most reads (why KLOCs gain least here, §7.1),
//!   commitlog appends, SSTable flushes, client sockets, and Java-ish
//!   per-op overhead.
//! * [`Spark`] — TeraSort: generate input files, shuffle write/read,
//!   sorted output; streaming file I/O.
//! * [`Interference`] — the memory-streaming antagonist used in the
//!   Optane/AutoNUMA experiment (§6.2).
//! * [`MultiTenant`] — three consolidated-server tenants (frontend,
//!   analytics, file churn) multiplexed over one kernel with optional
//!   per-tenant KLOC budgets (DESIGN.md §12); driven by `repro tenants`
//!   rather than the paper-figure experiments.
//!
//! All models implement [`Workload`] and are sized by a [`Scale`]
//! (the paper's 10 GB/40 GB inputs scaled down ~1024x; shapes are
//! scale-invariant in the model).

#![warn(missing_docs)]

pub mod cassandra;
pub mod filebench;
pub mod interference;
pub mod keygen;
pub mod redis;
pub mod rng;
pub mod rocksdb;
pub mod scale;
pub mod spark;
pub mod spec;
pub mod tenants;

pub use cassandra::Cassandra;
pub use filebench::Filebench;
pub use interference::Interference;
pub use keygen::{KeyDist, Zipfian};
pub use redis::Redis;
pub use rocksdb::RocksDb;
pub use scale::Scale;
pub use spark::Spark;
pub use spec::{Workload, WorkloadKind};
pub use tenants::MultiTenant;
