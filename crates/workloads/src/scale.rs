//! Experiment scale.
//!
//! The paper runs 10 GB ("Small") and 40 GB ("Large") inputs against an
//! 8 GB fast tier. Running gigabytes through a discrete-event simulator
//! is pointless — every capacity in the model scales linearly — so the
//! default scales divide everything by ~1024: Large = 40 MB of data over
//! an 8 MB fast tier, preserving the data:fast-memory ratio (5:1) that
//! drives all the contention effects.

/// Sizing knobs shared by all workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scale {
    /// Display label ("Small", "Large", ...).
    pub label: String,
    /// Total dataset bytes a workload manages.
    pub data_bytes: u64,
    /// Operations to execute in the measured phase.
    pub ops: u64,
    /// Simulated client/worker threads (paper: 16 everywhere).
    pub threads: u16,
    /// Fast-tier capacity in bytes that pairs with this scale
    /// (the paper's 8 GB, scaled).
    pub fast_bytes: u64,
    /// Page-cache budget in frames for the kernel at this scale.
    pub page_cache_frames: u64,
    /// RNG seed (determinism).
    pub seed: u64,
}

impl Scale {
    /// The paper's "Large" inputs (40 GB), scaled 1024x down.
    pub fn large() -> Self {
        Scale {
            label: "Large".to_owned(),
            data_bytes: 40 << 20,
            ops: 30_000,
            threads: 16,
            fast_bytes: 8 << 20,
            page_cache_frames: 16384, // page cache holds the dataset (80 GB RAM in the paper)
            seed: 0x51_0C5,
        }
    }

    /// A 4x-Large scale (the paper's 160 GB extrapolation): the same
    /// 1024x spatial shrink, four times the dataset, fast tier, cache
    /// budget, and ops of [`Scale::large`] — preserving the 5:1
    /// data:fast-memory ratio while pushing the simulator's own data
    /// structures (frame table, LRU shards, radix nodes) well past the
    /// Large footprint.
    pub fn huge() -> Self {
        Scale {
            label: "Huge".to_owned(),
            data_bytes: 160 << 20,
            ops: 120_000,
            threads: 16,
            fast_bytes: 32 << 20,
            page_cache_frames: 65536,
            seed: 0x51_0C5,
        }
    }

    /// The paper's "Small" inputs (10 GB), scaled 1024x down.
    pub fn small() -> Self {
        Scale {
            label: "Small".to_owned(),
            data_bytes: 10 << 20,
            ops: 12_000,
            threads: 16,
            fast_bytes: 8 << 20,
            page_cache_frames: 6144,
            seed: 0x51_0C5,
        }
    }

    /// Minimal scale for unit/integration tests (fast).
    pub fn tiny() -> Self {
        Scale {
            label: "Tiny".to_owned(),
            data_bytes: 2 << 20,
            ops: 1_500,
            threads: 4,
            fast_bytes: 1 << 20,
            page_cache_frames: 1024,
            seed: 0x51_0C5,
        }
    }

    /// Returns a copy with a different fast-tier size (Fig. 6 capacity
    /// sweep).
    pub fn with_fast_bytes(mut self, fast_bytes: u64) -> Self {
        self.fast_bytes = fast_bytes;
        self
    }

    /// Returns a copy with a different op count.
    pub fn with_ops(mut self, ops: u64) -> Self {
        self.ops = ops;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Dataset size in 4 KB pages.
    pub fn data_pages(&self) -> u64 {
        self.data_bytes / kloc_mem::PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_preserves_paper_ratio() {
        let s = Scale::large();
        // 40 GB : 8 GB in the paper = 5 : 1.
        assert_eq!(s.data_bytes / s.fast_bytes, 5);
        assert_eq!(s.threads, 16);
    }

    #[test]
    fn builders_override() {
        let s = Scale::tiny()
            .with_fast_bytes(1 << 20)
            .with_ops(10)
            .with_seed(7);
        assert_eq!(s.fast_bytes, 1 << 20);
        assert_eq!(s.ops, 10);
        assert_eq!(s.seed, 7);
    }

    #[test]
    fn data_pages_math() {
        assert_eq!(Scale::large().data_pages(), (40 << 20) / 4096);
    }

    #[test]
    fn huge_is_4x_large_same_ratio() {
        let (h, l) = (Scale::huge(), Scale::large());
        assert_eq!(h.data_bytes, 4 * l.data_bytes);
        assert_eq!(h.fast_bytes, 4 * l.fast_bytes);
        assert_eq!(h.page_cache_frames, 4 * l.page_cache_frames);
        assert_eq!(h.ops, 4 * l.ops);
        assert_eq!(h.data_bytes / h.fast_bytes, l.data_bytes / l.fast_bytes);
    }
}
