//! Workload pseudo-randomness.
//!
//! The workload models draw keys, operation mixes, and offsets from the
//! in-tree seeded [`SplitMix64`](kloc_mem::rng::SplitMix64) generator
//! (the `rand` crate is not available to offline builds). Each workload
//! seeds its generator from [`crate::Scale::seed`] XOR a per-workload
//! constant, so runs are deterministic and workloads are decorrelated.
//!
//! Note: switching from `rand::StdRng` to SplitMix64 changed the
//! generated key/op streams once (same seeds, different stream); every
//! paper *shape* the tests assert is stream-invariant.

pub use kloc_mem::rng::SplitMix64 as WorkloadRng;
