//! The [`Workload`] trait, the workload factory, and shared helpers.

use kloc_kernel::hooks::Ctx;
use kloc_kernel::{Kernel, KernelError};
use kloc_mem::FrameId;

use crate::scale::Scale;

/// A runnable workload model.
///
/// The engine calls [`Workload::setup`] once (load phase, not measured),
/// then [`Workload::step`] until [`Workload::is_done`], then
/// [`Workload::teardown`]. A step is one application-level operation
/// (one KV op, one 4 KB I/O, one request/response, ...), so throughput is
/// `ops / measured virtual time`.
pub trait Workload {
    /// Workload name ("rocksdb", "redis", ...).
    fn name(&self) -> &'static str;

    /// Load phase: create files, populate stores, open sockets.
    ///
    /// # Errors
    /// Propagates kernel errors (which indicate a harness bug — workloads
    /// only issue valid syscalls).
    fn setup(&mut self, kernel: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError>;

    /// Executes one operation.
    ///
    /// # Errors
    /// Propagates kernel errors.
    fn step(&mut self, kernel: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError>;

    /// Operations to run in the measured phase.
    fn target_ops(&self) -> u64;

    /// Operations completed so far.
    fn ops_done(&self) -> u64;

    /// Whether the measured phase is complete.
    fn is_done(&self) -> bool {
        self.ops_done() >= self.target_ops()
    }

    /// Close remaining handles and free app memory.
    ///
    /// # Errors
    /// Propagates kernel errors.
    fn teardown(&mut self, kernel: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError>;

    /// Tenant specs this workload runs under. The engine registers them
    /// with the kernel and hands them to the policy before setup; the
    /// default (empty) leaves the run single-tenant.
    fn tenant_specs(&self) -> Vec<kloc_kernel::TenantSpec> {
        Vec::new()
    }
}

/// The paper's evaluation workloads (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WorkloadKind {
    /// LSM key-value store (dbbench).
    RocksDb,
    /// In-memory KV over sockets with checkpoints.
    Redis,
    /// File microbenchmark.
    Filebench,
    /// YCSB over a Java-style store with a big app cache.
    Cassandra,
    /// TeraSort over a distributed-FS model.
    Spark,
    /// Consolidated-server tenants sharing one kernel (DESIGN.md §12).
    /// Not part of [`WorkloadKind::ALL`] — driven by `repro tenants`.
    Tenants {
        /// Whether the tenant specs carry per-tenant budgets.
        budgeted: bool,
    },
}

impl WorkloadKind {
    /// The four workloads the paper's evaluation focuses on plus
    /// Filebench (Spark is exercised in the motivation study; the paper
    /// had firewall trouble evaluating it, §6.1 — we *can* run it).
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::RocksDb,
        WorkloadKind::Redis,
        WorkloadKind::Filebench,
        WorkloadKind::Cassandra,
        WorkloadKind::Spark,
    ];

    /// The evaluation set of Fig. 4 / Fig. 6.
    pub const EVALUATED: [WorkloadKind; 4] = [
        WorkloadKind::RocksDb,
        WorkloadKind::Redis,
        WorkloadKind::Filebench,
        WorkloadKind::Cassandra,
    ];

    /// Builds the workload at a scale.
    pub fn build(self, scale: &Scale) -> Box<dyn Workload> {
        match self {
            WorkloadKind::RocksDb => Box::new(crate::rocksdb::RocksDb::new(scale)),
            WorkloadKind::Redis => Box::new(crate::redis::Redis::new(scale)),
            WorkloadKind::Filebench => Box::new(crate::filebench::Filebench::new(scale)),
            WorkloadKind::Cassandra => Box::new(crate::cassandra::Cassandra::new(scale)),
            WorkloadKind::Spark => Box::new(crate::spark::Spark::new(scale)),
            WorkloadKind::Tenants { budgeted } => {
                Box::new(crate::tenants::MultiTenant::new(scale, budgeted))
            }
        }
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::RocksDb => "RocksDB",
            WorkloadKind::Redis => "Redis",
            WorkloadKind::Filebench => "Filebench",
            WorkloadKind::Cassandra => "Cassandra",
            WorkloadKind::Spark => "Spark",
            WorkloadKind::Tenants { budgeted: true } => "Multi-tenant (budgeted)",
            WorkloadKind::Tenants { budgeted: false } => "Multi-tenant (no budgets)",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A region of application memory (anonymous pages) owned by a workload.
#[derive(Debug, Default)]
pub struct AppMemory {
    frames: Vec<FrameId>,
    /// Rotating scratch pool modeling heap churn (malloc/free traffic):
    /// real applications allocate and release anonymous pages
    /// continuously, which is what makes the paper's Fig. 2b an
    /// *allocation-share* comparison rather than a residency one.
    scratch: std::collections::VecDeque<FrameId>,
}

impl AppMemory {
    /// Allocates `pages` application pages.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn allocate(
        kernel: &mut Kernel,
        ctx: &mut Ctx<'_>,
        pages: u64,
    ) -> Result<Self, KernelError> {
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            frames.push(kernel.alloc_app_page(ctx)?);
        }
        Ok(AppMemory {
            frames,
            scratch: std::collections::VecDeque::new(),
        })
    }

    /// Number of pages.
    pub fn pages(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Accesses `bytes` at logical page `index` (wrapping).
    pub fn touch(
        &self,
        kernel: &mut Kernel,
        ctx: &mut Ctx<'_>,
        index: u64,
        bytes: u64,
        write: bool,
    ) {
        if self.frames.is_empty() {
            return;
        }
        let frame = self.frames[(index % self.frames.len() as u64) as usize];
        kernel.app_access(ctx, frame, bytes, write);
    }

    /// One round of heap churn: allocates a fresh anonymous page and
    /// releases the oldest scratch page once the pool holds `pool`
    /// pages. Models per-operation malloc/free traffic.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn churn(
        &mut self,
        kernel: &mut Kernel,
        ctx: &mut Ctx<'_>,
        pool: usize,
    ) -> Result<(), KernelError> {
        let f = kernel.alloc_app_page(ctx)?;
        kernel.app_access(ctx, f, 512, true);
        self.scratch.push_back(f);
        while self.scratch.len() > pool {
            let old = self.scratch.pop_front().expect("non-empty"); // lint: unwrap-ok — the loop guard ensures non-empty
            kernel.free_app_page(ctx, old)?;
        }
        Ok(())
    }

    /// Frees every page.
    ///
    /// # Errors
    /// Propagates free failures (double free = harness bug).
    pub fn free_all(&mut self, kernel: &mut Kernel, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        for f in self.frames.drain(..) {
            kernel.free_app_page(ctx, f)?;
        }
        for f in self.scratch.drain(..) {
            kernel.free_app_page(ctx, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::NullHooks;
    use kloc_kernel::KernelParams;
    use kloc_mem::MemorySystem;

    #[test]
    fn factory_builds_all_workloads() {
        let scale = Scale::tiny();
        for kind in WorkloadKind::ALL {
            let w = kind.build(&scale);
            assert!(!w.name().is_empty());
            assert!(w.target_ops() > 0);
            assert_eq!(w.ops_done(), 0);
            assert!(!w.is_done());
        }
    }

    #[test]
    fn app_memory_round_trip() {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut app = AppMemory::allocate(&mut k, &mut ctx, 8).unwrap();
        assert_eq!(app.pages(), 8);
        app.touch(&mut k, &mut ctx, 3, 64, true);
        app.touch(&mut k, &mut ctx, 100, 64, false); // wraps
        app.free_all(&mut k, &mut ctx).unwrap();
        assert_eq!(app.pages(), 0);
        assert_eq!(ctx.mem.live_frames(), 0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(WorkloadKind::RocksDb.to_string(), "RocksDB");
        assert_eq!(WorkloadKind::EVALUATED.len(), 4);
    }
}
