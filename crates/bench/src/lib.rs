//! # kloc-bench — benchmark harness
//!
//! One Criterion bench per paper artifact. Each bench first *regenerates
//! and prints* the corresponding table/figure at the bench scale (so
//! `cargo bench` output contains the paper-shaped rows), then times the
//! underlying experiment at a reduced scale.
//!
//! | Bench target | Paper artifact |
//! |---|---|
//! | `fig2_motivation` | Fig. 2a-2d |
//! | `fig4_two_tier` | Fig. 4 |
//! | `fig5_optane_sources_sensitivity` | Fig. 5a, 5b, 5c |
//! | `fig6_sweep` | Fig. 6 |
//! | `table6_overhead` | Table 6 |
//! | `ablations` | §4.3 per-CPU lists, §7.3 prefetch |
//! | `micro` | substrate microbenchmarks (allocators, knodes, kmap) |

use kloc_workloads::Scale;

/// The scale benches print figures at: Small inputs, trimmed op count so
/// a full figure regenerates in seconds. The fast tier is shrunk to keep
/// the paper's ~5:1 data-to-fast-memory pressure ratio.
pub fn bench_scale() -> Scale {
    // Half the Large op count: the calibrated Large geometry (8 MB fast
    // vs 40 MB data) reaches the steady state where the paper's policy
    // ordering shows, while a full figure still regenerates in seconds.
    Scale::large().with_ops(15_000)
}

/// The scale used inside Criterion timing loops (fast enough for
/// repeated samples).
pub fn timing_scale() -> Scale {
    Scale::tiny().with_ops(800)
}
