//! Substrate microbenchmarks: the host-side cost of the core data
//! structures (these measure simulator performance, not virtual time).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kloc_core::{KlocConfig, KlocRegistry};
use kloc_kernel::hooks::{CpuId, Ctx, NullHooks};
use kloc_kernel::slab::PackedAllocator;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{Kernel, KernelObjectType, KernelParams, ObjectId, ObjectInfo};
use kloc_mem::{FrameId, MemorySystem, Nanos, PageKind, TierId};
use kloc_workloads::Zipfian;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mem(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem");
    group.bench_function("allocate_free", |b| {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        b.iter(|| {
            let f = mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
            mem.free(black_box(f)).unwrap();
        })
    });
    group.bench_function("access", |b| {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let f = mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
        b.iter(|| mem.read(black_box(f), 4096))
    });
    group.bench_function("migrate_round_trip", |b| {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let f = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        b.iter(|| {
            mem.migrate(f, TierId::SLOW).unwrap();
            mem.migrate(f, TierId::FAST).unwrap();
        })
    });
    group.finish();
}

fn bench_slab(c: &mut Criterion) {
    let mut group = c.benchmark_group("slab");
    group.bench_function("alloc_free_dentry", |b| {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut slab = PackedAllocator::new(PageKind::Slab, None);
        b.iter(|| {
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            let f = slab
                .alloc(&mut ctx, KernelObjectType::Dentry, None, false)
                .unwrap();
            slab.free(&mut ctx, KernelObjectType::Dentry, None, black_box(f))
                .unwrap();
        })
    });
    group.finish();
}

fn bench_kloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("kloc");
    group.bench_function("knode_track_untrack", |b| {
        let mut reg = KlocRegistry::new(KlocConfig::default());
        reg.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        let info = ObjectInfo {
            ty: KernelObjectType::PageCache,
            size: 4096,
            inode: Some(InodeId(1)),
        };
        let mut n = 0u64;
        b.iter(|| {
            let id = ObjectId(n);
            n += 1;
            reg.object_allocated(id, &info, FrameId(n), CpuId(0), Nanos::ZERO);
            reg.object_freed(id, &info);
        })
    });
    group.bench_function("percpu_fast_path_hit", |b| {
        let mut reg = KlocRegistry::new(KlocConfig::default());
        reg.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        let info = ObjectInfo {
            ty: KernelObjectType::PageCache,
            size: 4096,
            inode: Some(InodeId(1)),
        };
        b.iter(|| reg.object_accessed(black_box(&info), CpuId(0), Nanos::ZERO))
    });
    group.finish();
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.bench_function("write_read_4k", |b| {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let fd = {
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            k.create(&mut ctx, "/bench").unwrap()
        };
        b.iter(|| {
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            k.write(&mut ctx, fd, 0, 4096).unwrap();
            k.read(&mut ctx, fd, 0, 4096).unwrap();
        })
    });
    group.bench_function("socket_round_trip", |b| {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let fd = {
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            k.socket(&mut ctx).unwrap()
        };
        b.iter(|| {
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            k.deliver(&mut ctx, fd, 256).unwrap();
            k.recv(&mut ctx, fd, 256).unwrap();
            k.send(&mut ctx, fd, 512).unwrap();
        })
    });
    group.finish();
}

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("keygen");
    group.bench_function("zipfian_draw", |b| {
        let z = Zipfian::new(1_000_000);
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(z.next_key(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mem,
    bench_slab,
    bench_kloc,
    bench_kernel,
    bench_keygen
);
criterion_main!(benches);
