//! Fig. 6 — capacity x bandwidth sensitivity sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use kloc_bench::{bench_scale, timing_scale};
use kloc_sim::experiments::fig6;
use kloc_sim::Runner;
use kloc_workloads::WorkloadKind;

fn print_figure() {
    let scale = bench_scale();
    let cells = fig6::run(
        &Runner::auto(),
        &scale,
        &WorkloadKind::EVALUATED,
        &fig6::CAPACITIES,
        &fig6::RATIOS,
    )
    .expect("fig6 runs");
    println!("{}", fig6::table(&cells));
}

fn bench(c: &mut Criterion) {
    print_figure();
    let scale = timing_scale();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("one_cell_rocksdb", |b| {
        b.iter(|| {
            fig6::run(
                &Runner::auto(),
                &scale,
                &[WorkloadKind::RocksDb],
                &[512 << 10],
                &[8],
            )
            .expect("cell")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
