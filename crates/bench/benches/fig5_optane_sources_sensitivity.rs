//! Fig. 5 — Optane Memory Mode (5a), sources of improvement (5b), and
//! per-object-class sensitivity (5c).

use criterion::{criterion_group, criterion_main, Criterion};

use kloc_bench::{bench_scale, timing_scale};
use kloc_policy::AutoNuma;
use kloc_sim::engine::{self, OptaneScenario, Platform, RunConfig};
use kloc_sim::experiments::fig5;
use kloc_sim::Runner;
use kloc_workloads::WorkloadKind;

fn print_figures() {
    let scale = bench_scale();
    let platform = Platform::TwoTier {
        fast_bytes: scale.fast_bytes,
        bw_ratio: 8,
    };
    let rows = fig5::fig5a(&Runner::auto(), &scale, &WorkloadKind::EVALUATED).expect("fig5a");
    println!("{}", fig5::fig5a_table(&rows));
    let rows = fig5::fig5b(&Runner::auto(), &scale, platform).expect("fig5b");
    println!("{}", fig5::fig5b_table(&rows));
    let rows =
        fig5::fig5c(&Runner::auto(), &scale, platform, &WorkloadKind::EVALUATED).expect("fig5c");
    println!("{}", fig5::fig5c_table(&rows));
}

fn bench(c: &mut Criterion) {
    print_figures();
    let scale = timing_scale();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("optane_interfered_redis_kloc", |b| {
        b.iter(|| {
            engine::run_with(
                &RunConfig {
                    workload: WorkloadKind::Redis,
                    policy: kloc_policy::PolicyKind::AutoNumaKloc,
                    scale: scale.clone(),
                    platform: Platform::Optane {
                        l4_bytes: 1 << 20,
                        scenario: OptaneScenario::Interfered { contention: 1.8 },
                    },
                    kernel_params: None,
                    faults: None,
                    budgets: Vec::new(),
                },
                Box::new(kloc_policy::AutoNumaKloc::new()),
            )
            .expect("run")
        })
    });
    group.bench_function("optane_interfered_redis_autonuma", |b| {
        b.iter(|| {
            engine::run_with(
                &RunConfig {
                    workload: WorkloadKind::Redis,
                    policy: kloc_policy::PolicyKind::AutoNuma,
                    scale: scale.clone(),
                    platform: Platform::Optane {
                        l4_bytes: 1 << 20,
                        scenario: OptaneScenario::Interfered { contention: 1.8 },
                    },
                    kernel_params: None,
                    faults: None,
                    budgets: Vec::new(),
                },
                Box::new(AutoNuma::new()),
            )
            .expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
