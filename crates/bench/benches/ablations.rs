//! Ablations: per-CPU knode lists (§4.3) and KLOC-aware prefetching
//! (§7.3).

use criterion::{criterion_group, criterion_main, Criterion};

use kloc_bench::{bench_scale, timing_scale};
use kloc_sim::experiments::ablations;
use kloc_sim::Runner;
use kloc_workloads::WorkloadKind;

fn print_tables() {
    let scale = bench_scale();
    let a = ablations::percpu(&Runner::auto(), &scale).expect("percpu ablation");
    println!("{}", ablations::percpu_table(&a));
    let a = ablations::prefetch(&Runner::auto(), &scale, WorkloadKind::Spark)
        .expect("prefetch ablation");
    println!("{}", ablations::prefetch_table(&a));
    let a = ablations::thp(
        &Runner::auto(),
        &scale,
        &[WorkloadKind::RocksDb, WorkloadKind::Redis],
    )
    .expect("thp ablation");
    println!("{}", ablations::thp_table(&a));
    let a = ablations::granularity(&Runner::auto(), &scale, &WorkloadKind::EVALUATED)
        .expect("granularity ablation");
    println!("{}", ablations::granularity_table(&a));
}

fn bench(c: &mut Criterion) {
    print_tables();
    let scale = timing_scale();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("percpu", |b| {
        b.iter(|| ablations::percpu(&Runner::auto(), &scale).expect("percpu"))
    });
    group.bench_function("prefetch_spark", |b| {
        b.iter(|| {
            ablations::prefetch(&Runner::auto(), &scale, WorkloadKind::Spark).expect("prefetch")
        })
    });
    group.bench_function("granularity_rocksdb", |b| {
        b.iter(|| {
            ablations::granularity(&Runner::auto(), &scale, &[WorkloadKind::RocksDb])
                .expect("granularity")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
