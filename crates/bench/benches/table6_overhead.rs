//! Table 6 — KLOC metadata memory increase.

use criterion::{criterion_group, criterion_main, Criterion};

use kloc_bench::{bench_scale, timing_scale};
use kloc_sim::experiments::table6;
use kloc_sim::Runner;
use kloc_workloads::WorkloadKind;

fn print_table() {
    let scale = bench_scale();
    let rows = table6::run(&Runner::auto(), &scale, &WorkloadKind::ALL).expect("table6 runs");
    println!("{}", table6::table(&rows));
}

fn bench(c: &mut Criterion) {
    print_table();
    let scale = timing_scale();
    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    group.bench_function("overhead_rocksdb", |b| {
        b.iter(|| table6::run(&Runner::auto(), &scale, &[WorkloadKind::RocksDb]).expect("row"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
