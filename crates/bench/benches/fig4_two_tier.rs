//! Fig. 4 — two-tier speedups vs All-Slow.
//!
//! Prints the regenerated figure at bench scale, then times single runs
//! of the KLOC policy and the All-Slow baseline.

use criterion::{criterion_group, criterion_main, Criterion};

use kloc_bench::{bench_scale, timing_scale};
use kloc_policy::PolicyKind;
use kloc_sim::engine::{self, Platform, RunConfig};
use kloc_sim::experiments::fig4;
use kloc_sim::Runner;
use kloc_workloads::WorkloadKind;

fn print_figure() {
    let scale = bench_scale();
    let platform = Platform::TwoTier {
        fast_bytes: scale.fast_bytes,
        bw_ratio: 8,
    };
    let rows = fig4::run(&Runner::auto(), &scale, platform, &WorkloadKind::ALL).expect("fig4 runs");
    println!("{}", fig4::table(&rows));
}

fn bench(c: &mut Criterion) {
    print_figure();
    let scale = timing_scale();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for policy in [PolicyKind::AllSlow, PolicyKind::Naive, PolicyKind::Kloc] {
        group.bench_function(format!("rocksdb/{policy}"), |b| {
            b.iter(|| {
                engine::run(&RunConfig::two_tier(
                    WorkloadKind::RocksDb,
                    policy,
                    scale.clone(),
                ))
                .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
