//! Fig. 2 — the motivation study (footprints, allocation shares,
//! reference shares, lifetimes).

use criterion::{criterion_group, criterion_main, Criterion};

use kloc_bench::{bench_scale, timing_scale};
use kloc_sim::experiments::fig2;
use kloc_sim::Runner;

fn print_figures() {
    let large = bench_scale();
    let mut small = large.clone();
    small.data_bytes /= 4;
    small.label = "Small".to_owned();

    let large_reports = fig2::run_all(&Runner::auto(), &large).expect("fig2 large");
    let small_reports = fig2::run_all(&Runner::auto(), &small).expect("fig2 small");

    println!("{}", fig2::fig2a_table(&fig2::fig2a(&large_reports)));
    println!(
        "{}",
        fig2::fig2b_table(&fig2::fig2b(&small_reports, &large_reports))
    );
    println!("{}", fig2::fig2c_table(&fig2::fig2c(&large_reports)));
    println!("{}", fig2::fig2d_table(&fig2::fig2d(&large_reports)));
}

fn bench(c: &mut Criterion) {
    print_figures();
    let scale = timing_scale();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("motivation_characterization", |b| {
        b.iter(|| fig2::run_all(&Runner::auto(), &scale).expect("fig2 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
