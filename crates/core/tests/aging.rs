//! Eager-vs-lazy aging equivalence.
//!
//! The registry ages knodes lazily: `age_epoch` bumps a global counter
//! and each knode derives its age on demand (paper §4.3 — KLOCs age "as
//! a side effect of events", without scanning). These tests drive the
//! real registry and an *eager* reference model — which walks every
//! knode on every epoch, the implementation the rewrite replaced —
//! through identical seeded op streams and require them to agree on
//! every observable: per-knode age and activity, the inactive ordering,
//! cold-set selection, and LRU ranking.

use std::collections::BTreeMap;

use kloc_core::{KlocConfig, KlocRegistry};
use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{KernelObjectType, ObjectId, ObjectInfo};
use kloc_mem::rng::SplitMix64;
use kloc_mem::{FrameId, Nanos};

/// The scan-based reference: one record per knode, aged by walking the
/// whole population on every epoch.
#[derive(Debug, Default)]
struct EagerModel {
    knodes: BTreeMap<InodeId, EagerKnode>,
    epoch: u64,
}

#[derive(Debug)]
struct EagerKnode {
    inuse: bool,
    age: u32,
    last_active: Nanos,
    members: BTreeMap<ObjectId, FrameId>,
}

impl EagerModel {
    fn create(&mut self, inode: InodeId, now: Nanos) {
        self.knodes.insert(
            inode,
            EagerKnode {
                inuse: true,
                age: 0,
                last_active: now,
                members: BTreeMap::new(),
            },
        );
    }

    fn open(&mut self, inode: InodeId, now: Nanos) {
        if let Some(k) = self.knodes.get_mut(&inode) {
            k.inuse = true;
            k.age = 0;
            k.last_active = now;
        }
    }

    fn close(&mut self, inode: InodeId) {
        if let Some(k) = self.knodes.get_mut(&inode) {
            k.inuse = false;
        }
    }

    fn destroy(&mut self, inode: InodeId) {
        self.knodes.remove(&inode);
    }

    fn touch(&mut self, inode: InodeId, now: Nanos) {
        if let Some(k) = self.knodes.get_mut(&inode) {
            k.age = 0;
            k.last_active = now;
        }
    }

    fn add_obj(&mut self, inode: InodeId, obj: ObjectId, frame: FrameId, now: Nanos) {
        if let Some(k) = self.knodes.get_mut(&inode) {
            k.members.insert(obj, frame);
            k.age = 0;
            k.last_active = now;
        }
    }

    fn remove_obj(&mut self, inode: InodeId, obj: ObjectId) {
        if let Some(k) = self.knodes.get_mut(&inode) {
            k.members.remove(&obj);
        }
    }

    /// The eager aging pass: O(knodes), the cost `age_epoch` no longer
    /// pays.
    fn age_epoch(&mut self) {
        self.epoch += 1;
        for k in self.knodes.values_mut() {
            if !k.inuse {
                k.age = k.age.saturating_add(1);
            }
        }
    }

    /// Inactive inodes ordered by last activity (the registry's
    /// `inactive_knodes` contract).
    fn inactive_by_activity(&self) -> Vec<InodeId> {
        let mut v: Vec<(Nanos, InodeId)> = self
            .knodes
            .iter()
            .filter(|(_, k)| !k.inuse)
            .map(|(&i, k)| (k.last_active, i))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, i)| i).collect()
    }

    /// Cold candidates: inactive, age >= min_age, non-empty; inode
    /// order (the registry's cold-index contract).
    fn cold_with_members(&self, min_age: u32) -> Vec<InodeId> {
        self.knodes
            .iter()
            .filter(|(_, k)| !k.inuse && k.age >= min_age && !k.members.is_empty())
            .map(|(&i, _)| i)
            .collect()
    }

    /// LRU ranking: inactive before active, oldest activity first.
    fn lru(&self, n: usize) -> Vec<InodeId> {
        let mut v: Vec<(bool, Nanos, InodeId)> = self
            .knodes
            .iter()
            .map(|(&i, k)| (k.inuse, k.last_active, i))
            .collect();
        v.sort_unstable();
        v.truncate(n);
        v.into_iter().map(|(_, _, i)| i).collect()
    }
}

fn info(inode: InodeId) -> ObjectInfo {
    ObjectInfo {
        ty: KernelObjectType::PageCache,
        size: KernelObjectType::PageCache.size(),
        inode: Some(inode),
    }
}

fn assert_equivalent(r: &mut KlocRegistry, m: &EagerModel, seed: u64, step: usize) {
    let ctx = |what: &str| format!("seed {seed}, step {step}: {what}");
    assert_eq!(r.kmap().len(), m.knodes.len(), "{}", ctx("population"));
    for (&inode, k) in &m.knodes {
        assert_eq!(
            r.kmap().age_of(inode),
            Some(k.age),
            "{}",
            ctx(&format!("age of {inode}"))
        );
        assert_eq!(
            r.is_active(inode),
            Some(k.inuse),
            "{}",
            ctx(&format!("activity of {inode}"))
        );
    }
    assert_eq!(
        r.kmap().inactive_knodes(),
        m.inactive_by_activity(),
        "{}",
        ctx("inactive ordering")
    );
    for min_age in [0, 1, 3, 8] {
        let expected = m.cold_with_members(min_age);
        let mut cold = Vec::new();
        r.cold_member_candidates(min_age, usize::MAX, &mut cold);
        assert_eq!(
            cold,
            expected,
            "{}",
            ctx(&format!("cold set at min_age {min_age}"))
        );
        // The batch limit takes a prefix of the same ordering.
        let mut batch = Vec::new();
        r.cold_member_candidates(min_age, 2, &mut batch);
        assert_eq!(
            batch,
            expected[..expected.len().min(2)],
            "{}",
            ctx(&format!("cold batch at min_age {min_age}"))
        );
    }
    for n in [1, 4, usize::MAX] {
        assert_eq!(
            r.kmap().lru_knodes(n.min(m.knodes.len() + 1)),
            m.lru(n.min(m.knodes.len() + 1)),
            "{}",
            ctx(&format!("lru ranking at n {n}"))
        );
    }
}

/// Drives both models through `steps` random ops from `seed` and checks
/// every observable after each op.
fn run_stream(seed: u64, steps: usize) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut r = KlocRegistry::new(KlocConfig::default());
    let mut m = EagerModel::default();
    let mut next_inode = 1u64;
    let mut next_obj = 0u64;
    let mut live: Vec<InodeId> = Vec::new();

    for step in 0..steps {
        let now = Nanos::from_micros(step as u64);
        let cpu = CpuId(rng.gen_below(4) as u16);
        match rng.gen_below(100) {
            // Create a knode.
            0..=14 => {
                let inode = InodeId(next_inode);
                next_inode += 1;
                r.inode_created(inode, cpu, now);
                m.create(inode, now);
                live.push(inode);
            }
            // Reopen (possibly already open — must not reset the clock
            // semantics differently between models).
            15..=24 if !live.is_empty() => {
                let inode = live[rng.gen_below(live.len() as u64) as usize];
                r.inode_opened(inode, cpu, now);
                m.open(inode, now);
            }
            // Close (possibly repeatedly — a repeated close must not
            // restart the inactivity clock).
            25..=44 if !live.is_empty() => {
                let inode = live[rng.gen_below(live.len() as u64) as usize];
                r.inode_closed(inode, Nanos::ZERO);
                m.close(inode);
            }
            // Destroy.
            45..=49 if !live.is_empty() => {
                let i = rng.gen_below(live.len() as u64) as usize;
                let inode = live.swap_remove(i);
                r.inode_destroyed(inode, Nanos::ZERO);
                m.destroy(inode);
            }
            // Object allocation (touches the knode).
            50..=59 if !live.is_empty() => {
                let inode = live[rng.gen_below(live.len() as u64) as usize];
                let obj = ObjectId(next_obj);
                next_obj += 1;
                let frame = FrameId(rng.gen_below(64));
                r.object_allocated(obj, &info(inode), frame, cpu, now);
                m.add_obj(inode, obj, frame, now);
            }
            // Object free (does not touch).
            60..=64 if !live.is_empty() => {
                let inode = live[rng.gen_below(live.len() as u64) as usize];
                if let Some((&obj, _)) = m.knodes[&inode].members.iter().next() {
                    r.object_freed(obj, &info(inode));
                    m.remove_obj(inode, obj);
                }
            }
            // Access (touch via the per-CPU fast path).
            65..=79 if !live.is_empty() => {
                let inode = live[rng.gen_below(live.len() as u64) as usize];
                r.object_accessed(&info(inode), cpu, now);
                m.touch(inode, now);
            }
            // Aging epoch — O(1) lazy vs O(n) eager.
            _ => {
                r.age_epoch();
                m.age_epoch();
            }
        }
        assert_equivalent(&mut r, &m, seed, step);
    }
}

#[test]
fn lazy_aging_matches_eager_reference() {
    for seed in [1, 42, 0xD1CE, 0xFEED_FACE] {
        run_stream(seed, 400);
    }
}

#[test]
fn long_idle_stretches_match() {
    // Heavier on epochs: knodes sit inactive across hundreds of epochs,
    // exercising stamp arithmetic far from the create point.
    let mut r = KlocRegistry::new(KlocConfig::default());
    let mut m = EagerModel::default();
    for ino in 1..=20u64 {
        let now = Nanos::from_micros(ino);
        r.inode_created(InodeId(ino), CpuId(0), now);
        m.create(InodeId(ino), now);
    }
    let mut rng = SplitMix64::seed_from_u64(7);
    for round in 0..50 {
        // Close a few, run a burst of epochs, reopen a few.
        for _ in 0..3 {
            let ino = InodeId(rng.gen_range(1..21));
            r.inode_closed(ino, Nanos::ZERO);
            m.close(ino);
        }
        for _ in 0..rng.gen_below(40) {
            r.age_epoch();
            m.age_epoch();
        }
        let ino = InodeId(rng.gen_range(1..21));
        let now = Nanos::from_micros(1000 + round);
        r.inode_opened(ino, CpuId(1), now);
        m.open(ino, now);
        assert_equivalent(&mut r, &m, 7, round as usize);
    }
}
