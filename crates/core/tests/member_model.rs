//! Seeded model tests for the dense member tables: `MemberMap` and
//! `FrameRefs` must behave exactly like the `BTreeMap`s they replaced —
//! including around recycled slots, where a stale `ObjectId` probing a
//! reused slot must miss on the full-id compare rather than false-hit.
//!
//! Sequences come from the in-tree seeded `SplitMix64` PRNG (fixed
//! seeds, so failures reproduce exactly).

use std::collections::BTreeMap;

use kloc_core::members::{FrameRefs, MemberMap};
use kloc_kernel::ObjectId;
use kloc_mem::{FrameId, SplitMix64};

/// Draws an `ObjectId` from a pool sized to force heavy slot reuse:
/// low bits collide across ids whose high bits differ, so recycled
/// slots see lookups by both the old and new full id.
fn gen_obj(rng: &mut SplitMix64) -> ObjectId {
    let low = rng.gen_below(32);
    let high = rng.gen_below(4) << 40;
    ObjectId(high | low)
}

#[test]
fn member_map_matches_btreemap_model() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0xD0_5E00 + case);
        let mut dense = MemberMap::default();
        let mut model: BTreeMap<ObjectId, FrameId> = BTreeMap::new();

        for step in 0..400 {
            let obj = gen_obj(&mut rng);
            match rng.gen_below(3) {
                0 | 1 => {
                    let frame = FrameId(rng.gen_below(64));
                    assert_eq!(
                        dense.insert(obj, frame),
                        model.insert(obj, frame),
                        "case {case} step {step}: insert({obj}, {frame})"
                    );
                }
                _ => {
                    assert_eq!(
                        dense.remove(obj),
                        model.remove(&obj),
                        "case {case} step {step}: remove({obj})"
                    );
                }
            }
            // A probe by an id that may share a (recycled) slot with a
            // live entry must agree with the model — full-id compare.
            let probe = gen_obj(&mut rng);
            assert_eq!(dense.get(probe), model.get(&probe).copied());
            assert_eq!(dense.len(), model.len());
            assert_eq!(dense.is_empty(), model.is_empty());
        }
        // The ordered view is exactly the BTreeMap's iteration order.
        let want: Vec<(ObjectId, FrameId)> = model.iter().map(|(&o, &f)| (o, f)).collect();
        assert_eq!(dense.sorted(), want, "case {case}: iteration order");
    }
}

#[test]
fn frame_refs_match_refcount_model() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0xF8_4E00 + case);
        let mut dense = FrameRefs::default();
        let mut model: BTreeMap<FrameId, u32> = BTreeMap::new();

        for step in 0..400 {
            let frame = FrameId(rng.gen_below(48));
            if rng.gen_below(2) == 0 {
                let newly = dense.add(frame);
                let rc = model.entry(frame).or_insert(0);
                *rc += 1;
                assert_eq!(newly, *rc == 1, "case {case} step {step}: add({frame})");
            } else {
                let left = dense.unref(frame);
                let mut gone = false;
                if let Some(rc) = model.get_mut(&frame) {
                    *rc -= 1;
                    if *rc == 0 {
                        model.remove(&frame);
                        gone = true;
                    }
                }
                assert_eq!(left, gone, "case {case} step {step}: unref({frame})");
            }
            let probe = FrameId(rng.gen_below(48));
            assert_eq!(dense.count(probe), model.get(&probe).copied().unwrap_or(0));
            assert_eq!(dense.len(), model.len());
            assert_eq!(dense.is_empty(), model.is_empty());
        }
        // Sorted collection matches the model's key order.
        let mut got = Vec::new();
        dense.collect_sorted(&mut got);
        let want: Vec<FrameId> = model.keys().copied().collect();
        assert_eq!(got, want, "case {case}: sorted frames");
    }
}
