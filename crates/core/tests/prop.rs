//! Property tests: knode member sets must always equal the set of live
//! objects of that inode, under arbitrary event interleavings.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use kloc_core::{KlocConfig, KlocRegistry};
use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{KernelObjectType, ObjectId, ObjectInfo};
use kloc_mem::{FrameId, Nanos};

#[derive(Debug, Clone)]
enum Ev {
    CreateInode(u8),
    OpenInode(u8),
    CloseInode(u8),
    DestroyInode(u8),
    AllocObj(u8, u8),
    FreeObj(usize),
    AccessObj(usize, u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u8..6).prop_map(Ev::CreateInode),
        (0u8..6).prop_map(Ev::OpenInode),
        (0u8..6).prop_map(Ev::CloseInode),
        (0u8..6).prop_map(Ev::DestroyInode),
        (0u8..6, 0u8..14).prop_map(|(i, t)| Ev::AllocObj(i, t)),
        (0usize..64).prop_map(Ev::FreeObj),
        (0usize..64, 0u8..4).prop_map(|(o, c)| Ev::AccessObj(o, c)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn knode_members_match_live_objects(evs in proptest::collection::vec(ev_strategy(), 1..250)) {
        let mut r = KlocRegistry::new(KlocConfig::default());
        // Model: live inodes, and live objects (id -> (inode, info, frame)).
        let mut inodes: BTreeSet<InodeId> = BTreeSet::new();
        let mut objects: Vec<(ObjectId, ObjectInfo, FrameId)> = Vec::new();
        let mut next_obj = 0u64;
        let mut now = Nanos::ZERO;

        for ev in evs {
            now += Nanos::from_micros(1);
            match ev {
                Ev::CreateInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.insert(ino) {
                        r.inode_created(ino, CpuId(0), now);
                    }
                }
                Ev::OpenInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.contains(&ino) {
                        r.inode_opened(ino, CpuId(1), now);
                        prop_assert_eq!(r.is_active(ino), Some(true));
                    }
                }
                Ev::CloseInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.contains(&ino) {
                        r.inode_closed(ino);
                        prop_assert_eq!(r.is_active(ino), Some(false));
                    }
                }
                Ev::DestroyInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.remove(&ino) {
                        // Kernel frees objects before/around destroy.
                        let dead: Vec<_> = objects
                            .iter()
                            .filter(|(_, i, _)| i.inode == Some(ino))
                            .cloned()
                            .collect();
                        for (id, info, _) in &dead {
                            r.object_freed(*id, info);
                        }
                        objects.retain(|(_, i, _)| i.inode != Some(ino));
                        r.inode_destroyed(ino);
                        prop_assert!(r.is_active(ino).is_none());
                    }
                }
                Ev::AllocObj(n, t) => {
                    let ino = InodeId(n as u64);
                    if !inodes.contains(&ino) {
                        continue;
                    }
                    let ty = KernelObjectType::ALL[t as usize % KernelObjectType::ALL.len()];
                    let info = ObjectInfo { ty, size: ty.size(), inode: Some(ino) };
                    let id = ObjectId(next_obj);
                    next_obj += 1;
                    let frame = FrameId(1000 + id.0);
                    r.object_allocated(id, &info, frame, CpuId((n % 4) as u16), now);
                    objects.push((id, info, frame));
                }
                Ev::FreeObj(i) => {
                    if objects.is_empty() { continue; }
                    let (id, info, _) = objects.remove(i % objects.len());
                    r.object_freed(id, &info);
                }
                Ev::AccessObj(i, c) => {
                    if objects.is_empty() { continue; }
                    let (_, info, _) = objects[i % objects.len()];
                    r.object_accessed(&info, CpuId(c as u16), now);
                }
            }

            // Invariant: per-inode member frames == model's frames.
            let mut model: BTreeMap<InodeId, BTreeSet<FrameId>> = BTreeMap::new();
            for &(_, info, frame) in &objects {
                if let Some(ino) = info.inode {
                    if inodes.contains(&ino) {
                        model.entry(ino).or_default().insert(frame);
                    }
                }
            }
            for &ino in &inodes {
                let got: BTreeSet<FrameId> = r.member_frames(ino).into_iter().collect();
                let want = model.get(&ino).cloned().unwrap_or_default();
                prop_assert_eq!(got, want, "member mismatch for {}", ino);
            }
            prop_assert_eq!(r.kmap().len(), inodes.len());
        }
    }

    /// Tracked/untracked counters balance on full teardown.
    #[test]
    fn counters_balance(evs in proptest::collection::vec(ev_strategy(), 1..150)) {
        let mut r = KlocRegistry::new(KlocConfig::default());
        let mut inodes: BTreeSet<InodeId> = BTreeSet::new();
        let mut objects: Vec<(ObjectId, ObjectInfo)> = Vec::new();
        let mut next_obj = 0u64;
        for ev in evs {
            match ev {
                Ev::CreateInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.insert(ino) {
                        r.inode_created(ino, CpuId(0), Nanos::ZERO);
                    }
                }
                Ev::AllocObj(n, t) => {
                    let ino = InodeId(n as u64);
                    if !inodes.contains(&ino) { continue; }
                    let ty = KernelObjectType::ALL[t as usize % KernelObjectType::ALL.len()];
                    let info = ObjectInfo { ty, size: ty.size(), inode: Some(ino) };
                    let id = ObjectId(next_obj);
                    next_obj += 1;
                    r.object_allocated(id, &info, FrameId(id.0), CpuId(0), Nanos::ZERO);
                    objects.push((id, info));
                }
                _ => {}
            }
        }
        for (id, info) in objects.drain(..) {
            r.object_freed(id, &info);
        }
        assert_eq!(r.stats().objects_tracked, r.stats().objects_untracked);
        for &ino in &inodes {
            assert!(r.member_frames(ino).is_empty());
        }
    }
}
