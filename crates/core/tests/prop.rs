//! Randomized model tests: knode member sets must always equal the set
//! of live objects of that inode, under arbitrary event interleavings.
//!
//! Sequences come from the in-tree seeded `SplitMix64` PRNG (fixed
//! seeds, so failures reproduce exactly).

use std::collections::{BTreeMap, BTreeSet};

use kloc_core::{KlocConfig, KlocRegistry};
use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{KernelObjectType, ObjectId, ObjectInfo};
use kloc_mem::{FrameId, Nanos, SplitMix64};

#[derive(Debug, Clone)]
enum Ev {
    CreateInode(u8),
    OpenInode(u8),
    CloseInode(u8),
    DestroyInode(u8),
    AllocObj(u8, u8),
    FreeObj(usize),
    AccessObj(usize, u8),
}

fn gen_ev(rng: &mut SplitMix64) -> Ev {
    match rng.gen_below(7) {
        0 => Ev::CreateInode(rng.gen_below(6) as u8),
        1 => Ev::OpenInode(rng.gen_below(6) as u8),
        2 => Ev::CloseInode(rng.gen_below(6) as u8),
        3 => Ev::DestroyInode(rng.gen_below(6) as u8),
        4 => Ev::AllocObj(rng.gen_below(6) as u8, rng.gen_below(14) as u8),
        5 => Ev::FreeObj(rng.gen_below(64) as usize),
        _ => Ev::AccessObj(rng.gen_below(64) as usize, rng.gen_below(4) as u8),
    }
}

fn gen_evs(rng: &mut SplitMix64, min: u64, max: u64) -> Vec<Ev> {
    (0..rng.gen_range(min..max)).map(|_| gen_ev(rng)).collect()
}

#[test]
fn knode_members_match_live_objects() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(0x6E0D_0000 + case);
        let evs = gen_evs(&mut rng, 1, 250);

        let mut r = KlocRegistry::new(KlocConfig::default());
        // Model: live inodes, and live objects (id -> (inode, info, frame)).
        let mut inodes: BTreeSet<InodeId> = BTreeSet::new();
        let mut objects: Vec<(ObjectId, ObjectInfo, FrameId)> = Vec::new();
        let mut next_obj = 0u64;
        let mut now = Nanos::ZERO;

        for ev in evs {
            now += Nanos::from_micros(1);
            match ev {
                Ev::CreateInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.insert(ino) {
                        r.inode_created(ino, CpuId(0), now);
                    }
                }
                Ev::OpenInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.contains(&ino) {
                        r.inode_opened(ino, CpuId(1), now);
                        assert_eq!(r.is_active(ino), Some(true));
                    }
                }
                Ev::CloseInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.contains(&ino) {
                        r.inode_closed(ino, Nanos::ZERO);
                        assert_eq!(r.is_active(ino), Some(false));
                    }
                }
                Ev::DestroyInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.remove(&ino) {
                        // Kernel frees objects before/around destroy.
                        let dead: Vec<_> = objects
                            .iter()
                            .filter(|(_, i, _)| i.inode == Some(ino))
                            .cloned()
                            .collect();
                        for (id, info, _) in &dead {
                            r.object_freed(*id, info);
                        }
                        objects.retain(|(_, i, _)| i.inode != Some(ino));
                        r.inode_destroyed(ino, Nanos::ZERO);
                        assert!(r.is_active(ino).is_none());
                    }
                }
                Ev::AllocObj(n, t) => {
                    let ino = InodeId(n as u64);
                    if !inodes.contains(&ino) {
                        continue;
                    }
                    let ty = KernelObjectType::ALL[t as usize % KernelObjectType::ALL.len()];
                    let info = ObjectInfo {
                        ty,
                        size: ty.size(),
                        inode: Some(ino),
                    };
                    let id = ObjectId(next_obj);
                    next_obj += 1;
                    let frame = FrameId(1000 + id.0);
                    r.object_allocated(id, &info, frame, CpuId((n % 4) as u16), now);
                    objects.push((id, info, frame));
                }
                Ev::FreeObj(i) => {
                    if objects.is_empty() {
                        continue;
                    }
                    let (id, info, _) = objects.remove(i % objects.len());
                    r.object_freed(id, &info);
                }
                Ev::AccessObj(i, c) => {
                    if objects.is_empty() {
                        continue;
                    }
                    let (_, info, _) = objects[i % objects.len()];
                    r.object_accessed(&info, CpuId(c as u16), now);
                }
            }

            // Invariant: per-inode member frames == model's frames.
            let mut model: BTreeMap<InodeId, BTreeSet<FrameId>> = BTreeMap::new();
            for &(_, info, frame) in &objects {
                if let Some(ino) = info.inode {
                    if inodes.contains(&ino) {
                        model.entry(ino).or_default().insert(frame);
                    }
                }
            }
            for &ino in &inodes {
                let got: BTreeSet<FrameId> = r.member_frames(ino).into_iter().collect();
                let want = model.get(&ino).cloned().unwrap_or_default();
                assert_eq!(got, want, "case {case}: member mismatch for {ino}");
            }
            assert_eq!(r.kmap().len(), inodes.len());
        }
    }
}

/// Tracked/untracked counters balance on full teardown.
#[test]
fn counters_balance() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(0xBA1A_0000 + case);
        let evs = gen_evs(&mut rng, 1, 150);

        let mut r = KlocRegistry::new(KlocConfig::default());
        let mut inodes: BTreeSet<InodeId> = BTreeSet::new();
        let mut objects: Vec<(ObjectId, ObjectInfo)> = Vec::new();
        let mut next_obj = 0u64;
        for ev in evs {
            match ev {
                Ev::CreateInode(n) => {
                    let ino = InodeId(n as u64);
                    if inodes.insert(ino) {
                        r.inode_created(ino, CpuId(0), Nanos::ZERO);
                    }
                }
                Ev::AllocObj(n, t) => {
                    let ino = InodeId(n as u64);
                    if !inodes.contains(&ino) {
                        continue;
                    }
                    let ty = KernelObjectType::ALL[t as usize % KernelObjectType::ALL.len()];
                    let info = ObjectInfo {
                        ty,
                        size: ty.size(),
                        inode: Some(ino),
                    };
                    let id = ObjectId(next_obj);
                    next_obj += 1;
                    r.object_allocated(id, &info, FrameId(id.0), CpuId(0), Nanos::ZERO);
                    objects.push((id, info));
                }
                _ => {}
            }
        }
        for (id, info) in objects.drain(..) {
            r.object_freed(id, &info);
        }
        assert_eq!(r.stats().objects_tracked, r.stats().objects_untracked);
        for &ino in &inodes {
            assert!(r.member_frames(ino).is_empty());
        }
    }
}
