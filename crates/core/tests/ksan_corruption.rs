//! Corruption-injection tests for the KLOC-layer sanitizer: desync the
//! kmap's activation indexes, a knode's epoch, and its frame refcounts,
//! and assert the audit reports the specific structure pair.
//!
//! Gated on the `ksan` feature (see `[[test]]` in Cargo.toml); run with
//! `cargo test -p kloc-core --features ksan`.

use kloc_core::{Kmap, Knode};
use kloc_kernel::vfs::InodeId;
use kloc_mem::ksan::Violation;
use kloc_mem::Nanos;

fn audited(kmap: &Kmap) -> Vec<Violation> {
    let mut out = Vec::new();
    kmap.ksan_audit(&mut out);
    out
}

fn kmap_with(actives: &[u64], inactives: &[u64]) -> Kmap {
    let mut kmap = Kmap::new();
    for &ino in actives {
        kmap.map_knode(Knode::new(InodeId(ino), Nanos::ZERO));
    }
    for &ino in inactives {
        kmap.map_knode(Knode::new(InodeId(ino), Nanos::ZERO));
        kmap.with_knode_mut(InodeId(ino), |k, ep| k.ksan_set_inuse_at(false, ep));
    }
    kmap
}

#[test]
fn healthy_kmap_audits_clean() {
    let mut kmap = kmap_with(&[1, 2], &[3, 4]);
    kmap.advance_epoch();
    kmap.advance_epoch();
    assert_eq!(audited(&kmap), vec![]);
}

#[test]
fn inactive_index_desync_is_caught() {
    let mut kmap = kmap_with(&[1], &[2]);
    kmap.ksan_break_inactive_index();
    let out = audited(&kmap);
    assert!(
        out.iter().any(
            |v| v.structures == "Knode.inuse <-> Kmap activation indexes" && v.object == "inode2"
        ),
        "{out:#?}"
    );
    assert!(
        out.iter()
            .any(|v| v.structures == "Kmap activation indexes <-> Kmap.index"),
        "{out:#?}"
    );
}

#[test]
fn knode_epoch_ahead_of_global_epoch_is_caught() {
    // Active knode only: the epoch stamp then desyncs nothing else.
    let mut kmap = kmap_with(&[7], &[]);
    kmap.ksan_break_epoch();
    let out = audited(&kmap);
    assert_eq!(out.len(), 1, "{out:#?}");
    assert_eq!(out[0].structures, "Kmap.epoch <-> Knode.synced_epoch");
    assert_eq!(out[0].object, "inode7");
    assert!(out[0].actual.contains("synced_epoch = 10"), "{out:#?}");
}

#[test]
fn knode_frame_refcount_desync_is_caught() {
    use kloc_kernel::{KernelObjectType, ObjectId};
    use kloc_mem::FrameId;
    let mut knode = Knode::new(InodeId(5), Nanos::ZERO);
    knode.add_obj(ObjectId(1), KernelObjectType::Dentry, FrameId(9));
    knode.add_obj(ObjectId(2), KernelObjectType::Dentry, FrameId(9));
    // Corrupt by removing an object twice: remove_obj is idempotent, so
    // desync via a direct forced stamp is not possible here — instead
    // verify the audit recomputes refcounts by checking a healthy knode
    // first, then desync through the member trees.
    let mut kmap = Kmap::new();
    kmap.map_knode(knode);
    assert_eq!(audited(&kmap), vec![]);
    // Re-adding the same object on a new frame moves its refcount; a
    // stale duplicate in the frame set would be caught. Simulate the bug
    // by mapping a knode whose refcounts were skewed pre-registration.
    let mut skewed = Knode::new(InodeId(6), Nanos::ZERO);
    skewed.add_obj(ObjectId(3), KernelObjectType::Dentry, FrameId(4));
    skewed.remove_obj(ObjectId(3));
    skewed.add_obj(ObjectId(3), KernelObjectType::Dentry, FrameId(4));
    kmap.map_knode(skewed);
    assert_eq!(audited(&kmap), vec![], "refcount churn stays consistent");
}

#[test]
fn phantom_frame_ref_is_caught() {
    use kloc_kernel::{KernelObjectType, ObjectId};
    use kloc_mem::FrameId;
    let mut kmap = Kmap::new();
    let mut knode = Knode::new(InodeId(3), Nanos::ZERO);
    knode.add_obj(ObjectId(1), KernelObjectType::Dentry, FrameId(7));
    kmap.map_knode(knode);
    assert_eq!(audited(&kmap), vec![]);
    kmap.with_knode_mut(InodeId(3), |k, _| k.ksan_break_knode_members());
    let out = audited(&kmap);
    assert!(
        out.iter()
            .any(|v| v.structures == "Knode.frames <-> Knode member tables"
                && v.object == "inode3"),
        "{out:#?}"
    );
}

#[test]
fn member_table_live_count_skew_is_caught() {
    use kloc_kernel::{KernelObjectType, ObjectId};
    use kloc_mem::FrameId;
    let mut kmap = Kmap::new();
    let mut knode = Knode::new(InodeId(4), Nanos::ZERO);
    knode.add_obj(ObjectId(9), KernelObjectType::PageCache, FrameId(2));
    kmap.map_knode(knode);
    assert_eq!(audited(&kmap), vec![]);
    kmap.with_knode_mut(InodeId(4), |k, _| k.ksan_break_member_slots());
    let out = audited(&kmap);
    assert!(
        out.iter().any(
            |v| v.structures == "Knode dense table slots <-> live counter"
                && v.object.contains("rbtree-cache")
        ),
        "{out:#?}"
    );
}

#[test]
fn stale_sorted_frame_cache_is_caught() {
    use kloc_kernel::{KernelObjectType, ObjectId};
    use kloc_mem::FrameId;
    let mut kmap = Kmap::new();
    let mut knode = Knode::new(InodeId(8), Nanos::ZERO);
    knode.add_obj(ObjectId(1), KernelObjectType::Dentry, FrameId(5));
    // Populate the lazily derived sorted-frame view so the planted
    // entry desyncs an otherwise-clean cache.
    knode.member_frames();
    kmap.map_knode(knode);
    assert_eq!(audited(&kmap), vec![]);
    kmap.with_knode_mut(InodeId(8), |k, _| k.ksan_break_frame_cache());
    let out = audited(&kmap);
    assert!(
        out.iter().any(
            |v| v.structures == "Knode.sorted_frames cache <-> Knode.frames"
                && v.object == "inode8"
        ),
        "{out:#?}"
    );
}

#[test]
fn cold_index_desync_is_caught() {
    let mut kmap = kmap_with(&[], &[5]);
    kmap.advance_epoch();
    kmap.advance_epoch();
    // Pull inode5 past the watermark into the cold index.
    let mut out_inodes = Vec::new();
    kmap.cold_inodes_with_members(1, 8, &mut out_inodes);
    kmap.ksan_break_cold_index();
    let out = audited(&kmap);
    assert!(
        out.iter()
            .any(|v| v.structures == "Kmap.cold_idx <-> Kmap.inactive_idx"),
        "{out:#?}"
    );
}

#[test]
fn percpu_entries_are_validated_against_kmap() {
    use kloc_core::{KlocConfig, KlocRegistry};
    use kloc_kernel::hooks::CpuId;

    let mut reg = KlocRegistry::new(KlocConfig::default());
    reg.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
    let mut out = Vec::new();
    reg.ksan_audit(&mut out);
    assert_eq!(out, vec![]);

    // Unmapping behind the fast path's back leaves a dangling entry.
    reg.ksan_kmap_mut().unmap(InodeId(1));
    reg.ksan_audit(&mut out);
    assert!(
        out.iter()
            .any(|v| v.structures == "PerCpuKnodeLists <-> Kmap.index"),
        "{out:#?}"
    );
}
