//! Per-CPU knode fast-path lists (paper §4.3).
//!
//! The global kmap is a contended shared structure; the paper adds
//! per-CPU lists of recently touched knodes — a software cache in the
//! spirit of other kernel fast paths — with per-entry age tracking. The
//! paper reports these lists cut `rbtree-cache`/`rbtree-slab` accesses
//! by 54 %; this module's hit/miss counters reproduce that ablation.

use std::collections::VecDeque;

use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;

/// One entry on a per-CPU list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    inode: InodeId,
    /// Reset to zero on access; incremented by LRU scans (§4.3).
    age: u32,
}

/// Per-CPU lists of recently used knodes.
#[derive(Debug, Clone)]
pub struct PerCpuKnodeLists {
    lists: Vec<VecDeque<Entry>>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl PerCpuKnodeLists {
    /// Creates lists for `cpus` CPUs, each holding at most `capacity`
    /// entries (bounded so traversal stays fast, §4.3).
    ///
    /// # Panics
    /// Panics if `cpus` or `capacity` is zero.
    pub fn new(cpus: usize, capacity: usize) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        assert!(capacity > 0, "capacity must be non-zero");
        PerCpuKnodeLists {
            lists: vec![VecDeque::new(); cpus],
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Fast-path hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fast-path misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served by the fast path (the §4.3 "54 %
    /// reduction" is `hit_ratio` here).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn list_mut(&mut self, cpu: CpuId) -> &mut VecDeque<Entry> {
        let n = self.lists.len();
        &mut self.lists[cpu.0 as usize % n]
    }

    /// Looks up `inode` on `cpu`'s list and refreshes it on hit (moved to
    /// front, age reset). On miss the caller consults the kmap and should
    /// then call [`PerCpuKnodeLists::touch`]. Returns whether it hit.
    pub fn lookup(&mut self, cpu: CpuId, inode: InodeId) -> bool {
        let list = self.list_mut(cpu);
        if let Some(pos) = list.iter().position(|e| e.inode == inode) {
            let mut e = list.remove(pos).expect("position just found");
            e.age = 0;
            list.push_front(e);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts `inode` at the front of `cpu`'s list (after a kmap
    /// lookup), evicting the coldest entry if full. The same knode may
    /// appear on several CPUs' lists — the paper leans on existing
    /// per-CPU coherence APIs for that (§4.3).
    pub fn touch(&mut self, cpu: CpuId, inode: InodeId) {
        let capacity = self.capacity;
        let list = self.list_mut(cpu);
        if let Some(pos) = list.iter().position(|e| e.inode == inode) {
            let mut e = list.remove(pos).expect("position just found");
            e.age = 0;
            list.push_front(e);
            return;
        }
        if list.len() >= capacity {
            list.pop_back();
        }
        list.push_front(Entry { inode, age: 0 });
    }

    /// Removes `inode` from every CPU's list (knode destroyed).
    pub fn purge(&mut self, inode: InodeId) {
        for list in &mut self.lists {
            list.retain(|e| e.inode != inode);
        }
    }

    /// Ages every entry by one (called by policy LRU scans).
    pub fn age_all(&mut self) {
        for list in &mut self.lists {
            for e in list.iter_mut() {
                e.age = e.age.saturating_add(1);
            }
        }
    }

    /// Inodes whose age on some CPU list is at least `min_age` — cold
    /// candidates for the policy to consider.
    pub fn cold_candidates(&self, min_age: u32) -> Vec<InodeId> {
        let mut out = Vec::new();
        for list in &self.lists {
            for e in list {
                if e.age >= min_age && !out.contains(&e.inode) {
                    out.push(e.inode);
                }
            }
        }
        out
    }

    /// Total entries across all lists (for overhead accounting).
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut p = PerCpuKnodeLists::new(2, 4);
        assert!(!p.lookup(CpuId(0), InodeId(1)));
        p.touch(CpuId(0), InodeId(1));
        assert!(p.lookup(CpuId(0), InodeId(1)));
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
        assert!((p.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lists_are_per_cpu() {
        let mut p = PerCpuKnodeLists::new(2, 4);
        p.touch(CpuId(0), InodeId(1));
        assert!(!p.lookup(CpuId(1), InodeId(1)), "other cpu misses");
        assert!(p.lookup(CpuId(0), InodeId(1)));
    }

    #[test]
    fn capacity_evicts_coldest() {
        let mut p = PerCpuKnodeLists::new(1, 2);
        p.touch(CpuId(0), InodeId(1));
        p.touch(CpuId(0), InodeId(2));
        p.touch(CpuId(0), InodeId(3)); // evicts 1 (back of list)
        assert!(!p.lookup(CpuId(0), InodeId(1)));
        assert!(p.lookup(CpuId(0), InodeId(2)));
        assert!(p.lookup(CpuId(0), InodeId(3)));
        assert_eq!(p.total_entries(), 2);
    }

    #[test]
    fn aging_and_cold_candidates() {
        let mut p = PerCpuKnodeLists::new(1, 4);
        p.touch(CpuId(0), InodeId(1));
        p.touch(CpuId(0), InodeId(2));
        p.age_all();
        p.age_all();
        // Access 2: its age resets.
        assert!(p.lookup(CpuId(0), InodeId(2)));
        assert_eq!(p.cold_candidates(2), vec![InodeId(1)]);
        assert!(p.cold_candidates(3).is_empty());
    }

    #[test]
    fn purge_removes_everywhere() {
        let mut p = PerCpuKnodeLists::new(2, 4);
        p.touch(CpuId(0), InodeId(1));
        p.touch(CpuId(1), InodeId(1));
        p.purge(InodeId(1));
        assert_eq!(p.total_entries(), 0);
    }

    #[test]
    fn cpu_ids_wrap_onto_lists() {
        let mut p = PerCpuKnodeLists::new(2, 4);
        p.touch(CpuId(4), InodeId(1)); // 4 % 2 == list 0
        assert!(p.lookup(CpuId(0), InodeId(1)));
    }
}
