//! Per-CPU knode fast-path lists (paper §4.3).
//!
//! The global kmap is a contended shared structure; the paper adds
//! per-CPU lists of recently touched knodes — a software cache in the
//! spirit of other kernel fast paths — with per-entry age tracking. The
//! paper reports these lists cut `rbtree-cache`/`rbtree-slab` accesses
//! by 54 %; this module's hit/miss counters reproduce that ablation.
//!
//! Entry ages are lazy, mirroring the kmap: each entry records the list
//! epoch at which it was last touched and its age is the difference —
//! [`PerCpuKnodeLists::age_all`] is a counter bump, not a walk of every
//! entry on every list.

use std::collections::VecDeque;

use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;

/// One entry on a per-CPU list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    inode: InodeId,
    /// The knode's storage slot in the kmap: a fast-path hit hands this
    /// back so the caller mutates the knode with one array access — no
    /// kmap tree walk at all (the §4.3 point of these lists).
    slot: u32,
    /// List epoch of the last access; the entry's age is the number of
    /// epochs since (reset-on-access, §4.3).
    touched_epoch: u64,
}

/// Per-CPU lists of recently used knodes.
#[derive(Debug, Clone)]
pub struct PerCpuKnodeLists {
    lists: Vec<VecDeque<Entry>>,
    capacity: usize,
    /// Aging epoch shared by all lists; advanced by `age_all`.
    epoch: u64,
    hits: u64,
    misses: u64,
}

impl PerCpuKnodeLists {
    /// Creates lists for `cpus` CPUs, each holding at most `capacity`
    /// entries (bounded so traversal stays fast, §4.3).
    ///
    /// # Panics
    /// Panics if `cpus` or `capacity` is zero.
    pub fn new(cpus: usize, capacity: usize) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        assert!(capacity > 0, "capacity must be non-zero");
        PerCpuKnodeLists {
            lists: vec![VecDeque::new(); cpus],
            capacity,
            epoch: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Fast-path hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fast-path misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served by the fast path (the §4.3 "54 %
    /// reduction" is `hit_ratio` here).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn list_mut(&mut self, cpu: CpuId) -> &mut VecDeque<Entry> {
        let n = self.lists.len();
        &mut self.lists[cpu.0 as usize % n]
    }

    /// Looks up `inode` on `cpu`'s list and refreshes it on hit (moved to
    /// front, age reset). Returns the knode's kmap slot on a hit; on miss
    /// the caller consults the kmap and should then call
    /// [`PerCpuKnodeLists::touch`].
    pub fn lookup(&mut self, cpu: CpuId, inode: InodeId) -> Option<u32> {
        let epoch = self.epoch;
        let list = self.list_mut(cpu);
        // Repeated touches of the same knode hit the front entry;
        // refreshing it in place is the move-to-front it would get.
        let front_hit = match list.front_mut() {
            Some(e) if e.inode == inode => {
                e.touched_epoch = epoch;
                Some(e.slot)
            }
            _ => None,
        };
        if let Some(slot) = front_hit {
            self.hits += 1;
            return Some(slot);
        }
        if let Some(pos) = list.iter().position(|e| e.inode == inode) {
            let mut e = list.remove(pos).expect("position just found"); // lint: unwrap-ok — position() just found the entry
            e.touched_epoch = epoch;
            list.push_front(e);
            self.hits += 1;
            Some(e.slot)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts `inode` (stored in kmap slot `slot`) at the front of
    /// `cpu`'s list (after a kmap lookup), evicting the coldest entry if
    /// full. The same knode may appear on several CPUs' lists — the
    /// paper leans on existing per-CPU coherence APIs for that (§4.3).
    pub fn touch(&mut self, cpu: CpuId, inode: InodeId, slot: u32) {
        let capacity = self.capacity;
        let epoch = self.epoch;
        let list = self.list_mut(cpu);
        if let Some(e) = list.front_mut() {
            if e.inode == inode {
                e.touched_epoch = epoch;
                e.slot = slot;
                return;
            }
        }
        if let Some(pos) = list.iter().position(|e| e.inode == inode) {
            let mut e = list.remove(pos).expect("position just found"); // lint: unwrap-ok — position() just found the entry
            e.touched_epoch = epoch;
            e.slot = slot;
            list.push_front(e);
            return;
        }
        if list.len() >= capacity {
            list.pop_back();
        }
        list.push_front(Entry {
            inode,
            slot,
            touched_epoch: epoch,
        });
    }

    /// Removes `inode` from every CPU's list (knode destroyed).
    pub fn purge(&mut self, inode: InodeId) {
        for list in &mut self.lists {
            list.retain(|e| e.inode != inode);
        }
    }

    /// Ages every entry by one (called by policy LRU scans). O(1): the
    /// shared epoch advances and entry ages derive lazily.
    pub fn age_all(&mut self) {
        self.epoch += 1;
    }

    /// Inodes whose age on some CPU list is at least `min_age` — cold
    /// candidates for the policy to consider.
    pub fn cold_candidates(&self, min_age: u32) -> Vec<InodeId> {
        let mut out = Vec::new();
        for list in &self.lists {
            for e in list {
                if self.epoch - e.touched_epoch >= u64::from(min_age) && !out.contains(&e.inode) {
                    out.push(e.inode);
                }
            }
        }
        out
    }

    /// Total entries across all lists (for overhead accounting).
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

#[cfg(feature = "ksan")]
impl PerCpuKnodeLists {
    /// Audits every cached entry against the kmap it shadows: the entry's
    /// remembered slot must still hold that inode's knode (purge-on-unmap
    /// keeps this exact), list lengths must respect the capacity bound,
    /// and no entry may be stamped ahead of the shared epoch. Observation
    /// only.
    pub fn ksan_audit(&self, kmap: &crate::Kmap, out: &mut Vec<kloc_mem::ksan::Violation>) {
        use kloc_mem::ksan::Violation;
        for (cpu, list) in self.lists.iter().enumerate() {
            if list.len() > self.capacity {
                out.push(Violation::new(
                    "PerCpuKnodeLists capacity",
                    format!("cpu{cpu} list"),
                    "a per-CPU list never exceeds its capacity",
                    format!("<= {} entries", self.capacity),
                    format!("{} entries", list.len()),
                ));
            }
            for e in list {
                if kmap.slot_of(e.inode) != Some(e.slot) {
                    out.push(Violation::new(
                        "PerCpuKnodeLists <-> Kmap.index",
                        format!("{} on cpu{cpu}", e.inode),
                        "a cached entry remembers its knode's current kmap slot",
                        format!("{:?}", kmap.slot_of(e.inode)),
                        format!("slot {}", e.slot),
                    ));
                }
                if e.touched_epoch > self.epoch {
                    out.push(Violation::new(
                        "PerCpuKnodeLists.epoch <-> Entry.touched_epoch",
                        format!("{} on cpu{cpu}", e.inode),
                        "no entry is stamped ahead of the shared epoch",
                        format!("<= {}", self.epoch),
                        format!("touched_epoch = {}", e.touched_epoch),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut p = PerCpuKnodeLists::new(2, 4);
        assert!(p.lookup(CpuId(0), InodeId(1)).is_none());
        p.touch(CpuId(0), InodeId(1), 0);
        assert!(p.lookup(CpuId(0), InodeId(1)).is_some());
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
        assert!((p.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lists_are_per_cpu() {
        let mut p = PerCpuKnodeLists::new(2, 4);
        p.touch(CpuId(0), InodeId(1), 0);
        assert!(p.lookup(CpuId(1), InodeId(1)).is_none(), "other cpu misses");
        assert!(p.lookup(CpuId(0), InodeId(1)).is_some());
    }

    #[test]
    fn capacity_evicts_coldest() {
        let mut p = PerCpuKnodeLists::new(1, 2);
        p.touch(CpuId(0), InodeId(1), 0);
        p.touch(CpuId(0), InodeId(2), 0);
        p.touch(CpuId(0), InodeId(3), 0); // evicts 1 (back of list)
        assert!(p.lookup(CpuId(0), InodeId(1)).is_none());
        assert!(p.lookup(CpuId(0), InodeId(2)).is_some());
        assert!(p.lookup(CpuId(0), InodeId(3)).is_some());
        assert_eq!(p.total_entries(), 2);
    }

    #[test]
    fn aging_and_cold_candidates() {
        let mut p = PerCpuKnodeLists::new(1, 4);
        p.touch(CpuId(0), InodeId(1), 0);
        p.touch(CpuId(0), InodeId(2), 0);
        p.age_all();
        p.age_all();
        // Access 2: its age resets.
        assert!(p.lookup(CpuId(0), InodeId(2)).is_some());
        assert_eq!(p.cold_candidates(2), vec![InodeId(1)]);
        assert!(p.cold_candidates(3).is_empty());
    }

    #[test]
    fn entries_touched_after_aging_are_young() {
        let mut p = PerCpuKnodeLists::new(1, 4);
        p.touch(CpuId(0), InodeId(1), 0);
        for _ in 0..5 {
            p.age_all();
        }
        p.touch(CpuId(0), InodeId(2), 0); // born at epoch 5: age 0
        assert_eq!(p.cold_candidates(1), vec![InodeId(1)]);
        p.age_all();
        // MRU-first list order: 2 sits in front of 1.
        assert_eq!(p.cold_candidates(1), vec![InodeId(2), InodeId(1)]);
    }

    #[test]
    fn purge_removes_everywhere() {
        let mut p = PerCpuKnodeLists::new(2, 4);
        p.touch(CpuId(0), InodeId(1), 0);
        p.touch(CpuId(1), InodeId(1), 0);
        p.purge(InodeId(1));
        assert_eq!(p.total_entries(), 0);
    }

    #[test]
    fn cpu_ids_wrap_onto_lists() {
        let mut p = PerCpuKnodeLists::new(2, 4);
        p.touch(CpuId(4), InodeId(1), 0); // 4 % 2 == list 0
        assert!(p.lookup(CpuId(0), InodeId(1)).is_some());
    }
}
