//! Dense member tables for knodes.
//!
//! PR 6 replaced tree/hash probes on the kernel touch path with
//! direct-mapped side tables (`FrameSet`/`FrameMap` in kloc-mem),
//! exploiting that frame *slots* are dense indices into one global
//! table. A knode's member ids have the opposite shape: `ObjectId`s are
//! global, sequential, and never reused, so a per-knode table indexed
//! directly by object id would cost memory proportional to the global
//! id space in every knode. The same idiom therefore appears here in
//! its open-addressed form: a power-of-two slot array probed linearly
//! from a multiplicative hash, storing the full 64-bit id so a probe
//! rejects a recycled slot by full-id compare exactly as `FrameSet`
//! rejects stale generations. Inserts and removes are amortized O(1),
//! each entry is one `(key, value)` pair in a single flat allocation
//! (one cache line covers probe and payload), and an empty table
//! allocates nothing.
//!
//! Ordered views are *derived on demand* (collect + sort by full id)
//! rather than maintained by a `BTreeMap` on every insert/remove:
//! ordering work is paid only where order is report-visible (en-masse
//! `kloc_migrate` evidence, `cache_members`/`slab_members`, audits).
//! Unordered iteration walks slots in array order, which is a pure
//! function of the insertion history and thus deterministic across
//! identically-seeded runs — but it is only used where the consumer is
//! order-insensitive (refcount tallies, residency counts).

use kloc_kernel::ObjectId;
use kloc_mem::FrameId;

/// Slot holds nothing and never did (probe chains stop here).
const EMPTY: u64 = u64::MAX;
/// Slot held an entry that was removed (probe chains continue).
const TOMBSTONE: u64 = u64::MAX - 1;

/// SplitMix64-style finalizer: full-avalanche 64-bit mix, so sequential
/// ids spread over the power-of-two slot array. Dependency-free.
#[inline]
fn mix(key: u64) -> u64 {
    let mut h = key;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The open-addressed u64 -> u64 core shared by [`MemberMap`] and
/// [`FrameRefs`]. Linear probing, tombstone deletion, capacity kept a
/// power of two with at least 1/8 of slots `EMPTY` so probes terminate.
#[derive(Debug, Clone, Default)]
struct Dense {
    /// `(key, value)` pairs; key is [`EMPTY`] / [`TOMBSTONE`] for
    /// vacant slots.
    slots: Vec<(u64, u64)>,
    live: usize,
    tombs: usize,
}

impl Dense {
    const MIN_CAP: usize = 8;

    #[inline]
    fn get(&self, key: u64) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask; // lint: truncation-ok
        loop {
            match self.slots[i].0 {
                EMPTY => return None,
                k if k == key => return Some(self.slots[i].1),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts or replaces; returns the previous value if the key was
    /// present. The full key is stored, so a probe that lands on a
    /// recycled (tombstoned, then reused) slot can never confuse two
    /// ids that happened to hash alike.
    fn insert(&mut self, key: u64, val: u64) -> Option<u64> {
        debug_assert!(key < TOMBSTONE, "id collides with a table sentinel");
        self.reserve_one();
        let mask = self.slots.len() - 1;
        // lint: truncation-ok — masked into the power-of-two table index
        let mut i = (mix(key) as usize) & mask;
        // First tombstone seen is the insertion point, but the probe
        // must continue to EMPTY to rule out a later duplicate.
        let mut reuse = None;
        loop {
            match self.slots[i].0 {
                EMPTY => {
                    let slot = reuse.unwrap_or(i);
                    if self.slots[slot].0 == TOMBSTONE {
                        self.tombs -= 1;
                    }
                    self.slots[slot] = (key, val);
                    self.live += 1;
                    return None;
                }
                TOMBSTONE => {
                    if reuse.is_none() {
                        reuse = Some(i);
                    }
                    i = (i + 1) & mask;
                }
                k if k == key => {
                    let old = self.slots[i].1;
                    self.slots[i].1 = val;
                    return Some(old);
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Removes a key; returns its value if it was present. The slot
    /// becomes a tombstone so probe chains through it stay intact.
    fn remove(&mut self, key: u64) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask; // lint: truncation-ok
        loop {
            match self.slots[i].0 {
                EMPTY => return None,
                k if k == key => {
                    let val = self.slots[i].1;
                    self.slots[i].0 = TOMBSTONE;
                    self.tombs += 1;
                    self.live -= 1;
                    return Some(val);
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Increments the value for `key`, inserting 1 when absent; returns
    /// whether the key is newly present. One probe for the refcount
    /// add that rides every member insert.
    fn bump(&mut self, key: u64) -> bool {
        debug_assert!(key < TOMBSTONE, "id collides with a table sentinel");
        self.reserve_one();
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask; // lint: truncation-ok
        let mut reuse = None;
        loop {
            match self.slots[i].0 {
                EMPTY => {
                    let slot = reuse.unwrap_or(i);
                    if self.slots[slot].0 == TOMBSTONE {
                        self.tombs -= 1;
                    }
                    self.slots[slot] = (key, 1);
                    self.live += 1;
                    return true;
                }
                TOMBSTONE => {
                    if reuse.is_none() {
                        reuse = Some(i);
                    }
                    i = (i + 1) & mask;
                }
                k if k == key => {
                    self.slots[i].1 += 1;
                    return false;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Decrements the value for `key`, removing it at zero; returns
    /// whether the key left the table. Absent keys are ignored. One
    /// probe for the refcount drop that rides every member removal.
    fn unbump(&mut self, key: u64) -> bool {
        if self.live == 0 {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask; // lint: truncation-ok
        loop {
            match self.slots[i].0 {
                EMPTY => return false,
                k if k == key => {
                    if self.slots[i].1 > 1 {
                        self.slots[i].1 -= 1;
                        return false;
                    }
                    self.slots[i].0 = TOMBSTONE;
                    self.tombs += 1;
                    self.live -= 1;
                    return true;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Grows (or first-allocates) when less than 1/8 of slots would
    /// stay `EMPTY` after one more insert.
    #[inline]
    fn reserve_one(&mut self) {
        if self.slots.is_empty() || (self.live + self.tombs + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
    }

    /// Rehashes into a table sized for the live entries, dropping
    /// tombstones. Also the initial allocation (tables start empty so an
    /// idle knode costs no member-table memory at all).
    fn grow(&mut self) {
        let cap = ((self.live + 1) * 2).next_power_of_two().max(Self::MIN_CAP);
        let old = std::mem::replace(&mut self.slots, vec![(EMPTY, 0); cap]);
        self.tombs = 0;
        let mask = cap - 1;
        for (k, v) in old {
            if k < TOMBSTONE {
                let mut i = (mix(k) as usize) & mask; // lint: truncation-ok
                while self.slots[i].0 != EMPTY {
                    i = (i + 1) & mask;
                }
                self.slots[i] = (k, v);
            }
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }

    /// Visits every live entry in slot order (deterministic, unordered;
    /// see the module docs for where this is allowed).
    fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for &(k, v) in &self.slots {
            if k < TOMBSTONE {
                f(k, v);
            }
        }
    }
}

#[cfg(feature = "ksan")]
impl Dense {
    /// Internal-consistency audit: the live counter must equal the
    /// occupied slot count, and every stored key must be reachable by
    /// its own probe sequence (tombstones may sit in the chain but an
    /// EMPTY must not). Returns an error string naming the first
    /// discrepancy. Observation only.
    fn ksan_check(&self) -> Result<(), String> {
        let mut occupied = 0usize;
        for (i, &(k, _)) in self.slots.iter().enumerate() {
            if k < TOMBSTONE {
                occupied += 1;
                if self.get(k).is_none() {
                    return Err(format!("stored id {k} at slot {i} is unreachable by probe"));
                }
            }
        }
        if occupied != self.live {
            return Err(format!(
                "live counter {} != occupied slots {occupied}",
                self.live
            ));
        }
        Ok(())
    }

    /// Corruption hook: skews the live counter without touching slots.
    fn ksan_break_live_count(&mut self) {
        self.live += 1;
    }
}

/// Dense member table for one knode tree: `ObjectId -> FrameId`
/// (the `rbtree-cache` / `rbtree-slab` payload).
#[derive(Debug, Clone, Default)]
pub struct MemberMap {
    table: Dense,
}

impl MemberMap {
    /// Inserts or replaces a member; returns the previously mapped
    /// frame if the object was already tracked.
    pub fn insert(&mut self, obj: ObjectId, frame: FrameId) -> Option<FrameId> {
        self.table.insert(obj.0, frame.0).map(FrameId)
    }

    /// Removes a member; returns the frame it mapped to.
    pub fn remove(&mut self, obj: ObjectId) -> Option<FrameId> {
        self.table.remove(obj.0).map(FrameId)
    }

    /// Looks up the frame backing a member.
    pub fn get(&self, obj: ObjectId) -> Option<FrameId> {
        self.table.get(obj.0).map(FrameId)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table tracks no members.
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// Visits every member in slot order (deterministic, unordered).
    pub fn for_each(&self, mut f: impl FnMut(ObjectId, FrameId)) {
        self.table.for_each(|k, v| f(ObjectId(k), FrameId(v)));
    }

    /// The ordered view, derived on demand: members ascending by
    /// `ObjectId`, matching the old `BTreeMap` iteration order.
    pub fn sorted(&self) -> Vec<(ObjectId, FrameId)> {
        let mut out = Vec::with_capacity(self.table.len());
        self.for_each(|o, f| out.push((o, f)));
        out.sort_unstable_by_key(|(o, _)| *o);
        out
    }
}

#[cfg(feature = "ksan")]
impl MemberMap {
    pub(crate) fn ksan_check(&self) -> Result<(), String> {
        self.table.ksan_check()
    }

    /// Corruption hook for sanitizer self-tests.
    #[doc(hidden)]
    pub fn ksan_break_live_count(&mut self) {
        self.table.ksan_break_live_count();
    }
}

/// Refcounted set of distinct frames backing a knode's members
/// (`FrameId -> u32`; several slab objects can share one frame). Kept
/// incrementally so en-masse migration collects it directly instead of
/// deduplicating the member tables on every call.
#[derive(Debug, Clone, Default)]
pub struct FrameRefs {
    table: Dense,
}

impl FrameRefs {
    /// Adds one reference; returns whether the frame is newly tracked.
    pub fn add(&mut self, frame: FrameId) -> bool {
        self.table.bump(frame.0)
    }

    /// Drops one reference; returns whether the frame left the set.
    /// Unreferenced frames are ignored (mirrors the old map behavior).
    pub fn unref(&mut self, frame: FrameId) -> bool {
        self.table.unbump(frame.0)
    }

    /// Current reference count for a frame (0 if untracked).
    pub fn count(&self, frame: FrameId) -> u32 {
        u32::try_from(self.table.get(frame.0).unwrap_or(0)).unwrap_or(u32::MAX)
    }

    /// Number of distinct frames.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no frames are tracked.
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// Visits every (frame, refcount) in slot order (deterministic,
    /// unordered — for tallies and residency counts only).
    pub fn for_each(&self, mut f: impl FnMut(FrameId, u32)) {
        self.table
            .for_each(|k, v| f(FrameId(k), u32::try_from(v).unwrap_or(u32::MAX)));
    }

    /// Replaces `out` with the frames ascending by full `FrameId` — the
    /// order the old `BTreeMap` iterated in, which is report-visible
    /// (en-masse migration order). Sorting by full id matters: a frame's
    /// generation bits can invert slot order.
    pub fn collect_sorted(&self, out: &mut Vec<FrameId>) {
        out.clear();
        out.reserve(self.table.len());
        self.table.for_each(|k, _| out.push(FrameId(k)));
        out.sort_unstable();
    }
}

#[cfg(feature = "ksan")]
impl FrameRefs {
    pub(crate) fn ksan_check(&self) -> Result<(), String> {
        self.table.ksan_check()
    }

    /// Injects one phantom reference to `frame`, desyncing the frame
    /// set from the member tables. Corruption hook for self-tests.
    #[doc(hidden)]
    pub fn ksan_break_phantom_ref(&mut self, frame: FrameId) {
        self.add(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = MemberMap::default();
        assert!(m.is_empty());
        assert_eq!(m.insert(ObjectId(1), FrameId(10)), None);
        assert_eq!(m.insert(ObjectId(2), FrameId(20)), None);
        assert_eq!(m.get(ObjectId(1)), Some(FrameId(10)));
        assert_eq!(m.insert(ObjectId(1), FrameId(11)), Some(FrameId(10)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(ObjectId(1)), Some(FrameId(11)));
        assert_eq!(m.remove(ObjectId(1)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstoned_slot_reuse_keeps_probe_chains() {
        let mut m = MemberMap::default();
        // Fill past one growth so chains wrap and collide.
        for i in 0..64u64 {
            m.insert(ObjectId(i), FrameId(i + 100));
        }
        for i in (0..64u64).step_by(2) {
            assert_eq!(m.remove(ObjectId(i)), Some(FrameId(i + 100)));
        }
        // Ids landing on recycled slots must not shadow survivors.
        for i in 64..96u64 {
            m.insert(ObjectId(i), FrameId(i + 100));
        }
        for i in (1..64u64).step_by(2) {
            assert_eq!(m.get(ObjectId(i)), Some(FrameId(i + 100)), "id {i}");
        }
        for i in (0..64u64).step_by(2) {
            assert_eq!(m.get(ObjectId(i)), None, "removed id {i}");
        }
        assert_eq!(m.len(), 32 + 32);
    }

    #[test]
    fn sorted_view_orders_by_object_id() {
        let mut m = MemberMap::default();
        for &i in &[5u64, 1, 9, 3] {
            m.insert(ObjectId(i), FrameId(i));
        }
        let ids: Vec<u64> = m.sorted().iter().map(|(o, _)| o.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    fn frame_refs_count_and_drop() {
        let mut r = FrameRefs::default();
        assert!(r.add(FrameId(7)));
        assert!(!r.add(FrameId(7)));
        assert!(r.add(FrameId(8)));
        assert_eq!(r.count(FrameId(7)), 2);
        assert_eq!(r.len(), 2);
        assert!(!r.unref(FrameId(7)));
        assert!(r.unref(FrameId(7)));
        assert!(!r.unref(FrameId(7)), "already dropped");
        let mut out = Vec::new();
        r.collect_sorted(&mut out);
        assert_eq!(out, vec![FrameId(8)]);
    }

    #[test]
    fn refcount_churn_through_tombstones() {
        let mut r = FrameRefs::default();
        // Repeated add/unref cycles leave tombstones; counts must stay
        // exact and the table must keep terminating probes.
        for round in 0..200u64 {
            let f = FrameId(round % 16);
            assert!(r.add(f) || r.count(f) > 1);
            if round % 3 == 0 {
                r.unref(f);
            }
        }
        let mut total = 0u64;
        r.for_each(|_, rc| total += u64::from(rc));
        assert_eq!(total, 200 - 67);
    }

    #[test]
    fn collect_sorted_orders_by_full_id_not_slot() {
        let mut r = FrameRefs::default();
        // Same slot (low 32 bits), different generations: full-id order
        // disagrees with insertion and slot order.
        let gen1 = FrameId((1 << 32) | 5);
        let gen0 = FrameId(5);
        r.add(gen1);
        r.add(gen0);
        let mut out = Vec::new();
        r.collect_sorted(&mut out);
        assert_eq!(out, vec![gen0, gen1]);
    }

    #[test]
    fn tables_start_unallocated() {
        let m = MemberMap::default();
        assert_eq!(m.table.slots.capacity(), 0, "empty knodes cost nothing");
        assert_eq!(m.get(ObjectId(3)), None);
        let mut r = FrameRefs::default();
        assert!(!r.unref(FrameId(3)));
        assert_eq!(r.count(FrameId(3)), 0);
    }
}
