//! The per-inode knode.
//!
//! Every file/socket inode gets a knode — a "table of contents" naming
//! every kernel object associated with that inode (paper Fig. 1). The
//! members are split across two ordered trees, mirroring the paper's
//! `rbtree-cache` / `rbtree-slab` split (§4.2.3): a single tree over
//! millions of objects costs ~10 memory references per traversal; two
//! smaller trees also separate page-cache pages from small slab objects
//! organizationally.
//!
//! Aging is *lazy*: instead of a scan bumping a counter on every knode
//! each epoch (O(knodes) per tick), a knode records the
//! [`crate::Kmap`] epoch it was last synchronized at and derives its age
//! on demand as the number of epochs it has since sat inactive. The
//! kmap's global epoch advance is then O(1) — the paper's claim that
//! KLOCs age "as a side effect of events" rather than by scanning
//! (§4.3).

use std::collections::BTreeMap;

use kloc_mem::{FrameId, Nanos};

use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{Backing, KernelObjectType, ObjectId};

/// Which member tree an object landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberTree {
    /// `rbtree-cache`: page-backed objects (page-cache pages, data
    /// buffers, journal blocks).
    Cache,
    /// `rbtree-slab`: small slab-class objects (inodes, dentries, …).
    Slab,
}

/// A knode: the KLOC bookkeeping attached to one inode.
#[derive(Debug, Clone)]
pub struct Knode {
    inode: InodeId,
    /// Whether the inode is currently open/active.
    inuse: bool,
    /// Age accrued up to `synced_epoch` (materialized on activation
    /// transitions; zero after any touch).
    age_base: u32,
    /// Kmap epoch at which `age_base` was last materialized. While
    /// inactive, one age unit accrues per epoch since.
    synced_epoch: u64,
    /// CPU that last touched this knode (`find_cpu` in Table 2).
    last_cpu: CpuId,
    /// Last access time.
    last_active: Nanos,
    /// Page-backed members: object -> backing frame.
    rbtree_cache: BTreeMap<ObjectId, FrameId>,
    /// Slab-class members: object -> backing frame.
    rbtree_slab: BTreeMap<ObjectId, FrameId>,
    /// Distinct frames backing members, refcounted (several slab
    /// objects can share a frame). Kept incrementally so en-masse
    /// migration walks it directly instead of collecting, sorting, and
    /// deduplicating the member trees on every call.
    frames: BTreeMap<FrameId, u32>,
}

impl Knode {
    /// Creates a knode for `inode`, initially in use.
    pub fn new(inode: InodeId, now: Nanos) -> Self {
        Knode {
            inode,
            inuse: true,
            age_base: 0,
            synced_epoch: 0,
            last_cpu: CpuId(0),
            last_active: now,
            rbtree_cache: BTreeMap::new(),
            rbtree_slab: BTreeMap::new(),
            frames: BTreeMap::new(),
        }
    }

    /// The inode this knode belongs to.
    pub fn inode(&self) -> InodeId {
        self.inode
    }

    /// Whether the inode is active (open).
    pub fn inuse(&self) -> bool {
        self.inuse
    }

    /// LRU age as of `epoch`: epochs spent inactive since the last
    /// touch. Active knodes do not accrue age.
    pub fn age_at(&self, epoch: u64) -> u32 {
        let accrued = if self.inuse {
            0
        } else {
            epoch.saturating_sub(self.synced_epoch)
        };
        u32::try_from(u64::from(self.age_base).saturating_add(accrued)).unwrap_or(u32::MAX)
    }

    /// The effective epoch this knode has been inactive since — the
    /// ordering key of the kmap's inactive index (`age_at(epoch)` ==
    /// `epoch - inactive_stamp()` whenever the age fits in a `u32`).
    pub(crate) fn inactive_stamp(&self) -> u64 {
        self.synced_epoch.saturating_sub(u64::from(self.age_base))
    }

    /// Materializes the age accrued so far into `age_base` and re-bases
    /// it on `epoch`. Called on activation transitions so the age stops
    /// (or resumes) accruing from the right point.
    pub(crate) fn sync_age_at(&mut self, epoch: u64) {
        self.age_base = self.age_at(epoch);
        self.synced_epoch = epoch;
    }

    /// Marks the knode active/inactive as of `epoch`. No-op when the
    /// state does not change (a repeated close must not restart the
    /// inactivity clock).
    pub(crate) fn set_inuse_at(&mut self, inuse: bool, epoch: u64) {
        if self.inuse != inuse {
            self.sync_age_at(epoch);
            self.inuse = inuse;
        }
    }

    /// CPU that last accessed the knode (paper's `find_cpu`).
    pub fn last_cpu(&self) -> CpuId {
        self.last_cpu
    }

    /// Last access time.
    pub fn last_active(&self) -> Nanos {
        self.last_active
    }

    /// Records an access as of `epoch`: resets the age, stamps time and
    /// CPU.
    pub(crate) fn touch_at(&mut self, cpu: CpuId, now: Nanos, epoch: u64) {
        self.age_base = 0;
        self.synced_epoch = epoch;
        self.last_cpu = cpu;
        self.last_active = now;
    }

    /// Adds a member object (`knode_add_obj` in Table 2); routed to the
    /// cache or slab tree by the object's backing. Returns the tree used.
    pub fn add_obj(&mut self, obj: ObjectId, ty: KernelObjectType, frame: FrameId) -> MemberTree {
        let (tree, prev) = match ty.backing() {
            Backing::Page(_) => (MemberTree::Cache, self.rbtree_cache.insert(obj, frame)),
            Backing::Slab => (MemberTree::Slab, self.rbtree_slab.insert(obj, frame)),
        };
        if let Some(old) = prev {
            self.unref_frame(old);
        }
        *self.frames.entry(frame).or_insert(0) += 1;
        tree
    }

    /// Removes a member. Returns whether it was tracked.
    pub fn remove_obj(&mut self, obj: ObjectId) -> bool {
        let frame = self
            .rbtree_cache
            .remove(&obj)
            .or_else(|| self.rbtree_slab.remove(&obj));
        match frame {
            Some(f) => {
                self.unref_frame(f);
                true
            }
            None => false,
        }
    }

    fn unref_frame(&mut self, frame: FrameId) {
        if let Some(rc) = self.frames.get_mut(&frame) {
            *rc -= 1;
            if *rc == 0 {
                self.frames.remove(&frame);
            }
        }
    }

    /// Number of members across both trees.
    pub fn member_count(&self) -> usize {
        self.rbtree_cache.len() + self.rbtree_slab.len()
    }

    /// Whether the knode tracks no objects.
    pub fn is_empty(&self) -> bool {
        self.rbtree_cache.is_empty() && self.rbtree_slab.is_empty()
    }

    /// Iterates page-backed members (`itr_knode_cache`).
    pub fn iter_cache(&self) -> impl Iterator<Item = (ObjectId, FrameId)> + '_ {
        self.rbtree_cache.iter().map(|(o, f)| (*o, *f))
    }

    /// Iterates slab-class members (`itr_knode_slab`).
    pub fn iter_slab(&self) -> impl Iterator<Item = (ObjectId, FrameId)> + '_ {
        self.rbtree_slab.iter().map(|(o, f)| (*o, *f))
    }

    /// Iterates the deduplicated frames backing all members, ascending —
    /// the unit of en-masse migration (paper §4.4: "kernel objects
    /// pointed to by a knode subtree are migrated" together). Walks the
    /// incrementally maintained frame set; no allocation.
    pub fn iter_member_frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.frames.keys().copied()
    }

    /// Number of distinct frames backing members.
    pub fn member_frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Deduplicated frames backing all members, collected.
    pub fn member_frames(&self) -> Vec<FrameId> {
        self.iter_member_frames().collect()
    }
}

#[cfg(feature = "ksan")]
impl Knode {
    /// The epoch this knode's age was last synchronized at (audited
    /// against the kmap's global epoch, which must never lag it).
    pub(crate) fn synced_epoch(&self) -> u64 {
        self.synced_epoch
    }

    /// Recomputes the frame refcounts from both member trees and
    /// cross-checks the incrementally maintained frame set. Observation
    /// only.
    pub(crate) fn ksan_audit(&self, out: &mut Vec<kloc_mem::ksan::Violation>) {
        use kloc_mem::ksan::Violation;
        let mut tally: BTreeMap<FrameId, u32> = BTreeMap::new();
        for (_, frame) in self.iter_cache().chain(self.iter_slab()) {
            *tally.entry(frame).or_insert(0) += 1;
        }
        if tally != self.frames {
            out.push(Violation::new(
                "Knode.frames <-> Knode member trees",
                format!("{}", self.inode),
                "frame refcounts match the members that reference them",
                format!("{tally:?}"),
                format!("{:?}", self.frames),
            ));
        }
    }

    /// Corruption hook for sanitizer self-tests: stamps the knode's
    /// synced epoch into the future, ahead of the kmap's global epoch.
    #[doc(hidden)]
    pub fn ksan_force_synced_epoch(&mut self, epoch: u64) {
        self.synced_epoch = epoch;
    }

    /// Test-only wrapper over the crate-private inuse transition so
    /// sanitizer self-tests can stage inactive knodes from outside the
    /// crate (via `Kmap::with_knode_mut`, which repairs the activation
    /// indexes around the change).
    #[doc(hidden)]
    pub fn ksan_set_inuse_at(&mut self, inuse: bool, epoch: u64) {
        self.set_inuse_at(inuse, epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knode() -> Knode {
        Knode::new(InodeId(1), Nanos::ZERO)
    }

    #[test]
    fn members_route_by_backing() {
        let mut k = knode();
        let t1 = k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(10));
        let t2 = k.add_obj(ObjectId(2), KernelObjectType::Dentry, FrameId(11));
        assert_eq!(t1, MemberTree::Cache);
        assert_eq!(t2, MemberTree::Slab);
        assert_eq!(k.iter_cache().count(), 1);
        assert_eq!(k.iter_slab().count(), 1);
        assert_eq!(k.member_count(), 2);
    }

    #[test]
    fn remove_from_either_tree() {
        let mut k = knode();
        k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(10));
        k.add_obj(ObjectId(2), KernelObjectType::Extent, FrameId(11));
        assert!(k.remove_obj(ObjectId(1)));
        assert!(k.remove_obj(ObjectId(2)));
        assert!(!k.remove_obj(ObjectId(3)));
        assert!(k.is_empty());
        assert_eq!(k.member_frame_count(), 0);
    }

    #[test]
    fn member_frames_deduplicate_shared_slab_pages() {
        let mut k = knode();
        // Two dentries packed on the same slab frame.
        k.add_obj(ObjectId(1), KernelObjectType::Dentry, FrameId(7));
        k.add_obj(ObjectId(2), KernelObjectType::Dentry, FrameId(7));
        k.add_obj(ObjectId(3), KernelObjectType::PageCache, FrameId(8));
        assert_eq!(k.member_frames(), vec![FrameId(7), FrameId(8)]);
        assert_eq!(k.member_frame_count(), 2);
        // Removing one sharer keeps the frame; removing both drops it.
        assert!(k.remove_obj(ObjectId(1)));
        assert_eq!(k.member_frames(), vec![FrameId(7), FrameId(8)]);
        assert!(k.remove_obj(ObjectId(2)));
        assert_eq!(k.member_frames(), vec![FrameId(8)]);
    }

    #[test]
    fn reinserted_object_moves_its_frame_ref() {
        let mut k = knode();
        k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(7));
        // Same object re-added on a different frame: old ref released.
        k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(9));
        assert_eq!(k.member_frames(), vec![FrameId(9)]);
        assert_eq!(k.member_count(), 1);
    }

    #[test]
    fn age_accrues_only_while_inactive() {
        let mut k = knode();
        assert_eq!(k.age_at(5), 0, "active knodes do not age");
        k.set_inuse_at(false, 5);
        assert_eq!(k.age_at(5), 0);
        assert_eq!(k.age_at(9), 4, "one unit per epoch inactive");
        k.touch_at(CpuId(3), Nanos::from_micros(5), 9);
        assert_eq!(k.age_at(9), 0, "touch resets the clock");
        assert_eq!(k.last_cpu(), CpuId(3));
        assert_eq!(k.last_active(), Nanos::from_micros(5));
    }

    #[test]
    fn reactivation_freezes_age() {
        let mut k = knode();
        k.set_inuse_at(false, 0);
        assert_eq!(k.age_at(7), 7);
        k.set_inuse_at(true, 7);
        assert_eq!(k.age_at(20), 7, "age frozen while active");
        // Repeated close must not restart the inactivity clock.
        k.set_inuse_at(false, 20);
        k.set_inuse_at(false, 25);
        assert_eq!(k.age_at(30), 17);
        assert_eq!(k.inactive_stamp(), 13);
    }

    #[test]
    fn inuse_toggles() {
        let mut k = knode();
        assert!(k.inuse());
        k.set_inuse_at(false, 0);
        assert!(!k.inuse());
    }

    #[test]
    fn age_saturates() {
        let mut k = knode();
        k.set_inuse_at(false, 0);
        assert_eq!(k.age_at(u64::from(u32::MAX) + 100), u32::MAX);
    }
}
