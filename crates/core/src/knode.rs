//! The per-inode knode.
//!
//! Every file/socket inode gets a knode — a "table of contents" naming
//! every kernel object associated with that inode (paper Fig. 1). The
//! members are split across two tables, mirroring the paper's
//! `rbtree-cache` / `rbtree-slab` split (§4.2.3): separating page-cache
//! pages from small slab objects keeps each table small and the split
//! organizationally meaningful. Since PR 7 the tables are the dense
//! open-addressed [`crate::members::MemberMap`]s rather than
//! `BTreeMap`s: the member add/remove/touch path sits on every syscall,
//! so it probes a flat slot array instead of chasing tree nodes, and
//! ordered views are derived only where order is report-visible (see
//! the `members` module docs).
//!
//! Aging is *lazy*: instead of a scan bumping a counter on every knode
//! each epoch (O(knodes) per tick), a knode records the
//! [`crate::Kmap`] epoch it was last synchronized at and derives its age
//! on demand as the number of epochs it has since sat inactive. The
//! kmap's global epoch advance is then O(1) — the paper's claim that
//! KLOCs age "as a side effect of events" rather than by scanning
//! (§4.3).

use std::cell::{Cell, RefCell};

use kloc_mem::{FrameId, Nanos, TierId};

use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{Backing, KernelObjectType, ObjectId};

use crate::members::{FrameRefs, MemberMap};

/// Which member tree an object landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberTree {
    /// `rbtree-cache`: page-backed objects (page-cache pages, data
    /// buffers, journal blocks).
    Cache,
    /// `rbtree-slab`: small slab-class objects (inodes, dentries, …).
    Slab,
}

/// A knode: the KLOC bookkeeping attached to one inode.
#[derive(Debug, Clone)]
pub struct Knode {
    inode: InodeId,
    /// Whether the inode is currently open/active.
    inuse: bool,
    /// Age accrued up to `synced_epoch` (materialized on activation
    /// transitions; zero after any touch).
    age_base: u32,
    /// Kmap epoch at which `age_base` was last materialized. While
    /// inactive, one age unit accrues per epoch since.
    synced_epoch: u64,
    /// CPU that last touched this knode (`find_cpu` in Table 2).
    last_cpu: CpuId,
    /// Last access time.
    last_active: Nanos,
    /// Page-backed members: object -> backing frame (`rbtree-cache`).
    cache: MemberMap,
    /// Slab-class members: object -> backing frame (`rbtree-slab`).
    slab: MemberMap,
    /// Distinct frames backing members, refcounted (several slab
    /// objects can share a frame). Kept incrementally so en-masse
    /// migration collects it directly instead of deduplicating the
    /// member tables on every call.
    frames: FrameRefs,
    /// Cached ascending view of `frames` (the report-visible migration
    /// order). Mutations that change the distinct frame set only mark
    /// it stale; `collect_member_frames` re-sorts at most once per
    /// change, so repeated policy-tick walks over an unchanged knode
    /// sort nothing.
    sorted_frames: RefCell<Vec<FrameId>>,
    /// Whether `sorted_frames` no longer reflects `frames`.
    frames_stale: Cell<bool>,
    /// Memoized outcome of a *settled* en-masse migration walk:
    /// `(target tier, ping-pong skips the walk charges, external
    /// migration epoch)`. While valid, a repeat walk toward the same
    /// tier can move nothing and charges exactly the cached skip count,
    /// so the registry answers it in O(1) instead of re-probing every
    /// member frame. Cleared whenever the distinct frame set changes or
    /// frames are promoted back (registry paths), and keyed to the
    /// registry's external-migration epoch so app-LRU migrations of
    /// member frames invalidate it too.
    enmasse_cache: Cell<Option<(TierId, u64, u64)>>,
    /// Earliest virtual time the member-granular demotion walk could
    /// move anything: `(older_than key, bound, external promotion
    /// epoch)`. Touches only push member candidacy later, so the bound
    /// stays conservative until the member set changes or a frame is
    /// promoted into fast memory.
    demote_bound: Cell<Option<(Nanos, Nanos, u64)>>,
}

impl Knode {
    /// Creates a knode for `inode`, initially in use.
    pub fn new(inode: InodeId, now: Nanos) -> Self {
        Knode {
            inode,
            inuse: true,
            age_base: 0,
            synced_epoch: 0,
            last_cpu: CpuId(0),
            last_active: now,
            cache: MemberMap::default(),
            slab: MemberMap::default(),
            frames: FrameRefs::default(),
            sorted_frames: RefCell::new(Vec::new()),
            frames_stale: Cell::new(false),
            enmasse_cache: Cell::new(None),
            demote_bound: Cell::new(None),
        }
    }

    /// The inode this knode belongs to.
    pub fn inode(&self) -> InodeId {
        self.inode
    }

    /// Whether the inode is active (open).
    pub fn inuse(&self) -> bool {
        self.inuse
    }

    /// LRU age as of `epoch`: epochs spent inactive since the last
    /// touch. Active knodes do not accrue age.
    pub fn age_at(&self, epoch: u64) -> u32 {
        let accrued = if self.inuse {
            0
        } else {
            epoch.saturating_sub(self.synced_epoch)
        };
        u32::try_from(u64::from(self.age_base).saturating_add(accrued)).unwrap_or(u32::MAX)
    }

    /// The effective epoch this knode has been inactive since — the
    /// ordering key of the kmap's inactive index (`age_at(epoch)` ==
    /// `epoch - inactive_stamp()` whenever the age fits in a `u32`).
    pub(crate) fn inactive_stamp(&self) -> u64 {
        self.synced_epoch.saturating_sub(u64::from(self.age_base))
    }

    /// Materializes the age accrued so far into `age_base` and re-bases
    /// it on `epoch`. Called on activation transitions so the age stops
    /// (or resumes) accruing from the right point.
    pub(crate) fn sync_age_at(&mut self, epoch: u64) {
        self.age_base = self.age_at(epoch);
        self.synced_epoch = epoch;
    }

    /// Marks the knode active/inactive as of `epoch`. No-op when the
    /// state does not change (a repeated close must not restart the
    /// inactivity clock).
    pub(crate) fn set_inuse_at(&mut self, inuse: bool, epoch: u64) {
        if self.inuse != inuse {
            self.sync_age_at(epoch);
            self.inuse = inuse;
        }
    }

    /// CPU that last accessed the knode (paper's `find_cpu`).
    pub fn last_cpu(&self) -> CpuId {
        self.last_cpu
    }

    /// Last access time.
    pub fn last_active(&self) -> Nanos {
        self.last_active
    }

    /// Records an access as of `epoch`: resets the age, stamps time and
    /// CPU.
    pub(crate) fn touch_at(&mut self, cpu: CpuId, now: Nanos, epoch: u64) {
        self.age_base = 0;
        self.synced_epoch = epoch;
        self.last_cpu = cpu;
        self.last_active = now;
    }

    /// Adds a member object (`knode_add_obj` in Table 2); routed to the
    /// cache or slab table by the object's backing. Returns the table
    /// used. O(1) amortized: one dense-table probe plus a refcount bump.
    pub fn add_obj(&mut self, obj: ObjectId, ty: KernelObjectType, frame: FrameId) -> MemberTree {
        let (tree, prev) = match ty.backing() {
            Backing::Page(_) => (MemberTree::Cache, self.cache.insert(obj, frame)),
            Backing::Slab => (MemberTree::Slab, self.slab.insert(obj, frame)),
        };
        let mut changed = false;
        if let Some(old) = prev {
            changed |= self.frames.unref(old);
        }
        changed |= self.frames.add(frame);
        if changed {
            self.frames_stale.set(true);
            self.clear_walk_caches();
        }
        tree
    }

    /// Removes a member. Returns whether it was tracked. O(1) amortized.
    pub fn remove_obj(&mut self, obj: ObjectId) -> bool {
        let frame = self.cache.remove(obj).or_else(|| self.slab.remove(obj));
        match frame {
            Some(f) => {
                if self.frames.unref(f) {
                    self.frames_stale.set(true);
                    self.clear_walk_caches();
                }
                true
            }
            None => false,
        }
    }

    /// Number of members across both tables.
    pub fn member_count(&self) -> usize {
        self.cache.len() + self.slab.len()
    }

    /// Whether the knode tracks no objects.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty() && self.slab.is_empty()
    }

    /// Page-backed members ascending by `ObjectId` (`itr_knode_cache`).
    /// Derived on demand — the insert/remove path maintains no order.
    pub fn cache_members(&self) -> Vec<(ObjectId, FrameId)> {
        self.cache.sorted()
    }

    /// Slab-class members ascending by `ObjectId` (`itr_knode_slab`).
    /// Derived on demand — the insert/remove path maintains no order.
    pub fn slab_members(&self) -> Vec<(ObjectId, FrameId)> {
        self.slab.sorted()
    }

    /// Visits the deduplicated frames backing all members in unordered
    /// (slot) order — deterministic, but only for order-insensitive
    /// consumers such as residency counts.
    pub fn for_each_member_frame(&self, mut f: impl FnMut(FrameId)) {
        self.frames.for_each(|frame, _| f(frame));
    }

    /// Replaces `out` with the deduplicated frames backing all members,
    /// ascending by full `FrameId` — the unit of en-masse migration
    /// (paper §4.4: "kernel objects pointed to by a knode subtree are
    /// migrated" together). The order is report-visible, so it is
    /// derived (collect + sort) rather than maintained per touch — but
    /// cached: the sort reruns only after the distinct frame set
    /// changed, so per-tick walks over a quiescent knode cost one copy.
    pub fn collect_member_frames(&self, out: &mut Vec<FrameId>) {
        self.with_member_frames(|frames| {
            out.clear();
            out.extend_from_slice(frames);
        });
    }

    /// Zero-copy variant of [`Knode::collect_member_frames`]: hands the
    /// closure the same ascending deduplicated frame slice without
    /// copying it out. The slice is borrowed from the knode's sort
    /// cache, so the closure must not re-enter member mutation (the
    /// migration walks only touch the memory system).
    pub fn with_member_frames<R>(&self, f: impl FnOnce(&[FrameId]) -> R) -> R {
        if self.frames_stale.get() {
            self.frames
                .collect_sorted(&mut self.sorted_frames.borrow_mut());
            self.frames_stale.set(false);
        }
        f(&self.sorted_frames.borrow())
    }

    /// Drops both migration-walk memoizations. Called whenever the
    /// distinct frame set changes or member frames gain fast-tier
    /// residency outside a demotion walk's own bookkeeping.
    pub(crate) fn clear_walk_caches(&self) {
        self.enmasse_cache.set(None);
        self.demote_bound.set(None);
    }

    /// The memoized settled en-masse walk outcome, if any.
    pub(crate) fn enmasse_cache(&self) -> Option<(TierId, u64, u64)> {
        self.enmasse_cache.get()
    }

    /// Memoizes a settled en-masse walk toward `to`: nothing movable
    /// remains and a repeat walk charges exactly `pingpong_skips`.
    pub(crate) fn set_enmasse_cache(&self, to: TierId, pingpong_skips: u64, epoch: u64) {
        self.enmasse_cache.set(Some((to, pingpong_skips, epoch)));
    }

    /// The memoized member-demotion candidacy bound, if any.
    pub(crate) fn demote_bound(&self) -> Option<(Nanos, Nanos, u64)> {
        self.demote_bound.get()
    }

    /// Memoizes the earliest time a member-granular demotion walk with
    /// this `older_than` could move anything.
    pub(crate) fn set_demote_bound(&self, older_than: Nanos, bound: Nanos, epoch: u64) {
        self.demote_bound.set(Some((older_than, bound, epoch)));
    }

    /// Number of distinct frames backing members.
    pub fn member_frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Deduplicated frames backing all members, collected ascending.
    pub fn member_frames(&self) -> Vec<FrameId> {
        let mut out = Vec::new();
        self.collect_member_frames(&mut out);
        out
    }
}

#[cfg(feature = "ksan")]
impl Knode {
    /// The epoch this knode's age was last synchronized at (audited
    /// against the kmap's global epoch, which must never lag it).
    pub(crate) fn synced_epoch(&self) -> u64 {
        self.synced_epoch
    }

    /// Recomputes the frame refcounts from both member tables and
    /// cross-checks the incrementally maintained frame set, then audits
    /// each dense table's internal slot bookkeeping (live counter vs
    /// occupied slots, probe-chain reachability). Observation only.
    pub(crate) fn ksan_audit(&self, out: &mut Vec<kloc_mem::ksan::Violation>) {
        use std::collections::BTreeMap;

        use kloc_mem::ksan::Violation;
        let mut tally: BTreeMap<FrameId, u32> = BTreeMap::new();
        let mut count = |_: ObjectId, frame: FrameId| {
            *tally.entry(frame).or_insert(0) += 1;
        };
        self.cache.for_each(&mut count);
        self.slab.for_each(&mut count);
        let mut refs: BTreeMap<FrameId, u32> = BTreeMap::new();
        self.frames.for_each(|frame, rc| {
            refs.insert(frame, rc);
        });
        if tally != refs {
            out.push(Violation::new(
                "Knode.frames <-> Knode member tables",
                format!("{}", self.inode),
                "frame refcounts match the members that reference them",
                format!("{tally:?}"),
                format!("{refs:?}"),
            ));
        }
        if !self.frames_stale.get() {
            let mut fresh = Vec::new();
            self.frames.collect_sorted(&mut fresh);
            if *self.sorted_frames.borrow() != fresh {
                out.push(Violation::new(
                    "Knode.sorted_frames cache <-> Knode.frames",
                    format!("{}", self.inode),
                    "a cache not marked stale matches a fresh collect",
                    format!("{fresh:?}"),
                    format!("{:?}", self.sorted_frames.borrow()),
                ));
            }
        }
        for (label, check) in [
            ("rbtree-cache", self.cache.ksan_check()),
            ("rbtree-slab", self.slab.ksan_check()),
            ("frame refs", self.frames.ksan_check()),
        ] {
            if let Err(err) = check {
                out.push(Violation::new(
                    "Knode dense table slots <-> live counter",
                    format!("{} {label}", self.inode),
                    "stored ids are probe-reachable and counted exactly once",
                    "consistent slot array".to_owned(),
                    err,
                ));
            }
        }
    }

    /// Corruption hook for sanitizer self-tests: stamps the knode's
    /// synced epoch into the future, ahead of the kmap's global epoch.
    #[doc(hidden)]
    pub fn ksan_force_synced_epoch(&mut self, epoch: u64) {
        self.synced_epoch = epoch;
    }

    /// Corruption hook for sanitizer self-tests: injects a phantom
    /// frame reference, desyncing the frame set from the member tables.
    #[doc(hidden)]
    pub fn ksan_break_knode_members(&mut self) {
        self.frames.ksan_break_phantom_ref(FrameId(0xDEAD));
    }

    /// Corruption hook for sanitizer self-tests: skews the cache
    /// table's live counter against its occupied slots.
    #[doc(hidden)]
    pub fn ksan_break_member_slots(&mut self) {
        self.cache.ksan_break_live_count();
    }

    /// Corruption hook for sanitizer self-tests: plants a bogus frame
    /// in the sorted-frame cache while leaving it marked clean.
    #[doc(hidden)]
    pub fn ksan_break_frame_cache(&mut self) {
        self.sorted_frames.borrow_mut().push(FrameId(0xBAD));
        self.frames_stale.set(false);
    }

    /// Test-only wrapper over the crate-private inuse transition so
    /// sanitizer self-tests can stage inactive knodes from outside the
    /// crate (via `Kmap::with_knode_mut`, which repairs the activation
    /// indexes around the change).
    #[doc(hidden)]
    pub fn ksan_set_inuse_at(&mut self, inuse: bool, epoch: u64) {
        self.set_inuse_at(inuse, epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knode() -> Knode {
        Knode::new(InodeId(1), Nanos::ZERO)
    }

    #[test]
    fn members_route_by_backing() {
        let mut k = knode();
        let t1 = k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(10));
        let t2 = k.add_obj(ObjectId(2), KernelObjectType::Dentry, FrameId(11));
        assert_eq!(t1, MemberTree::Cache);
        assert_eq!(t2, MemberTree::Slab);
        assert_eq!(k.cache_members().len(), 1);
        assert_eq!(k.slab_members().len(), 1);
        assert_eq!(k.member_count(), 2);
    }

    #[test]
    fn remove_from_either_tree() {
        let mut k = knode();
        k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(10));
        k.add_obj(ObjectId(2), KernelObjectType::Extent, FrameId(11));
        assert!(k.remove_obj(ObjectId(1)));
        assert!(k.remove_obj(ObjectId(2)));
        assert!(!k.remove_obj(ObjectId(3)));
        assert!(k.is_empty());
        assert_eq!(k.member_frame_count(), 0);
    }

    #[test]
    fn member_frames_deduplicate_shared_slab_pages() {
        let mut k = knode();
        // Two dentries packed on the same slab frame.
        k.add_obj(ObjectId(1), KernelObjectType::Dentry, FrameId(7));
        k.add_obj(ObjectId(2), KernelObjectType::Dentry, FrameId(7));
        k.add_obj(ObjectId(3), KernelObjectType::PageCache, FrameId(8));
        assert_eq!(k.member_frames(), vec![FrameId(7), FrameId(8)]);
        assert_eq!(k.member_frame_count(), 2);
        // Removing one sharer keeps the frame; removing both drops it.
        assert!(k.remove_obj(ObjectId(1)));
        assert_eq!(k.member_frames(), vec![FrameId(7), FrameId(8)]);
        assert!(k.remove_obj(ObjectId(2)));
        assert_eq!(k.member_frames(), vec![FrameId(8)]);
    }

    #[test]
    fn reinserted_object_moves_its_frame_ref() {
        let mut k = knode();
        k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(7));
        // Same object re-added on a different frame: old ref released.
        k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(9));
        assert_eq!(k.member_frames(), vec![FrameId(9)]);
        assert_eq!(k.member_count(), 1);
    }

    #[test]
    fn member_views_sort_by_full_id() {
        let mut k = knode();
        // Insertion order deliberately disagrees with id order, and two
        // frames share a slot (low 32 bits) across generations.
        k.add_obj(ObjectId(9), KernelObjectType::PageCache, FrameId(5));
        k.add_obj(
            ObjectId(2),
            KernelObjectType::PageCache,
            FrameId((1 << 32) | 4),
        );
        k.add_obj(ObjectId(5), KernelObjectType::PageCache, FrameId(4));
        let ids: Vec<u64> = k.cache_members().iter().map(|(o, _)| o.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(
            k.member_frames(),
            vec![FrameId(4), FrameId(5), FrameId((1 << 32) | 4)]
        );
    }

    #[test]
    fn age_accrues_only_while_inactive() {
        let mut k = knode();
        assert_eq!(k.age_at(5), 0, "active knodes do not age");
        k.set_inuse_at(false, 5);
        assert_eq!(k.age_at(5), 0);
        assert_eq!(k.age_at(9), 4, "one unit per epoch inactive");
        k.touch_at(CpuId(3), Nanos::from_micros(5), 9);
        assert_eq!(k.age_at(9), 0, "touch resets the clock");
        assert_eq!(k.last_cpu(), CpuId(3));
        assert_eq!(k.last_active(), Nanos::from_micros(5));
    }

    #[test]
    fn reactivation_freezes_age() {
        let mut k = knode();
        k.set_inuse_at(false, 0);
        assert_eq!(k.age_at(7), 7);
        k.set_inuse_at(true, 7);
        assert_eq!(k.age_at(20), 7, "age frozen while active");
        // Repeated close must not restart the inactivity clock.
        k.set_inuse_at(false, 20);
        k.set_inuse_at(false, 25);
        assert_eq!(k.age_at(30), 17);
        assert_eq!(k.inactive_stamp(), 13);
    }

    #[test]
    fn inuse_toggles() {
        let mut k = knode();
        assert!(k.inuse());
        k.set_inuse_at(false, 0);
        assert!(!k.inuse());
    }

    #[test]
    fn age_saturates() {
        let mut k = knode();
        k.set_inuse_at(false, 0);
        assert_eq!(k.age_at(u64::from(u32::MAX) + 100), u32::MAX);
    }
}
