//! The per-inode knode.
//!
//! Every file/socket inode gets a knode — a "table of contents" naming
//! every kernel object associated with that inode (paper Fig. 1). The
//! members are split across two ordered trees, mirroring the paper's
//! `rbtree-cache` / `rbtree-slab` split (§4.2.3): a single tree over
//! millions of objects costs ~10 memory references per traversal; two
//! smaller trees also separate page-cache pages from small slab objects
//! organizationally.

use std::collections::BTreeMap;

use kloc_mem::{FrameId, Nanos};

use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{Backing, KernelObjectType, ObjectId};

/// Which member tree an object landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberTree {
    /// `rbtree-cache`: page-backed objects (page-cache pages, data
    /// buffers, journal blocks).
    Cache,
    /// `rbtree-slab`: small slab-class objects (inodes, dentries, …).
    Slab,
}

/// A knode: the KLOC bookkeeping attached to one inode.
#[derive(Debug, Clone)]
pub struct Knode {
    inode: InodeId,
    /// Whether the inode is currently open/active.
    inuse: bool,
    /// LRU age: reset on access, incremented by policy scans (§4.3).
    age: u32,
    /// CPU that last touched this knode (`find_cpu` in Table 2).
    last_cpu: CpuId,
    /// Last access time.
    last_active: Nanos,
    /// Page-backed members: object -> backing frame.
    rbtree_cache: BTreeMap<ObjectId, FrameId>,
    /// Slab-class members: object -> backing frame.
    rbtree_slab: BTreeMap<ObjectId, FrameId>,
}

impl Knode {
    /// Creates a knode for `inode`, initially in use.
    pub fn new(inode: InodeId, now: Nanos) -> Self {
        Knode {
            inode,
            inuse: true,
            age: 0,
            last_cpu: CpuId(0),
            last_active: now,
            rbtree_cache: BTreeMap::new(),
            rbtree_slab: BTreeMap::new(),
        }
    }

    /// The inode this knode belongs to.
    pub fn inode(&self) -> InodeId {
        self.inode
    }

    /// Whether the inode is active (open).
    pub fn inuse(&self) -> bool {
        self.inuse
    }

    /// Marks the knode active/inactive.
    pub fn set_inuse(&mut self, inuse: bool) {
        self.inuse = inuse;
    }

    /// Current LRU age.
    pub fn age(&self) -> u32 {
        self.age
    }

    /// Increments the age (called by LRU scans that skip this knode).
    pub fn bump_age(&mut self) {
        self.age = self.age.saturating_add(1);
    }

    /// CPU that last accessed the knode (paper's `find_cpu`).
    pub fn last_cpu(&self) -> CpuId {
        self.last_cpu
    }

    /// Last access time.
    pub fn last_active(&self) -> Nanos {
        self.last_active
    }

    /// Records an access: resets the age, stamps time and CPU.
    pub fn touch(&mut self, cpu: CpuId, now: Nanos) {
        self.age = 0;
        self.last_cpu = cpu;
        self.last_active = now;
    }

    /// Adds a member object (`knode_add_obj` in Table 2); routed to the
    /// cache or slab tree by the object's backing. Returns the tree used.
    pub fn add_obj(&mut self, obj: ObjectId, ty: KernelObjectType, frame: FrameId) -> MemberTree {
        match ty.backing() {
            Backing::Page(_) => {
                self.rbtree_cache.insert(obj, frame);
                MemberTree::Cache
            }
            Backing::Slab => {
                self.rbtree_slab.insert(obj, frame);
                MemberTree::Slab
            }
        }
    }

    /// Removes a member. Returns whether it was tracked.
    pub fn remove_obj(&mut self, obj: ObjectId) -> bool {
        self.rbtree_cache.remove(&obj).is_some() || self.rbtree_slab.remove(&obj).is_some()
    }

    /// Number of members across both trees.
    pub fn member_count(&self) -> usize {
        self.rbtree_cache.len() + self.rbtree_slab.len()
    }

    /// Whether the knode tracks no objects.
    pub fn is_empty(&self) -> bool {
        self.rbtree_cache.is_empty() && self.rbtree_slab.is_empty()
    }

    /// Iterates page-backed members (`itr_knode_cache`).
    pub fn iter_cache(&self) -> impl Iterator<Item = (ObjectId, FrameId)> + '_ {
        self.rbtree_cache.iter().map(|(o, f)| (*o, *f))
    }

    /// Iterates slab-class members (`itr_knode_slab`).
    pub fn iter_slab(&self) -> impl Iterator<Item = (ObjectId, FrameId)> + '_ {
        self.rbtree_slab.iter().map(|(o, f)| (*o, *f))
    }

    /// Deduplicated frames backing all members — the unit of en-masse
    /// migration (paper §4.4: "kernel objects pointed to by a knode
    /// subtree are migrated" together).
    pub fn member_frames(&self) -> Vec<FrameId> {
        let mut frames: Vec<FrameId> = self
            .rbtree_cache
            .values()
            .chain(self.rbtree_slab.values())
            .copied()
            .collect();
        frames.sort();
        frames.dedup();
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knode() -> Knode {
        Knode::new(InodeId(1), Nanos::ZERO)
    }

    #[test]
    fn members_route_by_backing() {
        let mut k = knode();
        let t1 = k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(10));
        let t2 = k.add_obj(ObjectId(2), KernelObjectType::Dentry, FrameId(11));
        assert_eq!(t1, MemberTree::Cache);
        assert_eq!(t2, MemberTree::Slab);
        assert_eq!(k.iter_cache().count(), 1);
        assert_eq!(k.iter_slab().count(), 1);
        assert_eq!(k.member_count(), 2);
    }

    #[test]
    fn remove_from_either_tree() {
        let mut k = knode();
        k.add_obj(ObjectId(1), KernelObjectType::PageCache, FrameId(10));
        k.add_obj(ObjectId(2), KernelObjectType::Extent, FrameId(11));
        assert!(k.remove_obj(ObjectId(1)));
        assert!(k.remove_obj(ObjectId(2)));
        assert!(!k.remove_obj(ObjectId(3)));
        assert!(k.is_empty());
    }

    #[test]
    fn member_frames_deduplicate_shared_slab_pages() {
        let mut k = knode();
        // Two dentries packed on the same slab frame.
        k.add_obj(ObjectId(1), KernelObjectType::Dentry, FrameId(7));
        k.add_obj(ObjectId(2), KernelObjectType::Dentry, FrameId(7));
        k.add_obj(ObjectId(3), KernelObjectType::PageCache, FrameId(8));
        assert_eq!(k.member_frames(), vec![FrameId(7), FrameId(8)]);
    }

    #[test]
    fn age_and_touch() {
        let mut k = knode();
        k.bump_age();
        k.bump_age();
        assert_eq!(k.age(), 2);
        k.touch(CpuId(3), Nanos::from_micros(5));
        assert_eq!(k.age(), 0);
        assert_eq!(k.last_cpu(), CpuId(3));
        assert_eq!(k.last_active(), Nanos::from_micros(5));
    }

    #[test]
    fn inuse_toggles() {
        let mut k = knode();
        assert!(k.inuse());
        k.set_inuse(false);
        assert!(!k.inuse());
    }

    #[test]
    fn age_saturates() {
        let mut k = knode();
        for _ in 0..100 {
            k.bump_age();
        }
        assert_eq!(k.age(), 100);
    }
}
