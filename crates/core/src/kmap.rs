//! The global kmap: registry of all knodes (paper Fig. 1).
//!
//! The kmap is implemented as an ordered map keyed by inode (the paper
//! uses an RCU-friendly red-black tree). The hot path avoids it via the
//! per-CPU lists in [`crate::percpu`]; cold paths — LRU selection and
//! teardown — traverse it here.

use std::collections::BTreeMap;

use kloc_kernel::vfs::InodeId;

use crate::knode::Knode;

/// The global knode registry.
#[derive(Debug, Clone, Default)]
pub struct Kmap {
    knodes: BTreeMap<InodeId, Knode>,
    /// Accesses that had to traverse the kmap tree (misses of the
    /// per-CPU fast path); feeds the §4.3 ablation.
    tree_accesses: u64,
}

impl Kmap {
    /// Creates an empty kmap.
    pub fn new() -> Self {
        Kmap::default()
    }

    /// Number of registered knodes.
    pub fn len(&self) -> usize {
        self.knodes.len()
    }

    /// Whether no knodes are registered.
    pub fn is_empty(&self) -> bool {
        self.knodes.is_empty()
    }

    /// Accesses that traversed the tree (per-CPU fast-path misses).
    pub fn tree_accesses(&self) -> u64 {
        self.tree_accesses
    }

    /// Registers a knode (`map_knode` / `add_to_kmap` in Table 2).
    ///
    /// # Panics
    /// Panics if the inode already has a knode.
    pub fn map_knode(&mut self, knode: Knode) {
        let inode = knode.inode();
        let prev = self.knodes.insert(inode, knode);
        assert!(prev.is_none(), "{inode} already has a knode");
    }

    /// Removes and returns the knode of `inode`.
    pub fn unmap(&mut self, inode: InodeId) -> Option<Knode> {
        self.knodes.remove(&inode)
    }

    /// Looks up a knode without counting a tree access (bookkeeping
    /// paths).
    pub fn get(&self, inode: InodeId) -> Option<&Knode> {
        self.knodes.get(&inode)
    }

    /// Mutable lookup without counting a tree access.
    pub fn get_mut(&mut self, inode: InodeId) -> Option<&mut Knode> {
        self.knodes.get_mut(&inode)
    }

    /// Hot-path lookup that *counts* a tree traversal — used when the
    /// per-CPU fast path missed.
    pub fn lookup_counted(&mut self, inode: InodeId) -> Option<&mut Knode> {
        self.tree_accesses += 1;
        self.knodes.get_mut(&inode)
    }

    /// Iterates all knodes.
    pub fn iter(&self) -> impl Iterator<Item = &Knode> {
        self.knodes.values()
    }

    /// Iterates all knodes mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Knode> {
        self.knodes.values_mut()
    }

    /// Returns up to `n` LRU knode inodes (`get_LRU_knodes` in Table 2):
    /// inactive knodes first, oldest activity first, then the oldest
    /// active ones.
    pub fn lru_knodes(&self, n: usize) -> Vec<InodeId> {
        let mut all: Vec<&Knode> = self.knodes.values().collect();
        all.sort_by_key(|k| (k.inuse(), k.last_active()));
        all.into_iter().take(n).map(|k| k.inode()).collect()
    }

    /// Inodes of all currently inactive knodes, oldest first.
    pub fn inactive_knodes(&self) -> Vec<InodeId> {
        let mut v: Vec<&Knode> = self.knodes.values().filter(|k| !k.inuse()).collect();
        v.sort_by_key(|k| k.last_active());
        v.into_iter().map(|k| k.inode()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_mem::Nanos;

    fn knode_at(ino: u64, t: u64, inuse: bool) -> Knode {
        let mut k = Knode::new(InodeId(ino), Nanos::from_micros(t));
        k.set_inuse(inuse);
        k
    }

    #[test]
    fn map_and_unmap() {
        let mut m = Kmap::new();
        m.map_knode(knode_at(1, 0, true));
        assert_eq!(m.len(), 1);
        assert!(m.get(InodeId(1)).is_some());
        let k = m.unmap(InodeId(1)).unwrap();
        assert_eq!(k.inode(), InodeId(1));
        assert!(m.is_empty());
        assert!(m.unmap(InodeId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "already has a knode")]
    fn double_map_panics() {
        let mut m = Kmap::new();
        m.map_knode(knode_at(1, 0, true));
        m.map_knode(knode_at(1, 0, true));
    }

    #[test]
    fn lru_prefers_inactive_then_oldest() {
        let mut m = Kmap::new();
        m.map_knode(knode_at(1, 30, true)); // active, old
        m.map_knode(knode_at(2, 20, false)); // inactive, newer
        m.map_knode(knode_at(3, 10, false)); // inactive, oldest
        assert_eq!(m.lru_knodes(3), vec![InodeId(3), InodeId(2), InodeId(1)]);
        assert_eq!(m.lru_knodes(1), vec![InodeId(3)]);
        assert_eq!(m.inactive_knodes(), vec![InodeId(3), InodeId(2)]);
    }

    #[test]
    fn counted_lookup_tracks_tree_accesses() {
        let mut m = Kmap::new();
        m.map_knode(knode_at(1, 0, true));
        assert!(m.lookup_counted(InodeId(1)).is_some());
        assert!(m.lookup_counted(InodeId(2)).is_none());
        assert_eq!(m.tree_accesses(), 2);
        // Plain get does not count.
        m.get(InodeId(1));
        assert_eq!(m.tree_accesses(), 2);
    }
}
