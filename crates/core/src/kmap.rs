//! The global kmap: registry of all knodes (paper Fig. 1).
//!
//! Knodes live in a slot-addressed slab; an inode-keyed index (the
//! paper uses an RCU-friendly red-black tree) maps inodes to slots and
//! drives every ordered traversal. The VFS hands out inode numbers
//! sequentially, so the index is a direct-mapped dense table — a lookup
//! is one array access, and walking it in position order *is* inode
//! order, which keeps every ordered traversal identical to the tree it
//! replaces. The hot path avoids even that: the per-CPU lists in
//! [`crate::percpu`] remember each knode's slot, so a fast-path hit
//! reaches its knode with one array access and no index probe — the
//! §4.3 claim ("per-CPU lists cut rbtree accesses") made literal. Cold
//! paths — LRU selection and teardown — traverse the index here.
//!
//! Beyond the knode storage itself, the kmap maintains the state that
//! makes policy bookkeeping scan-free (paper §4.3: KLOCs age "as a side
//! effect of events", without walking active/inactive lists):
//!
//! * a global **epoch** counter — advancing it is the whole of an aging
//!   pass; knode ages derive lazily from it ([`Knode::age_at`]);
//! * an ordered **inactive index** keyed by `(inactive-since epoch,
//!   inode)`, updated O(log n) on activate/deactivate/touch, so cold-set
//!   selection is a range scan over candidates only;
//! * an **active index** so scans of in-use knodes skip the (typically
//!   much larger) inactive population;
//! * a **cold index** of knodes past the policy's age threshold, in
//!   inode order — knodes enter when their stamp crosses the watermark
//!   (at most once per cold spell) and leave on touch/reactivation, so
//!   the per-tick demotion batch is read off the front in O(batch)
//!   instead of re-scanning and re-sorting every cold knode each tick.
//!
//! All knode mutation funnels through [`Kmap::with_knode_mut`] /
//! [`Kmap::with_knode_mut_at`], which repair the indexes when a mutation
//! changes the knode's activation state or inactivity stamp; no
//! `&mut Knode` ever escapes the kmap.

use std::cell::Cell;
use std::collections::BTreeSet;

use kloc_mem::Nanos;

use kloc_kernel::vfs::InodeId;

use crate::knode::Knode;

/// Sentinel in the dense inode index marking an unmapped inode.
const NO_SLOT: u32 = u32::MAX;

/// The global knode registry.
#[derive(Debug, Clone, Default)]
pub struct Kmap {
    /// Slot-addressed knode storage. Slots are stable for a knode's
    /// lifetime (freed and recycled only on unmap), so callers may
    /// cache them.
    slots: Vec<Option<Knode>>,
    /// Recycled slot numbers.
    free: Vec<u32>,
    /// Dense inode -> slot index ([`NO_SLOT`] = unmapped). Inode numbers
    /// are sequential VFS handles, so direct indexing replaces the
    /// ordered tree, and position-order iteration is inode order.
    index: Vec<u32>,
    /// Number of mapped knodes (occupied `index` entries).
    mapped: usize,
    /// Global aging epoch; one unit of knode age per advance.
    epoch: u64,
    /// Inactive knodes ordered by how long they have been inactive:
    /// `(inactive_stamp, inode)`, oldest first.
    inactive_idx: BTreeSet<(u64, InodeId)>,
    /// In-use knodes, in inode order.
    active_idx: BTreeSet<InodeId>,
    /// The age threshold the cold index below is maintained for —
    /// registered by the first [`Kmap::cold_inodes_with_members`] call.
    cold_threshold: Option<u32>,
    /// Stamps at or below this are cold (`epoch - cold_threshold` as of
    /// the last cold query).
    cold_watermark: u64,
    /// Inactive knodes whose stamp is at or below the watermark, in
    /// inode order. Maintained incrementally: a knode enters when its
    /// stamp crosses the watermark (at most once per cold spell) and
    /// leaves on touch/reactivation/unmap, so the per-tick cold query
    /// reads its batch straight off the front instead of re-scanning
    /// and re-sorting every cold knode each time.
    cold_idx: BTreeSet<InodeId>,
    /// Accesses that had to traverse the kmap tree (misses of the
    /// per-CPU fast path); feeds the §4.3 ablation.
    tree_accesses: u64,
    /// Diagnostic probe: knodes examined by bulk scans (iteration, LRU
    /// ranking, cold/active-set selection). Targeted per-inode lookups
    /// do not count. Not part of any report — tests use it to prove the
    /// hot paths stay scan-free.
    examined: Cell<u64>,
}

impl Kmap {
    /// Creates an empty kmap.
    pub fn new() -> Self {
        Kmap::default()
    }

    /// Number of registered knodes.
    pub fn len(&self) -> usize {
        self.mapped
    }

    /// Whether no knodes are registered.
    pub fn is_empty(&self) -> bool {
        self.mapped == 0
    }

    /// Slot mapped for `inode`, off one array probe.
    #[inline]
    fn index_get(&self, inode: InodeId) -> Option<u32> {
        match self.index.get(inode.0 as usize) {
            Some(&s) if s != NO_SLOT => Some(s),
            _ => None,
        }
    }

    /// Maps `inode` to `slot`, growing the table on first sight of a new
    /// inode number. Returns the previous slot, if any.
    fn index_insert(&mut self, inode: InodeId, slot: u32) -> Option<u32> {
        let i = inode.0 as usize;
        if i >= self.index.len() {
            self.index.resize(i + 1, NO_SLOT);
        }
        let prev = self.index[i];
        self.index[i] = slot;
        if prev == NO_SLOT {
            self.mapped += 1;
            None
        } else {
            Some(prev)
        }
    }

    /// Unmaps `inode`, returning its slot if it was mapped.
    fn index_remove(&mut self, inode: InodeId) -> Option<u32> {
        let entry = self.index.get_mut(inode.0 as usize)?;
        let prev = *entry;
        if prev == NO_SLOT {
            return None;
        }
        *entry = NO_SLOT;
        self.mapped -= 1;
        Some(prev)
    }

    /// Iterates `(inode, slot)` pairs of mapped knodes in inode order.
    fn index_iter(&self) -> impl Iterator<Item = (InodeId, u32)> + '_ {
        self.index
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != NO_SLOT)
            .map(|(i, &s)| (InodeId(i as u64), s))
    }

    /// Accesses that traversed the tree (per-CPU fast-path misses).
    pub fn tree_accesses(&self) -> u64 {
        self.tree_accesses
    }

    /// The current aging epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the aging epoch: every inactive knode is now one unit
    /// older. O(1) — ages derive lazily ([`Knode::age_at`]); nothing is
    /// walked.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Knodes examined by bulk scans so far (see the field doc).
    pub fn knodes_examined(&self) -> u64 {
        self.examined.get()
    }

    fn note_examined(&self, n: u64) {
        self.examined.set(self.examined.get() + n);
    }

    fn at(&self, slot: u32) -> &Knode {
        self.slots[slot as usize]
            .as_ref()
            .expect("index entry has knode") // lint: unwrap-ok — the index only stores occupied slots
    }

    /// Adds `inode` to the cold index if its stamp is already past the
    /// watermark (knodes usually cross it later, via the query's
    /// incremental pull).
    #[inline]
    fn cold_enter(&mut self, stamp: u64, inode: InodeId) {
        if self.cold_threshold.is_some() && stamp <= self.cold_watermark {
            self.cold_idx.insert(inode);
        }
    }

    /// Drops `inode` from the cold index if its (previous) stamp had it
    /// there.
    #[inline]
    fn cold_leave(&mut self, stamp: u64, inode: InodeId) {
        if self.cold_threshold.is_some() && stamp <= self.cold_watermark {
            self.cold_idx.remove(&inode);
        }
    }

    /// Registers a knode (`map_knode` / `add_to_kmap` in Table 2) and
    /// returns its storage slot — stable until the knode is unmapped,
    /// usable with [`Kmap::with_knode_mut_at`].
    ///
    /// # Panics
    /// Panics if the inode already has a knode.
    pub fn map_knode(&mut self, mut knode: Knode) -> u32 {
        let inode = knode.inode();
        // Re-base the age onto this kmap's epoch domain.
        knode.sync_age_at(self.epoch);
        let active = knode.inuse();
        let stamp = knode.inactive_stamp();
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(knode);
                s
            }
            None => {
                self.slots.push(Some(knode));
                // lint: unwrap-ok — slot count is bounded well below 2^32
                u32::try_from(self.slots.len() - 1).expect("fewer than 2^32 knodes")
            }
        };
        let prev = self.index_insert(inode, slot);
        assert!(prev.is_none(), "{inode} already has a knode");
        if active {
            self.active_idx.insert(inode);
        } else {
            self.inactive_idx.insert((stamp, inode));
            self.cold_enter(stamp, inode);
        }
        slot
    }

    /// Removes and returns the knode of `inode`.
    pub fn unmap(&mut self, inode: InodeId) -> Option<Knode> {
        let slot = self.index_remove(inode)?;
        let knode = self.slots[slot as usize]
            .take()
            .expect("index entry has knode"); // lint: unwrap-ok — the index only stores occupied slots
        self.free.push(slot);
        if knode.inuse() {
            self.active_idx.remove(&inode);
        } else {
            let stamp = knode.inactive_stamp();
            self.inactive_idx.remove(&(stamp, inode));
            self.cold_leave(stamp, inode);
        }
        Some(knode)
    }

    /// Storage slot of `inode`'s knode, for slot-addressed access.
    #[inline]
    pub fn slot_of(&self, inode: InodeId) -> Option<u32> {
        self.index_get(inode)
    }

    /// Looks up a knode without counting a tree access (bookkeeping
    /// paths).
    #[inline]
    pub fn get(&self, inode: InodeId) -> Option<&Knode> {
        self.index_get(inode).map(|slot| self.at(slot))
    }

    /// LRU age of `inode`'s knode at the current epoch.
    pub fn age_of(&self, inode: InodeId) -> Option<u32> {
        self.get(inode).map(|k| k.age_at(self.epoch))
    }

    /// Mutates `inode`'s knode through `f` (which also receives the
    /// current epoch), repairing the activation/inactivity indexes if
    /// the mutation changed them. This — and its slot-addressed twin
    /// [`Kmap::with_knode_mut_at`] — is the only mutable access to a
    /// knode, so the indexes cannot go stale. Does not count a tree
    /// access.
    pub fn with_knode_mut<R>(
        &mut self,
        inode: InodeId,
        f: impl FnOnce(&mut Knode, u64) -> R,
    ) -> Option<R> {
        let slot = self.index_get(inode)?;
        self.with_knode_mut_at(slot, f)
    }

    /// Mutates the knode in `slot` directly — the per-CPU fast-path hit
    /// route, which skips the inode index entirely. Index repair is
    /// identical to [`Kmap::with_knode_mut`]. Returns `None` for a free
    /// slot.
    pub fn with_knode_mut_at<R>(
        &mut self,
        slot: u32,
        f: impl FnOnce(&mut Knode, u64) -> R,
    ) -> Option<R> {
        let epoch = self.epoch;
        let knode = self.slots.get_mut(slot as usize)?.as_mut()?;
        let inode = knode.inode();
        let was_active = knode.inuse();
        let was_stamp = knode.inactive_stamp();
        let r = f(knode, epoch);
        let is_active = knode.inuse();
        let is_stamp = knode.inactive_stamp();
        if was_active != is_active {
            if was_active {
                self.active_idx.remove(&inode);
                self.inactive_idx.insert((is_stamp, inode));
                self.cold_enter(is_stamp, inode);
            } else {
                self.inactive_idx.remove(&(was_stamp, inode));
                self.cold_leave(was_stamp, inode);
                self.active_idx.insert(inode);
            }
        } else if !is_active && was_stamp != is_stamp {
            self.inactive_idx.remove(&(was_stamp, inode));
            self.cold_leave(was_stamp, inode);
            self.inactive_idx.insert((is_stamp, inode));
            self.cold_enter(is_stamp, inode);
        }
        Some(r)
    }

    /// Like [`Kmap::with_knode_mut`] but counts a tree traversal
    /// (whether or not the knode exists) — used when the per-CPU fast
    /// path missed.
    pub fn with_knode_mut_counted<R>(
        &mut self,
        inode: InodeId,
        f: impl FnOnce(&mut Knode, u64) -> R,
    ) -> Option<R> {
        self.tree_accesses += 1;
        self.with_knode_mut(inode, f)
    }

    /// Iterates all knodes in inode order.
    pub fn iter(&self) -> impl Iterator<Item = &Knode> {
        self.index_iter().map(|(_, slot)| {
            self.note_examined(1);
            self.at(slot)
        })
    }

    /// Iterates the in-use knodes in inode order, via the active index —
    /// cost is O(#active), independent of the inactive population.
    pub fn active_knodes(&self) -> impl Iterator<Item = &Knode> + '_ {
        self.active_idx.iter().map(|&inode| {
            self.note_examined(1);
            let slot = self.slot_of(inode).expect("active index entry has knode"); // lint: unwrap-ok — the active index tracks live knodes
            self.at(slot)
        })
    }

    /// Appends to `out` the first `max` inodes, in inode order, of
    /// inactive knodes with age >= `min_age` that still track members.
    ///
    /// Served from the incrementally maintained cold index: the call
    /// pulls in knodes whose stamps crossed the cold cutoff since the
    /// last query (each crosses at most once per cold spell), then
    /// reads the batch off the front — O(batch), independent of how
    /// many knodes are cold. Inode order is exactly what sorting the
    /// full candidate range and truncating to `max` used to produce.
    pub fn cold_inodes_with_members(&mut self, min_age: u32, max: usize, out: &mut Vec<InodeId>) {
        // A knode is cold iff its stamp <= epoch - min_age; nothing
        // qualifies while fewer than min_age epochs have elapsed.
        let Some(max_stamp) = self.epoch.checked_sub(u64::from(min_age)) else {
            return;
        };
        if self.cold_threshold != Some(min_age) {
            // First query (or a new threshold): build the index with one
            // range scan; it stays incremental from here on.
            self.cold_threshold = Some(min_age);
            self.cold_idx.clear();
            for &(_, inode) in self.inactive_idx.range(..=(max_stamp, InodeId(u64::MAX))) {
                self.cold_idx.insert(inode);
            }
        } else if max_stamp > self.cold_watermark {
            let lo = std::ops::Bound::Excluded((self.cold_watermark, InodeId(u64::MAX)));
            let hi = std::ops::Bound::Included((max_stamp, InodeId(u64::MAX)));
            for &(_, inode) in self.inactive_idx.range((lo, hi)) {
                self.cold_idx.insert(inode);
            }
        }
        self.cold_watermark = max_stamp;
        for &inode in &self.cold_idx {
            if out.len() == max {
                break;
            }
            self.note_examined(1);
            let slot = self.slot_of(inode).expect("index entry has knode"); // lint: unwrap-ok — the cold index tracks live knodes
            if self.at(slot).member_count() > 0 {
                out.push(inode);
            }
        }
    }

    /// Returns up to `n` LRU knode inodes (`get_LRU_knodes` in Table 2):
    /// inactive knodes first, oldest activity first, then the oldest
    /// active ones. Partial selection — O(knodes + n log n), not a full
    /// sort.
    pub fn lru_knodes(&self, n: usize) -> Vec<InodeId> {
        if n == 0 {
            return Vec::new();
        }
        self.note_examined(self.mapped as u64);
        // The tuple's derived order is exactly the ranking (the inode
        // tiebreak makes it total, matching the old stable sort over
        // inode-ordered iteration).
        let mut all: Vec<(bool, Nanos, InodeId)> = self
            .index_iter()
            .map(|(_, slot)| {
                let k = self.at(slot);
                (k.inuse(), k.last_active(), k.inode())
            })
            .collect();
        if n < all.len() {
            all.select_nth_unstable(n - 1);
            all.truncate(n);
        }
        all.sort_unstable();
        all.into_iter().map(|(_, _, inode)| inode).collect()
    }

    /// Inodes of all currently inactive knodes, oldest activity first.
    pub fn inactive_knodes(&self) -> Vec<InodeId> {
        let mut v: Vec<(Nanos, InodeId)> = self
            .inactive_idx
            .iter()
            .map(|&(_, inode)| {
                self.note_examined(1);
                let slot = self.slot_of(inode).expect("index entry has knode"); // lint: unwrap-ok — the inactive index tracks live knodes
                (self.at(slot).last_active(), inode)
            })
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, inode)| inode).collect()
    }
}

#[cfg(feature = "ksan")]
impl Kmap {
    /// Audits the kmap: the inode index against the slot storage, the
    /// free list, the global epoch against every knode's synced epoch,
    /// exact two-way membership of the activation indexes, and each
    /// knode's internal frame refcounts. Observation only — in
    /// particular the `examined` scan probe is never touched, so a run
    /// audited by ksan reports the same counters as an unaudited one.
    pub fn ksan_audit(&self, out: &mut Vec<kloc_mem::ksan::Violation>) {
        use kloc_mem::ksan::Violation;
        let occupied = self.slots.iter().filter(|s| s.is_some()).count();
        if occupied != self.mapped {
            out.push(Violation::new(
                "Kmap.index <-> Kmap.slots",
                "kmap",
                "the inode index covers exactly the occupied slots",
                format!("{occupied} occupied slots"),
                format!("{} index entries", self.mapped),
            ));
        }
        let dense_entries = self.index.iter().filter(|&&s| s != NO_SLOT).count();
        if dense_entries != self.mapped {
            out.push(Violation::new(
                "Kmap.mapped <-> Kmap.index",
                "kmap",
                "the mapped count tracks the occupied dense-index entries",
                format!("{dense_entries} occupied entries"),
                format!("mapped = {}", self.mapped),
            ));
        }
        if self.free.len() + self.mapped != self.slots.len() {
            out.push(Violation::new(
                "Kmap.free <-> Kmap.slots",
                "kmap",
                "free + mapped partition the slot space",
                format!("{} slots", self.slots.len()),
                format!("{} free + {} mapped", self.free.len(), self.mapped),
            ));
        }
        for (inode, slot) in self.index_iter() {
            let Some(knode) = self.slots.get(slot as usize).and_then(Option::as_ref) else {
                out.push(Violation::new(
                    "Kmap.index <-> Kmap.slots",
                    format!("{inode}"),
                    "every index entry names an occupied slot",
                    format!("knode in slot {slot}"),
                    "empty slot".to_owned(),
                ));
                continue;
            };
            if knode.inode() != inode {
                out.push(Violation::new(
                    "Kmap.index <-> Knode.inode",
                    format!("{inode}"),
                    "the indexed slot holds that inode's knode",
                    format!("{inode}"),
                    format!("{}", knode.inode()),
                ));
            }
            if knode.synced_epoch() > self.epoch {
                out.push(Violation::new(
                    "Kmap.epoch <-> Knode.synced_epoch",
                    format!("{inode}"),
                    "the global epoch never lags a knode's synced epoch",
                    format!("<= {}", self.epoch),
                    format!("synced_epoch = {}", knode.synced_epoch()),
                ));
            }
            let in_active = self.active_idx.contains(&inode);
            let in_inactive = self.inactive_idx.contains(&(knode.inactive_stamp(), inode));
            if knode.inuse() && (!in_active || in_inactive) {
                out.push(Violation::new(
                    "Knode.inuse <-> Kmap activation indexes",
                    format!("{inode}"),
                    "an in-use knode sits in the active index only",
                    "active index".to_owned(),
                    format!("active: {in_active}, inactive: {in_inactive}"),
                ));
            }
            if !knode.inuse() && (in_active || !in_inactive) {
                out.push(Violation::new(
                    "Knode.inuse <-> Kmap activation indexes",
                    format!("{inode}"),
                    "an inactive knode sits in the inactive index, keyed by its stamp",
                    format!("inactive index entry ({}, {inode})", knode.inactive_stamp()),
                    format!("active: {in_active}, inactive: {in_inactive}"),
                ));
            }
            knode.ksan_audit(out);
        }
        // Two-way membership of the cold index against the inactive
        // index and the registered watermark.
        if self.cold_threshold.is_some() {
            for &(stamp, inode) in &self.inactive_idx {
                let should = stamp <= self.cold_watermark;
                let has = self.cold_idx.contains(&inode);
                if should != has {
                    out.push(Violation::new(
                        "Kmap.cold_idx <-> Kmap.inactive_idx",
                        format!("{inode}"),
                        "the cold index holds exactly the inactive knodes at or past the watermark",
                        format!(
                            "stamp {stamp} vs watermark {}: cold = {should}",
                            self.cold_watermark
                        ),
                        format!("cold = {has}"),
                    ));
                }
            }
            for &inode in &self.cold_idx {
                let inactive = self
                    .index_get(inode)
                    .map(|s| !self.at(s).inuse())
                    .unwrap_or(false);
                if !inactive {
                    out.push(Violation::new(
                        "Kmap.cold_idx <-> Kmap.index",
                        format!("{inode}"),
                        "every cold index entry names a mapped, inactive knode",
                        "mapped inactive knode".to_owned(),
                        "missing or active".to_owned(),
                    ));
                }
            }
        }
        // Exact membership: with every knode accounted for above, equal
        // sizes rule out entries pointing at unmapped inodes.
        if self.active_idx.len() + self.inactive_idx.len() != self.mapped {
            out.push(Violation::new(
                "Kmap activation indexes <-> Kmap.index",
                "kmap",
                "the activation indexes partition the mapped knodes",
                format!("{} mapped knodes", self.index.len()),
                format!(
                    "{} active + {} inactive",
                    self.active_idx.len(),
                    self.inactive_idx.len()
                ),
            ));
        }
    }

    /// Corruption hook for sanitizer self-tests: drops the oldest
    /// inactive-index entry while its knode stays inactive.
    #[doc(hidden)]
    pub fn ksan_break_inactive_index(&mut self) {
        if let Some(&entry) = self.inactive_idx.iter().next() {
            self.inactive_idx.remove(&entry);
        }
    }

    /// Corruption hook for sanitizer self-tests: drops the first cold
    /// index entry (or plants a phantom one when the index is empty),
    /// desyncing it from the inactive index.
    #[doc(hidden)]
    pub fn ksan_break_cold_index(&mut self) {
        if let Some(&inode) = self.cold_idx.iter().next() {
            self.cold_idx.remove(&inode);
        } else {
            self.cold_threshold.get_or_insert(1);
            self.cold_idx.insert(InodeId(u64::MAX - 1));
        }
    }

    /// Corruption hook for sanitizer self-tests: stamps the first mapped
    /// knode's synced epoch into the future, bypassing index repair.
    #[doc(hidden)]
    pub fn ksan_break_epoch(&mut self) {
        let epoch = self.epoch + 10;
        let first = self.index_iter().next();
        if let Some((_, slot)) = first {
            if let Some(knode) = self.slots[slot as usize].as_mut() {
                knode.ksan_force_synced_epoch(epoch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::CpuId;
    use kloc_mem::Nanos;

    fn knode_at(ino: u64, t: u64, inuse: bool) -> Knode {
        let mut k = Knode::new(InodeId(ino), Nanos::from_micros(t));
        k.set_inuse_at(inuse, 0);
        k
    }

    #[test]
    fn map_and_unmap() {
        let mut m = Kmap::new();
        m.map_knode(knode_at(1, 0, true));
        assert_eq!(m.len(), 1);
        assert!(m.get(InodeId(1)).is_some());
        let k = m.unmap(InodeId(1)).unwrap();
        assert_eq!(k.inode(), InodeId(1));
        assert!(m.is_empty());
        assert!(m.unmap(InodeId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "already has a knode")]
    fn double_map_panics() {
        let mut m = Kmap::new();
        m.map_knode(knode_at(1, 0, true));
        m.map_knode(knode_at(1, 0, true));
    }

    #[test]
    fn slots_are_stable_and_recycled() {
        let mut m = Kmap::new();
        let s1 = m.map_knode(knode_at(1, 0, true));
        let s2 = m.map_knode(knode_at(2, 0, true));
        assert_ne!(s1, s2);
        assert_eq!(m.slot_of(InodeId(1)), Some(s1));
        // Slot-addressed mutation reaches the same knode.
        let ino = m.with_knode_mut_at(s2, |k, _| k.inode()).unwrap();
        assert_eq!(ino, InodeId(2));
        // Unmapping frees the slot for the next knode.
        m.unmap(InodeId(1)).unwrap();
        assert!(m.with_knode_mut_at(s1, |_, _| ()).is_none());
        let s3 = m.map_knode(knode_at(3, 0, true));
        assert_eq!(s3, s1, "freed slot recycled");
    }

    #[test]
    fn lru_prefers_inactive_then_oldest() {
        let mut m = Kmap::new();
        m.map_knode(knode_at(1, 30, true)); // active, old
        m.map_knode(knode_at(2, 20, false)); // inactive, newer
        m.map_knode(knode_at(3, 10, false)); // inactive, oldest
        assert_eq!(m.lru_knodes(3), vec![InodeId(3), InodeId(2), InodeId(1)]);
        assert_eq!(m.lru_knodes(2), vec![InodeId(3), InodeId(2)]);
        assert_eq!(m.lru_knodes(1), vec![InodeId(3)]);
        assert!(m.lru_knodes(0).is_empty());
        assert_eq!(m.inactive_knodes(), vec![InodeId(3), InodeId(2)]);
    }

    #[test]
    fn counted_mutation_tracks_tree_accesses() {
        let mut m = Kmap::new();
        let slot = m.map_knode(knode_at(1, 0, true));
        assert!(m.with_knode_mut_counted(InodeId(1), |_, _| ()).is_some());
        assert!(m.with_knode_mut_counted(InodeId(2), |_, _| ()).is_none());
        assert_eq!(m.tree_accesses(), 2);
        // Uncounted paths do not count — in particular the slot-addressed
        // fast path, which is the point of remembering slots.
        m.get(InodeId(1));
        m.with_knode_mut(InodeId(1), |_, _| ());
        m.with_knode_mut_at(slot, |_, _| ());
        assert_eq!(m.tree_accesses(), 2);
    }

    #[test]
    fn epoch_advance_ages_inactive_knodes_only() {
        let mut m = Kmap::new();
        m.map_knode(knode_at(1, 0, true));
        m.map_knode(knode_at(2, 0, false));
        for _ in 0..3 {
            m.advance_epoch();
        }
        assert_eq!(m.age_of(InodeId(1)), Some(0));
        assert_eq!(m.age_of(InodeId(2)), Some(3));
        assert_eq!(m.age_of(InodeId(9)), None);
    }

    #[test]
    fn indexes_follow_state_transitions() {
        let mut m = Kmap::new();
        let slot = m.map_knode(knode_at(1, 0, true));
        assert_eq!(m.active_knodes().count(), 1);
        // Deactivate at epoch 2, then age 5 more epochs.
        m.advance_epoch();
        m.advance_epoch();
        m.with_knode_mut(InodeId(1), |k, ep| k.set_inuse_at(false, ep));
        for _ in 0..5 {
            m.advance_epoch();
        }
        assert_eq!(m.active_knodes().count(), 0);
        assert_eq!(m.age_of(InodeId(1)), Some(5));
        assert_eq!(m.inactive_knodes(), vec![InodeId(1)]);
        // A touch while inactive re-stamps the index entry — also via
        // the slot-addressed route.
        m.with_knode_mut_at(slot, |k, ep| {
            k.touch_at(CpuId(0), Nanos::from_micros(9), ep);
        });
        assert_eq!(m.age_of(InodeId(1)), Some(0));
        // Reactivation moves it back to the active index.
        m.with_knode_mut_at(slot, |k, ep| k.set_inuse_at(true, ep));
        assert_eq!(m.active_knodes().count(), 1);
        assert!(m.inactive_knodes().is_empty());
    }

    #[test]
    fn cold_selection_scans_candidates_only() {
        let mut m = Kmap::new();
        // Three inactive knodes; only 1 and 2 have members; 3 is old but
        // empty; 4 is recent; 5 is active.
        for ino in 1..=4 {
            let mut k = knode_at(ino, 0, false);
            if ino != 3 {
                k.add_obj(
                    kloc_kernel::ObjectId(ino),
                    kloc_kernel::KernelObjectType::PageCache,
                    kloc_mem::FrameId(ino),
                );
            }
            m.map_knode(k);
        }
        m.map_knode(knode_at(5, 0, true));
        for _ in 0..10 {
            m.advance_epoch();
        }
        // Re-stamp 4 at the current epoch (age 0).
        m.with_knode_mut(InodeId(4), |k, ep| {
            k.touch_at(CpuId(0), Nanos::from_micros(1), ep);
        });
        let mut cold = Vec::new();
        m.cold_inodes_with_members(5, usize::MAX, &mut cold);
        assert_eq!(cold, vec![InodeId(1), InodeId(2)]);
        // The cold-index read examined the three old entries, not knode
        // 4 or the active knode 5.
        let before = m.knodes_examined();
        let mut again = Vec::new();
        m.cold_inodes_with_members(5, usize::MAX, &mut again);
        assert_eq!(m.knodes_examined() - before, 3);
        // The batch limit stops the read early: one candidate wanted,
        // one entry examined.
        let before = m.knodes_examined();
        let mut one = Vec::new();
        m.cold_inodes_with_members(5, 1, &mut one);
        assert_eq!(one, vec![InodeId(1)]);
        assert_eq!(m.knodes_examined() - before, 1);
        // A touch while cold drops the knode from the cold index.
        m.with_knode_mut(InodeId(1), |k, ep| {
            k.touch_at(CpuId(0), Nanos::from_micros(2), ep);
        });
        let mut after_touch = Vec::new();
        m.cold_inodes_with_members(5, usize::MAX, &mut after_touch);
        assert_eq!(after_touch, vec![InodeId(2)]);
        // Nothing qualifies before enough epochs have elapsed.
        let mut none = Vec::new();
        m.cold_inodes_with_members(11, usize::MAX, &mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn advance_epoch_examines_no_knodes() {
        let mut m = Kmap::new();
        for ino in 1..50 {
            m.map_knode(knode_at(ino, 0, ino % 2 == 0));
        }
        let before = m.knodes_examined();
        for _ in 0..100 {
            m.advance_epoch();
        }
        assert_eq!(m.knodes_examined(), before, "aging must not walk the kmap");
    }
}
