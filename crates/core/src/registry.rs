//! The KLOC registry: event engine + en-masse migration mechanism.
//!
//! [`KlocRegistry`] is the machinery the paper adds to the kernel: it
//! reacts to inode/object lifecycle events (forwarded by a policy that
//! implements `kloc_kernel::hooks::KernelHooks`), maintains the kmap,
//! knodes, and per-CPU fast paths, and offers the headline mechanism —
//! migrate *all* kernel objects of a cold knode in one shot, rather than
//! discovering them via LRU scans slower than the objects' lifetimes
//! (§3.3, §4.4).
//!
//! Bookkeeping is event-driven, as the paper claims for the real
//! implementation (§4.3): [`KlocRegistry::age_epoch`] advances two
//! counters instead of walking every knode. The migration paths walk
//! each knode's incrementally refcounted member-frame set in place via
//! the knode's cached sorted view (ascending full `FrameId`, since the
//! en-masse migration order is report-visible) — the per-touch paths
//! never pay for that ordering, and the walks copy nothing.

use std::collections::BTreeSet;

use kloc_mem::{FrameId, MemorySystem, Nanos, PageKind, TenantId, TierId};

use kloc_kernel::hooks::CpuId;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{KernelObjectType, ObjectId, ObjectInfo};

use crate::kmap::Kmap;
use crate::knode::Knode;
use crate::percpu::PerCpuKnodeLists;

/// Configuration of the KLOC subsystem (the `sys_enable_kloc` /
/// `sys_kloc_memsize` administrative surface of paper Table 2).
#[derive(Debug, Clone)]
pub struct KlocConfig {
    /// Master switch (`sys_enable_kloc`).
    pub enabled: bool,
    /// Number of per-CPU fast-path lists.
    pub cpus: usize,
    /// Capacity of each per-CPU list.
    pub percpu_capacity: usize,
    /// Object types included in KLOC management (paper Fig. 5c ablates
    /// this set). Excluded types are not tracked in knodes.
    pub included: BTreeSet<KernelObjectType>,
    /// Optional cap on fast-memory frames KLOC-managed objects may use
    /// (`sys_kloc_memsize`).
    pub fast_budget_frames: Option<u64>,
    /// Whether the per-CPU fast path is used (ablation of §4.3).
    pub use_percpu: bool,
    /// Skip demoting frames that already migrated at least this many
    /// times (the paper's 8-bit anti-ping-pong counter, §4.5).
    pub max_migrations: u8,
}

impl Default for KlocConfig {
    fn default() -> Self {
        KlocConfig {
            enabled: true,
            cpus: 4,
            percpu_capacity: 8,
            included: KernelObjectType::ALL.into_iter().collect(),
            fast_budget_frames: None,
            use_percpu: true,
            max_migrations: 4,
        }
    }
}

/// Counters describing KLOC activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KlocStats {
    /// Knodes created.
    pub knodes_created: u64,
    /// Knodes destroyed.
    pub knodes_destroyed: u64,
    /// Objects added to knodes.
    pub objects_tracked: u64,
    /// Objects removed from knodes.
    pub objects_untracked: u64,
    /// En-masse demotions performed (knodes).
    pub knode_demotions: u64,
    /// Pages moved to slow memory by demotions.
    pub pages_demoted: u64,
    /// En-masse promotions performed (knodes).
    pub knode_promotions: u64,
    /// Pages moved to fast memory by promotions.
    pub pages_promoted: u64,
    /// Demotions skipped by the anti-ping-pong counter.
    pub pingpong_skips: u64,
}

/// The KLOC engine.
#[derive(Debug)]
pub struct KlocRegistry {
    config: KlocConfig,
    kmap: Kmap,
    percpu: PerCpuKnodeLists,
    stats: KlocStats,
    /// Bumped on every promotion event — by the registry's own walks
    /// and by [`KlocRegistry::note_external_promotions`]. Keys the knode
    /// demotion memoizations: any promotion can hand fast-tier
    /// residency to a frame shared with *other* knodes (slab pages), so
    /// a per-knode invalidation would be unsound.
    promotion_epoch: u64,
    /// Count of foreign demotions; with `promotion_epoch` it keys the
    /// en-masse settled cache, whose ping-pong charge a foreign tier
    /// change can alter. (The registry's own demotions never touch
    /// frames a settled walk could still move, so they don't key it.)
    extern_demotions: u64,
    /// Knode owner tenants, dense by inode id (inode ids are sequential
    /// and never reused). Kept outside [`KlocStats`] so single-tenant
    /// reports are unchanged.
    owners: Vec<TenantId>,
    /// Per-tenant count of knode accesses that crossed a tenant
    /// boundary (accessor != knode owner), dense by the *accessor's*
    /// [`TenantId::index`] — the shared-inode / shared-socket
    /// attribution signal of the multi-tenant model.
    shared_accesses: Vec<u64>,
}

impl KlocRegistry {
    /// Creates a registry with the given configuration.
    pub fn new(config: KlocConfig) -> Self {
        let percpu = PerCpuKnodeLists::new(config.cpus.max(1), config.percpu_capacity.max(1));
        KlocRegistry {
            percpu,
            kmap: Kmap::new(),
            stats: KlocStats::default(),
            promotion_epoch: 0,
            extern_demotions: 0,
            owners: Vec::new(),
            shared_accesses: Vec::new(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &KlocConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> &KlocStats {
        &self.stats
    }

    /// The global kmap.
    pub fn kmap(&self) -> &Kmap {
        &self.kmap
    }

    /// The per-CPU fast-path lists.
    pub fn percpu(&self) -> &PerCpuKnodeLists {
        &self.percpu
    }

    /// Whether `ty` participates in KLOC management.
    pub fn includes(&self, ty: KernelObjectType) -> bool {
        self.config.included.contains(&ty)
    }

    // ------------------------------------------------------------------
    // Event reactions (forwarded from KernelHooks by the policy)
    // ------------------------------------------------------------------

    /// Inode created: allocate its knode (the paper binds knode lifetime
    /// to inode lifetime, §4.2.2).
    pub fn inode_created(&mut self, inode: InodeId, cpu: CpuId, now: Nanos) {
        if !self.config.enabled {
            return;
        }
        let mut k = Knode::new(inode, now);
        k.touch_at(cpu, now, self.kmap.epoch());
        let slot = self.kmap.map_knode(k);
        if self.config.use_percpu {
            self.percpu.touch(cpu, inode, slot);
        }
        self.stats.knodes_created += 1;
        emit_knode_state(inode, now, "created");
    }

    /// [`KlocRegistry::inode_created`] with an explicit owner tenant:
    /// the creating tenant becomes the knode's owner for shared-access
    /// attribution. The tenant-less variant owns to
    /// [`TenantId::DEFAULT`].
    pub fn inode_created_by(&mut self, inode: InodeId, cpu: CpuId, tenant: TenantId, now: Nanos) {
        if self.config.enabled && tenant != TenantId::DEFAULT {
            let i = inode.0 as usize;
            if i >= self.owners.len() {
                self.owners.resize(i + 1, TenantId::DEFAULT);
            }
            self.owners[i] = tenant;
        }
        self.inode_created(inode, cpu, now);
    }

    /// The owner tenant of `inode`'s knode ([`TenantId::DEFAULT`] when
    /// it was created without one).
    pub fn knode_owner(&self, inode: InodeId) -> TenantId {
        self.owners
            .get(inode.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Knode accesses by `tenant` that touched another tenant's knode
    /// (shared files and shared sockets).
    pub fn shared_accesses_of(&self, tenant: TenantId) -> u64 {
        self.shared_accesses
            .get(tenant.index())
            .copied()
            .unwrap_or(0)
    }

    /// Inode (re)opened: mark the knode active.
    pub fn inode_opened(&mut self, inode: InodeId, cpu: CpuId, now: Nanos) {
        let Some(slot) = self.kmap.slot_of(inode) else {
            return;
        };
        let was_inuse = self.kmap.with_knode_mut_at(slot, |k, epoch| {
            let was = k.inuse();
            k.set_inuse_at(true, epoch);
            k.touch_at(cpu, now, epoch);
            was
        });
        if was_inuse == Some(false) {
            emit_knode_state(inode, now, "active");
        }
        if self.config.enabled && self.config.use_percpu {
            self.percpu.touch(cpu, inode, slot);
        }
    }

    /// Last handle closed: the knode is now inactive — the "definitely
    /// cold" signal (§3.2). It starts aging from this epoch.
    pub fn inode_closed(&mut self, inode: InodeId, now: Nanos) {
        let was_inuse = self.kmap.with_knode_mut(inode, |k, epoch| {
            let was = k.inuse();
            k.set_inuse_at(false, epoch);
            was
        });
        if was_inuse == Some(true) {
            emit_knode_state(inode, now, "inactive");
        }
    }

    /// Inode destroyed: tear the knode down (objects are *freed*, not
    /// migrated, §3.2).
    pub fn inode_destroyed(&mut self, inode: InodeId, now: Nanos) {
        if self.kmap.unmap(inode).is_some() {
            self.stats.knodes_destroyed += 1;
            emit_knode_state(inode, now, "destroyed");
        }
        self.percpu.purge(inode);
    }

    /// Object allocated: add it to its inode's knode (when the type is
    /// included), going through the per-CPU fast path.
    pub fn object_allocated(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        frame: FrameId,
        cpu: CpuId,
        now: Nanos,
    ) {
        if !self.config.enabled || !self.includes(info.ty) {
            return;
        }
        let Some(inode) = info.inode else { return };
        if self.knode_event(cpu, inode, |k, epoch| {
            k.add_obj(obj, info.ty, frame);
            k.touch_at(cpu, now, epoch);
        }) {
            self.stats.objects_tracked += 1;
            kloc_trace::with_counters(|c| c.member_adds += 1);
        }
    }

    /// Late socket association (ingress without early demux): identical
    /// to allocation tracking but arriving from the TCP layer.
    pub fn object_associated(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        frame: FrameId,
        cpu: CpuId,
        now: Nanos,
    ) {
        self.object_allocated(obj, info, frame, cpu, now);
    }

    /// Object freed: drop it from its knode.
    pub fn object_freed(&mut self, obj: ObjectId, info: &ObjectInfo) {
        let Some(inode) = info.inode else { return };
        if self
            .kmap
            .with_knode_mut(inode, |k, _| k.remove_obj(obj))
            .unwrap_or(false)
        {
            self.stats.objects_untracked += 1;
            kloc_trace::with_counters(|c| c.member_dels += 1);
        }
    }

    /// Object accessed: refresh its knode's recency via the fast path.
    pub fn object_accessed(&mut self, info: &ObjectInfo, cpu: CpuId, now: Nanos) {
        if !self.config.enabled || !self.includes(info.ty) {
            return;
        }
        let Some(inode) = info.inode else { return };
        self.knode_event(cpu, inode, |k, epoch| k.touch_at(cpu, now, epoch));
    }

    /// [`KlocRegistry::object_accessed`] with the accessing tenant: when
    /// the accessor differs from the knode's owner, the access is
    /// counted as shared (cross-tenant) against the accessor.
    pub fn object_accessed_by(
        &mut self,
        info: &ObjectInfo,
        cpu: CpuId,
        tenant: TenantId,
        now: Nanos,
    ) {
        if self.config.enabled && self.includes(info.ty) {
            if let Some(inode) = info.inode {
                if self.knode_owner(inode) != tenant {
                    let i = tenant.index();
                    if i >= self.shared_accesses.len() {
                        self.shared_accesses.resize(i + 1, 0);
                    }
                    self.shared_accesses[i] += 1;
                }
            }
        }
        self.object_accessed(info, cpu, now);
    }

    /// Hot-path knode mutation: per-CPU list first, then a counted kmap
    /// traversal on miss (this split is what the §4.3 ablation measures).
    /// A hit carries the knode's storage slot, so the mutation is one
    /// array access — the kmap tree is never walked. Returns whether the
    /// knode exists.
    fn knode_event(&mut self, cpu: CpuId, inode: InodeId, f: impl FnOnce(&mut Knode, u64)) -> bool {
        if self.config.use_percpu {
            if let Some(slot) = self.percpu.lookup(cpu, inode) {
                return self.kmap.with_knode_mut_at(slot, f).is_some();
            }
            let found = self.kmap.with_knode_mut_counted(inode, f).is_some();
            if found {
                let slot = self.kmap.slot_of(inode).expect("knode just mutated"); // lint: unwrap-ok — with_knode_mut_counted found the knode
                self.percpu.touch(cpu, inode, slot);
            }
            found
        } else {
            self.kmap.with_knode_mut_counted(inode, f).is_some()
        }
    }

    // ------------------------------------------------------------------
    // Policy queries + migration mechanism
    // ------------------------------------------------------------------

    /// Whether the inode's knode is currently in use. `None` when no
    /// knode exists.
    pub fn is_active(&self, inode: InodeId) -> Option<bool> {
        self.kmap.get(inode).map(Knode::inuse)
    }

    /// Inactive knodes whose last activity is older than `min_idle`
    /// before `now`, oldest first.
    pub fn cold_knodes(&self, now: Nanos, min_idle: Nanos) -> Vec<InodeId> {
        self.kmap
            .inactive_knodes()
            .into_iter()
            .filter(|i| {
                self.kmap
                    .get(*i)
                    .map(|k| now.saturating_sub(k.last_active()) >= min_idle)
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Appends to `out` the first `max` inodes, in inode order, of
    /// inactive knodes aged at least `min_age` that still track members
    /// — the per-tick demotion batch, read off the kmap's incrementally
    /// maintained cold index in O(batch).
    pub fn cold_member_candidates(&mut self, min_age: u32, max: usize, out: &mut Vec<InodeId>) {
        self.kmap.cold_inodes_with_members(min_age, max, out);
    }

    /// Ages all knodes and per-CPU entries by one scan epoch (§4.3: age
    /// increments when the LRU policy scans without evicting). O(1) —
    /// both structures age lazily off a shared counter; nothing is
    /// walked.
    pub fn age_epoch(&mut self) {
        self.kmap.advance_epoch();
        self.percpu.age_all();
    }

    /// Records that frames were promoted to fast memory by something
    /// other than this registry's migration walks (a page-granular scan
    /// policy, a test driving the memory system directly). Required for
    /// correctness whenever member frames can change tier outside
    /// [`KlocRegistry::migrate_knode`] /
    /// [`KlocRegistry::promote_hot_members`] — it invalidates the
    /// demotion-walk memoizations, which otherwise assume they see
    /// every route into fast memory.
    pub fn note_external_promotions(&mut self) {
        self.promotion_epoch += 1;
    }

    /// Records foreign demotions (see
    /// [`KlocRegistry::note_external_promotions`]); these can change the
    /// ping-pong charge a settled en-masse walk memoized.
    pub fn note_external_demotions(&mut self) {
        self.extern_demotions += 1;
    }

    /// Migrates every member frame of `inode`'s knode to `to` — the
    /// en-masse mechanism (paper §4.4). Pinned frames and frames that
    /// exceeded the anti-ping-pong counter are skipped. Returns pages
    /// moved.
    pub fn migrate_knode(&mut self, inode: InodeId, mem: &mut MemorySystem, to: TierId) -> u64 {
        self.migrate_knode_inner(inode, mem, to, u64::MAX).1
    }

    /// Like [`KlocRegistry::migrate_knode`] but moves at most
    /// `max_pages` (partial promotion into limited fast-memory room).
    pub fn migrate_knode_limited(
        &mut self,
        inode: InodeId,
        mem: &mut MemorySystem,
        to: TierId,
        max_pages: u64,
    ) -> u64 {
        self.migrate_knode_inner(inode, mem, to, max_pages).1
    }

    /// En-masse demotion fused with staging accounting: returns
    /// `(member frames staged, pages moved)` off a single knode lookup,
    /// so the per-tick demote loop doesn't pay two index searches per
    /// candidate (staging size, then the walk).
    pub fn demote_knode_staged(&mut self, inode: InodeId, mem: &mut MemorySystem) -> (u64, u64) {
        self.migrate_knode_inner(inode, mem, TierId::SLOW, u64::MAX)
    }

    fn migrate_knode_inner(
        &mut self,
        inode: InodeId,
        mem: &mut MemorySystem,
        to: TierId,
        max_pages: u64,
    ) -> (u64, u64) {
        let Some(k) = self.kmap.get(inode) else {
            return (0, 0);
        };
        let staged = k.member_frame_count() as u64;
        let demoting = to != TierId::FAST;
        let epoch = self.promotion_epoch + self.extern_demotions;
        if demoting {
            // A settled walk left nothing movable toward `to`; a repeat
            // walk charges exactly the memoized ping-pong skips and
            // moves nothing, so answer it without re-probing frames.
            if let Some((cached_to, skips, cached_epoch)) = k.enmasse_cache() {
                if cached_to == to && cached_epoch == epoch {
                    self.stats.pingpong_skips += skips;
                    return (staged, 0);
                }
            }
        }
        let max_migrations = self.config.max_migrations;
        let mut pingpong_skips = 0;
        let mut moved = 0;
        let mut settled = true;
        let mut promoted_shared = false;
        k.with_member_frames(|frames| {
            for &frame in frames {
                if moved >= max_pages {
                    // Budget break: movable frames may remain.
                    settled = false;
                    break;
                }
                // Tier-only probe first: frames already on the target
                // tier (the bulk of a re-walked knode) cost one column
                // read, not the full meta materialization.
                match mem.tier_if_live(frame) {
                    Some(t) if t != to => {}
                    _ => continue,
                }
                let Some(f) = mem.frame_meta(frame) else {
                    continue;
                };
                if f.pinned {
                    continue;
                }
                if demoting && f.migrations >= max_migrations {
                    pingpong_skips += 1;
                    continue;
                }
                if mem.migrate(frame, to).is_ok() {
                    moved += 1;
                    promoted_shared |= !demoting && frame_is_shared(f.kind);
                } else {
                    // The frame stays movable; the walk is not settled.
                    settled = false;
                }
            }
        });
        if demoting && settled {
            k.set_enmasse_cache(to, pingpong_skips, epoch);
        } else if !demoting && moved > 0 {
            if promoted_shared {
                // Packed frames are shared with other knodes, so every
                // knode's demotion memoizations are stale.
                self.promotion_epoch += 1;
            } else {
                // Single-owner frames gained fast residency: only this
                // knode's memoizations are stale.
                k.clear_walk_caches();
            }
        }
        self.stats.pingpong_skips += pingpong_skips;
        if moved > 0 {
            if demoting {
                self.stats.knode_demotions += 1;
                self.stats.pages_demoted += moved;
            } else {
                self.stats.knode_promotions += 1;
                self.stats.pages_promoted += moved;
            }
            let dir = if demoting { "demote" } else { "promote" };
            self.emit_kloc_migrate(inode, mem, dir, "enmasse", moved);
        }
        (staged, moved)
    }

    /// Demotes member frames of `inode` that have not been accessed for
    /// `older_than` — the knode's "table of contents" makes this a direct
    /// walk over exactly the relevant frames, no page-table scan (§4.1).
    /// Used for partially-cold active knodes (an append-only log's old
    /// pages). Returns pages moved.
    pub fn demote_cold_members(
        &mut self,
        inode: InodeId,
        mem: &mut MemorySystem,
        older_than: Nanos,
        max_pages: u64,
    ) -> u64 {
        let Some(k) = self.kmap.get(inode) else {
            return 0;
        };
        let now = mem.now();
        let epoch = self.promotion_epoch;
        // Candidacy only arises by time passing (touches push it later,
        // demotions remove candidates), so a completed walk's bound on
        // the next movable instant short-circuits the common re-walk of
        // an all-hot knode.
        if let Some((key, bound, cached_epoch)) = k.demote_bound() {
            if key == older_than && cached_epoch == epoch && now < bound {
                return 0;
            }
        }
        let max_migrations = self.config.max_migrations;
        let mut moved = 0;
        let mut settled = true;
        let mut next_candidacy = u64::MAX;
        k.with_member_frames(|frames| {
            for &frame in frames {
                if moved >= max_pages {
                    settled = false;
                    break;
                }
                // Recency first: most members of an active knode were
                // touched within `older_than`, so the common reject
                // path reads one column. Folding too-recent frames into
                // the bound regardless of tier keeps it a (conservative)
                // lower bound on the next movable instant.
                let Some(last) = mem.last_access_if_live(frame) else {
                    continue;
                };
                if now.saturating_sub(last) < older_than {
                    next_candidacy =
                        next_candidacy.min(last.as_nanos().saturating_add(older_than.as_nanos()));
                    continue;
                }
                // Only fast-tier frames are demotion candidates.
                if mem.tier_if_live(frame) != Some(TierId::FAST) {
                    continue;
                }
                let Some(f) = mem.frame_meta(frame) else {
                    continue;
                };
                if f.pinned || f.migrations >= max_migrations {
                    continue;
                }
                if mem.migrate(frame, TierId::SLOW).is_ok() {
                    moved += 1;
                } else {
                    settled = false;
                }
            }
        });
        if settled {
            k.set_demote_bound(older_than, Nanos::new(next_candidacy), epoch);
        }
        if moved > 0 {
            self.stats.pages_demoted += moved;
            self.emit_kloc_migrate(inode, mem, "demote", "members", moved);
        }
        moved
    }

    /// Promotes member frames of `inode` that were accessed within
    /// `newer_than` but reside in slow memory — per-page hotness through
    /// the knode shortcut (the paper's slow-to-fast "retrieval" path,
    /// 4-12 % of migrations, §4.4). Returns pages moved.
    pub fn promote_hot_members(
        &mut self,
        inode: InodeId,
        mem: &mut MemorySystem,
        newer_than: Nanos,
        max_pages: u64,
    ) -> u64 {
        let Some(k) = self.kmap.get(inode) else {
            return 0;
        };
        let now = mem.now();
        let mut moved = 0;
        let mut promoted_shared = false;
        k.with_member_frames(|frames| {
            for &frame in frames {
                if moved >= max_pages {
                    break;
                }
                // Frames already fast (the bulk of a hot knode) are
                // rejected on the tier-only probe.
                match mem.tier_if_live(frame) {
                    Some(t) if t != TierId::FAST => {}
                    _ => continue,
                }
                let Some(f) = mem.frame_meta(frame) else {
                    continue;
                };
                if !f.pinned
                    && now.saturating_sub(f.last_access) <= newer_than
                    && mem.migrate(frame, TierId::FAST).is_ok()
                {
                    moved += 1;
                    promoted_shared |= frame_is_shared(f.kind);
                }
            }
        });
        if moved > 0 {
            if promoted_shared {
                // Packed frames are shared with other knodes: every
                // knode's demotion memoizations are stale.
                self.promotion_epoch += 1;
            } else {
                k.clear_walk_caches();
            }
            self.stats.pages_promoted += moved;
            self.emit_kloc_migrate(inode, mem, "promote", "members", moved);
        }
        moved
    }

    /// Emits a `kloc_migrate` decision event carrying the epoch evidence
    /// and the knode's post-move tier residency. The residency walk only
    /// happens inside the closure, i.e. when a trace recorder is active.
    fn emit_kloc_migrate(
        &self,
        inode: InodeId,
        mem: &MemorySystem,
        dir: &'static str,
        how: &'static str,
        moved: u64,
    ) {
        kloc_trace::emit(|| {
            let (mut fast, mut slow) = (0u64, 0u64);
            if let Some(k) = self.kmap.get(inode) {
                // Residency is a pair of sums — order-insensitive, so
                // the unordered frame-set walk is fine here.
                k.for_each_member_frame(|frame| {
                    if let Some(f) = mem.frame_meta(frame) {
                        if f.tier == TierId::FAST {
                            fast += 1;
                        } else {
                            slow += 1;
                        }
                    }
                });
            }
            kloc_trace::Event::KlocMigrate {
                t: mem.now().as_nanos(),
                ino: inode.0,
                dir: dir.to_owned(),
                how: how.to_owned(),
                epoch: self.kmap.epoch(),
                age: u64::from(self.kmap.age_of(inode).unwrap_or(0)),
                moved,
                fast,
                slow,
            }
        });
    }

    /// Frames backing all members of `inode`'s knode (deduplicated).
    pub fn member_frames(&self, inode: InodeId) -> Vec<FrameId> {
        self.kmap
            .get(inode)
            .map(Knode::member_frames)
            .unwrap_or_default()
    }

    /// Number of distinct frames backing members of `inode`'s knode —
    /// O(1), no collection.
    pub fn member_frame_count(&self, inode: InodeId) -> usize {
        self.kmap.get(inode).map_or(0, Knode::member_frame_count)
    }
}

/// Whether frames of this kind pack objects of several inodes (slab
/// caches pack by type, kvma arenas by inode shard), meaning a tier
/// change seen through one knode can affect another knode's members.
/// Page-backed kinds hold exactly one object, owned by one knode.
fn frame_is_shared(kind: PageKind) -> bool {
    matches!(kind, PageKind::Slab | PageKind::KernelVma)
}

/// Emits a `knode` lifecycle event (created/active/inactive/destroyed).
fn emit_knode_state(inode: InodeId, now: Nanos, state: &'static str) {
    kloc_trace::emit(|| kloc_trace::Event::Knode {
        t: now.as_nanos(),
        ino: inode.0,
        state: state.to_owned(),
    });
}

#[cfg(feature = "ksan")]
impl KlocRegistry {
    /// Audits the whole KLOC engine: the kmap's internal invariants plus
    /// every per-CPU fast-path entry against the kmap. Observation only.
    pub fn ksan_audit(&self, out: &mut Vec<kloc_mem::ksan::Violation>) {
        self.kmap.ksan_audit(out);
        self.percpu.ksan_audit(&self.kmap, out);
    }

    /// Corruption hooks for sanitizer self-tests, forwarded to the kmap.
    #[doc(hidden)]
    pub fn ksan_kmap_mut(&mut self) -> &mut Kmap {
        &mut self.kmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_mem::{PageKind, PAGE_SIZE};

    fn info(ty: KernelObjectType, ino: u64) -> ObjectInfo {
        ObjectInfo {
            ty,
            size: ty.size(),
            inode: Some(InodeId(ino)),
        }
    }

    #[test]
    fn lifecycle_creates_and_destroys_knodes() {
        let mut r = KlocRegistry::new(KlocConfig::default());
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        assert_eq!(r.kmap().len(), 1);
        assert_eq!(r.is_active(InodeId(1)), Some(true));
        r.inode_closed(InodeId(1), Nanos::ZERO);
        assert_eq!(r.is_active(InodeId(1)), Some(false));
        r.inode_destroyed(InodeId(1), Nanos::ZERO);
        assert_eq!(r.kmap().len(), 0);
        assert_eq!(r.stats().knodes_created, 1);
        assert_eq!(r.stats().knodes_destroyed, 1);
    }

    #[test]
    fn objects_tracked_and_untracked() {
        let mut r = KlocRegistry::new(KlocConfig::default());
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        let i = info(KernelObjectType::PageCache, 1);
        r.object_allocated(ObjectId(5), &i, FrameId(9), CpuId(0), Nanos::ZERO);
        assert_eq!(r.member_frames(InodeId(1)), vec![FrameId(9)]);
        assert_eq!(r.member_frame_count(InodeId(1)), 1);
        r.object_freed(ObjectId(5), &i);
        assert!(r.member_frames(InodeId(1)).is_empty());
        assert_eq!(r.member_frame_count(InodeId(1)), 0);
        assert_eq!(r.stats().objects_tracked, 1);
        assert_eq!(r.stats().objects_untracked, 1);
    }

    #[test]
    fn excluded_types_not_tracked() {
        let mut cfg = KlocConfig::default();
        cfg.included.remove(&KernelObjectType::SkBuff);
        let mut r = KlocRegistry::new(cfg);
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        r.object_allocated(
            ObjectId(5),
            &info(KernelObjectType::SkBuff, 1),
            FrameId(9),
            CpuId(0),
            Nanos::ZERO,
        );
        assert!(r.member_frames(InodeId(1)).is_empty());
    }

    #[test]
    fn disabled_registry_tracks_nothing() {
        let mut r = KlocRegistry::new(KlocConfig {
            enabled: false,
            ..KlocConfig::default()
        });
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        assert_eq!(r.kmap().len(), 0);
    }

    #[test]
    fn cold_knodes_respect_idle_threshold() {
        let mut r = KlocRegistry::new(KlocConfig::default());
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        r.inode_created(InodeId(2), CpuId(0), Nanos::from_millis(10));
        r.inode_closed(InodeId(1), Nanos::ZERO);
        r.inode_closed(InodeId(2), Nanos::ZERO);
        let now = Nanos::from_millis(11);
        // Only inode 1 has been idle >= 5ms.
        assert_eq!(r.cold_knodes(now, Nanos::from_millis(5)), vec![InodeId(1)]);
        // Reopening makes it hot again.
        r.inode_opened(InodeId(1), CpuId(0), now);
        assert!(
            r.cold_knodes(now, Nanos::ZERO).is_empty() || {
                // inode 2 is still inactive with 1ms idle; with zero threshold
                // it is cold.
                r.cold_knodes(now, Nanos::ZERO) == vec![InodeId(2)]
            }
        );
    }

    #[test]
    fn migrate_knode_moves_members_en_masse() {
        let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
        let mut r = KlocRegistry::new(KlocConfig::default());
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        // Three relocatable member pages + one pinned slab page.
        let mut frames = Vec::new();
        for i in 0..3u64 {
            let f = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
            r.object_allocated(
                ObjectId(i),
                &info(KernelObjectType::PageCache, 1),
                f,
                CpuId(0),
                Nanos::ZERO,
            );
            frames.push(f);
        }
        let pinned = mem.allocate(TierId::FAST, PageKind::Slab).unwrap();
        r.object_allocated(
            ObjectId(99),
            &info(KernelObjectType::Dentry, 1),
            pinned,
            CpuId(0),
            Nanos::ZERO,
        );

        let moved = r.migrate_knode(InodeId(1), &mut mem, TierId::SLOW);
        assert_eq!(moved, 3, "pinned page skipped");
        for f in &frames {
            assert_eq!(mem.tier_of(*f), TierId::SLOW);
        }
        assert_eq!(mem.tier_of(pinned), TierId::FAST);
        assert_eq!(r.stats().knode_demotions, 1);
        assert_eq!(r.stats().pages_demoted, 3);

        // Promote back.
        let back = r.migrate_knode(InodeId(1), &mut mem, TierId::FAST);
        assert_eq!(back, 3);
        assert_eq!(r.stats().pages_promoted, 3);
    }

    #[test]
    fn pingpong_guard_skips_hot_movers() {
        let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
        let mut r = KlocRegistry::new(KlocConfig {
            max_migrations: 2,
            ..KlocConfig::default()
        });
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        let f = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        r.object_allocated(
            ObjectId(1),
            &info(KernelObjectType::PageCache, 1),
            f,
            CpuId(0),
            Nanos::ZERO,
        );
        // Bounce twice: 2 migrations on the frame.
        r.migrate_knode(InodeId(1), &mut mem, TierId::SLOW);
        r.migrate_knode(InodeId(1), &mut mem, TierId::FAST);
        // Third demotion attempt is skipped by the guard.
        let moved = r.migrate_knode(InodeId(1), &mut mem, TierId::SLOW);
        assert_eq!(moved, 0);
        assert_eq!(r.stats().pingpong_skips, 1);
        assert_eq!(mem.tier_of(f), TierId::FAST, "page retained in fast memory");
    }

    #[test]
    fn fast_path_reduces_tree_accesses() {
        // With per-CPU lists, repeated accesses to the same knode hit the
        // fast path; without them, every access traverses the kmap. This
        // is the §4.3 ablation in miniature.
        let mk = |use_percpu: bool| {
            let mut r = KlocRegistry::new(KlocConfig {
                use_percpu,
                ..KlocConfig::default()
            });
            r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
            let i = info(KernelObjectType::PageCache, 1);
            for n in 0..100u64 {
                r.object_allocated(ObjectId(n), &i, FrameId(n), CpuId(0), Nanos::ZERO);
            }
            r.kmap().tree_accesses()
        };
        let with = mk(true);
        let without = mk(false);
        assert!(
            with * 2 < without,
            "fast path must cut tree accesses >50%: {with} vs {without}"
        );
    }

    #[test]
    fn age_epoch_only_ages_inactive() {
        let mut r = KlocRegistry::new(KlocConfig::default());
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        r.inode_created(InodeId(2), CpuId(0), Nanos::ZERO);
        r.inode_closed(InodeId(2), Nanos::ZERO);
        r.age_epoch();
        r.age_epoch();
        assert_eq!(r.kmap().age_of(InodeId(1)), Some(0));
        assert_eq!(r.kmap().age_of(InodeId(2)), Some(2));
    }

    #[test]
    fn age_epoch_walks_nothing() {
        let mut r = KlocRegistry::new(KlocConfig::default());
        for ino in 1..=200u64 {
            r.inode_created(InodeId(ino), CpuId(0), Nanos::ZERO);
            if ino % 2 == 0 {
                r.inode_closed(InodeId(ino), Nanos::ZERO);
            }
        }
        let before = r.kmap().knodes_examined();
        for _ in 0..1000 {
            r.age_epoch();
        }
        assert_eq!(
            r.kmap().knodes_examined(),
            before,
            "age_epoch must not iterate the kmap"
        );
        assert_eq!(r.kmap().age_of(InodeId(2)), Some(1000));
        assert_eq!(r.kmap().age_of(InodeId(1)), Some(0));
    }
}
