//! KLOC metadata memory accounting (paper Table 6, §5 "KLOC memory
//! usage").
//!
//! The paper reports <1 % memory increase, dominated by the 8-byte
//! red-black-tree pointer per tracked cache page and slab object
//! (~96 MB of RocksDB's 101 MB), plus per-CPU lists (<800 KB), a
//! migration tracking list (~1 MB), and a 64-byte KLOC structure per
//! open inode (<400 KB). This module computes the same breakdown from
//! live registry state.

use crate::registry::KlocRegistry;

/// Bytes per member-tree pointer (one per tracked object).
pub const BYTES_PER_MEMBER: u64 = 8;
/// Bytes per per-CPU list entry (inode id + age + links).
pub const BYTES_PER_PERCPU_ENTRY: u64 = 16;
/// Bytes per knode structure ("64 byte KLOC structure attached to each
/// open inode", §7.1).
pub const BYTES_PER_KNODE: u64 = 64;
/// Bytes per entry of the to-migrate list.
pub const BYTES_PER_MIGRATE_ENTRY: u64 = 16;

/// Breakdown of KLOC metadata memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OverheadReport {
    /// Member-tree pointers (`rb-cache` + `rb-slab`).
    pub member_pointers: u64,
    /// Per-CPU fast-path lists.
    pub percpu_lists: u64,
    /// Knode structures.
    pub knodes: u64,
    /// Migration tracking list (sized by the largest en-masse migration).
    pub migrate_list: u64,
}

impl OverheadReport {
    /// Total metadata bytes.
    pub fn total(&self) -> u64 {
        self.member_pointers + self.percpu_lists + self.knodes + self.migrate_list
    }

    /// Overhead as a fraction of `memory_bytes` of managed memory
    /// (the paper reports <1 % of fast-memory capacity).
    pub fn fraction_of(&self, memory_bytes: u64) -> f64 {
        if memory_bytes == 0 {
            0.0
        } else {
            self.total() as f64 / memory_bytes as f64
        }
    }
}

/// Computes the current metadata overhead of a registry.
///
/// `peak_migration_batch` is the largest number of pages staged for one
/// en-masse migration (the "list to track pages that need to migrate").
pub fn measure(registry: &KlocRegistry, peak_migration_batch: u64) -> OverheadReport {
    let tracked_members = registry
        .kmap()
        .iter()
        .map(|k| k.member_count() as u64)
        .sum::<u64>();
    OverheadReport {
        member_pointers: tracked_members * BYTES_PER_MEMBER,
        percpu_lists: registry.percpu().total_entries() as u64 * BYTES_PER_PERCPU_ENTRY,
        knodes: registry.kmap().len() as u64 * BYTES_PER_KNODE,
        migrate_list: peak_migration_batch * BYTES_PER_MIGRATE_ENTRY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::KlocConfig;
    use kloc_kernel::hooks::CpuId;
    use kloc_kernel::vfs::InodeId;
    use kloc_kernel::{KernelObjectType, ObjectId, ObjectInfo};
    use kloc_mem::{FrameId, Nanos};

    #[test]
    fn overhead_scales_with_tracked_objects() {
        let mut r = KlocRegistry::new(KlocConfig::default());
        r.inode_created(InodeId(1), CpuId(0), Nanos::ZERO);
        for n in 0..10u64 {
            r.object_allocated(
                ObjectId(n),
                &ObjectInfo {
                    ty: KernelObjectType::PageCache,
                    size: 4096,
                    inode: Some(InodeId(1)),
                },
                FrameId(n),
                CpuId(0),
                Nanos::ZERO,
            );
        }
        let rep = measure(&r, 4);
        assert_eq!(rep.member_pointers, 10 * BYTES_PER_MEMBER);
        assert_eq!(rep.knodes, BYTES_PER_KNODE);
        assert_eq!(rep.migrate_list, 4 * BYTES_PER_MIGRATE_ENTRY);
        assert!(rep.percpu_lists >= BYTES_PER_PERCPU_ENTRY);
        assert_eq!(
            rep.total(),
            rep.member_pointers + rep.percpu_lists + rep.knodes + rep.migrate_list
        );
    }

    #[test]
    fn fraction_is_small_for_realistic_ratios() {
        // 1M tracked objects over 8 GB of fast memory: ~8 MB of pointers,
        // i.e. ~0.1% — comfortably under the paper's <1% claim.
        let rep = OverheadReport {
            member_pointers: 1_000_000 * BYTES_PER_MEMBER,
            percpu_lists: 800 << 10,
            knodes: 400 << 10,
            migrate_list: 1 << 20,
        };
        assert!(rep.fraction_of(8 << 30) < 0.01);
        assert_eq!(rep.fraction_of(0), 0.0);
    }
}
