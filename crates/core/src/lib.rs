//! # kloc-core — the KLOC abstraction
//!
//! This crate is the paper's primary contribution: **kernel-level object
//! contexts**. A KLOC is the logical grouping of all kernel objects
//! associated with one OS entity (a file or socket inode). Grouping makes
//! cold-object identification O(1): when the OS learns an inode is cold
//! (e.g. its file was closed), the KLOC directly names every associated
//! object for en-masse migration — no page-table or LRU-list scans whose
//! latency exceeds kernel object lifetimes (paper §3.3).
//!
//! Mirroring paper Figs. 1 and 3(a):
//!
//! * [`Knode`] — per-inode "table of contents": two member tables
//!   (`rbtree-cache` for page-backed objects, `rbtree-slab` for
//!   slab-class objects, split to keep each small §4.2.3; dense
//!   open-addressed tables here, see [`members`]) plus `inuse` and
//!   `age` tracking.
//! * [`Kmap`] — the global registry of all knodes.
//! * [`PerCpuKnodeLists`] — the per-CPU fast-path cache of recently used
//!   knodes (§4.3; reduces rbtree accesses by ~54 % in the paper).
//! * [`KlocRegistry`] — the engine reacting to kernel events (via the
//!   hook methods its owner forwards) and providing en-masse member
//!   migration; this is what `kloc-policy`'s KLOC policies wrap.
//! * [`overhead`] — KLOC metadata memory accounting (paper Table 6).
//!
//! The Table 2 API surface maps onto this crate as follows:
//!
//! | Paper API | Here |
//! |---|---|
//! | `sys_enable_kloc()` | [`KlocRegistry::new`] / [`KlocConfig::enabled`] |
//! | `map_knode(knode, inode)` | [`Kmap::map_knode`] |
//! | `knode_add_obj(knode, obj)` | [`Knode::add_obj`] |
//! | `itr_knode_slab(knode)` | [`Knode::slab_members`] |
//! | `itr_knode_cache(knode)` | [`Knode::cache_members`] |
//! | `add_to_kmap(knode)` | [`Kmap::map_knode`] |
//! | `get_LRU_knodes(kmap)` | [`Kmap::lru_knodes`] |
//! | `find_cpu(knode)` | [`Knode::last_cpu`] |
//! | `sys_kloc_memsize(..)` | [`KlocConfig::fast_budget_frames`] |

#![warn(missing_docs)]

pub mod kmap;
pub mod knode;
pub mod members;
pub mod overhead;
pub mod percpu;
pub mod registry;

pub use kmap::Kmap;
pub use knode::Knode;
pub use overhead::OverheadReport;
pub use percpu::PerCpuKnodeLists;
pub use registry::{KlocConfig, KlocRegistry, KlocStats};
