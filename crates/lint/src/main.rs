//! CLI for the structural determinism lint: `cargo run -p kloc-lint`.
//!
//! With no arguments, lints every `.rs` file in the workspace (found by
//! walking up from the current directory to the `[workspace]` manifest)
//! plus every crate `Cargo.toml`. With path arguments, lints exactly
//! those files/directories — used by CI helpers and to demonstrate the
//! fixture diagnostics:
//!
//! ```text
//! cargo run -p kloc-lint -- crates/lint/tests/fixtures
//! cargo run -p kloc-lint -- --fix          # apply machine-applicable fixes
//! cargo run -p kloc-lint -- --explain KL006
//! ```
//!
//! Exit status: 0 when clean (or when `--fix` repaired everything),
//! 1 when any diagnostic fired (after fixes, under `--fix`), 2 on I/O
//! or usage errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use kloc_lint::{
    apply_fixes, explain, is_sim_crate_path, lint_source, lint_workspace, workspace_files,
    Diagnostic,
};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn lint_explicit(paths: &[String]) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for arg in paths {
        let path = Path::new(arg);
        let files = if path.is_dir() {
            // Explicit paths lint everything below them, fixtures included.
            let mut v = Vec::new();
            let mut stack = vec![path.to_path_buf()];
            while let Some(dir) = stack.pop() {
                let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .collect();
                entries.sort();
                for p in entries {
                    if p.is_dir() {
                        stack.push(p);
                    } else if p.extension().is_some_and(|e| e == "rs") {
                        v.push(p);
                    }
                }
            }
            v.sort();
            v
        } else {
            vec![path.to_path_buf()]
        };
        for file in files {
            let source = std::fs::read_to_string(&file)?;
            out.extend(lint_source(
                &file.display().to_string(),
                &source,
                is_sim_crate_path(&file),
            ));
        }
    }
    out.sort();
    Ok(out)
}

fn run() -> Result<ExitCode, std::io::Error> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(id) = args.get(pos + 1) else {
            eprintln!("kloc-lint: --explain needs a rule id (KL001..KL009)");
            return Ok(ExitCode::from(2));
        };
        return Ok(match explain::explain(id) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("kloc-lint: unknown rule `{id}` (known: KL001..KL009)");
                ExitCode::from(2)
            }
        });
    }

    let fix = if let Some(pos) = args.iter().position(|a| a == "--fix") {
        args.remove(pos);
        true
    } else {
        false
    };

    if !args.is_empty() {
        if fix {
            eprintln!("kloc-lint: --fix only works on the whole workspace (no path arguments)");
            return Ok(ExitCode::from(2));
        }
        let diags = lint_explicit(&args)?;
        return Ok(report(&diags, 0));
    }

    let Some(root) = find_workspace_root() else {
        eprintln!("kloc-lint: no [workspace] Cargo.toml found above the current directory");
        return Ok(ExitCode::from(2));
    };
    let mut diags = lint_workspace(&root)?;
    if fix {
        let fixable = diags.iter().filter(|d| d.suggestion.is_some()).count();
        if fixable > 0 {
            let changed = apply_fixes(&root, &diags)?;
            for file in &changed {
                eprintln!("kloc-lint: fixed {file}");
            }
            // Re-lint: remaining diagnostics (and any the fixes could
            // not address) determine the exit code.
            diags = lint_workspace(&root)?;
        }
    }
    let scanned = workspace_files(&root).map(|f| f.len()).unwrap_or(0);
    Ok(report(&diags, scanned))
}

fn report(diags: &[Diagnostic], scanned: usize) -> ExitCode {
    for d in diags {
        println!("{d}");
    }
    if diags.is_empty() {
        if scanned > 0 {
            eprintln!("kloc-lint: {scanned} files clean");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("kloc-lint: {} violation(s)", diags.len());
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("kloc-lint: {e}");
            ExitCode::from(2)
        }
    }
}
