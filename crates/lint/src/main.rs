//! CLI for the determinism lint: `cargo run -p kloc-lint`.
//!
//! With no arguments, lints every `.rs` file in the workspace (found by
//! walking up from the current directory to the `[workspace]` manifest).
//! With path arguments, lints exactly those files/directories — used by
//! CI helpers and to demonstrate the fixture diagnostics:
//!
//! ```text
//! cargo run -p kloc-lint -- crates/lint/tests/fixtures
//! ```
//!
//! Exit status: 0 when clean, 1 when any diagnostic fired, 2 on I/O
//! errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use kloc_lint::{is_sim_crate_path, lint_source, lint_workspace, workspace_files, Diagnostic};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn lint_explicit(paths: &[String]) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for arg in paths {
        let path = Path::new(arg);
        let files = if path.is_dir() {
            // Explicit paths lint everything below them, fixtures included.
            let mut v = Vec::new();
            let mut stack = vec![path.to_path_buf()];
            while let Some(dir) = stack.pop() {
                let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .collect();
                entries.sort();
                for p in entries {
                    if p.is_dir() {
                        stack.push(p);
                    } else if p.extension().is_some_and(|e| e == "rs") {
                        v.push(p);
                    }
                }
            }
            v.sort();
            v
        } else {
            vec![path.to_path_buf()]
        };
        for file in files {
            let source = std::fs::read_to_string(&file)?;
            out.extend(lint_source(
                &file.display().to_string(),
                &source,
                is_sim_crate_path(&file),
            ));
        }
    }
    out.sort();
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.is_empty() {
        let Some(root) = find_workspace_root() else {
            eprintln!("kloc-lint: no [workspace] Cargo.toml found above the current directory");
            return ExitCode::from(2);
        };
        lint_workspace(&root).map(|d| {
            let n = workspace_files(&root).map(|f| f.len()).unwrap_or(0);
            (d, n)
        })
    } else {
        lint_explicit(&args).map(|d| (d, 0))
    };
    match result {
        Ok((diags, scanned)) => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                if scanned > 0 {
                    eprintln!("kloc-lint: {scanned} files clean");
                }
                ExitCode::SUCCESS
            } else {
                eprintln!("kloc-lint: {} violation(s)", diags.len());
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("kloc-lint: {e}");
            ExitCode::from(2)
        }
    }
}
