//! KL007 — cfg feature hygiene.
//!
//! Two checks per crate:
//!
//! 1. every feature named in a `cfg`/`cfg_attr`/`cfg!` in the crate's
//!    sources must be declared in that crate's `Cargo.toml`
//!    `[features]` table — a typo'd or undeclared feature silently
//!    compiles the cfg'd code out of every build, exactly the failure
//!    mode the noop shims exist to prevent (machine-applicable fix:
//!    insert `name = []`);
//! 2. forwarding consistency: if crate C declares feature X and its
//!    path dependency D also declares X, C's X list must contain
//!    `"D/X"` — otherwise `cargo build -p C --features X` leaves D's
//!    half of the shim disabled and the two crates disagree about the
//!    feature (this is how the workspace keeps `--features trace` at
//!    the root meaning "trace everywhere").
//!
//! `Cargo.toml` is parsed by a purpose-built mini reader (sections,
//! `key = [ … ]` arrays possibly spanning lines, inline-table and
//! `.workspace = true` dependency forms) — the lint stays
//! dependency-free. A `# lint: feature-ok` comment on the feature's
//! line (or the line above) waives check 2; the source-side
//! `// lint: feature-ok` waives check 1.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::ParsedFile;
use crate::{Diagnostic, Suggestion, RULE_CFG_HYGIENE};

/// A parsed `Cargo.toml`, reduced to what KL007 needs.
pub(crate) struct Manifest {
    /// Workspace-relative path of the manifest.
    pub rel_path: String,
    /// `[package] name`, or "" for a virtual manifest.
    pub package_name: String,
    /// Feature name -> (1-based line of the declaration, entries).
    pub features: BTreeMap<String, (usize, Vec<String>)>,
    /// Byte offset just past the `[features]` header line, if present.
    pub features_insert: Option<usize>,
    /// Total byte length of the manifest text (append point).
    pub len: usize,
    /// Dependency keys from `[dependencies]`/`[dev-dependencies]`/
    /// `[build-dependencies]`.
    pub deps: BTreeSet<String>,
    /// Lines (1-based) covered by a `lint: feature-ok` waiver.
    pub feature_ok_lines: BTreeSet<usize>,
}

impl Manifest {
    pub(crate) fn parse(rel_path: &str, text: &str) -> Manifest {
        let mut m = Manifest {
            rel_path: rel_path.to_owned(),
            package_name: String::new(),
            features: BTreeMap::new(),
            features_insert: None,
            len: text.len(),
            deps: BTreeSet::new(),
            feature_ok_lines: BTreeSet::new(),
        };
        let mut section = String::new();
        let mut offset = 0usize;
        let mut pending: Option<(String, usize, String)> = None; // multi-line array
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line_len = raw.len() + 1; // newline
            let line = raw.trim();
            if let Some(pos) = raw.find("lint:") {
                if raw[pos + 5..].trim().starts_with("feature-ok") {
                    m.feature_ok_lines.insert(lineno);
                    m.feature_ok_lines.insert(lineno + 1);
                }
            }
            if let Some((name, decl_line, mut acc)) = pending.take() {
                acc.push_str(line);
                if line.contains(']') {
                    m.features
                        .insert(name, (decl_line, parse_string_array(&acc)));
                } else {
                    pending = Some((name, decl_line, acc));
                }
                offset += line_len;
                continue;
            }
            if line.starts_with('[') {
                section = line
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .to_owned();
                if section == "features" {
                    m.features_insert = Some((offset + line_len).min(text.len()));
                }
                offset += line_len;
                continue;
            }
            if let Some((key, value)) = split_kv(line) {
                match section.as_str() {
                    "package" if key == "name" => {
                        m.package_name = value.trim_matches('"').to_owned();
                    }
                    "features" => {
                        if value.contains('[') && !value.contains(']') {
                            pending = Some((key.to_owned(), lineno, value.to_owned()));
                        } else {
                            m.features
                                .insert(key.to_owned(), (lineno, parse_string_array(value)));
                        }
                    }
                    "dependencies" | "dev-dependencies" | "build-dependencies" => {
                        // `kloc-mem = { path = … }`, `serde.workspace = true`.
                        let dep = key.split('.').next().unwrap_or(key);
                        m.deps.insert(dep.to_owned());
                    }
                    _ => {
                        // `[dependencies.kloc-mem]`-style sections.
                        if let Some(dep) = section
                            .strip_prefix("dependencies.")
                            .or_else(|| section.strip_prefix("dev-dependencies."))
                        {
                            m.deps.insert(dep.to_owned());
                        }
                    }
                }
            }
            offset += line_len;
        }
        m
    }
}

fn split_kv(line: &str) -> Option<(&str, &str)> {
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let eq = line.find('=')?;
    let key = line[..eq].trim();
    let value = line[eq + 1..].trim();
    if key.is_empty() || key.contains(' ') {
        return None;
    }
    Some((key, value))
}

fn parse_string_array(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = value;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        out.push(tail[..close].to_owned());
        rest = &tail[close + 1..];
    }
    out
}

/// Runs both hygiene checks for one crate. `all` maps package name to
/// manifest for the whole workspace (for the forwarding check).
pub(crate) fn check_crate(
    manifest: &Manifest,
    files: &[(String, &ParsedFile)],
    all: &BTreeMap<String, Manifest>,
    allowed: &dyn Fn(&str, usize) -> bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Check 1: undeclared features referenced in cfg.
    let mut fixed: BTreeSet<String> = BTreeSet::new();
    for (path, pf) in files {
        for atom in pf.cfg_feature_refs() {
            if manifest.features.contains_key(&atom.feature) || allowed(path, atom.line) {
                continue;
            }
            let mut d = Diagnostic::new(
                path,
                atom.line,
                RULE_CFG_HYGIENE,
                format!(
                    "feature `{}` referenced in cfg but not declared in {}",
                    atom.feature, manifest.rel_path
                ),
            );
            d.notes.push(format!(
                "declare it under [features] in {} (or fix the name); an undeclared feature can never be enabled",
                manifest.rel_path
            ));
            // One insertion per feature per crate, or --fix would
            // append duplicate declarations.
            if fixed.insert(atom.feature.clone()) {
                let (start, replacement) = match manifest.features_insert {
                    Some(at) => (at, format!("{} = []\n", atom.feature)),
                    None => (
                        manifest.len,
                        format!("\n[features]\n{} = []\n", atom.feature),
                    ),
                };
                d.suggestion = Some(Suggestion {
                    file: manifest.rel_path.clone(),
                    start,
                    end: start,
                    replacement,
                });
            }
            out.push(d);
        }
    }

    // Check 2: declared features must be forwarded to path deps that
    // declare the same feature. `default` is exempt: cargo enables a
    // dependency's default features implicitly, so nothing to forward.
    for (feature, (line, entries)) in &manifest.features {
        if feature == "default" || manifest.feature_ok_lines.contains(line) {
            continue;
        }
        for dep in &manifest.deps {
            let Some(dep_manifest) = all.get(dep) else {
                continue;
            };
            if !dep_manifest.features.contains_key(feature) {
                continue;
            }
            let forward = format!("{dep}/{feature}");
            let forward_weak = format!("{dep}?/{feature}");
            if entries.iter().any(|e| e == &forward || e == &forward_weak) {
                continue;
            }
            let mut d = Diagnostic::new(
                &manifest.rel_path,
                *line,
                RULE_CFG_HYGIENE,
                format!(
                    "feature `{feature}` is not forwarded to dependency `{dep}` (add \"{forward}\")"
                ),
            );
            d.notes.push(format!(
                "`{dep}` declares `{feature}` in {}; without forwarding, enabling `{feature}` here leaves `{dep}`'s half disabled",
                dep_manifest.rel_path
            ));
            out.push(d);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"
[package]
name = "kloc-mem"

[features]
ksan = []
kfault = ["kloc-core/kfault"]

[dependencies]
kloc-core = { path = "../core" }
"#;

    fn parsed(src: &str) -> ParsedFile {
        ParsedFile::parse(src)
    }

    #[test]
    fn parses_manifest() {
        let m = Manifest::parse("crates/mem/Cargo.toml", MANIFEST);
        assert_eq!(m.package_name, "kloc-mem");
        assert!(m.features.contains_key("ksan"));
        assert_eq!(m.features["kfault"].1, vec!["kloc-core/kfault".to_owned()]);
        assert!(m.deps.contains("kloc-core"));
        assert!(m.features_insert.is_some());
    }

    #[test]
    fn parses_multiline_feature_array() {
        let text = "[features]\nksan = [\n  \"kloc-core/ksan\",\n  \"kloc-mem/ksan\",\n]\n";
        let m = Manifest::parse("Cargo.toml", text);
        assert_eq!(m.features["ksan"].1.len(), 2);
        assert_eq!(m.features["ksan"].0, 2);
    }

    #[test]
    fn undeclared_feature_is_flagged_with_insertion_fix() {
        let m = Manifest::parse("crates/mem/Cargo.toml", MANIFEST);
        let pf = parsed("#[cfg(feature = \"ksand\")]\npub fn f() {}\n");
        let files = vec![("crates/mem/src/lib.rs".to_owned(), &pf)];
        let d = check_crate(&m, &files, &BTreeMap::new(), &|_, _| false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("ksand"));
        let fix = d[0].suggestion.as_ref().expect("fix");
        assert_eq!(fix.file, "crates/mem/Cargo.toml");
        assert_eq!(fix.replacement, "ksand = []\n");
        assert_eq!(fix.start, fix.end);
    }

    #[test]
    fn declared_features_are_clean() {
        let m = Manifest::parse("crates/mem/Cargo.toml", MANIFEST);
        let pf = parsed("#[cfg(feature = \"ksan\")]\npub fn f() {}\n#[cfg(not(feature = \"kfault\"))]\npub fn g() {}\n");
        let files = vec![("crates/mem/src/lib.rs".to_owned(), &pf)];
        let d = check_crate(&m, &files, &BTreeMap::new(), &|_, _| false);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unforwarded_feature_is_flagged() {
        let dep = Manifest::parse(
            "crates/core/Cargo.toml",
            "[package]\nname = \"kloc-core\"\n[features]\nksan = []\n",
        );
        let m = Manifest::parse("crates/mem/Cargo.toml", MANIFEST);
        let mut all = BTreeMap::new();
        all.insert("kloc-core".to_owned(), dep);
        let d = check_crate(&m, &[], &all, &|_, _| false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not forwarded"), "{}", d[0].message);
        assert!(d[0].message.contains("kloc-core/ksan"));
        assert_eq!(d[0].file, "crates/mem/Cargo.toml");
        assert_eq!(d[0].line, 6); // `ksan = []` line in MANIFEST
    }

    #[test]
    fn forwarded_feature_is_clean() {
        let dep = Manifest::parse(
            "crates/core/Cargo.toml",
            "[package]\nname = \"kloc-core\"\n[features]\nkfault = []\n",
        );
        let m = Manifest::parse("crates/mem/Cargo.toml", MANIFEST);
        let mut all = BTreeMap::new();
        all.insert("kloc-core".to_owned(), dep);
        let d = check_crate(&m, &[], &all, &|_, _| false);
        // kfault forwards; ksan is not declared by the dep in this test.
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn feature_ok_waives_forwarding() {
        let dep = Manifest::parse(
            "crates/core/Cargo.toml",
            "[package]\nname = \"kloc-core\"\n[features]\nksan = []\n",
        );
        let text = MANIFEST.replace(
            "ksan = []",
            "# lint: feature-ok — ksan is mem-local\nksan = []",
        );
        let m = Manifest::parse("crates/mem/Cargo.toml", &text);
        let mut all = BTreeMap::new();
        all.insert("kloc-core".to_owned(), dep);
        let d = check_crate(&m, &[], &all, &|_, _| false);
        assert!(d.is_empty(), "{d:?}");
    }
}
