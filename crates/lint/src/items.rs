//! Item-level parser over the [`crate::lex`] token stream.
//!
//! Recovers just enough structure for the structural rules: `fn`
//! signatures (name, generics, parameters, return type) with their
//! bodies as token ranges, `impl`/`mod` nesting, and the
//! `#[cfg(feature = "…")]` / `#[cfg(not(feature = "…"))]` atoms on
//! each item. Everything else (`struct`, `use`, `const`, …) is
//! recognized, attributed, and skipped. The parser is recovery-first:
//! a construct it does not understand is consumed token-by-token, never
//! an error, because the linter must keep walking any file.

use crate::lex::{lex, Token, TokenKind};

/// One `feature = "…"` atom found in a `cfg`/`cfg_attr` attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CfgAtom {
    /// The feature name.
    pub feature: String,
    /// True under `not(...)` (odd nesting depth of `not`).
    pub negated: bool,
    /// 1-based line of the atom.
    pub line: usize,
}

/// One function parameter. Receiver params (`&mut self`) carry the
/// whole rendered receiver in `name` and an empty `ty`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding pattern text (`frame`, `_plan`, `(a, b)`), rendered.
    pub name: String,
    /// Type text, rendered; empty for receivers.
    pub ty: String,
}

/// Parsed `fn` signature plus the body's token range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Generic parameter list text (without the angle brackets), or "".
    pub generics: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Return type text (without the `->`), or "".
    pub ret: String,
    /// Byte span from the `fn` keyword through the end of the
    /// signature (return type / where clause), before the body or `;`.
    pub sig_span: (usize, usize),
    /// Significant-token index range of the body, braces excluded.
    pub body: Option<(usize, usize)>,
}

/// What kind of item this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method.
    Fn(FnSig),
    /// A module; `inline` is false for `mod name;` declarations.
    Mod {
        /// Whether the module body is in this file (`mod m { … }`).
        inline: bool,
    },
    /// An `impl` block (the item name is the rendered self type).
    Impl,
    /// Anything else (struct, enum, use, const, …).
    Other,
}

/// One parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Kind plus kind-specific payload.
    pub kind: ItemKind,
    /// Item name (fn/mod/struct name; rendered self type for impls).
    pub name: String,
    /// Whether the item has any `pub` visibility.
    pub is_pub: bool,
    /// `feature = "…"` atoms from this item's own attributes.
    pub cfg: Vec<CfgAtom>,
    /// Whether this item's attributes include `#[cfg(test)]`.
    pub cfg_test: bool,
    /// 1-based line of the defining keyword.
    pub line: usize,
    /// 1-based line where the item starts (first attribute if any).
    pub start_line: usize,
    /// Byte offset where the item starts (first attribute or modifier).
    pub start: usize,
    /// Child items (mod and impl blocks).
    pub children: Vec<Item>,
}

impl Item {
    /// Depth-first walk over this item and its children.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Item)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }
}

/// A lexed and item-parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// The source text the spans index into.
    pub source: String,
    /// The full token stream (lossless).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// For each significant index holding an open bracket, the
    /// significant index of its matching close (or `sig.len()`).
    pub closes: Vec<usize>,
    /// Top-level items.
    pub items: Vec<Item>,
}

impl ParsedFile {
    /// Lexes and parses `source`.
    pub fn parse(source: &str) -> ParsedFile {
        let tokens = lex(source);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| tokens[i].is_significant())
            .collect();
        let mut closes = vec![sig.len(); sig.len()];
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..sig.len() {
            match tokens[sig[i]].text(source) {
                "(" | "[" | "{" => stack.push(i),
                ")" | "]" | "}" => {
                    if let Some(open) = stack.pop() {
                        closes[open] = i;
                    }
                }
                _ => {}
            }
        }
        let mut file = ParsedFile {
            source: source.to_owned(),
            tokens,
            sig,
            closes,
            items: Vec::new(),
        };
        let mut parser = Parser {
            file: &file,
            pos: 0,
        };
        let items = parser.parse_items(file.sig.len());
        file.items = items;
        file
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the file has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// The significant token at significant index `i`.
    pub fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// Source text of the significant token at significant index `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tok(i).text(&self.source)
    }

    /// Whether significant tokens `i` and `i+1` are byte-adjacent and
    /// together spell `pair` (`::`, `->`, `=>`, `..`).
    pub fn adjacent_pair(&self, i: usize, pair: &str) -> bool {
        i + 1 < self.len()
            && self.tok(i).end == self.tok(i + 1).start
            && pair.len() == 2
            && self.text(i) == &pair[..1]
            && self.text(i + 1) == &pair[1..]
    }

    /// Every `feature = "…"` atom in the file — `cfg`, `cfg_attr`, or
    /// `cfg!` — at any nesting depth.
    pub fn cfg_feature_refs(&self) -> Vec<CfgAtom> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            let t = self.text(i);
            if t != "cfg" && t != "cfg_attr" {
                continue;
            }
            // `cfg(...)` / `cfg_attr(...)` / `cfg!(...)`.
            let mut open = i + 1;
            if open < self.len() && self.text(open) == "!" {
                open += 1;
            }
            if open < self.len() && self.text(open) == "(" {
                out.extend(self.cfg_atoms_in(open + 1, self.closes[open]));
            }
        }
        out
    }

    /// Parses `feature = "x"` atoms between significant indices
    /// `[lo, hi)`, tracking `not(...)` nesting for polarity.
    pub fn cfg_atoms_in(&self, lo: usize, hi: usize) -> Vec<CfgAtom> {
        let mut out = Vec::new();
        let mut not_closes: Vec<usize> = Vec::new();
        let hi = hi.min(self.len());
        let mut i = lo;
        while i < hi {
            not_closes.retain(|&c| c > i);
            match self.text(i) {
                "not" if i + 1 < hi && self.text(i + 1) == "(" => {
                    not_closes.push(self.closes[i + 1]);
                }
                "feature"
                    if i + 2 < hi
                        && self.text(i + 1) == "="
                        && self.tok(i + 2).kind == TokenKind::Str =>
                {
                    out.push(CfgAtom {
                        feature: self.text(i + 2).trim_matches('"').to_owned(),
                        negated: not_closes.len() % 2 == 1,
                        line: self.tok(i).line,
                    });
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Renders significant tokens `[lo, hi)` with canonical spacing.
    /// Byte-adjacent `::` / `->` / `=>` / `..` pairs are merged first
    /// so they space as single operators.
    pub fn render_range(&self, lo: usize, hi: usize) -> String {
        let hi = hi.min(self.len());
        let mut parts: Vec<String> = Vec::new();
        let mut i = lo;
        while i < hi {
            let merged = ["::", "->", "=>", ".."]
                .iter()
                .find(|p| i + 1 < hi && self.adjacent_pair(i, p));
            match merged {
                Some(p) => {
                    parts.push((*p).to_owned());
                    i += 2;
                }
                None => {
                    parts.push(self.text(i).to_owned());
                    i += 1;
                }
            }
        }
        let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
        render(&refs)
    }
}

struct Parser<'a> {
    file: &'a ParsedFile,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.file.len()
    }

    fn text(&self, i: usize) -> &'a str {
        self.file.tokens[self.file.sig[i]].text(&self.file.source)
    }

    fn tok(&self, i: usize) -> &Token {
        self.file.tok(i)
    }

    /// Index just past the close bracket matching the opener at `open`.
    fn past_group(&self, open: usize) -> usize {
        (self.file.closes[open] + 1).min(self.file.len())
    }

    /// Consumes a generic parameter list starting at `<`; returns the
    /// index just past the matching `>`. `->` arrows inside (Fn-trait
    /// sugar) do not close angles.
    fn past_angles(&self, open: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < self.file.len() {
            match self.text(i) {
                "<" => depth += 1,
                ">" if i > 0 && self.file.adjacent_pair(i - 1, "->") => {}
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                "(" | "[" => {
                    i = self.past_group(i);
                    continue;
                }
                ";" | "{" => return i, // confused: bail before the body
                _ => {}
            }
            i += 1;
        }
        self.file.len()
    }

    /// Parses items until significant index `stop` (exclusive) or a
    /// closing `}` at the current nesting level.
    fn parse_items(&mut self, stop: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.at_end() && self.pos < stop {
            if self.text(self.pos) == "}" {
                self.pos += 1;
                continue;
            }
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
        }
        items
    }

    /// Collects `#[...]`/`#![...]` attributes at the cursor.
    fn parse_attrs(&mut self) -> (Vec<CfgAtom>, bool, Option<(usize, usize)>) {
        let mut cfg = Vec::new();
        let mut cfg_test = false;
        let mut start = None;
        while !self.at_end() && self.text(self.pos) == "#" {
            let hash = self.pos;
            let mut open = self.pos + 1;
            if open < self.file.len() && self.text(open) == "!" {
                open += 1;
            }
            if open >= self.file.len() || self.text(open) != "[" {
                break;
            }
            start.get_or_insert((self.tok(hash).start, self.tok(hash).line));
            let close = self.file.closes[open];
            let mut j = open + 1;
            while j < close {
                let t = self.text(j);
                if (t == "cfg" || t == "cfg_attr") && j + 1 < close && self.text(j + 1) == "(" {
                    let inner_close = self.file.closes[j + 1];
                    cfg.extend(self.file.cfg_atoms_in(j + 2, inner_close));
                    if t == "cfg" {
                        for k in j + 2..inner_close.min(close) {
                            if self.text(k) == "test" {
                                cfg_test = true;
                            }
                        }
                    }
                    j = inner_close;
                }
                j += 1;
            }
            self.pos = (close + 1).min(self.file.len());
        }
        (cfg, cfg_test, start)
    }

    fn parse_item(&mut self) -> Option<Item> {
        let (cfg, cfg_test, attr_start) = self.parse_attrs();
        if self.at_end() || self.text(self.pos) == "}" {
            return None;
        }
        let (item_start, start_line) =
            attr_start.unwrap_or((self.tok(self.pos).start, self.tok(self.pos).line));
        let mut is_pub = false;
        loop {
            if self.at_end() {
                return None;
            }
            match self.text(self.pos) {
                "pub" => {
                    is_pub = true;
                    self.pos += 1;
                    if !self.at_end() && self.text(self.pos) == "(" {
                        self.pos = self.past_group(self.pos);
                    }
                }
                "unsafe" | "async" | "default" => self.pos += 1,
                "const" if self.peek_is(1, "fn") => self.pos += 1,
                "extern"
                    if self.pos + 1 < self.file.len()
                        && self.tok(self.pos + 1).kind == TokenKind::Str =>
                {
                    self.pos += 2;
                }
                _ => break,
            }
        }
        let kw_index = self.pos;
        let line = self.tok(kw_index).line;
        let make = |kind: ItemKind, name: String, children: Vec<Item>| Item {
            kind,
            name,
            is_pub,
            cfg,
            cfg_test,
            line,
            start_line,
            start: item_start,
            children,
        };
        match self.text(kw_index) {
            "fn" => {
                self.pos += 1;
                let (name, sig) = self.parse_fn_sig(kw_index);
                Some(make(ItemKind::Fn(sig), name, Vec::new()))
            }
            "mod" => {
                self.pos += 1;
                let name = self.take_ident();
                let mut children = Vec::new();
                let mut inline = false;
                if !self.at_end() {
                    if self.text(self.pos) == "{" {
                        inline = true;
                        let close = self.file.closes[self.pos];
                        self.pos += 1;
                        children = self.parse_items(close);
                        self.pos = (close + 1).min(self.file.len());
                    } else if self.text(self.pos) == ";" {
                        self.pos += 1;
                    }
                }
                Some(make(ItemKind::Mod { inline }, name, children))
            }
            "impl" | "trait" => {
                let is_impl = self.text(kw_index) == "impl";
                self.pos += 1;
                if !self.at_end() && self.text(self.pos) == "<" {
                    self.pos = self.past_angles(self.pos);
                }
                let name_lo = self.pos;
                let mut name_hi = self.pos;
                while !self.at_end() && !matches!(self.text(self.pos), "{" | ";") {
                    if self.text(self.pos) == "where" {
                        while !self.at_end() && !matches!(self.text(self.pos), "{" | ";") {
                            self.pos += 1;
                        }
                        break;
                    }
                    self.pos += 1;
                    name_hi = self.pos;
                }
                let name = self.file.render_range(name_lo, name_hi);
                let mut children = Vec::new();
                if !self.at_end() && self.text(self.pos) == "{" {
                    let close = self.file.closes[self.pos];
                    self.pos += 1;
                    children = self.parse_items(close);
                    self.pos = (close + 1).min(self.file.len());
                } else if !self.at_end() {
                    self.pos += 1; // `;`
                }
                Some(make(
                    if is_impl {
                        ItemKind::Impl
                    } else {
                        ItemKind::Other
                    },
                    name,
                    children,
                ))
            }
            "struct" | "enum" | "union" | "use" | "const" | "static" | "type" => {
                self.pos += 1;
                let name = if !self.at_end() && self.tok(self.pos).kind == TokenKind::Ident {
                    self.text(self.pos).to_owned()
                } else {
                    String::new()
                };
                while !self.at_end() {
                    match self.text(self.pos) {
                        ";" => {
                            self.pos += 1;
                            break;
                        }
                        "{" => {
                            self.pos = self.past_group(self.pos);
                            if !self.at_end() && self.text(self.pos) == ";" {
                                self.pos += 1;
                            }
                            break;
                        }
                        "(" | "[" => self.pos = self.past_group(self.pos),
                        _ => self.pos += 1,
                    }
                }
                Some(make(ItemKind::Other, name, Vec::new()))
            }
            "macro_rules" => {
                self.pos += 1;
                while !self.at_end() && !matches!(self.text(self.pos), "{" | "(" | "[") {
                    self.pos += 1;
                }
                if !self.at_end() {
                    self.pos = self.past_group(self.pos);
                }
                if !self.at_end() && self.text(self.pos) == ";" {
                    self.pos += 1;
                }
                None
            }
            _ => {
                self.pos += 1;
                None
            }
        }
    }

    fn peek_is(&self, ahead: usize, what: &str) -> bool {
        self.pos + ahead < self.file.len() && self.text(self.pos + ahead) == what
    }

    fn take_ident(&mut self) -> String {
        if !self.at_end() && self.tok(self.pos).kind == TokenKind::Ident {
            let n = self.text(self.pos).to_owned();
            self.pos += 1;
            n
        } else {
            String::new()
        }
    }

    /// Parses a fn signature with the cursor just past `fn`.
    fn parse_fn_sig(&mut self, fn_kw: usize) -> (String, FnSig) {
        let name = self.take_ident();
        let mut generics = String::new();
        if !self.at_end() && self.text(self.pos) == "<" {
            let from = self.pos;
            self.pos = self.past_angles(self.pos);
            let hi = self.pos.saturating_sub(1).max(from + 1);
            generics = self.file.render_range(from + 1, hi);
        }
        let mut params = Vec::new();
        if !self.at_end() && self.text(self.pos) == "(" {
            let close = self.file.closes[self.pos];
            params = self.parse_params(self.pos + 1, close);
            self.pos = (close + 1).min(self.file.len());
        }
        let mut ret_range = None;
        if !self.at_end() && self.text(self.pos) == "-" && self.file.adjacent_pair(self.pos, "->") {
            self.pos += 2;
            let ret_lo = self.pos;
            let mut depth = 0i64;
            while !self.at_end() {
                let t = self.text(self.pos);
                match t {
                    "{" | ";" if depth == 0 => break,
                    "where" if depth == 0 => break,
                    "<" => depth += 1,
                    ">" if self.pos > 0 && self.file.adjacent_pair(self.pos - 1, "->") => {}
                    ">" => depth -= 1,
                    "(" | "[" => {
                        self.pos = self.past_group(self.pos);
                        continue;
                    }
                    _ => {}
                }
                self.pos += 1;
            }
            ret_range = Some((ret_lo, self.pos));
        }
        if !self.at_end() && self.text(self.pos) == "where" {
            while !self.at_end() && !matches!(self.text(self.pos), "{" | ";") {
                if matches!(self.text(self.pos), "(" | "[") {
                    self.pos = self.past_group(self.pos);
                } else {
                    self.pos += 1;
                }
            }
        }
        let sig_end = if self.pos > 0 {
            self.tok(self.pos - 1).end
        } else {
            self.tok(fn_kw).end
        };
        let mut body = None;
        if !self.at_end() {
            if self.text(self.pos) == "{" {
                let close = self.file.closes[self.pos];
                body = Some((self.pos + 1, close));
                self.pos = (close + 1).min(self.file.len());
            } else if self.text(self.pos) == ";" {
                self.pos += 1;
            }
        }
        (
            name,
            FnSig {
                generics,
                params,
                ret: ret_range
                    .map(|(lo, hi)| self.file.render_range(lo, hi))
                    .unwrap_or_default(),
                sig_span: (self.tok(fn_kw).start, sig_end),
                body,
            },
        )
    }

    /// Splits the parameter list between significant indices
    /// `[lo, close)` on top-level commas.
    fn parse_params(&self, lo: usize, close: usize) -> Vec<Param> {
        let mut params = Vec::new();
        let close = close.min(self.file.len());
        let mut flush = |from: usize, to: usize| {
            if from >= to {
                return;
            }
            // Top-level single `:` splits pattern from type.
            let mut colon = None;
            let mut d = 0i64;
            for k in from..to {
                match self.text(k) {
                    "<" | "(" | "[" => d += 1,
                    ">" | ")" | "]" => d -= 1,
                    ":" if d == 0 => {
                        let double = self.file.adjacent_pair(k, "::")
                            || (k > from && self.file.adjacent_pair(k - 1, "::"));
                        if !double {
                            colon = Some(k);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            match colon {
                Some(c) => params.push(Param {
                    name: self.file.render_range(from, c),
                    ty: self.file.render_range(c + 1, to),
                }),
                None => params.push(Param {
                    name: self.file.render_range(from, to),
                    ty: String::new(),
                }),
            }
        };
        let mut depth = 0i64;
        let mut start = lo;
        for i in lo..close {
            match self.text(i) {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "," if depth == 0 => {
                    flush(start, i);
                    start = i + 1;
                }
                _ => {}
            }
        }
        flush(start, close);
        params
    }
}

/// Renders a token text sequence with canonical spacing, so two
/// signatures that differ only in whitespace or line breaks compare
/// equal and diagnostics print readable types. Multi-character
/// operators must already be merged (see [`ParsedFile::render_range`]).
pub fn render(parts: &[&str]) -> String {
    let mut out = String::new();
    for (i, p) in parts.iter().enumerate() {
        if i > 0 && needs_space(parts[i - 1], p) {
            out.push(' ');
        }
        out.push_str(p);
    }
    out
}

fn needs_space(prev: &str, next: &str) -> bool {
    // `:` is tight before (`x:`) but spaced after (`x: T`); the merged
    // `::` is tight on both sides (`a::b`).
    let tight_after = matches!(
        prev,
        "(" | "[" | "<" | "." | "&" | "#" | "!" | "'" | "::" | ".."
    );
    let tight_before = matches!(
        next,
        ")" | "]" | ">" | "," | ";" | ":" | "::" | "." | ".." | "?" | "(" | "[" | "<"
    );
    !(tight_after || tight_before)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(src)
    }

    fn find_fn<'a>(items: &'a [Item], name: &str) -> Option<&'a Item> {
        for item in items {
            if item.name == name && matches!(item.kind, ItemKind::Fn(_)) {
                return Some(item);
            }
            if let Some(found) = find_fn(&item.children, name) {
                return Some(found);
            }
        }
        None
    }

    fn sig(item: &Item) -> &FnSig {
        match &item.kind {
            ItemKind::Fn(s) => s,
            _ => panic!("not a fn"),
        }
    }

    #[test]
    fn parses_fn_signature() {
        let f = parse("pub fn read(&mut self, frame: FrameId, bytes: u64) -> Nanos { x }");
        let item = find_fn(&f.items, "read").expect("fn parsed");
        assert!(item.is_pub);
        let s = sig(item);
        assert_eq!(s.params.len(), 3);
        assert_eq!(s.params[0].name, "&mut self");
        assert_eq!(s.params[1].ty, "FrameId");
        assert_eq!(s.params[2].ty, "u64");
        assert_eq!(s.ret, "Nanos");
        assert!(s.body.is_some());
    }

    #[test]
    fn parses_generic_fn_with_fn_trait_bound() {
        let f = parse("pub fn emit<F: FnOnce() -> Event>(f: F) {}");
        let s = sig(find_fn(&f.items, "emit").expect("fn"));
        assert_eq!(s.generics, "F: FnOnce() -> Event");
        assert_eq!(s.params.len(), 1);
        assert_eq!(s.params[0].ty, "F");
        assert_eq!(s.ret, "");
    }

    #[test]
    fn cfg_atoms_and_polarity() {
        let src = r#"
#[cfg(feature = "kfault")]
pub fn set_plan(&mut self, plan: FaultPlan) {}
#[cfg(not(feature = "kfault"))]
pub fn set_plan(&mut self, _plan: FaultPlan) {}
"#;
        let f = parse(src);
        let fns: Vec<&Item> = f
            .items
            .iter()
            .filter(|i| matches!(i.kind, ItemKind::Fn(_)))
            .collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].cfg.len(), 1);
        assert!(!fns[0].cfg[0].negated);
        assert!(fns[1].cfg[0].negated);
        assert_eq!(fns[0].cfg[0].feature, "kfault");
    }

    #[test]
    fn nested_mod_and_impl_children() {
        let src = r#"
#[cfg(not(feature = "trace"))]
mod noop {
    pub struct Scope { _private: () }
    impl Scope { pub fn close(self) {} }
    pub fn scope(_name: &'static str) -> Scope { Scope { _private: () } }
}
"#;
        let f = parse(src);
        assert_eq!(f.items.len(), 1);
        let m = &f.items[0];
        assert_eq!(m.name, "noop");
        assert!(matches!(m.kind, ItemKind::Mod { inline: true }));
        assert!(m.cfg[0].negated);
        let scope_fn = find_fn(&m.children, "scope").expect("fn in mod");
        assert_eq!(sig(scope_fn).ret, "Scope");
        let close_fn = find_fn(&m.children, "close").expect("fn in impl");
        assert_eq!(sig(close_fn).params[0].name, "self");
    }

    #[test]
    fn out_of_line_mod_declaration() {
        let f = parse("#[cfg(feature = \"trace\")]\nmod recorder;\n");
        assert_eq!(f.items.len(), 1);
        assert!(matches!(f.items[0].kind, ItemKind::Mod { inline: false }));
        assert_eq!(f.items[0].name, "recorder");
        assert_eq!(f.items[0].cfg[0].feature, "trace");
    }

    #[test]
    fn cfg_feature_refs_sees_cfg_attr_and_all() {
        let src = r#"
#[cfg_attr(feature = "serde", derive(Serialize))]
struct S;
#[cfg(all(feature = "ksan", not(feature = "trace")))]
fn f() {}
"#;
        let f = parse(src);
        let refs = f.cfg_feature_refs();
        let names: Vec<(&str, bool)> = refs
            .iter()
            .map(|a| (a.feature.as_str(), a.negated))
            .collect();
        assert!(names.contains(&("serde", false)));
        assert!(names.contains(&("ksan", false)));
        assert!(names.contains(&("trace", true)));
    }

    #[test]
    fn cfg_test_flag() {
        let f = parse("#[cfg(test)]\nmod tests { fn t() {} }");
        assert!(f.items[0].cfg_test);
    }

    #[test]
    fn where_clause_ends_signature() {
        let f = parse("fn f<T>(x: T) -> u64 where T: Clone { 1 }");
        let s = sig(find_fn(&f.items, "f").expect("fn"));
        assert_eq!(s.ret, "u64");
        assert!(s.body.is_some());
    }

    #[test]
    fn render_spacing() {
        assert_eq!(render(&["&", "mut", "self"]), "&mut self");
        assert_eq!(
            render(&["Option", "<", "FaultPlan", ">"]),
            "Option<FaultPlan>"
        );
        assert_eq!(render(&["x", ":", "u64"]), "x: u64");
        let f = parse("a::b -> Vec<(u64, u64)>");
        assert_eq!(f.render_range(0, f.len()), "a::b -> Vec<(u64, u64)>");
    }
}
