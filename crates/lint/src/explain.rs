//! `kloc-lint --explain KLNNN` — per-rule rationale, justification
//! pragma, and a minimal violating example.
//!
//! The examples are `include_str!`'d from
//! `tests/fixtures/examples/klNNN.rs` and each is pinned by a
//! self-test asserting it actually triggers its rule, so the
//! documentation cannot drift from the analyzer.

/// Everything `--explain` prints for one rule.
pub struct RuleInfo {
    /// Rule id (`KL001`…).
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Why the rule exists in this workspace.
    pub rationale: &'static str,
    /// The justification pragma that silences it.
    pub pragma: &'static str,
    /// Minimal violating example (from the fixture suite).
    pub example: &'static str,
}

/// The rule table, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "KL001",
        title: "no iteration over HashMap/HashSet",
        rationale: "Hash iteration order is randomized per process. Both seed bugs this \
                    repository shipped (`by_inode`, the AutoNUMA `app_pages` set) were hash-order \
                    iteration reaching a report. Use BTreeMap/BTreeSet, or collect and sort by a \
                    deterministic key.",
        pragma: "// lint: ordered-ok — <why order cannot reach a report>",
        example: include_str!("../tests/fixtures/examples/kl001.rs"),
    },
    RuleInfo {
        id: "KL002",
        title: "no wall clock / randomness / env in simulation crates",
        rationale: "All simulation time comes from the virtual clock; all randomness from seeded \
                    SplitMix64 streams. `Instant::now`, `SystemTime`, `thread_rng`, `std::env` \
                    make reports differ between hosts and runs.",
        pragma: "// lint: nondet-ok — <why this ambient authority is sanctioned>",
        example: include_str!("../tests/fixtures/examples/kl002.rs"),
    },
    RuleInfo {
        id: "KL003",
        title: "no thread spawning in simulation crates",
        rationale: "kloc-sim owns all concurrency: shard workers join deterministically and \
                    merge in shard order. A stray thread inside a simulation crate reintroduces \
                    scheduling nondeterminism the sharded runner was built to exclude.",
        pragma: "// lint: nondet-ok — <why this thread is sanctioned>",
        example: include_str!("../tests/fixtures/examples/kl003.rs"),
    },
    RuleInfo {
        id: "KL004",
        title: "no truncating casts on id-like values",
        rationale: "Inode numbers, epochs, and object ids are 64-bit; `as u32` silently wraps \
                    and aliases two objects into one KLOC. Use `From`/`try_from` so overflow is \
                    a visible error.",
        pragma: "// lint: truncation-ok — <why the truncation is the semantics>",
        example: include_str!("../tests/fixtures/examples/kl004.rs"),
    },
    RuleInfo {
        id: "KL005",
        title: "no unwrap/expect in simulation-crate non-test code",
        rationale: "A panic inside a simulation aborts the whole sweep and loses every completed \
                    run. Propagate errors to the harness, which records the failure and keeps \
                    the other configurations running.",
        pragma: "// lint: unwrap-ok — <why the value is provably present>",
        example: include_str!("../tests/fixtures/examples/kl005.rs"),
    },
    RuleInfo {
        id: "KL006",
        title: "feature-shim conformance",
        rationale: "The trace/ksan/kfault noop shims must expose exactly the API of their real \
                    halves, or some feature combination stops compiling — and nobody builds the \
                    full 2^3 matrix locally. The analyzer pairs every public fn under \
                    cfg(feature = \"X\") with its cfg(not(feature = \"X\")) counterpart (including \
                    across files, via the cfg on the `mod` declaration) and compares signatures. \
                    `--fix` rewrites a drifted noop signature from the real half.",
        pragma: "// lint: shim-ok — <why the halves intentionally diverge>",
        example: include_str!("../tests/fixtures/examples/kl006.rs"),
    },
    RuleInfo {
        id: "KL007",
        title: "cfg feature hygiene",
        rationale: "A feature name referenced in cfg but not declared in Cargo.toml can never be \
                    enabled — the gated code silently vanishes from every build. And a feature \
                    declared here but not forwarded to a dependency that declares the same \
                    feature splits the workspace: half the shims stay disabled. `--fix` inserts \
                    the missing declaration.",
        pragma: "// lint: feature-ok — <why the reference/forwarding is intentional>",
        example: include_str!("../tests/fixtures/examples/kl007.rs"),
    },
    RuleInfo {
        id: "KL008",
        title: "determinism taint into report-visible sinks",
        rationale: "KL001/KL002 flag sources; KL008 follows the dataflow. A value produced by \
                    hash-order iteration or pointer identity (`as *const`, `.as_ptr()`, \
                    `addr_of!`) is tracked through let bindings, for patterns, and assignments; \
                    the diagnostic fires only when it reaches a report field, a kloc-trace emit, \
                    or a sort key — with the source→sink path in the message.",
        pragma: "// lint: taint-ok — <why the flow is order-insensitive>",
        example: include_str!("../tests/fixtures/examples/kl008.rs"),
    },
    RuleInfo {
        id: "KL009",
        title: "clock-charge discipline",
        rationale: "Every frame touch and DiskOp submission in crates/kernel and crates/mem must \
                    flow through a charged API (`access`, `access_batch`, `charge`, \
                    `disk_retry`) so the virtual clock sees exactly one cost per operation — \
                    the PR 7 batching contract. Raw `frames.touch`/`clock.advance` calls and \
                    DiskOps constructed outside the retry path bypass the accounting.",
        pragma: "// lint: charge-ok — <which sanctioned path charges this cost>",
        example: include_str!("../tests/fixtures/examples/kl009.rs"),
    },
];

/// Looks up a rule by id (case-insensitive).
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    let id = id.to_ascii_uppercase();
    RULES.iter().find(|r| r.id == id)
}

/// Renders the full `--explain` text for a rule id.
pub fn explain(id: &str) -> Option<String> {
    let r = rule_info(id)?;
    let mut out = String::new();
    out.push_str(&format!("{}: {}\n\n", r.id, r.title));
    out.push_str(r.rationale);
    out.push_str("\n\njustification pragma:\n    ");
    out.push_str(r.pragma);
    out.push_str("\n\nexample (from tests/fixtures/examples/):\n");
    for line in r.example.lines() {
        out.push_str("    ");
        out.push_str(line);
        out.push('\n');
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_crate, lint_source};

    #[test]
    fn every_rule_has_an_entry_and_renders() {
        let ids = [
            "KL001", "KL002", "KL003", "KL004", "KL005", "KL006", "KL007", "KL008", "KL009",
        ];
        for id in ids {
            let text = explain(id).expect(id);
            assert!(text.starts_with(id), "{text}");
            assert!(text.contains("pragma"), "{text}");
        }
        assert_eq!(RULES.len(), ids.len());
        assert!(explain("KL999").is_none());
        assert!(explain("kl001").is_some(), "lookup is case-insensitive");
    }

    #[test]
    fn examples_trigger_their_rules() {
        for rule in RULES {
            let diags = if rule.id == "KL007" {
                // Hygiene needs the manifest the example's cfg is
                // missing from.
                lint_crate(
                    "Cargo.toml",
                    "[package]\nname = \"example\"\n",
                    &[("example.rs", rule.example)],
                )
            } else {
                lint_source("example.rs", rule.example, false)
            };
            assert!(
                diags.iter().any(|d| d.rule == rule.id),
                "example for {} does not trigger it: {diags:?}",
                rule.id
            );
        }
    }
}
