//! KL006 — feature-shim conformance.
//!
//! The trace/ksan/kfault noop shims promise the exact API of their real
//! halves so the 2^3 feature matrix never has to be built to catch
//! drift. This pass collects every public `fn` that lives under a
//! `feature = "X"` cfg (directly, via an enclosing `mod`/`impl`, or via
//! an out-of-line `#[cfg(feature = "X")] mod name;` declaration that
//! confers the cfg on `name.rs`), pairs positive and negative
//! polarities by `(feature, qualified fn name)`, and reports:
//!
//! * signature drift between the halves (with a machine-applicable
//!   suggestion that rewrites the noop half's signature from the real
//!   one, parameter names underscore-prefixed);
//! * a fn present under one polarity with no counterpart under the
//!   other (only when the crate has both polarities of that feature at
//!   all — a crate that only gates extra functionality positively is
//!   not a shim).
//!
//! Private fns are exempt: the real half may use any number of internal
//! helpers the shim has no reason to mirror.

use std::collections::BTreeMap;

use crate::items::{CfgAtom, FnSig, Item, ItemKind, ParsedFile};
use crate::{Diagnostic, Suggestion, RULE_SHIM_CONFORMANCE};

/// One public fn found under a feature cfg.
#[derive(Clone)]
struct FnRecord {
    file: String,
    line: usize,
    /// Line of the item's first attribute — where a `// lint: shim-ok`
    /// above the `#[cfg]` lands.
    start_line: usize,
    qualified: String,
    is_pub: bool,
    generics: String,
    /// Receiver params by rendered name, value params by rendered type.
    param_keys: Vec<String>,
    params: Vec<(String, String)>,
    ret: String,
    sig_span: (usize, usize),
}

impl FnRecord {
    fn sig_text(&self) -> String {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(name, ty)| {
                if ty.is_empty() {
                    name.clone()
                } else {
                    format!("{name}: {ty}")
                }
            })
            .collect();
        let generics = if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics)
        };
        let ret = if self.ret.is_empty() {
            String::new()
        } else {
            format!(" -> {}", self.ret)
        };
        let vis = if self.is_pub { "pub " } else { "" };
        let name = self
            .qualified
            .rsplit("::")
            .next()
            .unwrap_or(&self.qualified);
        format!("{vis}fn {name}{generics}({}){ret}", params.join(", "))
    }
}

/// Builds the map from out-of-line module name to the cfg atoms its
/// declaration carries (`#[cfg(feature = "trace")] mod recorder;`).
fn module_cfg_map(files: &[(String, &ParsedFile)]) -> BTreeMap<String, Vec<CfgAtom>> {
    let mut map = BTreeMap::new();
    for (_, pf) in files {
        for item in &pf.items {
            item.walk(&mut |i| {
                if let ItemKind::Mod { inline: false } = i.kind {
                    if !i.cfg.is_empty() {
                        map.insert(i.name.clone(), i.cfg.clone());
                    }
                }
            });
        }
    }
    map
}

/// The module name a file path corresponds to (`src/recorder.rs` →
/// `recorder`, `src/ksan/mod.rs` → `ksan`).
fn file_module_name(path: &str) -> Option<String> {
    let path = path.replace('\\', "/");
    let stem = path.strip_suffix(".rs")?;
    let leaf = stem.rsplit('/').next()?;
    if leaf == "mod" {
        let parent = stem.rsplit('/').nth(1)?;
        Some(parent.to_owned())
    } else if matches!(leaf, "lib" | "main") {
        None
    } else {
        Some(leaf.to_owned())
    }
}

fn collect_fns(
    file: &str,
    items: &[Item],
    base_cfg: &[CfgAtom],
    prefix: &str,
    out: &mut Vec<(FnRecord, Vec<CfgAtom>)>,
) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        let mut cfg: Vec<CfgAtom> = base_cfg.to_vec();
        cfg.extend(item.cfg.iter().cloned());
        match &item.kind {
            ItemKind::Fn(sig) => {
                if item.is_pub && !cfg.is_empty() {
                    out.push((make_record(file, item, sig, prefix), cfg));
                }
            }
            ItemKind::Mod { .. } => {
                // Inline mods are a cfg scope but not a pairing
                // namespace: `mod noop` mirrors the crate root.
                collect_fns(file, &item.children, &cfg, prefix, out);
            }
            ItemKind::Impl => {
                let inner = format!("{}{}::", prefix, strip_generics(&item.name));
                collect_fns(file, &item.children, &cfg, &inner, out);
            }
            ItemKind::Other => {}
        }
    }
}

/// `Scope` from `Scope<T> for X` / `Tier for MemSystem` — the pairing
/// key uses the self type, last path segment, generics stripped.
fn strip_generics(impl_name: &str) -> String {
    let name = impl_name.split(" for ").last().unwrap_or(impl_name);
    let name = name.split('<').next().unwrap_or(name).trim();
    name.rsplit("::").next().unwrap_or(name).to_owned()
}

fn make_record(file: &str, item: &Item, sig: &FnSig, prefix: &str) -> FnRecord {
    FnRecord {
        file: file.to_owned(),
        line: item.line,
        start_line: item.start_line,
        qualified: format!("{prefix}{}", item.name),
        is_pub: item.is_pub,
        generics: sig.generics.clone(),
        param_keys: sig
            .params
            .iter()
            .map(|p| {
                if p.ty.is_empty() {
                    p.name.clone()
                } else {
                    p.ty.clone()
                }
            })
            .collect(),
        params: sig
            .params
            .iter()
            .map(|p| (p.name.clone(), p.ty.clone()))
            .collect(),
        ret: sig.ret.clone(),
        sig_span: sig.sig_span,
    }
}

/// Checks every feature-cfg'd public fn pair across one crate's files.
/// `allowed(file, line)` reports whether a `// lint: shim-ok`
/// justification covers a given site.
pub(crate) fn check_crate(
    files: &[(String, &ParsedFile)],
    allowed: &dyn Fn(&str, usize) -> bool,
) -> Vec<Diagnostic> {
    let mod_cfgs = module_cfg_map(files);
    // (feature, qualified name) -> (positive half, negative half).
    let mut pairs: BTreeMap<(String, String), (Vec<FnRecord>, Vec<FnRecord>)> = BTreeMap::new();
    // Features that have fns under both polarities somewhere.
    let mut polarity_seen: BTreeMap<String, (bool, bool)> = BTreeMap::new();

    for (path, pf) in files {
        let base: Vec<CfgAtom> = file_module_name(path)
            .and_then(|m| mod_cfgs.get(&m).cloned())
            .unwrap_or_default();
        let mut records = Vec::new();
        collect_fns(path, &pf.items, &base, "", &mut records);
        for (record, mut atoms) in records {
            atoms.sort();
            atoms.dedup();
            for atom in atoms {
                let seen = polarity_seen.entry(atom.feature.clone()).or_default();
                if atom.negated {
                    seen.1 = true;
                } else {
                    seen.0 = true;
                }
                let key = (atom.feature.clone(), record.qualified.clone());
                let entry = pairs.entry(key).or_default();
                if atom.negated {
                    entry.1.push(record.clone());
                } else {
                    entry.0.push(record.clone());
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((feature, qualified), (pos, neg)) in &pairs {
        let both_polarities = polarity_seen.get(feature).is_some_and(|&(p, n)| p && n);
        match (pos.first(), neg.first()) {
            (Some(real), Some(noop)) => {
                let same = real.param_keys == noop.param_keys
                    && real.ret == noop.ret
                    && real.generics == noop.generics
                    && real.is_pub == noop.is_pub;
                if same || allowed(&noop.file, noop.line) || allowed(&noop.file, noop.start_line) {
                    continue;
                }
                let mut d = Diagnostic::new(
                    &noop.file,
                    noop.line,
                    RULE_SHIM_CONFORMANCE,
                    format!(
                        "noop shim `{qualified}` under cfg(not(feature = \"{feature}\")) drifted from its real half: `{}` vs `{}`",
                        noop.sig_text(),
                        real.sig_text()
                    ),
                );
                d.notes.push(format!(
                    "real half at {}:{}: `{}`",
                    real.file,
                    real.line,
                    real.sig_text()
                ));
                // Only the signature proper is inside sig_span, so a
                // pure visibility drift has no in-span fix.
                if real.is_pub == noop.is_pub {
                    d.suggestion = Some(Suggestion {
                        file: noop.file.clone(),
                        start: noop.sig_span.0,
                        end: noop.sig_span.1,
                        replacement: noop_signature(real),
                    });
                }
                out.push(d);
            }
            (Some(only), None) | (None, Some(only)) if both_polarities => {
                if allowed(&only.file, only.line) || allowed(&only.file, only.start_line) {
                    continue;
                }
                let (have, miss) = if neg.is_empty() {
                    (
                        format!("feature = \"{feature}\""),
                        format!("not(feature = \"{feature}\")"),
                    )
                } else {
                    (
                        format!("not(feature = \"{feature}\")"),
                        format!("feature = \"{feature}\""),
                    )
                };
                let mut d = Diagnostic::new(
                    &only.file,
                    only.line,
                    RULE_SHIM_CONFORMANCE,
                    format!(
                        "`{qualified}` exists under cfg({have}) but has no counterpart under cfg({miss})"
                    ),
                );
                d.notes.push(format!(
                    "declared at {}:{}: `{}`",
                    only.file,
                    only.line,
                    only.sig_text()
                ));
                out.push(d);
            }
            _ => {}
        }
    }
    out
}

/// Renders the corrected noop signature from the real half: same
/// generics, parameter types, and return type; value parameter names
/// underscore-prefixed since a noop ignores them.
fn noop_signature(real: &FnRecord) -> String {
    let name = real
        .qualified
        .rsplit("::")
        .next()
        .unwrap_or(&real.qualified);
    let params: Vec<String> = real
        .params
        .iter()
        .map(|(pname, ty)| {
            if ty.is_empty() {
                pname.clone() // receiver
            } else {
                let base = pname.trim_start_matches('_');
                format!("_{base}: {ty}")
            }
        })
        .collect();
    let generics = if real.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", real.generics)
    };
    let ret = if real.ret.is_empty() {
        String::new()
    } else {
        format!(" -> {}", real.ret)
    };
    format!("fn {name}{generics}({}){ret}", params.join(", "))
}

#[cfg(test)]
mod tests {
    use crate::{lint_source, RULE_SHIM_CONFORMANCE};

    fn kl006(src: &str) -> Vec<crate::Diagnostic> {
        lint_source("t.rs", src, false)
            .into_iter()
            .filter(|d| d.rule == RULE_SHIM_CONFORMANCE)
            .collect()
    }

    #[test]
    fn matching_shim_pair_is_clean() {
        let src = r#"
#[cfg(feature = "trace")]
pub fn charge(ns: u64) { CHARGED.with(|c| c.set(c.get() + ns)); }
#[cfg(not(feature = "trace"))]
pub fn charge(_ns: u64) {}
"#;
        assert!(kl006(src).is_empty());
    }

    #[test]
    fn drifted_param_type_is_flagged_with_fix() {
        let src = r#"
#[cfg(feature = "kfault")]
pub fn set_plan(plan: FaultPlan, seed: u64) {}
#[cfg(not(feature = "kfault"))]
pub fn set_plan(_plan: FaultPlan) {}
"#;
        let d = kl006(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
        assert!(d[0].notes[0].contains("t.rs:3"), "{:?}", d[0].notes);
        let fix = d[0].suggestion.as_ref().expect("fix");
        assert_eq!(fix.replacement, "fn set_plan(_plan: FaultPlan, _seed: u64)");
    }

    #[test]
    fn missing_counterpart_is_flagged_when_shimmed() {
        let src = r#"
#[cfg(feature = "trace")]
pub fn emit(e: Event) {}
#[cfg(not(feature = "trace"))]
pub fn emit(_e: Event) {}
#[cfg(feature = "trace")]
pub fn flush(t: u64) {}
"#;
        let d = kl006(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 7);
        assert!(d[0].message.contains("no counterpart"), "{}", d[0].message);
    }

    #[test]
    fn positive_only_gating_is_not_a_shim() {
        let src = r#"
#[cfg(feature = "serde")]
pub fn to_json(&self) -> String { String::new() }
"#;
        assert!(kl006(src).is_empty());
    }

    #[test]
    fn shim_ok_pragma_silences() {
        let src = r#"
#[cfg(feature = "trace")]
pub fn flush(t: u64, force: bool) {}
// lint: shim-ok — noop flush needs no force flag
#[cfg(not(feature = "trace"))]
pub fn flush(_t: u64) {}
"#;
        assert!(kl006(src).is_empty());
    }

    #[test]
    fn inline_mod_confers_cfg() {
        let src = r#"
#[cfg(feature = "trace")]
pub fn scope(name: &'static str) -> Scope { Scope::new(name) }
#[cfg(not(feature = "trace"))]
mod noop {
    pub fn scope(_name: &'static str) -> Scope { Scope }
}
"#;
        assert!(kl006(src).is_empty());
    }
}
