//! Token-stream rules: KL001–KL005 (re-implemented from the v1 line
//! scanner, minus its false-positive classes) and KL009 clock-charge
//! discipline.

use std::collections::BTreeSet;

use crate::items::{Item, ItemKind, ParsedFile};
use crate::lex::TokenKind;
use crate::{
    Allows, Diagnostic, RULE_CLOCK_CHARGE, RULE_NONDET_API, RULE_THREAD_SPAWN,
    RULE_TRUNCATING_CAST, RULE_UNORDERED_ITER, RULE_UNWRAP,
};

/// Iterator-like methods whose order reflects hash order.
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Path needles for KL002. A trailing `::` means "must be followed by
/// a further segment" (`rand::` matches `rand::thread_rng`, not a
/// local `rand` variable).
const NONDET_NEEDLES: &[&str] = &[
    "std::time",
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "rand::",
    "getrandom",
    "RandomState",
    "std::env",
];

/// Path needles for KL003.
const SPAWN_NEEDLES: &[&str] = &["std::thread", "thread::spawn", "rayon::", "crossbeam"];

/// Snake-case segments marking a value as id/epoch-like for KL004.
const ID_SEGMENTS: &[&str] = &["epoch", "inode", "ino", "id", "fd", "obj", "shard"];

/// Functions whose bodies ARE the charged implementation: everything
/// inside them is exempt from KL009.
const CHARGED_FNS: &[&str] = &[
    "access",
    "access_batch",
    "charge",
    "disk_retry",
    "fault_take_disk",
];

/// Callees a `DiskOp::…` value may be constructed inside (the charged
/// submission paths).
const CHARGED_CALLEES: &[&str] = &["disk_retry", "fault_take_disk"];

/// Names declared in this file with a `HashMap`/`HashSet` type or
/// constructor: `let m: HashMap<…>`, `frames: HashSet<…>` (fields,
/// params), `let m = HashMap::new()`.
pub(crate) fn hash_collection_names(pf: &ParsedFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..pf.len() {
        if !matches!(pf.text(i), "HashMap" | "HashSet") {
            continue;
        }
        // Walk back over the path prefix (`std :: collections ::`).
        let mut k = i;
        while k >= 2
            && pf.text(k - 1) == ":"
            && pf.text(k - 2) == ":"
            && pf.adjacent_pair(k - 2, "::")
        {
            if k >= 3 && pf.tok(k - 3).kind == TokenKind::Ident {
                k -= 3;
            } else {
                break;
            }
        }
        // Skip reference/mutability tokens (`m: &mut HashMap<…>`).
        while k >= 1 && matches!(pf.text(k - 1), "&" | "mut") {
            k -= 1;
        }
        if k == 0 {
            continue;
        }
        // Now expect the declaration separator: a single `:` (type
        // position) or `=` (constructor), with the bound name before it.
        let sep = k - 1;
        let sep_text = pf.text(sep);
        let single_colon = sep_text == ":"
            && !(sep >= 1 && pf.adjacent_pair(sep - 1, "::"))
            && !pf.adjacent_pair(sep, "::");
        if (single_colon || sep_text == "=") && sep >= 1 && pf.tok(sep - 1).kind == TokenKind::Ident
        {
            names.insert(pf.text(sep - 1).to_owned());
        }
    }
    names
}

/// Collects maximal `a::b::c` path chains; returns (segments, start
/// significant-index) for the chain beginning at `i`, or `None` if `i`
/// is not a chain head.
fn path_chain(pf: &ParsedFile, i: usize) -> Option<Vec<String>> {
    if pf.tok(i).kind != TokenKind::Ident {
        return None;
    }
    // Not a head if preceded by `::`.
    if i >= 2 && pf.text(i - 1) == ":" && pf.text(i - 2) == ":" && pf.adjacent_pair(i - 2, "::") {
        return None;
    }
    let mut segs = vec![pf.text(i).to_owned()];
    let mut j = i + 1;
    while j + 2 < pf.len()
        && pf.text(j) == ":"
        && pf.adjacent_pair(j, "::")
        && pf.tok(j + 2).kind == TokenKind::Ident
    {
        segs.push(pf.text(j + 2).to_owned());
        j += 3;
    }
    Some(segs)
}

/// Whether a path chain matches a needle (see [`NONDET_NEEDLES`]).
fn path_matches(segs: &[String], needle: &str) -> bool {
    let mut parts: Vec<&str> = needle.split("::").collect();
    let must_continue = parts.last() == Some(&"");
    if must_continue {
        parts.pop();
    }
    if parts.is_empty() {
        return false;
    }
    for w in 0..segs.len() {
        if w + parts.len() <= segs.len()
            && segs[w..w + parts.len()]
                .iter()
                .zip(&parts)
                .all(|(a, b)| a == *b)
            && (!must_continue || w + parts.len() < segs.len())
        {
            return true;
        }
    }
    false
}

/// Byte offset of the first `#[cfg(test)]` item; everything at or past
/// it is test-only (this workspace keeps unit tests in a trailing
/// `mod tests`).
fn cfg_test_cutoff(items: &[Item]) -> usize {
    let mut cutoff = usize::MAX;
    for item in items {
        item.walk(&mut |i| {
            if i.cfg_test {
                cutoff = cutoff.min(i.start);
            }
        });
    }
    cutoff
}

/// Significant-index ranges of bodies of [`CHARGED_FNS`].
fn charged_fn_bodies(items: &[Item]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for item in items {
        item.walk(&mut |i| {
            if let ItemKind::Fn(sig) = &i.kind {
                if CHARGED_FNS.contains(&i.name.as_str()) {
                    if let Some(body) = sig.body {
                        out.push(body);
                    }
                }
            }
        });
    }
    out
}

/// For each significant index, the significant index of the innermost
/// enclosing open bracket (or `usize::MAX` at top level).
fn enclosing_openers(pf: &ParsedFile) -> Vec<usize> {
    let mut encl = vec![usize::MAX; pf.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, slot) in encl.iter_mut().enumerate() {
        *slot = stack.last().copied().unwrap_or(usize::MAX);
        match pf.text(i) {
            "(" | "[" | "{" => stack.push(i),
            ")" | "]" | "}" => {
                stack.pop();
            }
            _ => {}
        }
    }
    encl
}

/// Runs the per-file token rules.
pub(crate) fn check_file(
    file: &str,
    pf: &ParsedFile,
    sim_crate: bool,
    charged_crate: bool,
    allows: &Allows,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // KL001/002/003/009 can match one site several ways (a line with
    // `std::time::SystemTime` hits two needles; an array of DiskOps
    // hits per element): those dedup per line. KL004/KL005 report each
    // occurrence.
    let mut seen: BTreeSet<(&'static str, usize)> = BTreeSet::new();
    let mut push = |out: &mut Vec<Diagnostic>, rule: &'static str, line: usize, msg: String| {
        let dedup = matches!(
            rule,
            RULE_UNORDERED_ITER | RULE_NONDET_API | RULE_THREAD_SPAWN | RULE_CLOCK_CHARGE
        );
        if allows.allowed(rule, line) {
            return;
        }
        if dedup && !seen.insert((rule, line)) {
            return;
        }
        out.push(Diagnostic::new(file, line, rule, msg));
    };

    let hash_names = hash_collection_names(pf);
    let test_cutoff = cfg_test_cutoff(&pf.items);

    // KL001 — iteration over an unordered collection.
    for i in 0..pf.len() {
        if pf.tok(i).kind != TokenKind::Ident || !hash_names.contains(pf.text(i)) {
            continue;
        }
        let name = pf.text(i);
        // `name.iter_method(`.
        if i + 3 < pf.len()
            && pf.text(i + 1) == "."
            && ITER_METHODS.contains(&pf.text(i + 2))
            && pf.text(i + 3) == "("
        {
            push(
                &mut out,
                RULE_UNORDERED_ITER,
                pf.tok(i + 2).line,
                format!(
                    "iteration over unordered collection `{name}.{}()`; use BTreeMap/BTreeSet or collect-and-sort (// lint: ordered-ok if order provably cannot reach a report)",
                    pf.text(i + 2)
                ),
            );
            continue;
        }
        // `for x in [&][mut] [recv.]name {`.
        if i + 1 < pf.len() && pf.text(i + 1) == "{" {
            let mut k = i;
            let mut found_in = false;
            while k > 0 && i - k <= 8 {
                k -= 1;
                let t = pf.text(k);
                if t == "in" {
                    found_in = true;
                    break;
                }
                let chainy =
                    t == "." || t == "&" || t == "mut" || pf.tok(k).kind == TokenKind::Ident;
                if !chainy {
                    break;
                }
            }
            if found_in {
                push(
                    &mut out,
                    RULE_UNORDERED_ITER,
                    pf.tok(i).line,
                    format!(
                        "iteration over unordered collection `{name}`; use BTreeMap/BTreeSet or collect-and-sort (// lint: ordered-ok if order provably cannot reach a report)"
                    ),
                );
            }
        }
    }

    // KL002/KL003 — nondeterministic APIs and thread spawns (sim crates).
    if sim_crate {
        for i in 0..pf.len() {
            let Some(segs) = path_chain(pf, i) else {
                continue;
            };
            if segs.len() == 1 && pf.tok(i).kind != TokenKind::Ident {
                continue;
            }
            for needle in NONDET_NEEDLES {
                if path_matches(&segs, needle) {
                    push(
                        &mut out,
                        RULE_NONDET_API,
                        pf.tok(i).line,
                        format!(
                            "nondeterministic API `{}` in a simulation crate; all time comes from the virtual clock (// lint: nondet-ok if sanctioned)",
                            segs.join("::")
                        ),
                    );
                    break;
                }
            }
            for needle in SPAWN_NEEDLES {
                if path_matches(&segs, needle) {
                    push(
                        &mut out,
                        RULE_THREAD_SPAWN,
                        pf.tok(i).line,
                        format!(
                            "thread spawning `{}` in a simulation crate; kloc-sim owns all concurrency (// lint: nondet-ok if sanctioned)",
                            segs.join("::")
                        ),
                    );
                    break;
                }
            }
        }
    }

    // KL004 — truncating casts on id-like values.
    for i in 0..pf.len() {
        if pf.text(i) != "as" || i + 1 >= pf.len() {
            continue;
        }
        let target = pf.text(i + 1);
        if !matches!(target, "u8" | "u16" | "u32") {
            continue;
        }
        if i == 0 {
            continue;
        }
        // Walk back over a `.0` projection to the value name.
        let mut k = i - 1;
        if pf.tok(k).kind == TokenKind::Int && k >= 1 && pf.text(k - 1) == "." && k >= 2 {
            k -= 2;
        }
        if pf.tok(k).kind != TokenKind::Ident {
            continue;
        }
        let name = pf.text(k);
        let id_like = name
            .split('_')
            .any(|seg| ID_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()));
        if id_like {
            push(
                &mut out,
                RULE_TRUNCATING_CAST,
                pf.tok(i).line,
                format!(
                    "truncating cast `{name} as {target}` on an id-like value; use From/try_from (// lint: truncation-ok if the truncation is the semantics)"
                ),
            );
        }
    }

    // KL005 — unwrap/expect in sim-crate non-test code.
    if sim_crate {
        for i in 0..pf.len() {
            if pf.text(i) == "."
                && i + 2 < pf.len()
                && matches!(pf.text(i + 1), "unwrap" | "expect")
                && pf.text(i + 2) == "("
                && pf.tok(i + 1).start < test_cutoff
            {
                push(
                    &mut out,
                    RULE_UNWRAP,
                    pf.tok(i + 1).line,
                    format!(
                        "`.{}()` in simulation code can panic mid-run; propagate the error (// lint: unwrap-ok if provably present)",
                        pf.text(i + 1)
                    ),
                );
            }
        }
    }

    // KL009 — clock-charge discipline in crates/kernel and crates/mem.
    if charged_crate {
        let exempt = charged_fn_bodies(&pf.items);
        let in_exempt = |i: usize| exempt.iter().any(|&(lo, hi)| i >= lo && i < hi);
        let encl = enclosing_openers(pf);

        for i in 0..pf.len() {
            if pf.tok(i).start >= test_cutoff || in_exempt(i) {
                continue;
            }
            // `frames.touch(` / `clock.advance(` outside the charged APIs.
            if pf.text(i) == "."
                && i >= 1
                && i + 2 < pf.len()
                && matches!(pf.text(i - 1), "frames" | "clock")
                && matches!(pf.text(i + 1), "touch" | "advance")
                && pf.text(i + 2) == "("
            {
                let call = format!("{}.{}", pf.text(i - 1), pf.text(i + 1));
                push(
                    &mut out,
                    RULE_CLOCK_CHARGE,
                    pf.tok(i + 1).line,
                    format!(
                        "`{call}(…)` outside a charged API; route through access/access_batch/charge or annotate `// lint: charge-ok`"
                    ),
                );
                continue;
            }
            // `DiskOp::Variant` constructed outside a charged submission.
            if pf.text(i) == "DiskOp"
                && i + 3 < pf.len()
                && pf.adjacent_pair(i + 1, "::")
                && pf.tok(i + 3).kind == TokenKind::Ident
            {
                let variant = i + 3;
                // Pattern position (`DiskOp::Read => …`, `DiskOp::Read | …`)
                // is a match arm, not a submission.
                let after = variant + 1;
                let is_pattern = after < pf.len()
                    && (pf.text(after) == "|"
                        || (pf.text(after) == "=" && pf.adjacent_pair(after, "=>")));
                if is_pattern {
                    continue;
                }
                // Walk up enclosing brackets to the innermost call.
                let mut o = encl[i];
                let mut charged = false;
                let mut boundary = false;
                while o != usize::MAX && !boundary {
                    match pf.text(o) {
                        "(" if o >= 1 && pf.tok(o - 1).kind == TokenKind::Ident => {
                            charged = CHARGED_CALLEES.contains(&pf.text(o - 1));
                            boundary = true;
                        }
                        "{" | "[" => boundary = true,
                        _ => o = encl[o],
                    }
                }
                if !charged {
                    push(
                        &mut out,
                        RULE_CLOCK_CHARGE,
                        pf.tok(i).line,
                        format!(
                            "`DiskOp::{}` constructed outside a charged submission path (disk_retry/fault_take_disk); or annotate `// lint: charge-ok`",
                            pf.text(variant)
                        ),
                    );
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_hash_collection_names() {
        let pf = ParsedFile::parse(
            "let a: HashMap<u8,u8> = HashMap::new();\nstruct S { frames: HashSet<u32> }\nlet b = std::collections::HashMap::new();",
        );
        let names = hash_collection_names(&pf);
        assert!(names.contains("a"));
        assert!(names.contains("frames"));
        assert!(names.contains("b"));
    }

    #[test]
    fn path_chains_and_needles() {
        let pf = ParsedFile::parse("std::time::Instant::now()");
        let segs = path_chain(&pf, 0).expect("chain");
        assert_eq!(segs, vec!["std", "time", "Instant", "now"]);
        assert!(path_matches(&segs, "std::time"));
        assert!(path_matches(&segs, "Instant::now"));
        assert!(!path_matches(&segs, "std::env"));
        let operand = vec!["operand".to_owned(), "foo".to_owned()];
        assert!(!path_matches(&operand, "rand::"));
        let r = vec!["rand".to_owned(), "thread_rng".to_owned()];
        assert!(path_matches(&r, "rand::"));
        assert!(!path_matches(&["rand".to_owned()], "rand::"));
    }

    #[test]
    fn charged_rule_flags_raw_touch_and_diskop() {
        let src = r#"
// lint: treat-as-charged-crate
impl M {
    fn access(&mut self, f: u64) { self.frames.touch(f); self.clock.advance(1); }
    fn migrate(&mut self) {
        self.frames.touch(3);
        self.clock.advance(2);
    }
    fn submit(&mut self) {
        self.disk_retry(ctx, DiskOp::Write)?;
        let staged = [DiskOp::Read, DiskOp::Fsync];
    }
    fn dispatch(&self, op: DiskOp) -> u64 {
        match op { DiskOp::Read => 1, DiskOp::Write | DiskOp::Fsync => 2 }
    }
}
"#;
        let d = crate::lint_source("t.rs", src, false);
        let triples: Vec<(usize, &str)> = d.iter().map(|d| (d.line, d.rule)).collect();
        assert_eq!(
            triples,
            vec![
                (6, RULE_CLOCK_CHARGE),
                (7, RULE_CLOCK_CHARGE),
                (11, RULE_CLOCK_CHARGE),
            ],
            "{d:?}"
        );
    }

    #[test]
    fn charge_ok_pragma_silences() {
        let src = "// lint: treat-as-charged-crate\nfn migrate(clock: &mut C) {\n// lint: charge-ok — cost charged via migration ledger\nclock.advance(2);\n}";
        assert!(crate::lint_source("t.rs", src, false).is_empty());
    }
}
