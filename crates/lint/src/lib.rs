//! Determinism lint for the KLOCs workspace.
//!
//! Both seed bugs this repository has shipped were silent nondeterminism
//! from iterating an unordered collection (`kernel.rs` `by_inode`, the
//! AutoNUMA `app_pages` set). The simulation's contract is stronger than
//! "mostly deterministic": identical configs must produce byte-identical
//! reports, which forbids hash-order iteration, wall-clock time,
//! randomness, and ambient environment reads anywhere inside the
//! simulation crates. This crate is a dependency-free token/line scanner
//! that enforces those rules statically, as `cargo run -p kloc-lint` and
//! as a blocking CI job.
//!
//! # Rules
//!
//! | id    | rule |
//! |-------|------|
//! | KL001 | no iteration over `HashMap`/`HashSet` (hash order is unstable) |
//! | KL002 | no wall clock / randomness / `std::env` in simulation crates |
//! | KL003 | no thread spawning in simulation crates (`kloc-sim` is the only sanctioned concurrency site) |
//! | KL004 | no truncating `as` casts on id/epoch-like values (use `From`/`try_from`) |
//! | KL005 | no `.unwrap()`/`.expect(..)` in simulation-crate non-test code (propagate the error) |
//!
//! KL002/KL003/KL005 apply only to the simulation crates (`mem`,
//! `kernel`, `core`, `policy`, `workloads`); the `kloc-sim` harness
//! legitimately reads CLI args and wall-clock time and spawns its sweep
//! threads. KL005 additionally exempts everything from the first
//! `#[cfg(test)]` line to the end of the file (this workspace keeps its
//! unit tests in a trailing `mod tests`), since tests unwrap freely.
//!
//! # Justification comments
//!
//! A violation that is provably harmless is silenced with a justification
//! comment on the same line or the line directly above:
//!
//! * `// lint: ordered-ok` — iteration order does not affect any report
//!   (KL001);
//! * `// lint: truncation-ok` — the truncation is the documented
//!   semantics (KL004, e.g. `FrameId::slot` extracting the low bits);
//! * `// lint: nondet-ok` — sanctioned ambient authority (KL002/KL003);
//! * `// lint: unwrap-ok` — the value is provably present at this site
//!   (KL005, e.g. a lookup guarded by the line above; say why).
//!
//! Appending `(file)` (e.g. `// lint: ordered-ok(file)`) silences the
//! rule for the whole file. The pragma `// lint: treat-as-sim-crate`
//! opts a file into the sim-crate-only rules (used by test fixtures).
//!
//! The scanner strips comments and string literals before matching, so
//! documentation may freely mention `HashMap` or `Instant::now`.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// File the finding is in (as passed to the linter).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`KL001`..`KL004`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule id: iteration over an unordered collection.
pub const RULE_UNORDERED_ITER: &str = "KL001";
/// Rule id: nondeterministic API (time, randomness, env) in a sim crate.
pub const RULE_NONDET_API: &str = "KL002";
/// Rule id: thread spawning in a sim crate.
pub const RULE_THREAD_SPAWN: &str = "KL003";
/// Rule id: truncating cast on an id/epoch-like value.
pub const RULE_TRUNCATING_CAST: &str = "KL004";
/// Rule id: `.unwrap()`/`.expect(..)` in sim-crate non-test code.
pub const RULE_UNWRAP: &str = "KL005";

/// Iterator-yielding methods that expose hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// APIs that break run-to-run determinism (KL002): wall-clock time,
/// randomness, and ambient environment reads.
const NONDET_NEEDLES: &[&str] = &[
    "std::time",
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "rand::",
    "getrandom",
    "RandomState",
    "std::env",
];

/// Concurrency entry points (KL003).
const SPAWN_NEEDLES: &[&str] = &["std::thread", "thread::spawn", "rayon::", "crossbeam"];

/// Identifier segments that mark a value as an id/epoch (KL004). A
/// trailing `.0` tuple projection also counts: every id in this codebase
/// is a `u64` newtype.
const ID_SEGMENTS: &[&str] = &["epoch", "inode", "ino", "id", "fd", "obj", "shard"];

/// Replaces comments and string/char literal contents with spaces,
/// preserving line structure, so the rule matchers never fire on
/// documentation or message text.
pub fn strip_comments_and_strings(source: &str) -> String {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let n = bytes.len();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < n {
        let c = bytes[i];
        match c {
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let mut depth = 1;
                out.push(' ');
                out.push(' ');
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else {
                        out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < n {
                    if bytes[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if bytes[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' | 'b' if !(i > 0 && is_ident(bytes[i - 1])) => {
                // Possible raw/byte string: r"...", r#"..."#, br"...", b"...".
                let mut j = i;
                if bytes[j] == 'b' && j + 1 < n && bytes[j + 1] == 'r' {
                    j += 1;
                }
                let mut hashes = 0;
                let mut k = j + 1;
                while k < n && bytes[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && bytes[k] == '"' && (bytes[j] == 'r' || (bytes[i] == 'b' && j == i)) {
                    // Emit the prefix as spaces, then consume to the
                    // matching closing quote (+ hashes).
                    for _ in i..=k {
                        out.push(' ');
                    }
                    i = k + 1;
                    while i < n {
                        if bytes[i] == '"' {
                            let mut h = 0;
                            while h < hashes && i + 1 + h < n && bytes[i + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i += 1 + hashes;
                                break;
                            }
                        }
                        out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' or '\..' is a literal;
                // 'ident (no closing quote right after) is a lifetime.
                if i + 1 < n && bytes[i + 1] == '\\' {
                    out.push(' ');
                    i += 1;
                    while i < n && bytes[i] != '\'' {
                        out.push(' ');
                        i += 1;
                    }
                    if i < n {
                        out.push(' ');
                        i += 1;
                    }
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    out.push(' ');
                    out.push(' ');
                    out.push(' ');
                    i += 3;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Whether `text[pos..pos+len]` is a whole-word occurrence.
fn whole_word(text: &[char], pos: usize, len: usize) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let before_ok = pos == 0 || !is_ident(text[pos - 1]);
    let after_ok = pos + len >= text.len() || !is_ident(text[pos + len]);
    before_ok && after_ok
}

/// Whole-word occurrences of `needle` in `line`, as char offsets.
fn word_positions(line: &[char], needle: &str) -> Vec<usize> {
    let nd: Vec<char> = needle.chars().collect();
    let mut out = Vec::new();
    if nd.is_empty() || line.len() < nd.len() {
        return out;
    }
    for start in 0..=(line.len() - nd.len()) {
        if line[start..start + nd.len()] == nd[..] && whole_word(line, start, nd.len()) {
            out.push(start);
        }
    }
    out
}

/// Identifier (dotted path allowed) ending right before `end`, skipping
/// trailing whitespace. Returns e.g. `self.0`, `frame_key`, `k.epoch`.
fn path_ending_at(line: &[char], end: usize) -> String {
    let mut j = end;
    while j > 0 && line[j - 1].is_whitespace() {
        j -= 1;
    }
    let mut start = j;
    while start > 0 {
        let c = line[start - 1];
        if c.is_alphanumeric() || c == '_' || c == '.' {
            start -= 1;
        } else {
            break;
        }
    }
    line[start..j].iter().collect()
}

/// Per-file allow state parsed from justification comments.
struct Allows {
    /// rule token -> file-wide allow.
    file_wide: [bool; 4],
    /// rule token -> lines (1-based) on which the rule is allowed.
    lines: [BTreeSet<usize>; 4],
    treat_as_sim: bool,
}

const ALLOW_TOKENS: [&str; 4] = ["ordered-ok", "nondet-ok", "truncation-ok", "unwrap-ok"];

fn allow_slot(rule: &str) -> usize {
    match rule {
        RULE_UNORDERED_ITER => 0,
        RULE_NONDET_API | RULE_THREAD_SPAWN => 1,
        RULE_TRUNCATING_CAST => 2,
        RULE_UNWRAP => 3,
        _ => unreachable!("unknown rule"),
    }
}

fn parse_allows(source: &str) -> Allows {
    let mut allows = Allows {
        file_wide: [false; 4],
        lines: [
            BTreeSet::new(),
            BTreeSet::new(),
            BTreeSet::new(),
            BTreeSet::new(),
        ],
        treat_as_sim: false,
    };
    for (idx, line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.find("lint:") else {
            continue;
        };
        let directive = line[pos + "lint:".len()..].trim();
        if directive.starts_with("treat-as-sim-crate") {
            allows.treat_as_sim = true;
            continue;
        }
        for (slot, token) in ALLOW_TOKENS.iter().enumerate() {
            if let Some(rest) = directive.strip_prefix(token) {
                if rest.trim_start().starts_with("(file)") {
                    allows.file_wide[slot] = true;
                } else {
                    // The justification covers its own line and the next.
                    allows.lines[slot].insert(lineno);
                    allows.lines[slot].insert(lineno + 1);
                }
            }
        }
    }
    allows
}

impl Allows {
    fn allowed(&self, rule: &str, line: usize) -> bool {
        let slot = allow_slot(rule);
        self.file_wide[slot] || self.lines[slot].contains(&line)
    }
}

/// Names bound to `HashMap`/`HashSet` in this file: struct fields,
/// `let` bindings, and function parameters declared as `name: HashMap<..>`
/// or assigned `= HashMap::new()`.
fn hash_collection_names(clean_lines: &[Vec<char>]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in clean_lines {
        for ty in ["HashMap", "HashSet"] {
            for pos in word_positions(line, ty) {
                // `name: [&'a mut Option<]HashMap<..>`: nearest single `:`
                // to the left, with only type-ish characters in between.
                let mut j = pos;
                let mut found_colon = None;
                while j > 0 {
                    let c = line[j - 1];
                    if c == ':' {
                        if j >= 2 && line[j - 2] == ':' {
                            // `::` path separator (e.g. collections::HashMap):
                            // keep scanning left past the whole path.
                            j -= 2;
                            continue;
                        }
                        found_colon = Some(j - 1);
                        break;
                    }
                    if c.is_alphanumeric()
                        || c.is_whitespace()
                        || matches!(c, '_' | '&' | '\'' | '<' | '(')
                    {
                        j -= 1;
                    } else {
                        break;
                    }
                }
                if let Some(colon) = found_colon {
                    let name = path_ending_at(line, colon);
                    let last = name.rsplit('.').next().unwrap_or("");
                    // lint: unwrap-ok — guarded by !last.is_empty()
                    if !last.is_empty() && !last.chars().next().unwrap().is_numeric() {
                        names.insert(last.to_owned());
                    }
                    continue;
                }
                // `name = HashMap::new()` / `name = HashSet::with_capacity(..)`.
                let mut j = pos;
                while j > 0 && line[j - 1].is_whitespace() {
                    j -= 1;
                }
                if j > 0 && line[j - 1] == '=' && !(j >= 2 && matches!(line[j - 2], '=' | '!')) {
                    let name = path_ending_at(line, j - 1);
                    let last = name.rsplit('.').next().unwrap_or("");
                    // lint: unwrap-ok — guarded by !last.is_empty()
                    if !last.is_empty() && !last.chars().next().unwrap().is_numeric() {
                        names.insert(last.to_owned());
                    }
                }
            }
        }
    }
    names
}

/// Lints one file's source text. `sim_crate` enables the KL002/KL003
/// rules (files inside `crates/{trace,mem,kernel,core,policy,workloads}`).
pub fn lint_source(file: &str, source: &str, sim_crate: bool) -> Vec<Diagnostic> {
    let allows = parse_allows(source);
    let sim_crate = sim_crate || allows.treat_as_sim;
    let clean = strip_comments_and_strings(source);
    let clean_lines: Vec<Vec<char>> = clean.lines().map(|l| l.chars().collect()).collect();
    let mut out = Vec::new();
    let mut push = |rule: &'static str, lineno: usize, message: String| {
        if !allows.allowed(rule, lineno) {
            out.push(Diagnostic {
                file: file.to_owned(),
                line: lineno,
                rule,
                message,
            });
        }
    };

    // KL001: iteration over bindings declared as HashMap/HashSet.
    let hash_names = hash_collection_names(&clean_lines);
    for (idx, line) in clean_lines.iter().enumerate() {
        let lineno = idx + 1;
        for name in &hash_names {
            for pos in word_positions(line, name) {
                let after = pos + name.chars().count();
                // `name.iter()` and friends.
                if after < line.len() && line[after] == '.' {
                    let method: String = line[after + 1..]
                        .iter()
                        .take_while(|c| c.is_alphanumeric() || **c == '_')
                        .collect();
                    if ITER_METHODS.contains(&method.as_str()) {
                        push(
                            RULE_UNORDERED_ITER,
                            lineno,
                            format!(
                                "iteration over unordered `{name}` via `.{method}()`; \
                                 use a BTreeMap/BTreeSet or justify with `// lint: ordered-ok`"
                            ),
                        );
                        continue;
                    }
                }
                // `for x in [&[mut ]]name`.
                let mut j = pos;
                while j > 0 && matches!(line[j - 1], '&' | ' ' | '\t') {
                    j -= 1;
                }
                let mut prefix = path_ending_at(line, j);
                if prefix == "mut" {
                    j -= "mut".len();
                    while j > 0 && matches!(line[j - 1], '&' | ' ' | '\t') {
                        j -= 1;
                    }
                    prefix = path_ending_at(line, j);
                }
                if prefix == "in" {
                    push(
                        RULE_UNORDERED_ITER,
                        lineno,
                        format!(
                            "`for` loop over unordered `{name}`; \
                             use a BTreeMap/BTreeSet or justify with `// lint: ordered-ok`"
                        ),
                    );
                }
            }
        }
    }

    // KL002/KL003: sim crates must stay free of ambient authority.
    if sim_crate {
        for (idx, line) in clean_lines.iter().enumerate() {
            let lineno = idx + 1;
            let text: String = line.iter().collect();
            // At most one diagnostic per rule per line (several needles
            // often overlap, e.g. `std::thread::spawn`).
            if let Some(needle) = NONDET_NEEDLES.iter().find(|n| text.contains(*n)) {
                push(
                    RULE_NONDET_API,
                    lineno,
                    format!(
                        "`{needle}` in a simulation crate breaks determinism; \
                         route configuration through params/config instead"
                    ),
                );
            }
            if let Some(needle) = SPAWN_NEEDLES.iter().find(|n| text.contains(*n)) {
                push(
                    RULE_THREAD_SPAWN,
                    lineno,
                    format!(
                        "`{needle}` in a simulation crate; \
                         `kloc-sim` is the only sanctioned concurrency site"
                    ),
                );
            }
        }
    }

    // KL005: unwrap/expect in sim-crate non-test code. The scanner sees
    // tokens, not types, so it flags every `.unwrap()`/`.expect(` —
    // provably-infallible sites carry a `// lint: unwrap-ok` reason.
    // Everything from the first `#[cfg(test)]` on is exempt (this
    // workspace keeps unit tests in a trailing `mod tests`).
    if sim_crate {
        let test_boundary = clean_lines
            .iter()
            .position(|l| {
                let text: String = l.iter().collect();
                text.contains("#[cfg(test)]")
            })
            .unwrap_or(clean_lines.len());
        for (idx, line) in clean_lines.iter().enumerate().take(test_boundary) {
            let lineno = idx + 1;
            for method in ["unwrap", "expect"] {
                for pos in word_positions(line, method) {
                    let after = pos + method.len();
                    if pos == 0 || line[pos - 1] != '.' {
                        continue; // not a method call (e.g. `fn unwrap`)
                    }
                    if after >= line.len() || line[after] != '(' {
                        continue; // `.expect` split across lines: rare, skip
                    }
                    push(
                        RULE_UNWRAP,
                        lineno,
                        format!(
                            "`.{method}(..)` in a simulation crate can panic mid-run; \
                             propagate the error or justify with `// lint: unwrap-ok`"
                        ),
                    );
                }
            }
        }
    }

    // KL004: truncating casts on id/epoch-like values.
    for (idx, line) in clean_lines.iter().enumerate() {
        let lineno = idx + 1;
        for pos in word_positions(line, "as") {
            // Target type directly after: u8/u16/u32 truncate u64 ids.
            let mut j = pos + 2;
            while j < line.len() && line[j].is_whitespace() {
                j += 1;
            }
            let ty: String = line[j..]
                .iter()
                .take_while(|c| c.is_alphanumeric() || **c == '_')
                .collect();
            if !matches!(ty.as_str(), "u8" | "u16" | "u32") {
                continue;
            }
            let path = path_ending_at(line, pos);
            if path.is_empty() {
                continue; // parenthesized expression: out of scope
            }
            let segments: Vec<&str> = path.split('.').filter(|s| !s.is_empty()).collect();
            let id_like = segments.iter().any(|s| {
                ID_SEGMENTS.contains(s)
                    || s.ends_with("_id")
                    || s.ends_with("_epoch")
                    || s.ends_with("_shard")
            }) || segments.last() == Some(&"0");
            if id_like {
                push(
                    RULE_TRUNCATING_CAST,
                    lineno,
                    format!(
                        "truncating cast `{path} as {ty}` on an id/epoch-like value; \
                         use `From`/`try_from` or justify with `// lint: truncation-ok`"
                    ),
                );
            }
        }
    }

    out.sort();
    out
}

/// Whether a workspace-relative path is test-only code (an integration
/// `tests/` tree or a `benches/` tree): exempt from KL005, which
/// targets code that runs inside simulations.
pub fn is_test_path(rel: &Path) -> bool {
    rel.components()
        .any(|c| matches!(c.as_os_str().to_str(), Some("tests" | "benches")))
}

/// Whether a workspace-relative path belongs to a simulation crate
/// (where the KL002/KL003 rules apply).
pub fn is_sim_crate_path(rel: &Path) -> bool {
    const SIM_CRATES: &[&str] = &["trace", "mem", "kernel", "core", "policy", "workloads"];
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if comps.next().as_deref() != Some("crates") {
        return false;
    }
    match comps.next() {
        Some(c) => SIM_CRATES.contains(&c.as_ref()),
        None => false,
    }
}

/// Collects the workspace `.rs` files to lint under `root`, skipping
/// build output and the lint's own violation fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace source file under `root`. Paths in diagnostics
/// are workspace-relative.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in workspace_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let source = std::fs::read_to_string(&path)?;
        let test_path = is_test_path(&rel);
        out.extend(
            lint_source(&rel.display().to_string(), &source, is_sim_crate_path(&rel))
                .into_iter()
                .filter(|d| !(test_path && d.rule == RULE_UNWRAP)),
        );
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = "let a = 1; // HashMap iter\n/* Instant::now */ let b = 2;";
        let c = strip_comments_and_strings(s);
        assert!(!c.contains("HashMap"));
        assert!(!c.contains("Instant"));
        assert!(c.contains("let a = 1;"));
        assert!(c.contains("let b = 2;"));
    }

    #[test]
    fn strips_strings_and_raw_strings() {
        let s = r####"let a = "std::env"; let b = r#"thread_rng"#; let c = 'x';"####;
        let c = strip_comments_and_strings(s);
        assert!(!c.contains("std::env"));
        assert!(!c.contains("thread_rng"));
        assert!(c.contains("let a ="));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet m: HashMap<u8, u8> = HashMap::new();\nm.keys();";
        let d = lint_source("t.rs", s, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_UNORDERED_ITER);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn flags_iteration_over_hash_fields() {
        let s = "struct S { frame_key: HashMap<u32, u32> }\nimpl S { fn f(&self) { for k in self.frame_key.keys() {} } }";
        let d = lint_source("t.rs", s, false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].rule, RULE_UNORDERED_ITER);
    }

    #[test]
    fn ordered_ok_silences_same_and_next_line() {
        let s = "let m: HashSet<u8> = HashSet::new();\n// lint: ordered-ok — counts only\nfor x in &m {}\nm.iter(); // lint: ordered-ok";
        assert!(lint_source("t.rs", s, false).is_empty());
    }

    #[test]
    fn file_wide_allow() {
        let s = "// lint: ordered-ok(file)\nlet m: HashMap<u8,u8> = HashMap::new();\nm.keys();\nm.values();";
        assert!(lint_source("t.rs", s, false).is_empty());
    }

    #[test]
    fn lookups_are_not_flagged() {
        let s = "let m: HashMap<u8,u8> = HashMap::new();\nm.get(&1); m.insert(1,2); m.remove(&1); m.contains_key(&1); m.len();";
        assert!(lint_source("t.rs", s, false).is_empty());
    }

    #[test]
    fn nondet_rules_only_in_sim_crates() {
        let s = "let t = Instant::now();\nstd::thread::spawn(|| {});";
        assert!(lint_source("t.rs", s, false).is_empty());
        let d = lint_source("t.rs", s, true);
        let rules: Vec<&str> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RULE_NONDET_API));
        assert!(rules.contains(&RULE_THREAD_SPAWN));
    }

    #[test]
    fn truncating_casts_on_ids() {
        let s = "let a = inode.0 as u32;\nlet b = epoch as u16;\nlet c = len as u32;\nlet d = frame_id as u8;";
        let d = lint_source("t.rs", s, false);
        let lines: Vec<usize> = d.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![1, 2, 4], "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_TRUNCATING_CAST));
    }

    #[test]
    fn widening_casts_are_fine() {
        let s = "let a = inode.0 as u64;\nlet b = id as usize;\nlet c = x as u32;";
        assert!(lint_source("t.rs", s, false).is_empty());
    }

    #[test]
    fn unwrap_flagged_only_in_sim_crates_outside_tests() {
        let s = "fn f() { x.unwrap(); y.expect(\"msg\"); z.unwrap_or(3); }\n#[cfg(test)]\nmod tests { fn g() { a.unwrap(); } }";
        assert!(lint_source("t.rs", s, false).is_empty());
        let d = lint_source("t.rs", s, true);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_UNWRAP && d.line == 1));
    }

    #[test]
    fn unwrap_ok_justification_silences() {
        let s = "// lint: unwrap-ok — inserted two lines up\nx.unwrap();\ny.expect(\"present\"); // lint: unwrap-ok";
        assert!(lint_source("t.rs", s, true).is_empty());
    }

    #[test]
    fn sim_crate_paths() {
        assert!(is_sim_crate_path(Path::new("crates/mem/src/system.rs")));
        assert!(is_sim_crate_path(Path::new("crates/policy/src/kloc.rs")));
        assert!(is_sim_crate_path(Path::new("crates/trace/src/recorder.rs")));
        assert!(!is_sim_crate_path(Path::new("crates/sim/src/engine.rs")));
        assert!(!is_sim_crate_path(Path::new("crates/lint/src/lib.rs")));
        assert!(!is_sim_crate_path(Path::new("src/lib.rs")));
    }
}
