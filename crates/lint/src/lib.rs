//! Structural determinism lint for the KLOCs workspace.
//!
//! Both seed bugs this repository has shipped were silent nondeterminism
//! from iterating an unordered collection (`kernel.rs` `by_inode`, the
//! AutoNUMA `app_pages` set). The simulation's contract is stronger than
//! "mostly deterministic": identical configs must produce byte-identical
//! reports, which forbids hash-order iteration, wall-clock time,
//! randomness, and ambient environment reads anywhere inside the
//! simulation crates — and, since PR 7, requires every frame touch and
//! disk submission to run through the exactly-charged clock APIs.
//!
//! v2 replaces the original token/line scanner with a structural
//! analyzer: a lossless lexer ([`lex`]), an item-level parser
//! ([`items`]) recovering `fn` signatures, bodies, and `#[cfg]` atoms,
//! and on top of them per-file token rules, an intra-procedural taint
//! pass, and two workspace-level rules that read every file of a crate
//! (and its `Cargo.toml`) at once.
//!
//! # Rules
//!
//! | id    | rule |
//! |-------|------|
//! | KL001 | no iteration over `HashMap`/`HashSet` (hash order is unstable) |
//! | KL002 | no wall clock / randomness / `std::env` in simulation crates |
//! | KL003 | no thread spawning in simulation crates (`kloc-sim` is the only sanctioned concurrency site) |
//! | KL004 | no truncating `as` casts on id/epoch-like values (use `From`/`try_from`) |
//! | KL005 | no `.unwrap()`/`.expect(..)` in simulation-crate non-test code (propagate the error) |
//! | KL006 | `#[cfg(feature = "X")]` / `#[cfg(not(feature = "X"))]` item pairs must expose identical signatures (feature-shim conformance) |
//! | KL007 | every feature referenced in `cfg`/`cfg_attr` must be declared in the crate's `Cargo.toml` and forwarded to declaring dependencies |
//! | KL008 | no dataflow from nondeterministic sources (hash iteration, pointer identity) into report-visible sinks (report fields, trace emits, sort keys) |
//! | KL009 | in `crates/kernel`/`crates/mem`, frame touches and `DiskOp` submissions must flow through a charged API (`access`, `access_batch`, `disk_retry`) |
//!
//! KL002/KL003/KL005 apply only to the simulation crates (`trace`,
//! `mem`, `kernel`, `core`, `policy`, `workloads`); the `kloc-sim`
//! harness legitimately reads CLI args and wall-clock time and spawns
//! its sweep threads. KL005 exempts everything from the first
//! `#[cfg(test)]` on (this workspace keeps unit tests in a trailing
//! `mod tests`). KL009 applies only to `crates/kernel` and
//! `crates/mem` non-test code.
//!
//! # Justification comments
//!
//! A violation that is provably harmless is silenced with a
//! justification comment on the same line or the line directly above:
//!
//! * `// lint: ordered-ok` — iteration order does not affect any report
//!   (KL001);
//! * `// lint: nondet-ok` — sanctioned ambient authority (KL002/KL003);
//! * `// lint: truncation-ok` — the truncation is the documented
//!   semantics (KL004);
//! * `// lint: unwrap-ok` — the value is provably present (KL005);
//! * `// lint: shim-ok` — an intentional real/noop signature divergence
//!   (KL006);
//! * `// lint: feature-ok` — a deliberately undeclared/unforwarded
//!   feature reference (KL007);
//! * `// lint: taint-ok` — the flow is order-insensitive, e.g. a
//!   commutative reduction (KL008);
//! * `// lint: charge-ok` — the site charges the clock through its own
//!   sanctioned path (KL009, e.g. the migration cost path).
//!
//! Appending `(file)` (e.g. `// lint: ordered-ok(file)`) silences the
//! rule for the whole file. `// lint: treat-as-sim-crate` opts a file
//! into the sim-crate rules and `// lint: treat-as-charged-crate` into
//! KL009 (both used by test fixtures).
//!
//! # Fixes and explanations
//!
//! Some diagnostics carry a machine-applicable [`Suggestion`]
//! (KL006 noop-shim signature drift, KL007 undeclared features);
//! `kloc-lint --fix` applies them. `kloc-lint --explain KL006` prints a
//! rule's rationale, its justification pragma, and a minimal violating
//! example sourced from the fixture suite.

#![warn(missing_docs)]

pub mod explain;
pub mod items;
pub mod lex;

mod conformance;
mod hygiene;
mod rules;
mod taint;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use items::ParsedFile;

/// A machine-applicable replacement attached to a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suggestion {
    /// File the replacement applies to (may differ from the diagnostic
    /// file, e.g. a `Cargo.toml` fix for a source-level finding).
    pub file: String,
    /// Byte offset where the replaced range starts.
    pub start: usize,
    /// Byte offset one past the replaced range (`start == end` inserts).
    pub end: usize,
    /// Replacement text.
    pub replacement: String,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// File the finding is in (as passed to the linter).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`KL001`..`KL009`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Secondary spans and context, rendered as `note:` lines (e.g.
    /// the other half of a shim pair, a taint source).
    pub notes: Vec<String>,
    /// Machine-applicable fix, when one exists.
    pub suggestion: Option<Suggestion>,
}

impl Diagnostic {
    /// A diagnostic with no notes and no suggestion.
    pub fn new(file: &str, line: usize, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_owned(),
            line,
            rule,
            message,
            notes: Vec::new(),
            suggestion: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )?;
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        if self.suggestion.is_some() {
            write!(f, "\n  fix: available (run `kloc-lint --fix`)")?;
        }
        Ok(())
    }
}

/// Rule id: iteration over an unordered collection.
pub const RULE_UNORDERED_ITER: &str = "KL001";
/// Rule id: nondeterministic API (time, randomness, env) in a sim crate.
pub const RULE_NONDET_API: &str = "KL002";
/// Rule id: thread spawning in a sim crate.
pub const RULE_THREAD_SPAWN: &str = "KL003";
/// Rule id: truncating cast on an id/epoch-like value.
pub const RULE_TRUNCATING_CAST: &str = "KL004";
/// Rule id: `.unwrap()`/`.expect(..)` in sim-crate non-test code.
pub const RULE_UNWRAP: &str = "KL005";
/// Rule id: feature-shim signature drift between `cfg` polarities.
pub const RULE_SHIM_CONFORMANCE: &str = "KL006";
/// Rule id: cfg feature hygiene (undeclared or unforwarded features).
pub const RULE_CFG_HYGIENE: &str = "KL007";
/// Rule id: determinism taint reaching a report-visible sink.
pub const RULE_DETERMINISM_TAINT: &str = "KL008";
/// Rule id: uncharged frame touch / disk submission.
pub const RULE_CLOCK_CHARGE: &str = "KL009";

/// Per-file allow state parsed from justification comments.
pub(crate) struct Allows {
    file_wide: [bool; 8],
    lines: [BTreeSet<usize>; 8],
    treat_as_sim: bool,
    treat_as_charged: bool,
}

const ALLOW_TOKENS: [&str; 8] = [
    "ordered-ok",
    "nondet-ok",
    "truncation-ok",
    "unwrap-ok",
    "shim-ok",
    "feature-ok",
    "taint-ok",
    "charge-ok",
];

fn allow_slot(rule: &str) -> usize {
    match rule {
        RULE_UNORDERED_ITER => 0,
        RULE_NONDET_API | RULE_THREAD_SPAWN => 1,
        RULE_TRUNCATING_CAST => 2,
        RULE_UNWRAP => 3,
        RULE_SHIM_CONFORMANCE => 4,
        RULE_CFG_HYGIENE => 5,
        RULE_DETERMINISM_TAINT => 6,
        RULE_CLOCK_CHARGE => 7,
        _ => unreachable!("unknown rule"),
    }
}

pub(crate) fn parse_allows(source: &str) -> Allows {
    let mut allows = Allows {
        file_wide: [false; 8],
        lines: Default::default(),
        treat_as_sim: false,
        treat_as_charged: false,
    };
    for (idx, line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.find("lint:") else {
            continue;
        };
        let directive = line[pos + "lint:".len()..].trim();
        if directive.starts_with("treat-as-sim-crate") {
            allows.treat_as_sim = true;
            continue;
        }
        if directive.starts_with("treat-as-charged-crate") {
            allows.treat_as_charged = true;
            continue;
        }
        for (slot, token) in ALLOW_TOKENS.iter().enumerate() {
            if let Some(rest) = directive.strip_prefix(token) {
                if rest.trim_start().starts_with("(file)") {
                    allows.file_wide[slot] = true;
                } else {
                    // The justification covers its own line and the next.
                    allows.lines[slot].insert(lineno);
                    allows.lines[slot].insert(lineno + 1);
                }
            }
        }
    }
    allows
}

impl Allows {
    pub(crate) fn allowed(&self, rule: &str, line: usize) -> bool {
        let slot = allow_slot(rule);
        self.file_wide[slot] || self.lines[slot].contains(&line)
    }
}

/// Replaces comments and string/char literal contents with spaces,
/// preserving line structure. Retained from the v1 scanner as a public
/// utility (external callers greped through it); the rules themselves
/// now work on the token stream.
pub fn strip_comments_and_strings(source: &str) -> String {
    let tokens = lex::lex(source);
    let mut out = String::with_capacity(source.len());
    for tok in &tokens {
        let text = tok.text(source);
        match tok.kind {
            lex::TokenKind::LineComment | lex::TokenKind::BlockComment => {
                for c in text.chars() {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            lex::TokenKind::Str | lex::TokenKind::Char => {
                // Keep the delimiting quotes of plain literals so the
                // output still reads as code; blank the contents.
                let chars: Vec<char> = text.chars().collect();
                for (i, c) in chars.iter().enumerate() {
                    let keep = *c == '"' && (i == 0 || i == chars.len() - 1);
                    out.push(if keep {
                        '"'
                    } else if *c == '\n' {
                        '\n'
                    } else {
                        ' '
                    });
                }
            }
            _ => out.push_str(text),
        }
    }
    out
}

/// Lints one file's source text. `sim_crate` enables the
/// KL002/KL003/KL005 rules (files inside
/// `crates/{trace,mem,kernel,core,policy,workloads}`). KL009 arms for
/// files under `crates/kernel`/`crates/mem` (or the
/// `treat-as-charged-crate` pragma). KL006 pairs within the single
/// file; cross-file pairs need [`lint_workspace`].
pub fn lint_source(file: &str, source: &str, sim_crate: bool) -> Vec<Diagnostic> {
    let allows = parse_allows(source);
    let sim_crate = sim_crate || allows.treat_as_sim;
    let charged_crate = is_charged_crate_path(Path::new(file)) || allows.treat_as_charged;
    let parsed = ParsedFile::parse(source);

    let mut out = rules::check_file(file, &parsed, sim_crate, charged_crate, &allows);
    out.extend(taint::check_file(file, &parsed, &allows));
    out.extend(conformance::check_crate(
        &[(file.to_owned(), &parsed)],
        &|f, line| {
            debug_assert_eq!(f, file);
            allows.allowed(RULE_SHIM_CONFORMANCE, line)
        },
    ));
    out.sort();
    out.dedup();
    out
}

/// Lints a set of in-memory files as one crate against an in-memory
/// `Cargo.toml`: per-file rules plus crate-level KL006 pairing and
/// KL007 hygiene. Entry point for fixtures, `--explain` self-tests,
/// and external tooling that wants crate-level checks without a
/// workspace on disk.
pub fn lint_crate(
    manifest_rel: &str,
    manifest_text: &str,
    files: &[(&str, &str)],
) -> Vec<Diagnostic> {
    let parsed: Vec<(String, ParsedFile, Allows)> = files
        .iter()
        .map(|(name, source)| {
            (
                (*name).to_owned(),
                ParsedFile::parse(source),
                parse_allows(source),
            )
        })
        .collect();
    let mut out = Vec::new();
    for (name, pf, allows) in &parsed {
        let rel = Path::new(name);
        let test_path = is_test_path(rel);
        let sim = is_sim_crate_path(rel) || allows.treat_as_sim;
        let charged = (is_charged_crate_path(rel) && !test_path) || allows.treat_as_charged;
        let mut diags = rules::check_file(name, pf, sim, charged, allows);
        diags.extend(taint::check_file(name, pf, allows));
        out.extend(
            diags
                .into_iter()
                .filter(|d| !(test_path && d.rule == RULE_UNWRAP)),
        );
    }
    let refs: Vec<(String, &ParsedFile)> =
        parsed.iter().map(|(n, pf, _)| (n.clone(), pf)).collect();
    let allowed_for = |rule: &'static str, file: &str, line: usize| {
        parsed
            .iter()
            .find(|(n, _, _)| n == file)
            .is_some_and(|(_, _, a)| a.allowed(rule, line))
    };
    out.extend(conformance::check_crate(&refs, &|file, line| {
        allowed_for(RULE_SHIM_CONFORMANCE, file, line)
    }));
    let manifest = hygiene::Manifest::parse(manifest_rel, manifest_text);
    let mut all = std::collections::BTreeMap::new();
    if !manifest.package_name.is_empty() {
        all.insert(
            manifest.package_name.clone(),
            hygiene::Manifest::parse(manifest_rel, manifest_text),
        );
    }
    out.extend(hygiene::check_crate(
        &manifest,
        &refs,
        &all,
        &|file, line| allowed_for(RULE_CFG_HYGIENE, file, line),
    ));
    out.sort();
    out.dedup();
    out
}

/// Whether a workspace-relative path is test-only code (an integration
/// `tests/` tree or a `benches/` tree): exempt from KL005/KL009, which
/// target code that runs inside simulations.
pub fn is_test_path(rel: &Path) -> bool {
    rel.components()
        .any(|c| matches!(c.as_os_str().to_str(), Some("tests" | "benches")))
}

/// Whether a workspace-relative path belongs to a simulation crate
/// (where the KL002/KL003/KL005 rules apply).
pub fn is_sim_crate_path(rel: &Path) -> bool {
    const SIM_CRATES: &[&str] = &["trace", "mem", "kernel", "core", "policy", "workloads"];
    crate_component(rel).is_some_and(|c| SIM_CRATES.contains(&c.as_str()))
}

/// Whether a workspace-relative path belongs to a crate under the
/// KL009 clock-charge discipline (`crates/kernel`, `crates/mem`).
pub fn is_charged_crate_path(rel: &Path) -> bool {
    crate_component(rel).is_some_and(|c| c == "kernel" || c == "mem")
}

fn crate_component(rel: &Path) -> Option<String> {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if comps.next().as_deref() != Some("crates") {
        return None;
    }
    comps.next().map(|c| c.into_owned())
}

/// Collects the workspace `.rs` files to lint under `root`, skipping
/// build output and the lint's own violation fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace source file under `root`, then runs the
/// crate-level rules (KL006 across each crate's files, KL007 against
/// each crate's `Cargo.toml`). Paths in diagnostics are
/// workspace-relative.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    // Crate name -> [(rel path, source, parsed, allows)].
    let mut by_crate: std::collections::BTreeMap<String, Vec<(String, ParsedFile, Allows)>> =
        std::collections::BTreeMap::new();
    for path in workspace_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel.display().to_string();
        let source = std::fs::read_to_string(&path)?;
        let allows = parse_allows(&source);
        let parsed = ParsedFile::parse(&source);
        let test_path = is_test_path(&rel);
        let sim = is_sim_crate_path(&rel) || allows.treat_as_sim;
        let charged = (is_charged_crate_path(&rel) && !test_path) || allows.treat_as_charged;

        let mut diags = rules::check_file(&rel_str, &parsed, sim, charged, &allows);
        diags.extend(taint::check_file(&rel_str, &parsed, &allows));
        out.extend(
            diags
                .into_iter()
                .filter(|d| !(test_path && d.rule == RULE_UNWRAP)),
        );

        let crate_name = crate_component(&rel).unwrap_or_else(|| "klocs".to_owned());
        by_crate
            .entry(crate_name)
            .or_default()
            .push((rel_str, parsed, allows));
    }
    for (crate_name, files) in &by_crate {
        let refs: Vec<(String, &ParsedFile)> =
            files.iter().map(|(p, f, _)| (p.clone(), f)).collect();
        let allowed = |file: &str, line: usize| {
            files
                .iter()
                .find(|(p, _, _)| p == file)
                .is_some_and(|(_, _, a)| a.allowed(RULE_SHIM_CONFORMANCE, line))
        };
        out.extend(conformance::check_crate(&refs, &allowed));

        let manifest_rel = if crate_name == "klocs" {
            "Cargo.toml".to_owned()
        } else {
            format!("crates/{crate_name}/Cargo.toml")
        };
        let manifest_path = root.join(&manifest_rel);
        if let Ok(text) = std::fs::read_to_string(&manifest_path) {
            let manifest = hygiene::Manifest::parse(&manifest_rel, &text);
            let all = workspace_manifests(root)?;
            let hygiene_allowed = |file: &str, line: usize| {
                files
                    .iter()
                    .find(|(p, _, _)| p == file)
                    .is_some_and(|(_, _, a)| a.allowed(RULE_CFG_HYGIENE, line))
            };
            out.extend(hygiene::check_crate(
                &manifest,
                &refs,
                &all,
                &hygiene_allowed,
            ));
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Parses every crate manifest in the workspace (the root `Cargo.toml`
/// plus `crates/*/Cargo.toml`), keyed by package name.
pub(crate) fn workspace_manifests(
    root: &Path,
) -> std::io::Result<std::collections::BTreeMap<String, hygiene::Manifest>> {
    let mut out = std::collections::BTreeMap::new();
    let mut paths = vec![("Cargo.toml".to_owned(), root.join("Cargo.toml"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for dir in entries {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                let rel = manifest
                    .strip_prefix(root)
                    .unwrap_or(&manifest)
                    .display()
                    .to_string();
                paths.push((rel, manifest));
            }
        }
    }
    for (rel, path) in paths {
        if let Ok(text) = std::fs::read_to_string(&path) {
            let m = hygiene::Manifest::parse(&rel, &text);
            if !m.package_name.is_empty() {
                out.insert(m.package_name.clone(), m);
            }
        }
    }
    Ok(out)
}

/// Applies every machine-applicable suggestion in `diags` to the files
/// under `root`. Returns the list of files changed. Overlapping
/// suggestions are applied first-wins (later overlapping ones are
/// skipped); running the lint again converges because applied fixes
/// remove their diagnostics.
pub fn apply_fixes(root: &Path, diags: &[Diagnostic]) -> std::io::Result<Vec<String>> {
    let mut by_file: std::collections::BTreeMap<String, Vec<&Suggestion>> =
        std::collections::BTreeMap::new();
    for d in diags {
        if let Some(s) = &d.suggestion {
            by_file.entry(s.file.clone()).or_default().push(s);
        }
    }
    let mut changed = Vec::new();
    for (file, mut suggestions) in by_file {
        let path = root.join(&file);
        let mut text = std::fs::read_to_string(&path)?;
        suggestions.sort_by_key(|s| (s.start, s.end));
        // Apply back-to-front so earlier offsets stay valid; skip
        // overlaps (first in offset order wins).
        let mut kept: Vec<&Suggestion> = Vec::new();
        let mut last_end = 0usize;
        for s in &suggestions {
            if s.start >= last_end && s.end <= text.len() {
                kept.push(s);
                last_end = s.end.max(s.start + 1);
            }
        }
        for s in kept.iter().rev() {
            text.replace_range(s.start..s.end, &s.replacement);
        }
        std::fs::write(&path, &text)?;
        changed.push(file);
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = "let a = 1; // HashMap iter\n/* Instant::now */ let b = 2;";
        let c = strip_comments_and_strings(s);
        assert!(!c.contains("HashMap"));
        assert!(!c.contains("Instant"));
        assert!(c.contains("let a = 1;"));
        assert!(c.contains("let b = 2;"));
    }

    #[test]
    fn strips_strings_and_raw_strings() {
        let s = r####"let a = "std::env"; let b = r#"thread_rng"#; let c = 'x';"####;
        let c = strip_comments_and_strings(s);
        assert!(!c.contains("std::env"));
        assert!(!c.contains("thread_rng"));
        assert!(c.contains("let a ="));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet m: HashMap<u8, u8> = HashMap::new();\nm.keys();";
        let d = lint_source("t.rs", s, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_UNORDERED_ITER);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn flags_iteration_over_hash_fields() {
        let s = "struct S { frame_key: HashMap<u32, u32> }\nimpl S { fn f(&self) { for k in self.frame_key.keys() {} } }";
        let d = lint_source("t.rs", s, false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].rule, RULE_UNORDERED_ITER);
    }

    #[test]
    fn ordered_ok_silences_same_and_next_line() {
        let s = "fn f() {\nlet m: HashSet<u8> = HashSet::new();\n// lint: ordered-ok — counts only\nfor x in &m {}\nm.iter(); // lint: ordered-ok\n}";
        assert!(lint_source("t.rs", s, false).is_empty());
    }

    #[test]
    fn file_wide_allow() {
        let s = "// lint: ordered-ok(file)\nlet m: HashMap<u8,u8> = HashMap::new();\nm.keys();\nm.values();";
        assert!(lint_source("t.rs", s, false).is_empty());
    }

    #[test]
    fn lookups_are_not_flagged() {
        let s = "let m: HashMap<u8,u8> = HashMap::new();\nm.get(&1); m.insert(1,2); m.remove(&1); m.contains_key(&1); m.len();";
        assert!(lint_source("t.rs", s, false).is_empty());
    }

    #[test]
    fn nondet_rules_only_in_sim_crates() {
        let s = "fn f() {\nlet t = Instant::now();\nstd::thread::spawn(|| {});\n}";
        assert!(lint_source("t.rs", s, false).is_empty());
        let d = lint_source("t.rs", s, true);
        let rules: Vec<&str> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RULE_NONDET_API), "{d:?}");
        assert!(rules.contains(&RULE_THREAD_SPAWN), "{d:?}");
    }

    #[test]
    fn truncating_casts_on_ids() {
        let s = "let a = inode.0 as u32;\nlet b = epoch as u16;\nlet c = len as u32;\nlet d = frame_id as u8;";
        let d = lint_source("t.rs", s, false);
        let lines: Vec<usize> = d.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![1, 2, 4], "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_TRUNCATING_CAST));
    }

    #[test]
    fn widening_casts_are_fine() {
        let s = "let a = inode.0 as u64;\nlet b = id as usize;\nlet c = x as u32;";
        assert!(lint_source("t.rs", s, false).is_empty());
    }

    #[test]
    fn unwrap_flagged_only_in_sim_crates_outside_tests() {
        let s = "fn f() { x.unwrap(); y.expect(\"msg\"); z.unwrap_or(3); }\n#[cfg(test)]\nmod tests { fn g() { a.unwrap(); } }";
        assert!(lint_source("t.rs", s, false).is_empty());
        let d = lint_source("t.rs", s, true);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_UNWRAP && d.line == 1));
    }

    #[test]
    fn multiline_expect_is_caught() {
        // The v1 line scanner missed `.expect(` split across lines.
        let s = "fn f() {\n    y\n        .expect(\n            \"msg\",\n        );\n}";
        let d = lint_source("t.rs", s, true);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_UNWRAP);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn patterns_inside_strings_do_not_fire() {
        let s =
            "fn f() { let msg = \"call Instant::now or x.unwrap() on a HashMap\"; let _ = msg; }";
        assert!(lint_source("t.rs", s, true).is_empty());
    }

    #[test]
    fn unwrap_ok_justification_silences() {
        let s = "fn f() {\n// lint: unwrap-ok — inserted two lines up\nx.unwrap();\ny.expect(\"present\"); // lint: unwrap-ok\n}";
        assert!(lint_source("t.rs", s, true).is_empty());
    }

    #[test]
    fn sim_crate_paths() {
        assert!(is_sim_crate_path(Path::new("crates/mem/src/system.rs")));
        assert!(is_sim_crate_path(Path::new("crates/policy/src/kloc.rs")));
        assert!(is_sim_crate_path(Path::new("crates/trace/src/recorder.rs")));
        assert!(!is_sim_crate_path(Path::new("crates/sim/src/engine.rs")));
        assert!(!is_sim_crate_path(Path::new("crates/lint/src/lib.rs")));
        assert!(!is_sim_crate_path(Path::new("src/lib.rs")));
    }

    #[test]
    fn charged_crate_paths() {
        assert!(is_charged_crate_path(Path::new("crates/mem/src/system.rs")));
        assert!(is_charged_crate_path(Path::new(
            "crates/kernel/src/kernel.rs"
        )));
        assert!(!is_charged_crate_path(Path::new(
            "crates/core/src/knode.rs"
        )));
        assert!(!is_charged_crate_path(Path::new(
            "crates/sim/src/engine.rs"
        )));
    }
}
