//! A dependency-free, lossless Rust lexer.
//!
//! Every byte of the input lands in exactly one token, so concatenating
//! `token.text(source)` over the token stream reproduces the source
//! byte-for-byte (the round-trip property `tests/roundtrip.rs` proves
//! over every `.rs` file in the workspace). Rules therefore never
//! confuse code with the inside of a string, comment, or raw string —
//! the false-positive classes of the old line scanner.
//!
//! The lexer is deliberately forgiving: an unterminated literal or a
//! byte it does not understand becomes a one-character [`TokenKind::Punct`]
//! token rather than an error, because a linter must keep walking a file
//! that `rustc` would reject.

use std::fmt;

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TokenKind {
    /// Horizontal/vertical whitespace run (including newlines).
    Whitespace,
    /// `// ...` through the end of the line (newline not included).
    LineComment,
    /// `/* ... */`, nesting-aware; unterminated comments run to EOF.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — not a char literal.
    Lifetime,
    /// Integer literal, suffix included (`42`, `0xFF_u64`).
    Int,
    /// Float literal (`1.5`, `2e10`, `1.0f64`).
    Float,
    /// String literal of any flavor: `"..."`, `r"..."`, `r#"..."#`,
    /// `b"..."`, `br#"..."#`, `c"..."`.
    Str,
    /// Char or byte literal (`'x'`, `'\n'`, `b'x'`).
    Char,
    /// Any other single character (`{`, `:`, `+`, …). Multi-character
    /// operators are consecutive `Punct` tokens; spans make adjacency
    /// checks exact.
    Punct,
}

/// One token: a classified byte range of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the first byte.
    pub line: usize,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }

    /// Whether the token carries code the rules should look at
    /// (everything except whitespace and comments).
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TokenKind::Whitespace => "whitespace",
            TokenKind::LineComment => "line comment",
            TokenKind::BlockComment => "block comment",
            TokenKind::Ident => "identifier",
            TokenKind::Lifetime => "lifetime",
            TokenKind::Int => "integer",
            TokenKind::Float => "float",
            TokenKind::Str => "string",
            TokenKind::Char => "char",
            TokenKind::Punct => "punct",
        };
        f.write_str(name)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump_line_counter(&mut self, from: usize) {
        for &b in &self.src[from..self.pos] {
            if b == b'\n' {
                self.line += 1;
            }
        }
    }

    fn is_ident_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
    }

    fn is_ident_continue(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
    }

    /// Consumes `"..."` from the opening quote; handles escapes.
    fn eat_quoted(&mut self) {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2.min(self.src.len() - self.pos),
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes `r"..."` / `r#"..."#` starting at the `r` (or after a
    /// `b`/`c` prefix the caller already accounted for). Returns false
    /// if this is not actually a raw string (e.g. `r#match`).
    fn try_eat_raw_string(&mut self) -> bool {
        let start = self.pos;
        self.pos += 1; // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            self.pos = start;
            return false;
        }
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut h = 0;
                while h < hashes && self.peek(1 + h) == Some(b'#') {
                    h += 1;
                }
                if h == hashes {
                    self.pos += 1 + hashes;
                    return true;
                }
            }
            self.pos += 1;
        }
        true // unterminated: runs to EOF
    }

    /// Consumes a numeric literal starting at a digit.
    fn eat_number(&mut self) -> TokenKind {
        let mut kind = TokenKind::Int;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            return TokenKind::Int;
        }
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
        // Fractional part: only when followed by a digit (`1.5`), so
        // `1..2` and `x.0.iter()` keep their dots as punctuation.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            kind = TokenKind::Float;
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_digit() || b == b'_')
            {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (self.peek(1).is_some_and(|b| b.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|b| b.is_ascii_digit())))
        {
            kind = TokenKind::Float;
            self.pos += 1;
            if matches!(self.peek(0), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_digit() || b == b'_')
            {
                self.pos += 1;
            }
        }
        // Suffix (`u64`, `f32`, `usize`); `1.0f64` is a float either way.
        if kind == TokenKind::Int
            && matches!(self.peek(0), Some(b'f'))
            && (self.peek(1) == Some(b'3') || self.peek(1) == Some(b'6'))
        {
            kind = TokenKind::Float;
        }
        while self.peek(0).is_some_and(Self::is_ident_continue) {
            self.pos += 1;
        }
        kind
    }

    fn next_token(&mut self) -> Option<Token> {
        let start = self.pos;
        let line = self.line;
        let b = self.peek(0)?;
        let kind = match b {
            _ if b.is_ascii_whitespace() => {
                while self.peek(0).is_some_and(|b| b.is_ascii_whitespace()) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|b| b != b'\n') {
                    self.pos += 1;
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            self.pos += 2;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            self.pos += 2;
                        }
                        (Some(_), _) => self.pos += 1,
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                self.eat_quoted();
                TokenKind::Str
            }
            b'r' if matches!(self.peek(1), Some(b'"' | b'#')) => {
                if self.try_eat_raw_string() {
                    TokenKind::Str
                } else {
                    // `r#match`: raw identifier.
                    self.pos += 2;
                    while self.peek(0).is_some_and(Self::is_ident_continue) {
                        self.pos += 1;
                    }
                    TokenKind::Ident
                }
            }
            b'b' | b'c' if self.peek(1) == Some(b'"') => {
                self.pos += 1;
                self.eat_quoted();
                TokenKind::Str
            }
            b'b' if self.peek(1) == Some(b'r') && matches!(self.peek(2), Some(b'"' | b'#')) => {
                self.pos += 1;
                if self.try_eat_raw_string() {
                    TokenKind::Str
                } else {
                    self.pos -= 1;
                    while self.peek(0).is_some_and(Self::is_ident_continue) {
                        self.pos += 1;
                    }
                    TokenKind::Ident
                }
            }
            b'b' if self.peek(1) == Some(b'\'') => {
                self.pos += 1;
                self.eat_char_literal();
                TokenKind::Char
            }
            b'\'' => {
                // Char literal vs lifetime. `'\..'` and `'x'` are chars;
                // `'ident` with no closing quote is a lifetime.
                if self.peek(1) == Some(b'\\') {
                    self.eat_char_literal();
                    TokenKind::Char
                } else if self.peek(1).is_some_and(Self::is_ident_start) {
                    // Look ahead past the identifier for a closing quote.
                    let mut j = 2;
                    while self.peek(j).is_some_and(Self::is_ident_continue) {
                        j += 1;
                    }
                    if self.peek(j) == Some(b'\'') {
                        self.pos += j + 1;
                        TokenKind::Char
                    } else {
                        self.pos += 1;
                        while self.peek(0).is_some_and(Self::is_ident_continue) {
                            self.pos += 1;
                        }
                        TokenKind::Lifetime
                    }
                } else if self.peek(2) == Some(b'\'') && self.peek(1).is_some() {
                    self.pos += 3;
                    TokenKind::Char
                } else {
                    self.pos += 1;
                    TokenKind::Punct
                }
            }
            _ if b.is_ascii_digit() => self.eat_number(),
            _ if Self::is_ident_start(b) => {
                while self.peek(0).is_some_and(Self::is_ident_continue) {
                    self.pos += 1;
                }
                TokenKind::Ident
            }
            _ => {
                self.pos += 1;
                TokenKind::Punct
            }
        };
        self.bump_line_counter(start);
        Some(Token {
            kind,
            start,
            end: self.pos,
            line,
        })
    }

    /// Consumes `'...'` from the opening quote, escapes included.
    fn eat_char_literal(&mut self) {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2.min(self.src.len() - self.pos),
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => return, // unterminated on this line: stop
                _ => self.pos += 1,
            }
        }
    }
}

/// Lexes `source` into a lossless token stream. Never fails; see the
/// module docs for the round-trip guarantee.
pub fn lex(source: &str) -> Vec<Token> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token() {
        tokens.push(tok);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    #[test]
    fn roundtrips_basic_source() {
        let src = "fn main() {\n    let x = 1.5; // done\n}\n";
        assert_eq!(roundtrip(src), src);
    }

    #[test]
    fn roundtrips_strings_and_raw_strings() {
        let src = r####"let a = "hi \" there"; let b = r#"raw " inside"#; let c = b"bytes";"####;
        assert_eq!(roundtrip(src), src);
        let kinds: Vec<TokenKind> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, vec!["'x'"]);
        assert_eq!(roundtrip(src), src);
    }

    #[test]
    fn static_lifetime_and_escaped_char() {
        let src = "let s: &'static str = \"\"; let c = '\\n'; let b = b'\\0';";
        assert_eq!(roundtrip(src), src);
        assert!(lex(src)
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text(src) == "'static"));
    }

    #[test]
    fn comments_do_not_swallow_code() {
        let src = "let a = 1; /* nested /* deep */ still */ let b = 2; // tail";
        assert_eq!(roundtrip(src), src);
        let idents: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn numbers_floats_and_ranges() {
        let src = "let a = 0xFF_u64; let b = 1.5e3; let c = 1..2; let d = x.0;";
        assert_eq!(roundtrip(src), src);
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Int && t.text(src) == "0xFF_u64"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Float && t.text(src) == "1.5e3"));
        // `1..2` lexes as Int Punct Punct Int.
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Int && t.text(src) == "1"));
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#match = 1; let s = r#\"raw\"#;";
        assert_eq!(roundtrip(src), src);
        assert!(lex(src)
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "r#match"));
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "a\nb\n  c /* x\ny */ d\ne";
        let toks = lex(src);
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.kind == TokenKind::Ident && t.text(src) == name)
                .map(|t| t.line)
        };
        // lint: unwrap-ok — test data is fixed above
        assert_eq!(find("a").unwrap(), 1);
        assert_eq!(find("b").unwrap(), 2);
        assert_eq!(find("c").unwrap(), 3);
        assert_eq!(find("d").unwrap(), 4);
        assert_eq!(find("e").unwrap(), 5);
    }
}
