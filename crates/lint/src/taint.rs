//! KL008 — intra-procedural determinism taint.
//!
//! For each function body, values produced by nondeterministic sources
//! are tracked through `let` bindings, `for` patterns, and simple
//! assignments (to a fixpoint, three passes — enough for the
//! straight-line dataflow this workspace writes). A diagnostic fires
//! when a tainted value, or a source expression directly, reaches a
//! report-visible sink. The diagnostic carries the provenance chain so
//! the reader sees the actual source→sink path, not a per-line guess.
//!
//! Sources:
//! * iteration over a `HashMap`/`HashSet` (hash order);
//! * pointer identity: `as *const` / `as *mut` casts, `.as_ptr()`,
//!   `addr_of!` — machine addresses vary run to run.
//!
//! Sinks:
//! * fields of a `…Report` struct literal;
//! * assignments whose left-hand side mentions a `report` segment;
//! * `kloc_trace::emit` / `kloc_trace::charge` / `kloc_trace::with_counters`
//!   arguments;
//! * sort keys (`sort_by_key`, `sort_unstable_by_key`, `sort_by`,
//!   `sort_unstable_by` closures).

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use crate::items::{Item, ItemKind, ParsedFile};
use crate::lex::TokenKind;
use crate::rules::{hash_collection_names, ITER_METHODS};
use crate::{Allows, Diagnostic, RULE_DETERMINISM_TAINT};

/// How a variable became tainted.
#[derive(Debug, Clone)]
struct Origin {
    desc: String,
    line: usize,
}

const SORT_SINKS: &[&str] = &[
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by",
    "sort_unstable_by",
];
const TRACE_SINKS: &[&str] = &["emit", "charge", "with_counters"];

pub(crate) fn check_file(file: &str, pf: &ParsedFile, allows: &Allows) -> Vec<Diagnostic> {
    let hash_names = hash_collection_names(pf);
    let mut out = Vec::new();
    for item in &pf.items {
        check_items(file, pf, item, &hash_names, allows, &mut out);
    }
    out
}

fn check_items(
    file: &str,
    pf: &ParsedFile,
    item: &Item,
    hash_names: &std::collections::BTreeSet<String>,
    allows: &Allows,
    out: &mut Vec<Diagnostic>,
) {
    if item.cfg_test {
        return;
    }
    if let ItemKind::Fn(sig) = &item.kind {
        if let Some((lo, hi)) = sig.body {
            check_body(file, pf, lo, hi, hash_names, allows, out);
        }
    }
    for child in &item.children {
        check_items(file, pf, child, hash_names, allows, out);
    }
}

/// Whether the token range `[lo, hi)` contains a nondeterministic
/// source expression; returns its description and line.
fn range_source(
    pf: &ParsedFile,
    lo: usize,
    hi: usize,
    hash_names: &std::collections::BTreeSet<String>,
) -> Option<Origin> {
    let hi = hi.min(pf.len());
    let mut i = lo;
    while i < hi {
        let t = pf.text(i);
        // `name.iter()` / `name.keys()` … on a hash collection.
        if pf.tok(i).kind == TokenKind::Ident
            && hash_names.contains(t)
            && i + 3 < hi
            && pf.text(i + 1) == "."
            && ITER_METHODS.contains(&pf.text(i + 2))
            && pf.text(i + 3) == "("
        {
            return Some(Origin {
                desc: format!("hash-order iteration `{t}.{}()`", pf.text(i + 2)),
                line: pf.tok(i).line,
            });
        }
        // Pointer identity: `as *const T` / `as *mut T`.
        if t == "as"
            && i + 2 < hi
            && pf.text(i + 1) == "*"
            && matches!(pf.text(i + 2), "const" | "mut")
        {
            return Some(Origin {
                desc: format!("pointer-identity cast `as *{} _`", pf.text(i + 2)),
                line: pf.tok(i).line,
            });
        }
        // `.as_ptr()` / `.as_mut_ptr()`.
        if t == "."
            && i + 2 < hi
            && matches!(pf.text(i + 1), "as_ptr" | "as_mut_ptr")
            && pf.text(i + 2) == "("
        {
            return Some(Origin {
                desc: format!("pointer identity `.{}()`", pf.text(i + 1)),
                line: pf.tok(i + 1).line,
            });
        }
        // `addr_of!` / `addr_of_mut!`.
        if matches!(t, "addr_of" | "addr_of_mut") && i + 1 < hi && pf.text(i + 1) == "!" {
            return Some(Origin {
                desc: format!("address capture `{t}!`"),
                line: pf.tok(i).line,
            });
        }
        i += 1;
    }
    None
}

/// Whether the range mentions a tainted variable; returns its origin
/// with the variable name prepended to the provenance.
fn range_tainted(
    pf: &ParsedFile,
    lo: usize,
    hi: usize,
    taint: &BTreeMap<String, Origin>,
) -> Option<(String, Origin)> {
    let hi = hi.min(pf.len());
    for i in lo..hi {
        if pf.tok(i).kind == TokenKind::Ident {
            // A field access `x.name` is not the variable `name`.
            let is_field = i > 0 && pf.text(i - 1) == ".";
            if !is_field {
                if let Some(origin) = taint.get(pf.text(i)) {
                    return Some((pf.text(i).to_owned(), origin.clone()));
                }
            }
        }
    }
    None
}

/// Collects the binding identifiers of a pattern range (idents that are
/// not path segments or keywords).
fn pattern_idents(pf: &ParsedFile, lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    let hi = hi.min(pf.len());
    for i in lo..hi {
        if pf.tok(i).kind != TokenKind::Ident {
            continue;
        }
        let t = pf.text(i);
        if matches!(t, "mut" | "ref" | "_") {
            continue;
        }
        // Skip path segments (`Some`, `DiskOp::Read`).
        let part_of_path = (i + 1 < hi && pf.adjacent_pair(i, "::"))
            || (i >= 2 && pf.adjacent_pair(i - 2, "::"))
            || (i + 1 < pf.len() && pf.text(i + 1) == "(")
            || (i + 1 < pf.len() && pf.text(i + 1) == "{");
        if !part_of_path {
            out.push(t.to_owned());
        }
    }
    out
}

/// Index of the next occurrence of `what` at bracket depth 0 within
/// `[lo, hi)`.
fn find_at_depth0(pf: &ParsedFile, lo: usize, hi: usize, what: &str) -> Option<usize> {
    let hi = hi.min(pf.len());
    let mut depth = 0i64;
    for i in lo..hi {
        let t = pf.text(i);
        if t == what && depth == 0 {
            return Some(i);
        }
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            _ => {}
        }
    }
    None
}

/// End (exclusive) of the statement starting at `lo`: the index of the
/// `;` at depth 0, or `hi`.
fn statement_end(pf: &ParsedFile, lo: usize, hi: usize) -> usize {
    find_at_depth0(pf, lo, hi, ";").unwrap_or(hi)
}

fn check_body(
    file: &str,
    pf: &ParsedFile,
    lo: usize,
    hi: usize,
    hash_names: &std::collections::BTreeSet<String>,
    allows: &Allows,
    out: &mut Vec<Diagnostic>,
) {
    // Pass 1..3: build the taint map to a fixpoint.
    let mut taint: BTreeMap<String, Origin> = BTreeMap::new();
    for _ in 0..3 {
        let mut changed = false;
        let mut i = lo;
        while i < hi.min(pf.len()) {
            let t = pf.text(i);
            if t == "for" {
                // `for PAT in EXPR {`.
                if let Some(in_idx) = find_at_depth0(pf, i + 1, hi, "in") {
                    if let Some(body_open) = find_at_depth0(pf, in_idx + 1, hi, "{") {
                        let expr_src = range_source(pf, in_idx + 1, body_open, hash_names)
                            .or_else(|| {
                                // `for x in &m` where m is a hash collection.
                                (in_idx + 1..body_open)
                                    .find(|&k| {
                                        pf.tok(k).kind == TokenKind::Ident
                                            && hash_names.contains(pf.text(k))
                                    })
                                    .map(|k| Origin {
                                        desc: format!("hash-order iteration over `{}`", pf.text(k)),
                                        line: pf.tok(k).line,
                                    })
                            })
                            .or_else(|| {
                                range_tainted(pf, in_idx + 1, body_open, &taint).map(
                                    |(var, origin)| Origin {
                                        desc: format!("`{var}` ({})", origin.desc),
                                        line: origin.line,
                                    },
                                )
                            });
                        if let Some(origin) = expr_src {
                            for name in pattern_idents(pf, i + 1, in_idx) {
                                if let Entry::Vacant(e) = taint.entry(name) {
                                    e.insert(origin.clone());
                                    changed = true;
                                }
                            }
                        }
                        i = body_open + 1;
                        continue;
                    }
                }
            } else if t == "let" {
                let end = statement_end(pf, i + 1, hi);
                if let Some(eq) = find_at_depth0(pf, i + 1, end, "=") {
                    let rhs_origin = range_source(pf, eq + 1, end, hash_names).or_else(|| {
                        range_tainted(pf, eq + 1, end, &taint).map(|(var, origin)| Origin {
                            desc: format!("`{var}` ({})", origin.desc),
                            line: origin.line,
                        })
                    });
                    // Pattern stops at the type annotation if present.
                    let pat_end = find_at_depth0(pf, i + 1, eq, ":").unwrap_or(eq);
                    if let Some(origin) = rhs_origin {
                        for name in pattern_idents(pf, i + 1, pat_end) {
                            if let Entry::Vacant(e) = taint.entry(name) {
                                e.insert(origin.clone());
                                changed = true;
                            }
                        }
                    }
                }
                i = end + 1;
                continue;
            } else if pf.tok(i).kind == TokenKind::Ident
                && i + 1 < pf.len()
                && pf.text(i + 1) == "="
                && !pf.adjacent_pair(i + 1, "==")
                && !(i >= 1 && matches!(pf.text(i - 1), "=" | "!" | "<" | ">" | "." | ":"))
            {
                // Simple reassignment `x = EXPR;`.
                let end = statement_end(pf, i + 2, hi);
                let rhs_origin = range_source(pf, i + 2, end, hash_names).or_else(|| {
                    range_tainted(pf, i + 2, end, &taint).map(|(var, origin)| Origin {
                        desc: format!("`{var}` ({})", origin.desc),
                        line: origin.line,
                    })
                });
                if let Some(origin) = rhs_origin {
                    if let Entry::Vacant(e) = taint.entry(pf.text(i).to_owned()) {
                        e.insert(origin);
                        changed = true;
                    }
                }
                i = end + 1;
                continue;
            }
            i += 1;
        }
        if !changed {
            break;
        }
    }

    // Sink scan.
    let mut push = |line: usize, msg: String, origin: &Origin| {
        if !allows.allowed(RULE_DETERMINISM_TAINT, line) {
            let mut d = Diagnostic::new(file, line, RULE_DETERMINISM_TAINT, msg);
            d.notes.push(format!(
                "source: {} at {}:{}",
                origin.desc, file, origin.line
            ));
            out.push(d);
        }
    };

    let hi = hi.min(pf.len());
    let mut i = lo;
    while i < hi {
        let t = pf.text(i);
        // Sink 1: `…Report { field: expr, .. }` struct literal.
        if pf.tok(i).kind == TokenKind::Ident
            && t.ends_with("Report")
            && i + 1 < hi
            && pf.text(i + 1) == "{"
        {
            let close = pf.closes[i + 1].min(hi);
            let mut f = i + 2;
            while f < close {
                // Field at depth 1: `name: expr` up to the next
                // depth-1 comma, or shorthand `name,`.
                if pf.tok(f).kind == TokenKind::Ident {
                    let field = pf.text(f);
                    let vend = find_at_depth0(pf, f + 1, close, ",").unwrap_or(close);
                    let hit = if f + 1 < close && pf.text(f + 1) == ":" {
                        range_source(pf, f + 2, vend, hash_names).or_else(|| {
                            range_tainted(pf, f + 2, vend, &taint).map(|(var, o)| Origin {
                                desc: format!("`{var}` ({})", o.desc),
                                line: o.line,
                            })
                        })
                    } else {
                        taint.get(field).map(|o| Origin {
                            desc: format!("`{field}` ({})", o.desc),
                            line: o.line,
                        })
                    };
                    if let Some(origin) = hit {
                        push(
                            pf.tok(f).line,
                            format!(
                                "nondeterministic value flows into report field `{field}` of `{t}`"
                            ),
                            &origin,
                        );
                    }
                    f = vend + 1;
                    continue;
                }
                f += 1;
            }
            i = close + 1;
            continue;
        }
        // Sink 2: assignment whose LHS mentions `report`.
        if pf.tok(i).kind == TokenKind::Ident
            && pf.text(i).to_ascii_lowercase().contains("report")
            && i + 1 < hi
        {
            // Walk the LHS chain (`report.kloc.order`), then expect `=`.
            let mut k = i + 1;
            while k + 1 < hi && pf.text(k) == "." && pf.tok(k + 1).kind == TokenKind::Ident {
                k += 2;
            }
            if k < hi && pf.text(k) == "=" && !pf.adjacent_pair(k, "==") {
                let end = statement_end(pf, k + 1, hi);
                let hit = range_source(pf, k + 1, end, hash_names).or_else(|| {
                    range_tainted(pf, k + 1, end, &taint).map(|(var, o)| Origin {
                        desc: format!("`{var}` ({})", o.desc),
                        line: o.line,
                    })
                });
                if let Some(origin) = hit {
                    let lhs: Vec<&str> = (i..k).map(|x| pf.text(x)).collect();
                    push(
                        pf.tok(i).line,
                        format!(
                            "nondeterministic value assigned to report-visible `{}`",
                            lhs.join("")
                        ),
                        &origin,
                    );
                }
                i = end + 1;
                continue;
            }
        }
        // Sink 3: kloc_trace::emit / charge / with_counters arguments.
        if t == "kloc_trace"
            && i + 4 < hi
            && pf.adjacent_pair(i + 1, "::")
            && TRACE_SINKS.contains(&pf.text(i + 3))
            && pf.text(i + 4) == "("
        {
            let close = pf.closes[i + 4].min(hi);
            let hit = range_source(pf, i + 5, close, hash_names).or_else(|| {
                range_tainted(pf, i + 5, close, &taint).map(|(var, o)| Origin {
                    desc: format!("`{var}` ({})", o.desc),
                    line: o.line,
                })
            });
            if let Some(origin) = hit {
                push(
                    pf.tok(i + 3).line,
                    format!(
                        "nondeterministic value flows into `kloc_trace::{}` (trace-visible)",
                        pf.text(i + 3)
                    ),
                    &origin,
                );
            }
            i = close + 1;
            continue;
        }
        // Sink 4: sort keys.
        if t == "." && i + 2 < hi && SORT_SINKS.contains(&pf.text(i + 1)) && pf.text(i + 2) == "(" {
            let close = pf.closes[i + 2].min(hi);
            let hit = range_source(pf, i + 3, close, hash_names).or_else(|| {
                range_tainted(pf, i + 3, close, &taint).map(|(var, o)| Origin {
                    desc: format!("`{var}` ({})", o.desc),
                    line: o.line,
                })
            });
            if let Some(origin) = hit {
                push(
                    pf.tok(i + 1).line,
                    format!(
                        "nondeterministic sort key in `.{}(…)` — ordering becomes run-dependent",
                        pf.text(i + 1)
                    ),
                    &origin,
                );
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::{lint_source, RULE_DETERMINISM_TAINT};

    fn kl008(src: &str) -> Vec<(usize, String)> {
        lint_source("t.rs", src, false)
            .into_iter()
            .filter(|d| d.rule == RULE_DETERMINISM_TAINT)
            .map(|d| (d.line, d.notes.join(" | ")))
            .collect()
    }

    #[test]
    fn ptr_identity_into_report_field() {
        let src = r#"
fn f(obj: &Obj) -> RunReport {
    let key = obj as *const Obj as usize;
    RunReport { order: key }
}
"#;
        let d = kl008(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].0, 4);
        assert!(d[0].1.contains("pointer-identity"), "{}", d[0].1);
        assert!(d[0].1.contains("t.rs:3"), "{}", d[0].1);
    }

    #[test]
    fn hash_iteration_through_binding_into_report_assignment() {
        let src = r#"
// lint: ordered-ok(file)
fn f(report: &mut Report) {
    let m: HashMap<u64, u64> = HashMap::new();
    let order: Vec<u64> = m.keys().copied().collect();
    report.order = order;
}
"#;
        let d = kl008(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].0, 6);
        assert!(d[0].1.contains("hash-order"), "{}", d[0].1);
    }

    #[test]
    fn for_loop_binding_is_tainted() {
        let src = r#"
// lint: ordered-ok(file)
fn f(m: HashMap<u64, u64>, v: &mut Vec<u64>) {
    for k in m.keys() {
        v.sort_by_key(|x| x ^ k);
    }
}
"#;
        let d = kl008(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].0, 5);
    }

    #[test]
    fn taint_ok_pragma_silences() {
        let src = r#"
fn f(obj: &Obj) -> RunReport {
    let key = obj as *const Obj as usize;
    // lint: taint-ok — folded through a commutative xor reduction
    RunReport { order: key }
}
"#;
        assert!(kl008(src).is_empty());
    }

    #[test]
    fn untainted_flows_are_silent() {
        let src = r#"
fn f(n: u64) -> RunReport {
    let total = n * 2;
    RunReport { ops: total, elapsed: n }
}
"#;
        assert!(kl008(src).is_empty());
    }
}
