//! The lint's own regression suite: fixture files with known violations,
//! asserted down to the exact (file, line, rule id) triples.

use std::path::Path;

use kloc_lint::{lint_source, Diagnostic};

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    // Fixtures opt into sim-crate rules via `// lint: treat-as-sim-crate`.
    lint_source(name, &source, false)
}

fn triples(diags: &[Diagnostic]) -> Vec<(String, usize, &'static str)> {
    diags
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect()
}

#[test]
fn unordered_iteration_fixture() {
    let diags = lint_fixture("unordered_iter.rs");
    assert_eq!(
        triples(&diags),
        vec![
            ("unordered_iter.rs".to_owned(), 13, "KL001"),
            ("unordered_iter.rs".to_owned(), 17, "KL001"),
            ("unordered_iter.rs".to_owned(), 22, "KL001"),
        ],
        "{diags:#?}"
    );
    assert!(diags[0].message.contains("by_inode"));
    assert!(diags[2].message.contains("drain"));
}

#[test]
fn nondet_api_fixture() {
    let diags = lint_fixture("nondet_api.rs");
    assert_eq!(
        triples(&diags),
        vec![
            ("nondet_api.rs".to_owned(), 6, "KL002"),
            ("nondet_api.rs".to_owned(), 8, "KL002"),
            ("nondet_api.rs".to_owned(), 9, "KL002"),
            ("nondet_api.rs".to_owned(), 13, "KL002"),
            ("nondet_api.rs".to_owned(), 17, "KL002"),
            ("nondet_api.rs".to_owned(), 21, "KL003"),
        ],
        "{diags:#?}"
    );
}

#[test]
fn truncating_cast_fixture() {
    let diags = lint_fixture("truncating_cast.rs");
    assert_eq!(
        triples(&diags),
        vec![
            ("truncating_cast.rs".to_owned(), 6, "KL004"),
            ("truncating_cast.rs".to_owned(), 11, "KL004"),
            ("truncating_cast.rs".to_owned(), 16, "KL004"),
            ("truncating_cast.rs".to_owned(), 31, "KL004"),
            ("truncating_cast.rs".to_owned(), 35, "KL004"),
        ],
        "{diags:#?}"
    );
}

#[test]
fn unwrap_result_fixture() {
    let diags = lint_fixture("unwrap_result.rs");
    assert_eq!(
        triples(&diags),
        vec![
            ("unwrap_result.rs".to_owned(), 9, "KL005"),
            ("unwrap_result.rs".to_owned(), 13, "KL005"),
        ],
        "{diags:#?}"
    );
    assert!(diags[0].message.contains("can panic mid-run"));
}

#[test]
fn clean_fixture_is_clean() {
    let diags = lint_fixture("clean.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = lint_fixture("truncating_cast.rs");
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("truncating_cast.rs:6: KL004 "),
        "{rendered}"
    );
}

#[test]
fn workspace_is_clean() {
    // The acceptance bar: the lint exits 0 on the workspace itself.
    // CARGO_MANIFEST_DIR = crates/lint, two levels below the root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let diags = kloc_lint::lint_workspace(&root).expect("workspace readable");
    assert!(diags.is_empty(), "workspace must lint clean: {diags:#?}");
}
