//! Fixture: KL001 unordered-iteration violations.
//! Expected diagnostics (line, rule): (13, KL001), (17, KL001), (22, KL001).

use std::collections::{HashMap, HashSet};

pub struct Tables {
    by_inode: HashMap<u64, u32>,
}

impl Tables {
    pub fn sum(&self) -> u32 {
        // Hash-order iteration leaks into whatever consumes the sum order.
        self.by_inode.values().sum()
    }

    pub fn walk(&self) -> Vec<u64> {
        self.by_inode.keys().copied().collect()
    }
}

pub fn drain_all(set: &mut HashSet<u64>) -> Vec<u64> {
    set.drain().collect()
}

pub fn counted(set: &HashSet<u64>) -> usize {
    // Order-insensitive: length only.
    set.len()
}

pub fn justified(map: &HashMap<u64, u32>) -> u32 {
    // lint: ordered-ok — summation is commutative, order cannot leak.
    map.values().sum()
}
