//! KL005 fixture: `.unwrap()`/`.expect(..)` on fallible values in
//! model-crate non-test code. Tests (the trailing `#[cfg(test)]`
//! module) and justified sites are exempt.
// lint: treat-as-sim-crate

use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u32, u32>) -> u32 {
    *map.get(&1).unwrap()
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("caller validated")
}

pub fn guarded(map: &BTreeMap<u32, u32>) -> u32 {
    // lint: unwrap-ok — every caller inserts key 1 first
    *map.get(&1).unwrap()
}

pub fn fallback(s: &str) -> u64 {
    s.parse().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_unwrap_freely() {
        assert_eq!(super::fallback("3"), 3);
        let x: Option<u8> = Some(1);
        x.unwrap();
    }
}
