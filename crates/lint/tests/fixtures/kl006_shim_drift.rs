//! KL006 fixture: a feature shim whose noop half drifted.
//! Pinned: the noop `set_fault_plan` lost the `seed` parameter, and
//! `fault_count` has no noop counterpart at all.

pub struct FaultPlan;

#[cfg(feature = "kfault")]
pub fn set_fault_plan(plan: FaultPlan, seed: u64) {
    let _ = (plan, seed);
}

#[cfg(not(feature = "kfault"))]
pub fn set_fault_plan(_plan: FaultPlan) {}

#[cfg(feature = "kfault")]
pub fn fault_count() -> u64 {
    7
}

// A conforming pair: must stay silent.
#[cfg(feature = "kfault")]
pub fn clear_plan(slot: usize) {
    let _ = slot;
}

#[cfg(not(feature = "kfault"))]
pub fn clear_plan(_slot: usize) {}
