//! KL009 fixture: clock/charge discipline violations.
//! Pinned: a raw frame touch, a raw clock advance, and a DiskOp
//! submitted outside disk_retry/fault_take_disk.
// lint: treat-as-charged-crate

pub fn migrate(frames: &mut FrameTable, clock: &mut Clock, frame: u64) {
    frames.touch(frame);
    clock.advance(100);
}

pub fn submit(dev: &mut Disk) {
    dev.submit(DiskOp::Read);
}

pub fn classify(op: DiskOp) -> bool {
    // Pattern positions are match arms, not submissions: stay silent.
    match op {
        DiskOp::Read | DiskOp::Write => true,
        DiskOp::Fsync => false,
    }
}

pub fn disk_retry(dev: &mut Disk) {
    // Inside a charged API body: exempt.
    dev.submit(DiskOp::Fsync);
}
