//! KL008 fixture: nondeterministic values reaching report output.
//! Pinned: a pointer-identity key written into a report field, and a
//! hash-iteration binding used as a sort key.

pub struct RunReport {
    pub order: usize,
}

pub fn summarize(obj: &u64) -> RunReport {
    let key = obj as *const u64 as usize;
    RunReport { order: key }
}

pub fn first_key(index: &std::collections::HashMap<u64, u64>) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    // lint: ordered-ok — KL008 is the rule under test here.
    for k in index.keys() {
        out.sort_by_key(|_| *k);
    }
    out
}
