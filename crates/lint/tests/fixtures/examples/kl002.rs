// lint: treat-as-sim-crate
fn stamp() -> u64 {
    let t = std::time::Instant::now(); // KL002: wall clock in a sim crate
    t.elapsed().as_nanos() as u64
}
