// KL007: `tracing` is not declared in this crate's Cargo.toml
// [features] table — this code can never be compiled in.
#[cfg(feature = "tracing")]
pub fn emit(event: Event) {
    recorder::push(event);
}
