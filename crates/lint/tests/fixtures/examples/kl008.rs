fn summarize(obj: &Knode) -> RunReport {
    let key = obj as *const Knode as usize; // machine address: varies per run
    RunReport { order: key } // KL008: pointer identity reaches the report
}
