#[cfg(feature = "kfault")]
pub fn set_fault_plan(plan: FaultPlan, seed: u64) {
    PLAN.with(|p| p.set(Some((plan, seed))));
}

// KL006: the noop shim lost the `seed` parameter — every
// non-kfault build now has a different API.
#[cfg(not(feature = "kfault"))]
pub fn set_fault_plan(_plan: FaultPlan) {}
