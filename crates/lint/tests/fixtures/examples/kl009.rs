// lint: treat-as-charged-crate
fn migrate(&mut self, frame: FrameId) {
    self.frames.touch(frame); // KL009: frame touched without charging
    self.clock.advance(COPY_COST); // KL009: raw advance outside a charged API
}
