// lint: treat-as-sim-crate
fn fan_out(work: Vec<Job>) {
    std::thread::spawn(move || run(work)); // KL003: kloc-sim owns concurrency
}
