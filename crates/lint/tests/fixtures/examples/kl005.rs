// lint: treat-as-sim-crate
fn lookup(frames: &FrameTable, id: FrameId) -> Frame {
    frames.get(id).unwrap() // KL005: propagate the error instead
}
