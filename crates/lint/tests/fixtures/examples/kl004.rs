fn pack(inode: InodeId) -> u32 {
    inode.0 as u32 // KL004: silently truncates a 64-bit inode number
}
