use std::collections::HashMap;

fn order(m: &HashMap<u64, u64>) -> Vec<u64> {
    m.keys().copied().collect() // KL001: hash order differs run to run
}
