//! Fixture: KL004 truncating casts on id/epoch-like values.
//! Expected diagnostics (line, rule): (6, 11, 16, 31, 35, all KL004).

pub fn slot_from_inode(inode: u64) -> u32 {
    // Dropping the generation bits aliases recycled ids.
    inode as u32
}

pub fn epoch_bucket(synced_epoch: u64) -> u16 {
    // Epochs exceed u16 in long runs.
    synced_epoch as u16
}

pub struct FrameId(pub u64);
pub fn low_bits(id: FrameId) -> u8 {
    id.0 as u8
}

pub fn fine(count: usize, ratio: u64) -> (u64, u32) {
    // Widening and non-id casts are out of scope.
    (count as u64, ratio as u32)
}

pub fn justified(id: FrameId) -> u32 {
    // lint: truncation-ok — slot extraction: the low 32 bits are the slot.
    id.0 as u32
}

pub fn shard_home(shard: u64) -> u32 {
    // Shard indexes derive from ids; truncation aliases shards.
    shard as u32
}

pub fn rehome(target_shard: u64) -> u16 {
    target_shard as u16
}
