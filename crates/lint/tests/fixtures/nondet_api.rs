//! Fixture: KL002/KL003 ambient-authority violations in a sim crate.
//! Expected diagnostics (line, rule):
//!   (6, KL002), (8, KL002), (9, KL002), (13, KL002), (17, KL002), (21, KL003).
// lint: treat-as-sim-crate

pub fn wall_clock() -> std::time::Instant {
    // Wall-clock time differs run to run: virtual clocks only.
    let _ = std::time::SystemTime::UNIX_EPOCH;
    Instant::now()
}

pub fn ambient_config() -> Option<String> {
    std::env::var("KLOC_SEED").ok()
}

pub fn randomness() -> u64 {
    rand::random()
}

pub fn concurrency() {
    std::thread::spawn(|| {});
}

pub fn sanctioned() {
    // lint: nondet-ok — documented escape hatch for sanctioned sites.
    let _ = std::env::args();
}
