//! Fixture: a clean file. Mentions of `HashMap` iteration,
//! `Instant::now`, `std::env`, and `inode as u32` in comments or string
//! literals must not fire — the scanner strips both before matching.
//! Expected diagnostics: none.
// lint: treat-as-sim-crate

use std::collections::BTreeMap;

/// Sorted iteration over a `BTreeMap` is deterministic; a `HashMap`
/// here would need `// lint: ordered-ok`.
pub fn ordered(map: &BTreeMap<u64, u64>) -> Vec<u64> {
    map.keys().copied().collect()
}

pub fn messages() -> (&'static str, String) {
    let a = "prefer virtual clocks over Instant::now and std::env";
    (a, format!("cast {} via u32::try_from, never inode as u32", 7))
}

pub fn lifetime_soup<'a>(x: &'a [u8]) -> &'a [u8] {
    let _c: char = 'x';
    let _nl = '\n';
    x
}
