//! Lossless-lexer guarantees, checked two ways: round-trip over every
//! real `.rs` file in the workspace (including the lint's own
//! violation fixtures), and a seeded token-soup model test that
//! stitches adversarial fragments together with a SplitMix64 stream.

use std::path::{Path, PathBuf};

use kloc_lint::lex::{lex, TokenKind};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

/// The three invariants every lex must uphold: tokens tile the source
/// exactly (concatenating their texts reproduces the bytes), spans are
/// contiguous, and line numbers are consistent with the newlines seen.
fn assert_lossless(label: &str, source: &str) {
    let tokens = lex(source);
    let mut rebuilt = String::with_capacity(source.len());
    let mut cursor = 0usize;
    let mut line = 1usize;
    for t in &tokens {
        assert_eq!(
            t.start, cursor,
            "{label}: gap before token at byte {cursor}"
        );
        assert!(t.end > t.start, "{label}: empty token at byte {cursor}");
        assert_eq!(t.line, line, "{label}: line drift at byte {cursor}");
        let text = t.text(source);
        line += text.matches('\n').count();
        rebuilt.push_str(text);
        cursor = t.end;
    }
    assert_eq!(cursor, source.len(), "{label}: trailing bytes unlexed");
    assert_eq!(rebuilt, source, "{label}: round-trip mismatch");
}

#[test]
fn every_workspace_source_file_roundtrips() {
    let root = workspace_root();
    let files = kloc_lint::workspace_files(&root).expect("workspace readable");
    assert!(
        files.len() > 20,
        "workspace_files found only {} files",
        files.len()
    );
    for path in files {
        let source = std::fs::read_to_string(&path).expect("source readable");
        assert_lossless(&path.display().to_string(), &source);
    }
}

#[test]
fn violation_fixtures_roundtrip_too() {
    // `workspace_files` skips `fixtures/` on purpose; they are still
    // source the lexer must not mangle.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut seen = 0usize;
    let mut stack = vec![dir];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("fixtures dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let source = std::fs::read_to_string(&path).expect("fixture");
                assert_lossless(&path.display().to_string(), &source);
                seen += 1;
            }
        }
    }
    assert!(seen >= 8, "expected the fixture corpus, saw {seen}");
}

/// SplitMix64 (Steele et al.), the same generator the simulator uses:
/// deterministic, dependency-free, good enough to shuffle fragments.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[(self.next() % items.len() as u64) as usize]
    }
}

/// Fragments chosen to stress every tricky lexer path: nested block
/// comments, raw strings with hash fences, byte/char/lifetime
/// ambiguity, number suffixes, raw identifiers, and adjacent operators
/// that must stay separate Punct tokens.
const FRAGMENTS: &[&str] = &[
    "fn",
    "r#match",
    "ident_0",
    "'a",
    "'\\n'",
    "'x'",
    "b'q'",
    "\"str with \\\" escape\"",
    "r#\"raw \" inside\"#",
    "br#\"bytes\"#",
    "0xFF_u64",
    "1_000",
    "1.5e-3",
    "0b1010",
    "2.",
    "// line comment",
    "/* block /* nested */ still */",
    "::",
    "->",
    "=>",
    "..=",
    "<<=",
    "&&",
    "#![allow(dead_code)]",
    "let x: &mut Vec<u8> = v;",
    "m.iter().map(|(k, v)| k + v)",
];

const SEPARATORS: &[&str] = &[" ", "\n", "\t", "\n\n", " \n "];

#[test]
fn seeded_token_soup_roundtrips() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64(seed.wrapping_mul(0x9E37_79B9) + 1);
        let mut source = String::new();
        let pieces = 40 + (rng.next() % 120) as usize;
        for _ in 0..pieces {
            source.push_str(rng.pick(FRAGMENTS));
            source.push_str(rng.pick(SEPARATORS));
        }
        assert_lossless(&format!("soup(seed={seed})"), &source);
    }
}

#[test]
fn soup_token_kinds_are_sane() {
    // Beyond losslessness: a spot-check that classification holds in
    // soup context (comments stay comments, strings stay one token).
    let mut rng = SplitMix64(0xC0FFEE);
    let mut source = String::new();
    for _ in 0..200 {
        source.push_str(rng.pick(FRAGMENTS));
        source.push('\n');
    }
    let tokens = lex(&source);
    for t in &tokens {
        let text = t.text(&source);
        match t.kind {
            TokenKind::BlockComment => {
                assert!(text.starts_with("/*") && text.ends_with("*/"), "{text:?}")
            }
            TokenKind::LineComment => assert!(text.starts_with("//"), "{text:?}"),
            TokenKind::Str => assert!(text.ends_with('"') || text.ends_with('#'), "{text:?}"),
            TokenKind::Punct => assert_eq!(text.chars().count(), 1, "{text:?}"),
            _ => {}
        }
    }
}

#[test]
fn pathological_inputs_do_not_panic() {
    // Truncated constructs the lexer must absorb without panicking —
    // linting mid-edit files is in scope.
    for src in [
        "\"unterminated",
        "r#\"unterminated raw",
        "/* unterminated block /* nested",
        "'",
        "b\"",
        "0x",
        "ident\u{0000}after_nul",
        "🦀 emoji soup 🦀",
        "'a'b'c'd",
        "#!/usr/bin/env rust",
    ] {
        assert_lossless("pathological", src);
    }
}
