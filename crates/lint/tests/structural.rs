//! Regression suite for the structural rules (KL006–KL009): fixture
//! files pinned down to exact (file, line, rule) triples, scratch-copy
//! drift tests against the real workspace sources, and `--fix`
//! application/idempotence checks.

use std::path::{Path, PathBuf};

use kloc_lint::{apply_fixes, lint_crate, lint_source, Diagnostic};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let source = std::fs::read_to_string(fixture_path(name)).expect("fixture readable");
    lint_source(name, &source, false)
}

fn triples(diags: &[Diagnostic]) -> Vec<(String, usize, &'static str)> {
    diags
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect()
}

/// 1-based line of the first occurrence of `needle` in `text`.
fn line_at(text: &str, needle: &str) -> usize {
    let at = text.find(needle).expect("needle present");
    text[..at].matches('\n').count() + 1
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kloc-lint-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn kl006_fixture_pins_drift_and_missing_counterpart() {
    let diags = lint_fixture("kl006_shim_drift.rs");
    assert_eq!(
        triples(&diags),
        vec![
            ("kl006_shim_drift.rs".to_owned(), 13, "KL006"),
            ("kl006_shim_drift.rs".to_owned(), 16, "KL006"),
        ],
        "{diags:#?}"
    );
    // The drift diagnostic points back at the real half (both spans).
    assert!(diags[0].message.contains("drifted"), "{}", diags[0].message);
    assert!(
        diags[0]
            .notes
            .iter()
            .any(|n| n.contains("kl006_shim_drift.rs:8")),
        "{:?}",
        diags[0].notes
    );
    let fix = diags[0]
        .suggestion
        .as_ref()
        .expect("machine-applicable fix");
    assert_eq!(
        fix.replacement,
        "fn set_fault_plan(_plan: FaultPlan, _seed: u64)"
    );
    // The missing-counterpart diagnostic names both polarities.
    assert!(
        diags[1].message.contains("no counterpart"),
        "{}",
        diags[1].message
    );
}

#[test]
fn kl008_fixture_pins_report_field_and_sort_key() {
    let diags = lint_fixture("kl008_tainted_report.rs");
    assert_eq!(
        triples(&diags),
        vec![
            ("kl008_tainted_report.rs".to_owned(), 11, "KL008"),
            ("kl008_tainted_report.rs".to_owned(), 18, "KL008"),
        ],
        "{diags:#?}"
    );
    // Provenance: the report-field diagnostic names its taint source.
    assert!(
        diags[0]
            .notes
            .iter()
            .any(|n| n.contains("kl008_tainted_report.rs:10")),
        "{:?}",
        diags[0].notes
    );
}

#[test]
fn kl009_fixture_pins_touch_advance_and_diskop() {
    let diags = lint_fixture("kl009_uncharged.rs");
    assert_eq!(
        triples(&diags),
        vec![
            ("kl009_uncharged.rs".to_owned(), 7, "KL009"),
            ("kl009_uncharged.rs".to_owned(), 8, "KL009"),
            ("kl009_uncharged.rs".to_owned(), 12, "KL009"),
        ],
        "{diags:#?}"
    );
}

#[test]
fn kl007_flags_undeclared_feature_with_insertion_fix() {
    let manifest = "[package]\nname = \"scratch\"\n\n[features]\nksan = []\n";
    let src = "#[cfg(feature = \"tracing\")]\npub fn emit() {}\n";
    let diags = lint_crate(
        "Cargo.toml",
        manifest,
        &[("crates/scratch/src/lib.rs", src)],
    );
    let kl007: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "KL007").collect();
    assert_eq!(kl007.len(), 1, "{diags:#?}");
    assert_eq!(kl007[0].line, 1);
    assert!(kl007[0].message.contains("tracing"));
    let fix = kl007[0].suggestion.as_ref().expect("fix");
    assert_eq!(fix.file, "Cargo.toml");
    assert_eq!(fix.replacement, "tracing = []\n");
}

/// Deleting a parameter from a real noop shim in a scratch copy of
/// `crates/mem/src/system.rs` must trip KL006 with spans at both
/// halves (the noop line, and the real line in the note).
#[test]
fn scratch_copy_shim_param_deletion_trips_kl006() {
    let root = workspace_root();
    let path = root.join("crates/mem/src/system.rs");
    let source = std::fs::read_to_string(&path).expect("system.rs readable");
    let noop = "pub fn set_fault_plan(&mut self, _plan: FaultPlan) {}";
    assert!(
        source.contains(noop),
        "expected real noop shim in system.rs"
    );
    let mutated = source.replace(noop, "pub fn set_fault_plan(&mut self) {}");

    let diags = lint_source("crates/mem/src/system.rs", &mutated, true);
    let kl006: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "KL006").collect();
    assert_eq!(kl006.len(), 1, "{diags:#?}");
    assert_eq!(
        kl006[0].line,
        line_at(&mutated, "pub fn set_fault_plan(&mut self) {}")
    );
    let real_line = line_at(
        &mutated,
        "pub fn set_fault_plan(&mut self, plan: FaultPlan)",
    );
    assert!(
        kl006[0]
            .notes
            .iter()
            .any(|n| n.contains(&format!("crates/mem/src/system.rs:{real_line}"))),
        "{:?}",
        kl006[0].notes
    );
    // And the untouched original lints clean.
    let clean = lint_source("crates/mem/src/system.rs", &source, true);
    assert!(clean.is_empty(), "{clean:#?}");
}

/// Renaming a cfg feature in a scratch copy of a real trace source must
/// trip KL007 with spans at both halves (the cfg line, and the
/// manifest named in the message).
#[test]
fn scratch_copy_feature_rename_trips_kl007() {
    let root = workspace_root();
    let manifest = std::fs::read_to_string(root.join("crates/trace/Cargo.toml")).expect("manifest");
    let source = std::fs::read_to_string(root.join("crates/trace/src/lib.rs")).expect("lib.rs");
    assert!(source.contains("feature = \"trace\""));
    let mutated = source.replace("feature = \"trace\"", "feature = \"tracee\"");

    let diags = lint_crate(
        "crates/trace/Cargo.toml",
        &manifest,
        &[("crates/trace/src/lib.rs", &mutated)],
    );
    let kl007: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "KL007").collect();
    assert!(!kl007.is_empty(), "{diags:#?}");
    assert_eq!(kl007[0].line, line_at(&mutated, "feature = \"tracee\""));
    assert!(kl007[0].message.contains("crates/trace/Cargo.toml"));
    assert!(kl007[0].suggestion.is_some());
}

#[test]
fn fix_applies_kl007_insertion_and_is_idempotent() {
    let dir = scratch_dir("kl007fix");
    let manifest = "[package]\nname = \"scratch\"\n\n[features]\nksan = []\n";
    let src = "#[cfg(feature = \"tracing\")]\npub fn emit() {}\n";
    std::fs::create_dir_all(dir.join("src")).unwrap();
    std::fs::write(dir.join("Cargo.toml"), manifest).unwrap();
    std::fs::write(dir.join("src/lib.rs"), src).unwrap();

    let lint_here = |root: &Path| {
        let m = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        let s = std::fs::read_to_string(root.join("src/lib.rs")).unwrap();
        lint_crate("Cargo.toml", &m, &[("src/lib.rs", &s)])
    };

    let before = lint_here(&dir);
    assert!(before.iter().any(|d| d.rule == "KL007"), "{before:#?}");
    let changed = apply_fixes(&dir, &before).expect("fixes apply");
    assert_eq!(changed, vec!["Cargo.toml".to_owned()]);
    let fixed = std::fs::read_to_string(dir.join("Cargo.toml")).unwrap();
    assert!(fixed.contains("tracing = []"), "{fixed}");

    let after = lint_here(&dir);
    assert!(after.iter().all(|d| d.rule != "KL007"), "{after:#?}");
    // Idempotence: a second --fix pass changes nothing.
    let changed_again = apply_fixes(&dir, &after).expect("noop fixes");
    assert!(changed_again.is_empty());
    assert_eq!(
        std::fs::read_to_string(dir.join("Cargo.toml")).unwrap(),
        fixed
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fix_rewrites_drifted_noop_shim_signature() {
    let dir = scratch_dir("kl006fix");
    let rel = "kl006_shim_drift.rs";
    let source = std::fs::read_to_string(fixture_path(rel)).unwrap();
    std::fs::write(dir.join(rel), &source).unwrap();

    let before = lint_source(rel, &source, false);
    assert!(before.iter().any(|d| d.suggestion.is_some()), "{before:#?}");
    let changed = apply_fixes(&dir, &before).expect("fixes apply");
    assert_eq!(changed, vec![rel.to_owned()]);

    let fixed = std::fs::read_to_string(dir.join(rel)).unwrap();
    assert!(
        fixed.contains("fn set_fault_plan(_plan: FaultPlan, _seed: u64)"),
        "{fixed}"
    );
    let after = lint_source(rel, &fixed, false);
    // The drift is gone; only the (fixless) missing-counterpart remains.
    assert!(
        after.iter().all(|d| !d.message.contains("drifted")),
        "{after:#?}"
    );
    assert!(after.iter().all(|d| d.suggestion.is_none()), "{after:#?}");
    let changed_again = apply_fixes(&dir, &after).expect("noop fixes");
    assert!(changed_again.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn real_workspace_has_no_pending_fixes() {
    // CI enforces `--fix` idempotence on the working tree; this is the
    // in-process equivalent: a clean workspace offers no suggestions.
    let diags = kloc_lint::lint_workspace(&workspace_root()).expect("workspace readable");
    assert!(diags.is_empty(), "{diags:#?}");
    let changed = apply_fixes(&workspace_root(), &diags).expect("noop");
    assert!(changed.is_empty());
}
