//! # kloc-policy — tiering policies
//!
//! Implementations of every memory-management strategy the paper
//! evaluates (Table 5), all speaking the
//! [`kloc_kernel::hooks::KernelHooks`] interface plus a periodic
//! [`Policy::tick`]:
//!
//! **Two-tier platform**
//! * [`AllFast`] / [`AllSlow`] — the ideal and pessimistic bounds.
//! * [`Naive`] — greedy first-come-first-served into fast memory; no
//!   migration.
//! * [`Nimble`] — prior-art application-page tiering (ASPLOS '19):
//!   LRU-scan hotness detection with parallelized page copy; kernel
//!   objects pinned to slow memory (what prior work does for two-tier
//!   systems, §3.2).
//! * [`NimblePlusPlus`] — our extension of Nimble that also scan-tracks
//!   relocatable kernel pages, but *without* the KLOC abstraction: its
//!   detection latency exceeds kernel object lifetimes, so evicted
//!   objects rarely return (§6.2).
//! * [`KlocPolicy`] — the paper's system: Nimble mechanisms for app
//!   pages + the KLOC registry for kernel objects, with direct fast
//!   allocation for active knodes and en-masse demotion on close;
//!   [`KlocPolicy::without_migration`] gives the `KLOCs-nomigration`
//!   variant of Fig. 4.
//!
//! **Optane Memory Mode platform**
//! * [`AutoNuma`] — socket-affinity page migration for app pages only.
//! * [`AutoNumaKloc`] — AutoNUMA extended to migrate the kernel objects
//!   of active KLOCs to the task's socket (§4.5).

#![warn(missing_docs)]

pub mod apptier;
pub mod autonuma;
pub mod kloc;
pub mod nimble;
pub mod simple;
pub mod traits;

pub use apptier::AppTier;
pub use autonuma::{AutoNuma, AutoNumaKloc};
pub use kloc::KlocPolicy;
pub use nimble::{Nimble, NimblePlusPlus};
pub use simple::{AllFast, AllSlow, Naive};
pub use traits::{Policy, PolicyKind};
