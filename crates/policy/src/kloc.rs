//! The KLOC tiering policy (paper Table 5, "KLOCs" and
//! "KLOCs-nomigration").
//!
//! Composition, exactly as the paper describes: *original Nimble
//! policies* (scan-based hotness + parallel migration) for application
//! pages, plus the KLOC abstraction for kernel objects:
//!
//! * kernel objects of **active** knodes are allocated directly into
//!   fast memory (§3.2, first implication — prior work sent them to slow
//!   memory); inactive knodes' allocations divert to slow memory under
//!   fast-tier pressure;
//! * on the last close of a file/socket, the knode is marked inactive
//!   immediately and its members are demoted **en masse** within a few
//!   sub-millisecond ticks, once its age confirms coldness — no LRU
//!   scans involved (§4.5: "we immediately mark and migrate ... without
//!   waiting for scans of active/inactive lists");
//! * on re-open of a recently-used knode, hot members are pulled back
//!   into fast memory; members of open knodes demote/promote
//!   individually by per-frame recency (the fine-grained extension of
//!   §4.4, toggleable via [`KlocPolicy::coarse`]);
//! * the relocatable allocation interface (§4.4) is enabled so slab-class
//!   objects can move, and early socket demux (§4.2.3) associates ingress
//!   buffers in the driver.
//!
//! `KLOCs-nomigration` keeps the placement rules but never migrates
//! kernel objects — the Fig. 4 ablation showing why migration matters.

use kloc_core::{KlocConfig, KlocRegistry};
use kloc_kernel::hooks::{CpuId, KernelHooks, PageRequest, Placement};
use kloc_kernel::{Kernel, ObjectId, ObjectInfo};
use kloc_mem::{FrameId, MemorySystem, MigrationCost, Nanos, PageKind, TenantId, TierId};

use crate::apptier::AppTier;
use crate::traits::Policy;

/// The KLOC policy.
#[derive(Debug)]
pub struct KlocPolicy {
    registry: KlocRegistry,
    app: AppTier,
    /// Whether kernel-object migration is enabled (false =
    /// KLOCs-nomigration).
    migrate: bool,
    /// Demote an inactive knode once its age (LRU-scan epochs without a
    /// touch, §4.3) reaches this. Burstily reused files — open, I/O,
    /// close, reopen microseconds later — keep their age at zero and are
    /// never ping-ponged; truly cold knodes age up and demote within a
    /// few ticks, still far faster than page-table scans.
    cold_age: u32,
    /// Promote a reopened knode's members only when its age is below
    /// this (it was in use within the last few scan epochs). One-shot
    /// reopens of long-cold files — compaction inputs, backup scans —
    /// are served from slow memory instead of churning fast memory;
    /// this keeps promotions the small fraction of migrations the paper
    /// reports (4-12%, §4.4).
    promote_max_age: u32,
    /// Demote knodes idle longer than this even while open.
    idle_demote: Nanos,
    /// Whether member-granular tracking is enabled: individual member
    /// pages demote when cold and promote when hot, on top of the
    /// whole-knode en-masse operations. This is the fine-grained
    /// tracking the paper defers to future work (§4.4: "our future work
    /// will explore the benefits of employing a fine-grained kernel
    /// object tracking approach"); disable for the paper's baseline
    /// inode-granularity design.
    member_granular: bool,
    /// Demote individual member pages untouched for this long.
    member_idle: Nanos,
    /// Promote individual slow member pages touched within this window.
    member_hot: Nanos,
    /// Maximum knodes demoted per tick.
    demote_batch: usize,
    /// Run the page-granular scan mechanism every N knode ticks (scans
    /// are Nimble-cadence work; knode reactions are cheap and frequent).
    app_tick_divider: u32,
    ticks: u32,
    /// Round-robin cursor over active knodes for cold-member demotion.
    active_cursor: usize,
    /// Largest en-masse migration staged (Table 6 overhead accounting).
    peak_migration_batch: u64,
    /// Reusable candidate buffer for the tick reclaim passes, held on
    /// the policy so the per-tick paths allocate nothing.
    scratch: Vec<kloc_kernel::InodeId>,
    /// Per-tenant fast-memory caps for kernel pages, dense by
    /// [`TenantId::index`] (`None` = uncapped). Installed by
    /// [`Policy::configure_tenants`]; empty in single-tenant runs.
    tenant_budgets: Vec<Option<u64>>,
    /// Per-tenant QoS classes, dense by [`TenantId::index`] (`None` =
    /// unregistered). Installed by [`Policy::configure_tenants`];
    /// drives the QoS-ordered divert under pressure or an active tier
    /// fault (DESIGN.md §13).
    tenant_qos: Vec<Option<kloc_kernel::QosClass>>,
}

impl Default for KlocPolicy {
    fn default() -> Self {
        KlocPolicy::new()
    }
}

impl KlocPolicy {
    /// Full KLOCs with default configuration.
    pub fn new() -> Self {
        KlocPolicy::with_config(KlocConfig::default(), true)
    }

    /// The KLOCs-nomigration variant of Fig. 4.
    pub fn without_migration() -> Self {
        KlocPolicy::with_config(KlocConfig::default(), false)
    }

    /// The paper's baseline inode-granularity design: knodes migrate
    /// only as a whole (no per-member demotion/promotion). Used by the
    /// granularity ablation.
    pub fn coarse() -> Self {
        let mut p = KlocPolicy::new();
        p.member_granular = false;
        p
    }

    /// Custom registry configuration (per-type inclusion for Fig. 5c,
    /// per-CPU ablation for §4.3) and migration switch.
    pub fn with_config(config: KlocConfig, migrate: bool) -> Self {
        KlocPolicy {
            registry: KlocRegistry::new(config),
            app: AppTier::new(),
            migrate,
            cold_age: 12,
            promote_max_age: 4,
            member_granular: true,
            member_idle: Nanos::from_millis(15),
            member_hot: Nanos::from_millis(2),
            idle_demote: Nanos::from_millis(5),
            demote_batch: 64,
            app_tick_divider: 8,
            ticks: 0,
            active_cursor: 0,
            peak_migration_batch: 0,
            scratch: Vec::new(),
            tenant_budgets: Vec::new(),
            tenant_qos: Vec::new(),
        }
    }

    /// The most-scavenger QoS class currently holding fast-tier kernel
    /// pages, or `None` unless at least two distinct classes hold some
    /// — with a single class there is nobody to protect, so plain
    /// placement applies. Only registered tenants participate; the
    /// shared default tenant's infrastructure pages are not a class.
    fn qos_divert_floor(&self, mem: &MemorySystem) -> Option<kloc_kernel::QosClass> {
        use kloc_kernel::QosClass;
        let mut seen = [false; 3];
        for (i, q) in self.tenant_qos.iter().enumerate() {
            let Some(q) = q else { continue };
            if mem.tenant_fast_kernel(TenantId(i as u16)) > 0 {
                seen[*q as usize] = true;
            }
        }
        if seen.iter().filter(|s| **s).count() < 2 {
            return None;
        }
        [QosClass::BestEffort, QosClass::Burstable, QosClass::Guaranteed]
            .into_iter()
            .find(|q| seen[*q as usize])
    }

    /// The KLOC registry.
    pub fn kloc_registry(&self) -> &KlocRegistry {
        &self.registry
    }

    /// Largest en-masse migration batch seen (pages).
    pub fn peak_migration_batch(&self) -> u64 {
        self.peak_migration_batch
    }

    /// The app-page mechanism.
    pub fn app_tier(&self) -> &AppTier {
        &self.app
    }

    fn demote_knode(&mut self, inode: kloc_kernel::InodeId, mem: &mut MemorySystem) {
        // Fused call: one knode lookup yields both the staging size
        // (tracked for peak_migration_batch) and the demotion walk.
        let (staged, _moved) = self.registry.demote_knode_staged(inode, mem);
        self.peak_migration_batch = self.peak_migration_batch.max(staged);
    }

    /// One pressure-driven reclaim pass (the body of [`Policy::tick`]
    /// once pressure is confirmed). `scratch` is the policy's reusable
    /// candidate buffer, passed in detached so the demote calls can
    /// borrow `self` mutably.
    fn reclaim(&mut self, scratch: &mut Vec<kloc_kernel::InodeId>, mem: &mut MemorySystem) {
        let now = mem.now();

        // Demote inactive knodes whose age confirms coldness. The
        // inactive index hands back exactly the cold candidates — no
        // page-table scans and no walk over the warm population (§4.4).
        scratch.clear();
        // The cold index yields candidates in inode order — the batch
        // has always been the first `demote_batch` candidates in inode
        // order, previously produced by sorting the full range.
        self.registry
            .cold_member_candidates(self.cold_age, self.demote_batch, scratch);
        for &ino in scratch.iter() {
            self.demote_knode(ino, mem);
        }

        // Also demote open-but-idle knodes
        // ("periods of activity interspersed with inactivity", §4.4) and
        // *cold members* of active knodes — old pages of an append-only
        // log, say. The knode names the frames directly, so inferring
        // their relative age is a pointer walk, not a page-table scan.
        scratch.clear();
        for k in self.registry.kmap().active_knodes() {
            if scratch.len() == self.demote_batch {
                break;
            }
            if now.saturating_sub(k.last_active()) >= self.idle_demote {
                scratch.push(k.inode());
            }
        }
        for &ino in scratch.iter() {
            self.demote_knode(ino, mem);
        }
        if !self.member_granular {
            return;
        }
        // Rotate over active knodes, demoting members untouched for a
        // while (old pages of an append-only log) and promoting hot
        // members stranded in slow memory. Demotion makes the room
        // promotion fills: an LRU exchange driven entirely by knode
        // pointer walks.
        scratch.clear();
        scratch.extend(self.registry.kmap().active_knodes().map(|k| k.inode()));
        if !scratch.is_empty() {
            let mut demote_budget = 128u64;
            for i in 0..scratch.len().min(16) {
                let idx = (self.active_cursor + i) % scratch.len();
                let moved = self.registry.demote_cold_members(
                    scratch[idx],
                    mem,
                    self.member_idle,
                    demote_budget,
                );
                demote_budget = demote_budget.saturating_sub(moved);
                let room = mem
                    .tier_alloc(TierId::FAST)
                    .map(|a| a.free_frames())
                    .unwrap_or(0);
                if room > 0 {
                    self.registry
                        .promote_hot_members(scratch[idx], mem, self.member_hot, room);
                }
                if demote_budget == 0 {
                    break;
                }
            }
            self.active_cursor = (self.active_cursor + 16) % scratch.len().max(1);
        }
    }
}

impl KernelHooks for KlocPolicy {
    fn place_page(&mut self, req: &PageRequest, mem: &MemorySystem) -> Placement {
        if req.kind == PageKind::AppData {
            // "KLOCs prioritize application pages" (§4.2.2).
            return Placement::fast_then_slow();
        }
        let Some(ty) = req.ty else {
            return Placement::fast_then_slow();
        };
        if !self.registry.includes(ty) {
            // Fig. 5c methodology: object classes excluded from the
            // KLOC abstraction are always kept in fast memory.
            return Placement::fast_then_slow();
        }
        // Per-tenant sys_kloc_memsize: a tenant at its fast-memory cap
        // has its kernel pages diverted to slow memory, regardless of
        // global headroom — the budget that keeps one tenant's churn out
        // of its neighbours' fast tier. O(1): the memory system keeps
        // per-tenant fast-resident kernel-page counters.
        if let Some(&Some(budget)) = self.tenant_budgets.get(req.tenant.index()) {
            if mem.tenant_fast_kernel(req.tenant) >= budget {
                kloc_trace::with_counters(|c| c.slow_diverts += 1);
                return Placement::slow_only();
            }
        }
        let pressure = mem
            .tier_alloc(TierId::FAST)
            .map(|a| a.utilization() >= 0.85)
            .unwrap_or(false);
        // QoS-ordered divert (DESIGN.md §13): while fast memory is
        // under pressure or a tier fault window is open, kernel
        // allocations from the most-scavenger class holding fast pages
        // go to slow memory, preserving stricter classes' headroom. A
        // Guaranteed tenant is never diverted here while a lower class
        // holds fast kernel pages.
        if pressure || mem.tier_fault_active() {
            if let Some(floor) = self.qos_divert_floor(mem) {
                if self.tenant_qos.get(req.tenant.index()).copied().flatten() == Some(floor) {
                    kloc_trace::with_counters(|c| c.slow_diverts += 1);
                    return Placement::slow_only();
                }
            }
        }
        // sys_kloc_memsize (Table 2): an administrator cap on the fast
        // memory KLOC-managed kernel objects may occupy.
        if let Some(budget) = self.registry.config().fast_budget_frames {
            let kernel_fast: u64 = mem
                .stats()
                .tier(TierId::FAST)
                .resident_by_kind
                .iter()
                .filter(|(k, _)| k.is_kernel())
                .map(|(_, v)| *v)
                .sum();
            if kernel_fast >= budget {
                kloc_trace::with_counters(|c| c.slow_diverts += 1);
                return Placement::slow_only();
            }
        }
        if req.readahead && pressure {
            // Speculative readahead must not pollute scarce fast memory
            // (§7.3); pages that turn out hot are retrieved by the
            // member-granular promotion path.
            kloc_trace::with_counters(|c| c.slow_diverts += 1);
            return Placement::slow_only();
        }
        match req.inode.and_then(|i| self.registry.is_active(i)) {
            // Active knode: allocate directly into fast memory.
            Some(true) => Placement::fast_then_slow(),
            // Inactive knode: divert to slow memory when fast memory is
            // scarce — including prefetched pages for cold files, which
            // is how KLOCs keep readahead from polluting fast memory
            // (§7.3). With no pressure, spare fast capacity is used (it
            // can always be reclaimed en masse later).
            Some(false) => {
                if pressure {
                    kloc_trace::with_counters(|c| c.slow_diverts += 1);
                    Placement::slow_only()
                } else {
                    Placement::fast_then_slow()
                }
            }
            // Unknown owner (global journal blocks, pre-demux buffers):
            // these serve in-flight I/O; keep them fast.
            None => Placement::fast_then_slow(),
        }
    }

    fn relocatable_kernel_alloc(&self) -> bool {
        // The §4.4 allocation interface: slab-class objects become
        // relocatable (and per-inode co-located).
        true
    }

    fn early_socket_demux(&self) -> bool {
        // The 8-byte skbuff socket field (§4.2.3).
        true
    }

    fn on_inode_create(
        &mut self,
        inode: kloc_kernel::InodeId,
        cpu: CpuId,
        tenant: TenantId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .inode_created_by(inode, cpu, tenant, mem.now());
    }

    fn on_inode_open(&mut self, inode: kloc_kernel::InodeId, cpu: CpuId, mem: &mut MemorySystem) {
        let hot = self
            .registry
            .kmap()
            .age_of(inode)
            .map(|age| age < self.promote_max_age)
            .unwrap_or(false);
        self.registry.inode_opened(inode, cpu, mem.now());
        if self.migrate && hot {
            let room = mem
                .tier_alloc(TierId::FAST)
                .map(|a| a.free_frames())
                .unwrap_or(0);
            if room > 0 {
                if self.member_granular {
                    // Retrieve the recently-used members of this KLOC
                    // back into fast memory, up to the available room.
                    // Cold members (e.g. pages demoted for inactivity)
                    // stay put — promotion and demotion windows are
                    // disjoint, so pages never ping-pong.
                    self.registry
                        .promote_hot_members(inode, mem, self.member_hot, room);
                } else {
                    // Inode granularity: all members share one hotness
                    // (paper §3.2, third implication).
                    self.registry
                        .migrate_knode_limited(inode, mem, TierId::FAST, room);
                }
            }
        }
    }

    fn on_inode_close(&mut self, inode: kloc_kernel::InodeId, mem: &mut MemorySystem) {
        // Mark inactive immediately; en-masse migration happens within a
        // few ticks, once the knode's age confirms it is cold (files that
        // bounce between open and closed keep age zero and never churn).
        self.registry.inode_closed(inode, mem.now());
    }

    fn on_inode_destroy(&mut self, inode: kloc_kernel::InodeId, mem: &mut MemorySystem) {
        // Deleted: objects are freed by the kernel, never migrated (§3.2).
        self.registry.inode_destroyed(inode, mem.now());
    }

    fn on_object_alloc(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        frame: FrameId,
        cpu: CpuId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .object_allocated(obj, info, frame, cpu, mem.now());
        // Page-backed kernel objects (cache pages, data buffers) also
        // join the Nimble scan machinery (Table 5: "original Nimble
        // policies ... and parallel kernel page migration"), giving
        // page-granular hotness on top of the knode shortcut. Kvma
        // arenas stay knode-managed: their mixed contents would defeat
        // binary page hotness.
        if self.migrate {
            if let Ok(f) = mem.frame(frame) {
                let kind = f.kind();
                if kind.relocatable() && kind != PageKind::KernelVma {
                    self.app.on_alloc(frame);
                }
            }
        }
    }

    fn on_object_associate(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        frame: FrameId,
        cpu: CpuId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .object_associated(obj, info, frame, cpu, mem.now());
    }

    fn on_object_free(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        _frame: FrameId,
        _mem: &mut MemorySystem,
    ) {
        self.registry.object_freed(obj, info);
    }

    fn on_object_access(
        &mut self,
        _obj: ObjectId,
        info: &ObjectInfo,
        frame: FrameId,
        cpu: CpuId,
        tenant: TenantId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .object_accessed_by(info, cpu, tenant, mem.now());
        self.app.on_access(frame);
    }

    fn on_app_page_alloc(&mut self, frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {
        self.app.on_alloc(frame);
    }

    fn on_app_page_access(&mut self, frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {
        self.app.on_access(frame);
    }

    fn on_page_free(&mut self, frame: FrameId, _mem: &mut MemorySystem) {
        self.app.on_free(frame);
    }
}

impl Policy for KlocPolicy {
    fn name(&self) -> &'static str {
        if self.migrate {
            "kloc"
        } else {
            "kloc-nomigration"
        }
    }

    fn tick(&mut self, _kernel: &Kernel, mem: &mut MemorySystem) {
        // Nimble mechanisms for application (and tracked kernel) pages,
        // at Nimble's scan cadence.
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(self.app_tick_divider) {
            let before_promoted = self.app.stats().promoted;
            let before_demoted = self.app.stats().demoted;
            self.app.tick(mem);
            // Page-backed kernel objects share the Nimble scan
            // machinery, so its migrations move member frames behind
            // the registry's back — tell it, so the knode demotion
            // memoizations are re-derived.
            if self.app.stats().promoted != before_promoted {
                self.registry.note_external_promotions();
            }
            if self.app.stats().demoted != before_demoted {
                self.registry.note_external_demotions();
            }
        }
        // Knode aging (scans that skip a knode bump its age, §4.3):
        // O(1) counter bumps, no walk of the knode population.
        self.registry.age_epoch();
        if !self.migrate {
            return;
        }

        // All migration activity is pressure-driven: with spare fast
        // capacity there is nothing to reclaim (the paper leaves the
        // aggressiveness to memory pressure and LRU policy, §4.1).
        let pressure = mem
            .tier_alloc(TierId::FAST)
            .map(|a| a.utilization() >= 0.90)
            .unwrap_or(false);
        if !pressure {
            return;
        }
        // Detach the scratch buffer so reclaim can borrow self mutably.
        let mut scratch = std::mem::take(&mut self.scratch);
        self.reclaim(&mut scratch, mem);
        self.scratch = scratch;
    }

    fn tick_interval(&self) -> Nanos {
        // Event-driven: KLOCs react within a quarter millisecond —
        // far inside kernel object lifetimes, unlike scan-based policies.
        Nanos::from_micros(250)
    }

    fn migration_cost(&self) -> MigrationCost {
        // KLOCs reuse Nimble's parallel page copy (§6.2).
        MigrationCost::parallel()
    }

    fn registry(&self) -> Option<&KlocRegistry> {
        Some(&self.registry)
    }

    fn peak_migration_batch(&self) -> u64 {
        self.peak_migration_batch
    }

    fn configure_tenants(&mut self, specs: &[kloc_kernel::TenantSpec]) {
        for spec in specs {
            let i = spec.id.index();
            if i >= self.tenant_budgets.len() {
                self.tenant_budgets.resize(i + 1, None);
                self.tenant_qos.resize(i + 1, None);
            }
            self.tenant_budgets[i] = spec.fast_budget_frames;
            self.tenant_qos[i] = Some(spec.qos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::Ctx;
    use kloc_kernel::{InodeId, Kernel, KernelObjectType};
    use kloc_mem::PAGE_SIZE;

    fn req(ty: KernelObjectType, inode: Option<InodeId>) -> PageRequest {
        PageRequest {
            kind: match ty.backing() {
                kloc_kernel::Backing::Page(k) => k,
                kloc_kernel::Backing::Slab => PageKind::KernelVma,
            },
            ty: Some(ty),
            inode,
            readahead: false,
            cpu: CpuId(0),
            tenant: TenantId::DEFAULT,
        }
    }

    #[test]
    fn active_knodes_place_fast_inactive_slow_under_pressure() {
        // Fill the fast tier so the policy is under pressure.
        let mut mem = MemorySystem::two_tier(4 * PAGE_SIZE, 8);
        for _ in 0..4 {
            mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
        }
        let mut p = KlocPolicy::new();
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        let pl = p.place_page(&req(KernelObjectType::PageCache, Some(InodeId(1))), &mem);
        assert_eq!(pl.preference[0], TierId::FAST, "active knode: fast first");
        p.on_inode_close(InodeId(1), &mut mem);
        let pl = p.place_page(&req(KernelObjectType::PageCache, Some(InodeId(1))), &mem);
        assert_eq!(
            pl.preference,
            vec![TierId::SLOW],
            "inactive knode under pressure: straight to slow"
        );
    }

    #[test]
    fn inactive_placement_uses_spare_fast_capacity() {
        // With a near-empty fast tier there is no reason to divert.
        let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
        let mut p = KlocPolicy::new();
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        p.on_inode_close(InodeId(1), &mut mem);
        let pl = p.place_page(&req(KernelObjectType::PageCache, Some(InodeId(1))), &mem);
        assert_eq!(pl.preference[0], TierId::FAST);
    }

    #[test]
    fn cold_knodes_demote_en_masse_and_hot_members_promote() {
        // Demotion is pressure-driven: fill the fast tier completely.
        let mut mem = MemorySystem::two_tier(8 * PAGE_SIZE, 8);
        let kernel = Kernel::new(Default::default());
        let mut p = KlocPolicy::new();
        for _ in 0..4 {
            mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
        }
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        let mut frames = Vec::new();
        let info = ObjectInfo {
            ty: KernelObjectType::PageCache,
            size: 4096,
            inode: Some(InodeId(1)),
        };
        for i in 0..4u64 {
            let f = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
            p.on_object_alloc(ObjectId(i), &info, f, CpuId(0), &mut mem);
            // Two touches: the pages are hot in the page-granular LRU, so
            // only the knode path can demote them.
            p.on_object_access(ObjectId(i), &info, f, CpuId(0), TenantId::DEFAULT, &mut mem);
            p.on_object_access(ObjectId(i), &info, f, CpuId(0), TenantId::DEFAULT, &mut mem);
            frames.push(f);
        }
        p.on_inode_close(InodeId(1), &mut mem);
        // Let the members go cold in virtual time, then age the knode
        // past the cold threshold: the en-masse demotion fires on a tick
        // (no instant ping-pong on close/reopen cycles).
        mem.charge(Nanos::from_millis(10));
        for _ in 0..16 {
            p.tick(&kernel, &mut mem);
        }
        for f in &frames {
            assert_eq!(mem.tier_of(*f), TierId::SLOW, "demoted once cold");
        }
        assert_eq!(p.peak_migration_batch(), 4);
        // Access one member (marks it hot) and reopen: the hot member is
        // retrieved into fast memory.
        mem.read(frames[0], 4096);
        p.on_object_access(
            ObjectId(0),
            &info,
            frames[0],
            CpuId(0),
            TenantId::DEFAULT,
            &mut mem,
        );
        p.on_inode_open(InodeId(1), CpuId(0), &mut mem);
        assert_eq!(mem.tier_of(frames[0]), TierId::FAST, "hot member promoted");
        assert_eq!(
            mem.tier_of(frames[3]),
            TierId::SLOW,
            "cold members stay in slow memory"
        );
    }

    #[test]
    fn nomigration_variant_places_but_never_moves() {
        let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
        let mut p = KlocPolicy::without_migration();
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        let f = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        let info = ObjectInfo {
            ty: KernelObjectType::PageCache,
            size: 4096,
            inode: Some(InodeId(1)),
        };
        p.on_object_alloc(ObjectId(1), &info, f, CpuId(0), &mut mem);
        p.on_inode_close(InodeId(1), &mut mem);
        assert_eq!(mem.tier_of(f), TierId::FAST, "no migration variant");
        assert_eq!(mem.migration_stats().total(), 0);
        assert_eq!(p.name(), "kloc-nomigration");
    }

    #[test]
    fn excluded_types_always_fast() {
        let mut cfg = KlocConfig::default();
        cfg.included.remove(&KernelObjectType::SkBuff);
        let mut mem = MemorySystem::two_tier(1 << 20, 8);
        let mut p = KlocPolicy::with_config(cfg, true);
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        p.on_inode_close(InodeId(1), &mut mem);
        // Inactive inode, but SkBuff is excluded -> fast placement.
        let pl = p.place_page(&req(KernelObjectType::SkBuff, Some(InodeId(1))), &mem);
        assert_eq!(pl.preference[0], TierId::FAST);
    }

    #[test]
    fn fast_budget_caps_kernel_placement() {
        // sys_kloc_memsize: with a 2-frame budget, the third kernel page
        // is diverted to slow memory even though fast has room.
        let cfg = KlocConfig {
            fast_budget_frames: Some(2),
            ..KlocConfig::default()
        };
        let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
        let mut p = KlocPolicy::with_config(cfg, true);
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        for _ in 0..2 {
            let pl = p.place_page(&req(KernelObjectType::PageCache, Some(InodeId(1))), &mem);
            assert_eq!(pl.preference[0], TierId::FAST);
            mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        }
        let pl = p.place_page(&req(KernelObjectType::PageCache, Some(InodeId(1))), &mem);
        assert_eq!(pl.preference, vec![TierId::SLOW], "budget reached");
        // App pages are not subject to the kernel-object budget.
        let app = PageRequest {
            kind: PageKind::AppData,
            ty: None,
            inode: None,
            readahead: false,
            cpu: CpuId(0),
            tenant: TenantId::DEFAULT,
        };
        assert_eq!(p.place_page(&app, &mem).preference[0], TierId::FAST);
    }

    #[test]
    fn tenant_budget_diverts_only_the_capped_tenant() {
        // Per-tenant sys_kloc_memsize: tenant 1 has a 2-frame fast cap,
        // tenant 2 is uncapped. Once tenant 1's kernel pages fill its
        // budget, *its* next page diverts to slow while tenant 2 (and
        // the shared kernel) still place fast.
        let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
        let mut p = KlocPolicy::new();
        p.configure_tenants(&[
            kloc_kernel::TenantSpec {
                id: TenantId(1),
                name: "capped".into(),
                qos: kloc_kernel::QosClass::Burstable,
                fast_budget_frames: Some(2),
                pc_budget: None,
            },
            kloc_kernel::TenantSpec {
                id: TenantId(2),
                name: "free".into(),
                qos: kloc_kernel::QosClass::Guaranteed,
                fast_budget_frames: None,
                pc_budget: None,
            },
        ]);
        p.on_inode_create(InodeId(1), CpuId(0), TenantId(1), &mut mem);
        let by = |t: u16| PageRequest {
            tenant: TenantId(t),
            ..req(KernelObjectType::PageCache, Some(InodeId(1)))
        };
        for _ in 0..2 {
            let pl = p.place_page(&by(1), &mem);
            assert_eq!(pl.preference[0], TierId::FAST, "under budget");
            let f = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
            mem.set_frame_tenant(f, TenantId(1)).unwrap();
        }
        assert_eq!(mem.tenant_fast_kernel(TenantId(1)), 2);
        let pl = p.place_page(&by(1), &mem);
        assert_eq!(pl.preference, vec![TierId::SLOW], "tenant 1 at its cap");
        // Neighbours are unaffected by tenant 1's cap.
        assert_eq!(p.place_page(&by(2), &mem).preference[0], TierId::FAST);
        assert_eq!(
            p.place_page(&req(KernelObjectType::PageCache, Some(InodeId(1))), &mem)
                .preference[0],
            TierId::FAST,
            "the shared kernel (tenant 0) is never capped"
        );
    }

    #[test]
    fn kloc_interfaces_enabled() {
        let p = KlocPolicy::new();
        assert!(p.relocatable_kernel_alloc());
        assert!(p.early_socket_demux());
        assert_eq!(p.migration_cost(), MigrationCost::parallel());
        assert!(p.registry().is_some());
    }

    #[test]
    fn tick_demotes_idle_knodes_under_pressure() {
        let mut mem = MemorySystem::two_tier(8 * PAGE_SIZE, 8);
        let kernel = Kernel::new(Default::default());
        let mut p = KlocPolicy::new();
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        // Fill fast memory with this knode's pages (stays open = active).
        let mut frames = Vec::new();
        for i in 0..8u64 {
            let f = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
            let info = ObjectInfo {
                ty: KernelObjectType::PageCache,
                size: 4096,
                inode: Some(InodeId(1)),
            };
            p.on_object_alloc(ObjectId(i), &info, f, CpuId(0), &mut mem);
            frames.push(f);
        }
        // Let the knode go idle past the threshold.
        mem.charge(Nanos::from_millis(300));
        p.tick(&kernel, &mut mem);
        assert!(
            frames.iter().any(|f| mem.tier_of(*f) == TierId::SLOW),
            "idle open knode demoted under pressure"
        );
    }

    #[test]
    fn tick_cold_selection_is_scan_free() {
        // A large warm-inactive population must not be examined by the
        // pressure tick: cold selection is an index range scan bounded
        // by the candidate count, and the idle/member passes walk the
        // active index only.
        let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
        let kernel = Kernel::new(Default::default());
        let mut p = KlocPolicy::new();
        // 40 knodes with one fast member frame each, closed immediately:
        // these become the cold candidates.
        for ino in 1..=40u64 {
            p.on_inode_create(InodeId(ino), CpuId(0), TenantId::DEFAULT, &mut mem);
            let f = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
            let info = ObjectInfo {
                ty: KernelObjectType::PageCache,
                size: 4096,
                inode: Some(InodeId(ino)),
            };
            p.on_object_alloc(ObjectId(ino), &info, f, CpuId(0), &mut mem);
            p.on_inode_close(InodeId(ino), &mut mem);
        }
        // Age them past cold_age (12). Fast memory is only ~60% full, so
        // these ticks stop at the pressure gate.
        for _ in 0..16 {
            p.tick(&kernel, &mut mem);
        }
        // 500 recently-closed knodes: inactive but far too young to be
        // cold. An eager filter scan would walk all of them every tick.
        for ino in 1000..1500u64 {
            p.on_inode_create(InodeId(ino), CpuId(0), TenantId::DEFAULT, &mut mem);
            p.on_inode_close(InodeId(ino), &mut mem);
        }
        // A couple of active knodes for the idle/member-granular passes.
        p.on_inode_create(InodeId(2000), CpuId(0), TenantId::DEFAULT, &mut mem);
        p.on_inode_create(InodeId(2001), CpuId(0), TenantId::DEFAULT, &mut mem);
        // Fill the remaining fast frames so the tick sees pressure.
        while mem.allocate(TierId::FAST, PageKind::AppData).is_ok() {}

        let before = p.kloc_registry().kmap().knodes_examined();
        p.tick(&kernel, &mut mem);
        let examined = p.kloc_registry().kmap().knodes_examined() - before;
        assert!(
            p.kloc_registry().stats().knode_demotions >= 40,
            "cold candidates were demoted"
        );
        // demote_batch (64) cold-range entries plus two bounded passes
        // over the (two) active knodes — far below the 542 knodes an
        // eager scan would have examined, repeatedly.
        assert!(
            examined <= 64 + 8,
            "tick examined {examined} knodes; cold selection must be scan-free"
        );
    }

    #[test]
    fn end_to_end_with_kernel_uses_kvma() {
        // Through the real kernel, slab-class objects land on relocatable
        // kvma frames under the KLOC policy.
        let mut mem = MemorySystem::two_tier(1024 * PAGE_SIZE, 8);
        let mut p = KlocPolicy::new();
        let mut k = Kernel::new(Default::default());
        let mut ctx = Ctx::new(&mut mem, &mut p);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 8192).unwrap();
        // The dentry lives on a KernelVma (relocatable) frame.
        let dentry = k
            .objects()
            .iter()
            .find(|o| o.info.ty == KernelObjectType::Dentry)
            .expect("dentry exists");
        assert_eq!(
            ctx.mem.frame(dentry.frame).unwrap().kind(),
            PageKind::KernelVma
        );
        assert!(!ctx.mem.frame(dentry.frame).unwrap().pinned());
        k.close(&mut ctx, fd).unwrap();
    }
}
