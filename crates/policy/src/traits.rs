//! The [`Policy`] trait and policy factory.

use kloc_core::{KlocRegistry, KlocStats};
use kloc_kernel::hooks::KernelHooks;
use kloc_kernel::Kernel;
use kloc_mem::{MemorySystem, MigrationCost, Nanos};

/// A tiering policy: kernel hooks plus periodic maintenance.
///
/// The simulation engine calls [`Policy::tick`] every
/// [`Policy::tick_interval`] of virtual time — this is where scan-based
/// policies pay their detection latency and where migrations are issued.
pub trait Policy: KernelHooks {
    /// Short name for reports ("kloc", "nimble", …).
    fn name(&self) -> &'static str;

    /// Periodic maintenance: scans, demotions, promotions.
    fn tick(&mut self, kernel: &Kernel, mem: &mut MemorySystem);

    /// Desired virtual-time interval between ticks.
    fn tick_interval(&self) -> Nanos {
        Nanos::from_millis(50)
    }

    /// Migration cost model this policy uses (Nimble-style parallel copy
    /// vs sequential).
    fn migration_cost(&self) -> MigrationCost {
        MigrationCost::sequential()
    }

    /// The KLOC registry, for policies that have one (overhead and
    /// ablation reporting).
    fn registry(&self) -> Option<&KlocRegistry> {
        None
    }

    /// KLOC activity counters, when applicable.
    fn kloc_stats(&self) -> Option<KlocStats> {
        self.registry().map(|r| *r.stats())
    }

    /// Largest en-masse migration staged so far (pages) — sizes the
    /// migrate-tracking list in the Table 6 overhead accounting.
    fn peak_migration_batch(&self) -> u64 {
        0
    }

    /// Updates the task's home socket (NUMA policies; no-op otherwise).
    fn set_task_socket(&mut self, _socket: u8) {}

    /// Installs the run's tenant specs (multi-tenant runs only).
    /// Budget-aware policies pick up each tenant's
    /// [`kloc_kernel::TenantSpec::fast_budget_frames`] for per-tenant
    /// placement decisions; the default ignores tenancy.
    fn configure_tenants(&mut self, _specs: &[kloc_kernel::TenantSpec]) {}
}

/// Identifiers for every evaluated strategy (paper Table 5), with a
/// factory for boxed policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PolicyKind {
    /// Everything in fast memory (upper bound).
    AllFast,
    /// Everything in slow memory (baseline for Fig. 4 speedups).
    AllSlow,
    /// Greedy FCFS without migration.
    Naive,
    /// Prior-art app-page tiering.
    Nimble,
    /// Nimble extended to kernel objects without KLOCs.
    NimblePlusPlus,
    /// KLOC direct allocation, no kernel-object migration.
    KlocNoMigration,
    /// Full KLOCs.
    Kloc,
    /// Socket-affinity migration of app pages only.
    AutoNuma,
    /// AutoNUMA + KLOC kernel-object migration.
    AutoNumaKloc,
}

impl PolicyKind {
    /// All two-tier-platform strategies in Fig. 4's bar order.
    pub const TWO_TIER: [PolicyKind; 6] = [
        PolicyKind::Naive,
        PolicyKind::Nimble,
        PolicyKind::NimblePlusPlus,
        PolicyKind::KlocNoMigration,
        PolicyKind::Kloc,
        PolicyKind::AllFast,
    ];

    /// Builds the policy.
    pub fn build(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::AllFast => Box::new(crate::simple::AllFast::new()),
            PolicyKind::AllSlow => Box::new(crate::simple::AllSlow::new()),
            PolicyKind::Naive => Box::new(crate::simple::Naive::new()),
            PolicyKind::Nimble => Box::new(crate::nimble::Nimble::new()),
            PolicyKind::NimblePlusPlus => Box::new(crate::nimble::NimblePlusPlus::new()),
            PolicyKind::KlocNoMigration => Box::new(crate::kloc::KlocPolicy::without_migration()),
            PolicyKind::Kloc => Box::new(crate::kloc::KlocPolicy::new()),
            PolicyKind::AutoNuma => Box::new(crate::autonuma::AutoNuma::new()),
            PolicyKind::AutoNumaKloc => Box::new(crate::autonuma::AutoNumaKloc::new()),
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::AllFast => "All Fast Mem",
            PolicyKind::AllSlow => "All Slow Mem",
            PolicyKind::Naive => "Naive",
            PolicyKind::Nimble => "Nimble",
            PolicyKind::NimblePlusPlus => "Nimble++",
            PolicyKind::KlocNoMigration => "KLOCs-nomigration",
            PolicyKind::Kloc => "KLOCs",
            PolicyKind::AutoNuma => "AutoNUMA",
            PolicyKind::AutoNumaKloc => "KLOCs (AutoNUMA)",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        let kinds = [
            PolicyKind::AllFast,
            PolicyKind::AllSlow,
            PolicyKind::Naive,
            PolicyKind::Nimble,
            PolicyKind::NimblePlusPlus,
            PolicyKind::KlocNoMigration,
            PolicyKind::Kloc,
            PolicyKind::AutoNuma,
            PolicyKind::AutoNumaKloc,
        ];
        let mut names = std::collections::BTreeSet::new();
        for k in kinds {
            let p = k.build();
            assert!(!p.name().is_empty());
            names.insert(p.name());
        }
        assert!(names.len() >= 8, "policies must have distinct names");
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::NimblePlusPlus.label(), "Nimble++");
        assert_eq!(PolicyKind::Kloc.to_string(), "KLOCs");
    }

    #[test]
    fn kloc_policies_expose_registry() {
        assert!(PolicyKind::Kloc.build().registry().is_some());
        assert!(PolicyKind::KlocNoMigration.build().registry().is_some());
        assert!(PolicyKind::AutoNumaKloc.build().registry().is_some());
        assert!(PolicyKind::Nimble.build().registry().is_none());
    }
}
