//! Nimble and Nimble++ (paper Table 5).
//!
//! **Nimble** reimplements the behaviour of Yan et al.'s page management
//! for tiered memory (ASPLOS '19): application pages are allocated fast
//! first and tiered by scan-based hotness detection with parallelized
//! page copies. Kernel objects are *not* managed — like the prior work
//! the paper describes (§3.2), they are allocated entirely in slow
//! memory on the two-tier platform.
//!
//! **Nimble++** is the paper's strawman extension: kernel pages join the
//! same scan-based mechanism (allocated fast-first, demoted when cold),
//! but without the KLOC abstraction the scan latency exceeds kernel
//! object lifetimes, so "once kernel objects are evicted to slow memory,
//! they rarely return to fast memory" (§6.2). That emerges here
//! naturally from the bounded scan rate.

use kloc_kernel::hooks::{CpuId, KernelHooks, PageRequest, Placement};
use kloc_kernel::{Kernel, ObjectId, ObjectInfo};
use kloc_mem::{FrameId, MemorySystem, MigrationCost, PageKind};

use crate::apptier::AppTier;
use crate::traits::Policy;

/// Prior-art application-page tiering.
#[derive(Debug, Default)]
pub struct Nimble {
    tier: AppTier,
}

impl Nimble {
    /// Creates the policy.
    pub fn new() -> Self {
        Nimble::default()
    }

    /// The underlying scan mechanism (for ablation reports).
    pub fn app_tier(&self) -> &AppTier {
        &self.tier
    }
}

impl KernelHooks for Nimble {
    fn place_page(&mut self, req: &PageRequest, _mem: &MemorySystem) -> Placement {
        if req.kind == PageKind::AppData {
            Placement::fast_then_slow()
        } else {
            // Kernel objects go to slow memory (prior-art behaviour, §3.2).
            Placement::slow_only()
        }
    }

    fn on_app_page_alloc(&mut self, frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {
        self.tier.on_alloc(frame);
    }

    fn on_app_page_access(&mut self, frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {
        self.tier.on_access(frame);
    }

    fn on_page_free(&mut self, frame: FrameId, _mem: &mut MemorySystem) {
        self.tier.on_free(frame);
    }
}

impl Policy for Nimble {
    fn name(&self) -> &'static str {
        "nimble"
    }

    fn tick(&mut self, _kernel: &Kernel, mem: &mut MemorySystem) {
        self.tier.tick(mem);
    }

    fn tick_interval(&self) -> kloc_mem::Nanos {
        // Scan cadence: slower than kernel object lifetimes (the paper's
        // central observation about scan-based tiering, §3.3).
        kloc_mem::Nanos::from_millis(2)
    }

    fn migration_cost(&self) -> MigrationCost {
        MigrationCost::parallel()
    }
}

/// Nimble extended to kernel objects without the KLOC abstraction.
#[derive(Debug, Default)]
pub struct NimblePlusPlus {
    tier: AppTier,
}

impl NimblePlusPlus {
    /// Creates the policy.
    pub fn new() -> Self {
        NimblePlusPlus::default()
    }

    /// The underlying scan mechanism.
    pub fn app_tier(&self) -> &AppTier {
        &self.tier
    }
}

impl KernelHooks for NimblePlusPlus {
    fn place_page(&mut self, _req: &PageRequest, _mem: &MemorySystem) -> Placement {
        // Kernel pages are also allowed into fast memory...
        Placement::fast_then_slow()
    }

    fn on_app_page_alloc(&mut self, frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {
        self.tier.on_alloc(frame);
    }

    fn on_app_page_access(&mut self, frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {
        self.tier.on_access(frame);
    }

    fn on_object_alloc(
        &mut self,
        _obj: ObjectId,
        _info: &ObjectInfo,
        frame: FrameId,
        _cpu: CpuId,
        mem: &mut MemorySystem,
    ) {
        // ...and tracked by the same scans — if they are relocatable at
        // all (slab pages are pinned: no KLOC allocation interface here).
        if let Ok(f) = mem.frame(frame) {
            if f.kind().relocatable() {
                self.tier.on_alloc(frame);
            }
        }
    }

    fn on_object_access(
        &mut self,
        _obj: ObjectId,
        _info: &ObjectInfo,
        frame: FrameId,
        _cpu: CpuId,
        _tenant: kloc_mem::TenantId,
        _mem: &mut MemorySystem,
    ) {
        self.tier.on_access(frame);
    }

    fn on_page_free(&mut self, frame: FrameId, _mem: &mut MemorySystem) {
        self.tier.on_free(frame);
    }
}

impl Policy for NimblePlusPlus {
    fn name(&self) -> &'static str {
        "nimble++"
    }

    fn tick(&mut self, _kernel: &Kernel, mem: &mut MemorySystem) {
        self.tier.tick(mem);
    }

    fn tick_interval(&self) -> kloc_mem::Nanos {
        kloc_mem::Nanos::from_millis(2)
    }

    fn migration_cost(&self) -> MigrationCost {
        MigrationCost::parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::KernelObjectType;
    use kloc_mem::{TierId, PAGE_SIZE};

    fn req(kind: PageKind, ty: Option<KernelObjectType>) -> PageRequest {
        PageRequest {
            kind,
            ty,
            inode: None,
            readahead: false,
            cpu: CpuId(0),
            tenant: kloc_mem::TenantId::DEFAULT,
        }
    }

    #[test]
    fn nimble_sends_kernel_objects_to_slow() {
        let mem = MemorySystem::two_tier(1 << 20, 8);
        let mut p = Nimble::new();
        let app = p.place_page(&req(PageKind::AppData, None), &mem);
        let pc = p.place_page(
            &req(PageKind::PageCache, Some(KernelObjectType::PageCache)),
            &mem,
        );
        let slab = p.place_page(&req(PageKind::Slab, Some(KernelObjectType::Dentry)), &mem);
        assert_eq!(app.preference[0], TierId::FAST);
        assert_eq!(pc.preference, vec![TierId::SLOW]);
        assert_eq!(slab.preference, vec![TierId::SLOW]);
    }

    #[test]
    fn nimblepp_lets_kernel_pages_into_fast() {
        let mem = MemorySystem::two_tier(1 << 20, 8);
        let mut p = NimblePlusPlus::new();
        let pc = p.place_page(
            &req(PageKind::PageCache, Some(KernelObjectType::PageCache)),
            &mem,
        );
        assert_eq!(pc.preference[0], TierId::FAST);
    }

    #[test]
    fn nimblepp_tracks_relocatable_kernel_pages_only() {
        let mut mem = MemorySystem::two_tier(64 * PAGE_SIZE, 8);
        let mut p = NimblePlusPlus::new();
        let cache = mem.allocate(TierId::FAST, PageKind::PageCache).unwrap();
        let slab = mem.allocate(TierId::FAST, PageKind::Slab).unwrap();
        let info = ObjectInfo {
            ty: KernelObjectType::PageCache,
            size: 4096,
            inode: None,
        };
        p.on_object_alloc(ObjectId(1), &info, cache, CpuId(0), &mut mem);
        p.on_object_alloc(ObjectId(2), &info, slab, CpuId(0), &mut mem);
        assert_eq!(p.app_tier().tracked(), 1, "pinned slab page not tracked");
    }

    #[test]
    fn both_use_parallel_migration() {
        assert_eq!(Nimble::new().migration_cost(), MigrationCost::parallel());
        assert_eq!(
            NimblePlusPlus::new().migration_cost(),
            MigrationCost::parallel()
        );
    }

    #[test]
    fn nimble_tick_tiers_app_pages() {
        let mut mem = MemorySystem::two_tier(4 * PAGE_SIZE, 8);
        let kernel = Kernel::new(Default::default());
        let mut p = Nimble::new();
        // Fill fast with cold app pages.
        for _ in 0..4 {
            let f = mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
            p.on_app_page_alloc(f, CpuId(0), &mut mem);
        }
        p.tick(&kernel, &mut mem);
        assert!(mem.migration_stats().demotions > 0);
    }
}
