//! AutoNUMA and AutoNUMA+KLOCs (the Optane Memory Mode platform,
//! paper §4.5 and Fig. 5a).
//!
//! On the two-socket Optane platform each socket is a PMEM tier behind a
//! hardware-managed DRAM cache; the OS balances *between sockets*. Vanilla
//! AutoNUMA migrates application pages toward the task's current socket
//! (modeled as periodic hint-fault scans) but **ignores kernel objects**,
//! which stay on whichever socket allocated them even after the scheduler
//! moves the task away from an interfering co-runner. The KLOC extension
//! walks the active knodes and migrates their members too.

use std::collections::BTreeSet;

use kloc_core::{KlocConfig, KlocRegistry};
use kloc_kernel::hooks::{CpuId, KernelHooks, PageRequest, Placement};
use kloc_kernel::{Kernel, ObjectId, ObjectInfo};
use kloc_mem::{FrameId, MemorySystem, Nanos, TenantId, TierId};

use crate::traits::Policy;

/// Shared socket-affinity mechanics.
#[derive(Debug)]
struct NumaCore {
    task_socket: u8,
    app_pages: BTreeSet<FrameId>,
    /// Pages migrated per tick (hint-fault rate limit).
    batch: usize,
    /// Cost per examined page (NUMA hint fault handling).
    scan_cost: Nanos,
    migrated_app: u64,
}

impl NumaCore {
    fn new() -> Self {
        NumaCore {
            task_socket: 0,
            app_pages: BTreeSet::new(),
            batch: 256,
            scan_cost: Nanos::from_micros(1),
            migrated_app: 0,
        }
    }

    fn home_tier(&self) -> TierId {
        TierId(self.task_socket)
    }

    fn placement(&self) -> Placement {
        let home = self.home_tier();
        let other = TierId(1 - self.task_socket.min(1));
        Placement {
            preference: vec![home, other],
        }
    }

    /// Migrates up to `batch` tracked app pages toward the task socket.
    fn balance_app_pages(&mut self, mem: &mut MemorySystem) {
        let home = self.home_tier();
        let remote: Vec<FrameId> = self
            .app_pages
            .iter()
            .copied()
            .filter(|f| mem.is_live(*f) && mem.tier_of(*f) != home)
            .take(self.batch)
            .collect();
        mem.charge(self.scan_cost * remote.len() as u64);
        for f in remote {
            if mem.migrate(f, home).is_ok() {
                self.migrated_app += 1;
            }
        }
    }
}

/// Vanilla AutoNUMA: app pages follow the task; kernel objects do not.
#[derive(Debug)]
pub struct AutoNuma {
    core: NumaCore,
    parallel: bool,
}

impl Default for AutoNuma {
    fn default() -> Self {
        AutoNuma::new()
    }
}

impl AutoNuma {
    /// Creates the policy.
    pub fn new() -> Self {
        AutoNuma {
            core: NumaCore::new(),
            parallel: false,
        }
    }

    /// Nimble configured for the NUMA platform: same app-page-only
    /// scope as AutoNUMA but with a larger migration batch and parallel
    /// page copies — slightly better than vanilla AutoNUMA, as in the
    /// paper's Fig. 5a ordering (KLOCs 1.5x over AutoNUMA, 1.4x over
    /// Nimble).
    pub fn nimble_flavor() -> Self {
        let mut p = AutoNuma::new();
        p.core.batch = 512;
        p.parallel = true;
        p
    }

    /// Application pages migrated so far.
    pub fn migrated_app_pages(&self) -> u64 {
        self.core.migrated_app
    }
}

impl KernelHooks for AutoNuma {
    fn place_page(&mut self, _req: &PageRequest, _mem: &MemorySystem) -> Placement {
        self.core.placement()
    }

    fn on_app_page_alloc(&mut self, frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {
        self.core.app_pages.insert(frame);
    }

    fn on_page_free(&mut self, frame: FrameId, _mem: &mut MemorySystem) {
        self.core.app_pages.remove(&frame);
    }
}

impl Policy for AutoNuma {
    fn name(&self) -> &'static str {
        if self.parallel {
            "nimble-numa"
        } else {
            "autonuma"
        }
    }

    fn tick(&mut self, _kernel: &Kernel, mem: &mut MemorySystem) {
        self.core.balance_app_pages(mem);
    }

    fn tick_interval(&self) -> Nanos {
        Nanos::from_millis(1)
    }

    fn migration_cost(&self) -> kloc_mem::MigrationCost {
        if self.parallel {
            kloc_mem::MigrationCost::parallel()
        } else {
            kloc_mem::MigrationCost::sequential()
        }
    }

    fn set_task_socket(&mut self, socket: u8) {
        self.core.task_socket = socket;
    }
}

/// AutoNUMA enhanced with KLOCs: kernel objects of active knodes follow
/// the task across sockets (§4.5).
#[derive(Debug)]
pub struct AutoNumaKloc {
    core: NumaCore,
    registry: KlocRegistry,
    migrated_kernel: u64,
    /// Reusable active-knode buffer for the tick (no per-tick
    /// allocation).
    active_scratch: Vec<kloc_kernel::InodeId>,
}

impl Default for AutoNumaKloc {
    fn default() -> Self {
        AutoNumaKloc::new()
    }
}

impl AutoNumaKloc {
    /// Creates the policy.
    pub fn new() -> Self {
        AutoNumaKloc {
            core: NumaCore::new(),
            registry: KlocRegistry::new(KlocConfig::default()),
            migrated_kernel: 0,
            active_scratch: Vec::new(),
        }
    }

    /// Kernel-object pages migrated so far.
    pub fn migrated_kernel_pages(&self) -> u64 {
        self.migrated_kernel
    }
}

impl KernelHooks for AutoNumaKloc {
    fn place_page(&mut self, _req: &PageRequest, _mem: &MemorySystem) -> Placement {
        self.core.placement()
    }

    fn relocatable_kernel_alloc(&self) -> bool {
        true
    }

    fn early_socket_demux(&self) -> bool {
        true
    }

    fn on_inode_create(
        &mut self,
        inode: kloc_kernel::InodeId,
        cpu: CpuId,
        tenant: TenantId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .inode_created_by(inode, cpu, tenant, mem.now());
    }

    fn on_inode_open(&mut self, inode: kloc_kernel::InodeId, cpu: CpuId, mem: &mut MemorySystem) {
        self.registry.inode_opened(inode, cpu, mem.now());
        // An opened inode is in use: pull its kernel objects to the
        // task's socket right away (§4.5 — active KLOCs' objects are
        // checked for locality and migrated when remote).
        let home = self.core.home_tier();
        self.migrated_kernel += self.registry.migrate_knode(inode, mem, home);
    }

    fn on_inode_close(&mut self, inode: kloc_kernel::InodeId, mem: &mut MemorySystem) {
        self.registry.inode_closed(inode, mem.now());
    }

    fn on_inode_destroy(&mut self, inode: kloc_kernel::InodeId, mem: &mut MemorySystem) {
        self.registry.inode_destroyed(inode, mem.now());
    }

    fn on_object_alloc(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        frame: FrameId,
        cpu: CpuId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .object_allocated(obj, info, frame, cpu, mem.now());
    }

    fn on_object_associate(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        frame: FrameId,
        cpu: CpuId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .object_associated(obj, info, frame, cpu, mem.now());
    }

    fn on_object_free(
        &mut self,
        obj: ObjectId,
        info: &ObjectInfo,
        _frame: FrameId,
        _mem: &mut MemorySystem,
    ) {
        self.registry.object_freed(obj, info);
    }

    fn on_object_access(
        &mut self,
        _obj: ObjectId,
        info: &ObjectInfo,
        _frame: FrameId,
        cpu: CpuId,
        tenant: TenantId,
        mem: &mut MemorySystem,
    ) {
        self.registry
            .object_accessed_by(info, cpu, tenant, mem.now());
    }

    fn on_app_page_alloc(&mut self, frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {
        self.core.app_pages.insert(frame);
    }

    fn on_page_free(&mut self, frame: FrameId, _mem: &mut MemorySystem) {
        self.core.app_pages.remove(&frame);
    }
}

impl Policy for AutoNumaKloc {
    fn name(&self) -> &'static str {
        "autonuma-kloc"
    }

    fn tick_interval(&self) -> Nanos {
        Nanos::from_millis(1)
    }

    fn tick(&mut self, _kernel: &Kernel, mem: &mut MemorySystem) {
        self.core.balance_app_pages(mem);
        // §4.5: for all active KLOCs, pull remote kernel objects local.
        // The kmap's active index names them directly — the inactive
        // population is never walked.
        let home = self.core.home_tier();
        let mut active = std::mem::take(&mut self.active_scratch);
        active.clear();
        active.extend(self.registry.kmap().active_knodes().map(|k| k.inode()));
        for &ino in &active {
            self.migrated_kernel += self.registry.migrate_knode(ino, mem, home);
        }
        self.active_scratch = active;
    }

    fn migration_cost(&self) -> kloc_mem::MigrationCost {
        // KLOCs reuse Nimble's parallel background page copy (§6.2).
        kloc_mem::MigrationCost::parallel()
    }

    fn set_task_socket(&mut self, socket: u8) {
        self.core.task_socket = socket;
    }

    fn registry(&self) -> Option<&KlocRegistry> {
        Some(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::{InodeId, KernelObjectType};
    use kloc_mem::{PageKind, PAGE_SIZE};

    fn numa() -> MemorySystem {
        MemorySystem::numa_two_socket(1024 * PAGE_SIZE)
    }

    #[test]
    fn placement_follows_task_socket() {
        let mem = numa();
        let mut p = AutoNuma::new();
        let req = PageRequest {
            kind: PageKind::AppData,
            ty: None,
            inode: None,
            readahead: false,
            cpu: CpuId(0),
            tenant: TenantId::DEFAULT,
        };
        assert_eq!(p.place_page(&req, &mem).preference[0], TierId(0));
        p.set_task_socket(1);
        assert_eq!(p.place_page(&req, &mem).preference[0], TierId(1));
    }

    #[test]
    fn app_pages_follow_task_kernel_pages_do_not() {
        let mut mem = numa();
        let kernel = Kernel::new(Default::default());
        let mut p = AutoNuma::new();
        let app = mem.allocate(TierId(0), PageKind::AppData).unwrap();
        let kobj = mem.allocate(TierId(0), PageKind::PageCache).unwrap();
        p.on_app_page_alloc(app, CpuId(0), &mut mem);
        // Task moves to socket 1 (e.g. interference on socket 0).
        p.set_task_socket(1);
        p.tick(&kernel, &mut mem);
        assert_eq!(mem.tier_of(app), TierId(1), "app page followed");
        assert_eq!(mem.tier_of(kobj), TierId(0), "kernel page stranded");
        assert_eq!(p.migrated_app_pages(), 1);
    }

    #[test]
    fn kloc_variant_moves_active_knode_members() {
        let mut mem = numa();
        let kernel = Kernel::new(Default::default());
        let mut p = AutoNumaKloc::new();
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        let f = mem.allocate(TierId(0), PageKind::PageCache).unwrap();
        let info = ObjectInfo {
            ty: KernelObjectType::PageCache,
            size: 4096,
            inode: Some(InodeId(1)),
        };
        p.on_object_alloc(ObjectId(1), &info, f, CpuId(0), &mut mem);
        p.set_task_socket(1);
        p.tick(&kernel, &mut mem);
        assert_eq!(mem.tier_of(f), TierId(1), "kernel object followed the task");
        assert_eq!(p.migrated_kernel_pages(), 1);
    }

    #[test]
    fn kloc_variant_ignores_inactive_knodes() {
        let mut mem = numa();
        let kernel = Kernel::new(Default::default());
        let mut p = AutoNumaKloc::new();
        p.on_inode_create(InodeId(1), CpuId(0), TenantId::DEFAULT, &mut mem);
        let f = mem.allocate(TierId(0), PageKind::PageCache).unwrap();
        let info = ObjectInfo {
            ty: KernelObjectType::PageCache,
            size: 4096,
            inode: Some(InodeId(1)),
        };
        p.on_object_alloc(ObjectId(1), &info, f, CpuId(0), &mut mem);
        p.on_inode_close(InodeId(1), &mut mem);
        p.set_task_socket(1);
        p.tick(&kernel, &mut mem);
        assert_eq!(mem.tier_of(f), TierId(0), "inactive knode left in place");
    }
}
