//! Shared Nimble-style scan-based page tiering mechanism.
//!
//! Nimble (ASPLOS '19) tracks page hotness through the kernel's
//! active/inactive LRU lists and migrates pages between tiers with
//! parallelized copies. [`AppTier`] packages that mechanism so that
//! [`crate::Nimble`], [`crate::NimblePlusPlus`], and the KLOC policies
//! (which reuse "original Nimble policies ... for application pages",
//! Table 5) can share it.
//!
//! Detection latency is explicit: each tick scans a bounded batch and
//! charges the paper's measured 2 µs/page scan cost (attenuated by an
//! overlap factor, since scan threads run mostly on spare cores). That
//! bounded scan rate is exactly why this mechanism cannot keep up with
//! kernel objects that live for ~36 ms (§3.3).

use kloc_kernel::lru::{List, PageLru};
use kloc_mem::{FrameId, MemorySystem, Nanos, TierId};

/// Counters of tiering activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppTierStats {
    /// Pages demoted fast -> slow.
    pub demoted: u64,
    /// Pages promoted slow -> fast.
    pub promoted: u64,
    /// Pages scanned (detection work).
    pub scanned: u64,
}

/// Scan-based two-tier page management.
#[derive(Debug)]
pub struct AppTier {
    lru: PageLru,
    /// Pages examined per tick.
    scan_batch: usize,
    /// Cost charged per scanned page (paper: 2 µs).
    scan_cost: Nanos,
    /// Fraction of scan cost charged to the main clock, in percent
    /// (scan threads overlap with app work on other cores).
    scan_overlap_pct: u64,
    /// Start demoting when fast-tier utilization exceeds this (percent).
    high_watermark_pct: u64,
    stats: AppTierStats,
    /// Reusable promotion-candidate buffer (no per-tick allocation).
    promote_scratch: Vec<FrameId>,
}

impl Default for AppTier {
    fn default() -> Self {
        AppTier::new()
    }
}

impl AppTier {
    /// Creates the mechanism with Nimble-like defaults.
    pub fn new() -> Self {
        AppTier {
            lru: PageLru::new(),
            scan_batch: 512,
            scan_cost: Nanos::from_micros(2),
            scan_overlap_pct: 25,
            high_watermark_pct: 90,
            stats: AppTierStats::default(),
            promote_scratch: Vec::new(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> &AppTierStats {
        &self.stats
    }

    /// Number of tracked pages.
    pub fn tracked(&self) -> usize {
        self.lru.len()
    }

    /// Starts tracking a page.
    pub fn on_alloc(&mut self, frame: FrameId) {
        if !self.lru.contains(frame) {
            self.lru.insert(frame, List::Inactive);
        }
    }

    /// Records an access.
    pub fn on_access(&mut self, frame: FrameId) {
        self.lru.mark_accessed(frame);
    }

    /// Stops tracking a freed page.
    pub fn on_free(&mut self, frame: FrameId) {
        self.lru.remove(frame);
    }

    fn charge_scan(&mut self, mem: &mut MemorySystem, scanned: usize) {
        self.stats.scanned += scanned as u64;
        let cost = self.scan_cost * scanned as u64 * self.scan_overlap_pct / 100;
        mem.charge(cost);
    }

    /// One maintenance round: demote cold pages when the fast tier is
    /// under pressure; promote hot pages stuck on the slow tier.
    pub fn tick(&mut self, mem: &mut MemorySystem) {
        self.demote_cold(mem);
        self.promote_hot(mem);
    }

    /// Scans the inactive tail and demotes cold fast-tier pages when the
    /// fast tier is above the high watermark.
    fn demote_cold(&mut self, mem: &mut MemorySystem) {
        let fast = match mem.tier_alloc(TierId::FAST) {
            Ok(a) => a,
            Err(_) => return,
        };
        let over = fast.utilization() * 100.0 >= self.high_watermark_pct as f64;
        if !over {
            return;
        }
        let out = self.lru.scan_inactive(self.scan_batch);
        self.charge_scan(mem, out.scanned);
        if out.scanned == 0 {
            let n = self.lru.age_active(self.scan_batch);
            self.charge_scan(mem, n);
            return;
        }
        for frame in out.evict {
            if !mem.is_live(frame) {
                continue;
            }
            if mem.tier_of(frame) == TierId::FAST && mem.migrate(frame, TierId::SLOW).is_ok() {
                self.stats.demoted += 1;
            }
            // Keep tracking: a demoted page may become hot again.
            self.lru.insert(frame, List::Inactive);
        }
    }

    /// Walks part of the active list and pulls hot slow-tier pages into
    /// fast memory (when there is room).
    fn promote_hot(&mut self, mem: &mut MemorySystem) {
        let room = mem
            .tier_alloc(TierId::FAST)
            .map(|a| a.free_frames())
            .unwrap_or(0);
        if room == 0 {
            return;
        }
        // Collect candidates into the reusable scratch buffer first:
        // the scan cost must hit the virtual clock before any migration
        // is stamped.
        let limit = (self.scan_batch / 4).min(room as usize);
        self.promote_scratch.clear();
        let mut walked = 0;
        for frame in self.lru.active_iter() {
            if self.promote_scratch.len() == limit {
                break;
            }
            walked += 1;
            if mem.is_live(frame) && mem.tier_of(frame) == TierId::SLOW {
                self.promote_scratch.push(frame);
            }
        }
        // Every entry examined costs scan time, including the dead and
        // already-fast frames the filter skips.
        self.charge_scan(mem, walked);
        for i in 0..self.promote_scratch.len() {
            if mem.migrate(self.promote_scratch[i], TierId::FAST).is_ok() {
                self.stats.promoted += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_mem::{PageKind, PAGE_SIZE};

    fn sys(fast_frames: u64) -> MemorySystem {
        MemorySystem::two_tier(fast_frames * PAGE_SIZE, 8)
    }

    #[test]
    fn demotes_cold_pages_under_pressure() {
        let mut mem = sys(8);
        let mut at = AppTier::new();
        // Fill fast memory with tracked pages.
        let frames: Vec<FrameId> = (0..8)
            .map(|_| mem.allocate(TierId::FAST, PageKind::AppData).unwrap())
            .collect();
        for &f in &frames {
            at.on_alloc(f);
        }
        // Pages 6 and 7 are hot (two touches -> active).
        for _ in 0..2 {
            at.on_access(frames[6]);
            at.on_access(frames[7]);
        }
        at.tick(&mut mem);
        assert!(at.stats().demoted > 0, "cold pages demoted under pressure");
        assert_eq!(mem.tier_of(frames[6]), TierId::FAST, "hot page retained");
        assert_eq!(mem.tier_of(frames[7]), TierId::FAST);
    }

    #[test]
    fn no_demotion_below_watermark() {
        let mut mem = sys(100);
        let mut at = AppTier::new();
        let f = mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
        at.on_alloc(f);
        at.tick(&mut mem);
        assert_eq!(at.stats().demoted, 0);
        assert_eq!(mem.tier_of(f), TierId::FAST);
    }

    #[test]
    fn promotes_hot_slow_pages_when_room() {
        let mut mem = sys(16);
        let mut at = AppTier::new();
        let f = mem.allocate(TierId::SLOW, PageKind::AppData).unwrap();
        at.on_alloc(f);
        at.on_access(f);
        at.on_access(f); // promoted to active list
        at.tick(&mut mem);
        assert_eq!(mem.tier_of(f), TierId::FAST);
        assert_eq!(at.stats().promoted, 1);
    }

    #[test]
    fn scanning_charges_time() {
        let mut mem = sys(4);
        let mut at = AppTier::new();
        for _ in 0..4 {
            let f = mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
            at.on_alloc(f);
        }
        let before = mem.now();
        at.tick(&mut mem);
        assert!(mem.now() > before, "scan work must cost time");
        assert!(at.stats().scanned > 0);
    }

    #[test]
    fn freed_pages_are_untracked() {
        let mut mem = sys(4);
        let mut at = AppTier::new();
        let f = mem.allocate(TierId::FAST, PageKind::AppData).unwrap();
        at.on_alloc(f);
        at.on_free(f);
        mem.free(f).unwrap();
        assert_eq!(at.tracked(), 0);
        at.tick(&mut mem); // must not touch the dead frame
    }

    #[test]
    fn demoted_pages_can_return() {
        let mut mem = sys(4);
        let mut at = AppTier::new();
        let frames: Vec<FrameId> = (0..4)
            .map(|_| mem.allocate(TierId::FAST, PageKind::AppData).unwrap())
            .collect();
        for &f in &frames {
            at.on_alloc(f);
        }
        at.tick(&mut mem); // demotes everything (all cold, tier full)
        let demoted: Vec<FrameId> = frames
            .iter()
            .copied()
            .filter(|&f| mem.tier_of(f) == TierId::SLOW)
            .collect();
        assert!(!demoted.is_empty());
        // Make one demoted page hot again.
        at.on_access(demoted[0]);
        at.on_access(demoted[0]);
        at.tick(&mut mem);
        assert_eq!(
            mem.tier_of(demoted[0]),
            TierId::FAST,
            "hot page promoted back"
        );
    }
}
