//! Bound and baseline policies: All-Fast, All-Slow, and Naive.

use kloc_kernel::hooks::{KernelHooks, PageRequest, Placement};
use kloc_kernel::Kernel;
use kloc_mem::MemorySystem;

use crate::traits::Policy;

/// Upper bound: place everything in fast memory (run with a fast tier
/// large enough to hold the workload). Paper's "All Fast Mem".
#[derive(Debug, Default)]
pub struct AllFast(());

impl AllFast {
    /// Creates the policy.
    pub fn new() -> Self {
        AllFast(())
    }
}

impl KernelHooks for AllFast {
    fn place_page(&mut self, _req: &PageRequest, _mem: &MemorySystem) -> Placement {
        Placement::fast_then_slow()
    }
}

impl Policy for AllFast {
    fn name(&self) -> &'static str {
        "all-fast"
    }
    fn tick(&mut self, _kernel: &Kernel, _mem: &mut MemorySystem) {}
}

/// Lower bound: place everything in slow memory. Paper's "All Slow Mem"
/// — the normalization baseline of Fig. 4.
#[derive(Debug, Default)]
pub struct AllSlow(());

impl AllSlow {
    /// Creates the policy.
    pub fn new() -> Self {
        AllSlow(())
    }
}

impl KernelHooks for AllSlow {
    fn place_page(&mut self, _req: &PageRequest, _mem: &MemorySystem) -> Placement {
        Placement::slow_only()
    }
}

impl Policy for AllSlow {
    fn name(&self) -> &'static str {
        "all-slow"
    }
    fn tick(&mut self, _kernel: &Kernel, _mem: &mut MemorySystem) {}
}

/// Greedy first-come-first-served: everything goes to fast memory until
/// it fills; afterwards allocations land in slow memory and *nothing
/// migrates* — fast memory only frees up on deallocation (paper
/// Table 5). Cold data therefore pollutes fast memory indefinitely.
#[derive(Debug, Default)]
pub struct Naive(());

impl Naive {
    /// Creates the policy.
    pub fn new() -> Self {
        Naive(())
    }
}

impl KernelHooks for Naive {
    fn place_page(&mut self, _req: &PageRequest, _mem: &MemorySystem) -> Placement {
        Placement::fast_then_slow()
    }
}

impl Policy for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }
    fn tick(&mut self, _kernel: &Kernel, _mem: &mut MemorySystem) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_kernel::hooks::CpuId;
    use kloc_mem::{PageKind, TierId};

    fn req() -> PageRequest {
        PageRequest {
            kind: PageKind::AppData,
            ty: None,
            inode: None,
            readahead: false,
            cpu: CpuId(0),
            tenant: kloc_mem::TenantId::DEFAULT,
        }
    }

    #[test]
    fn all_slow_never_uses_fast() {
        let mem = MemorySystem::two_tier(1 << 20, 8);
        let mut p = AllSlow::new();
        assert_eq!(p.place_page(&req(), &mem).preference, vec![TierId::SLOW]);
    }

    #[test]
    fn naive_spills_but_never_migrates() {
        let mut mem = MemorySystem::two_tier(2 * 4096, 8);
        let mut p = Naive::new();
        let pl = p.place_page(&req(), &mem);
        assert_eq!(pl.preference[0], TierId::FAST);
        // Fill fast; further allocations spill.
        let a = mem
            .allocate_preferring(&pl.preference, PageKind::AppData)
            .unwrap();
        let _b = mem
            .allocate_preferring(&pl.preference, PageKind::AppData)
            .unwrap();
        let c = mem
            .allocate_preferring(&pl.preference, PageKind::AppData)
            .unwrap();
        assert_eq!(mem.tier_of(a), TierId::FAST);
        assert_eq!(mem.tier_of(c), TierId::SLOW);
        // Tick does nothing.
        let kernel = Kernel::new(Default::default());
        p.tick(&kernel, &mut mem);
        assert_eq!(mem.migration_stats().total(), 0);
    }
}
