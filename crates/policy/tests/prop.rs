//! Randomized model tests over the policies: every policy must survive
//! arbitrary kernel activity without panicking, never corrupt capacity
//! accounting, and never move a pinned page.
//!
//! Sequences come from the in-tree seeded `SplitMix64` PRNG (fixed
//! seeds, so failures reproduce exactly).

use kloc_kernel::hooks::Ctx;
use kloc_kernel::{Fd, Kernel, KernelError, KernelParams};
use kloc_mem::{MemorySystem, Nanos, SplitMix64, TierId, PAGE_SIZE};
use kloc_policy::PolicyKind;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write(usize, u8, u16),
    Read(usize, u8, u16),
    CloseReopen(u8),
    Unlink(u8),
    Socket,
    NetRoundTrip(usize, u16),
    Tick(u8),
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_below(8) {
        0 => Op::Create(rng.gen_below(10) as u8),
        1 => Op::Write(
            rng.gen_below(8) as usize,
            rng.gen_below(8) as u8,
            rng.gen_range(1..8192) as u16,
        ),
        2 => Op::Read(
            rng.gen_below(8) as usize,
            rng.gen_below(8) as u8,
            rng.gen_range(1..8192) as u16,
        ),
        3 => Op::CloseReopen(rng.gen_below(10) as u8),
        4 => Op::Unlink(rng.gen_below(10) as u8),
        5 => Op::Socket,
        6 => Op::NetRoundTrip(rng.gen_below(8) as usize, rng.gen_range(1..4096) as u16),
        _ => Op::Tick(rng.gen_range(1..8) as u8),
    }
}

const POLICIES: [PolicyKind; 6] = [
    PolicyKind::Naive,
    PolicyKind::Nimble,
    PolicyKind::NimblePlusPlus,
    PolicyKind::KlocNoMigration,
    PolicyKind::Kloc,
    PolicyKind::AllSlow,
];

/// Under any policy and any op sequence: capacity accounting holds,
/// pinned pages never leave the tier they were allocated on, and the
/// clock is monotone.
#[test]
fn policies_preserve_substrate_invariants() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0009_011C_0000 + case);
        let policy_kind = POLICIES[rng.gen_below(POLICIES.len() as u64) as usize];
        let ops: Vec<Op> = (0..rng.gen_range(1..120))
            .map(|_| gen_op(&mut rng))
            .collect();

        let fast_frames = 64u64;
        let mut mem = MemorySystem::two_tier(fast_frames * PAGE_SIZE, 8);
        let mut policy = policy_kind.build();
        mem.set_migration_cost(policy.migration_cost());
        let mut kernel = Kernel::new(KernelParams {
            page_cache_budget: 96,
            ..KernelParams::default()
        });
        let mut fds: Vec<(Fd, bool)> = Vec::new(); // (fd, is_socket)
        let mut last_now = mem.now();

        for op in ops {
            {
                let mut ctx = Ctx::new(&mut mem, policy.as_mut());
                let r: Result<(), KernelError> = (|| {
                    match &op {
                        Op::Create(n) => match kernel.create(&mut ctx, &format!("/p{n}")) {
                            Ok(fd) => fds.push((fd, false)),
                            Err(KernelError::Exists(_)) => {}
                            Err(e) => return Err(e),
                        },
                        Op::Write(f, o, l) => {
                            if let Some(&(fd, false)) = fds.get(f % fds.len().max(1)) {
                                kernel.write(&mut ctx, fd, *o as u64 * 4096, *l as u64)?;
                            }
                        }
                        Op::Read(f, o, l) => {
                            if let Some(&(fd, false)) = fds.get(f % fds.len().max(1)) {
                                kernel.read(&mut ctx, fd, *o as u64 * 4096, *l as u64)?;
                            }
                        }
                        Op::CloseReopen(n) => {
                            let path = format!("/p{n}");
                            // Close every fd on this path, then reopen once.
                            if let Some(pos) = fds.iter().position(|&(fd, s)| {
                                !s && kernel
                                    .vfs()
                                    .fd(fd)
                                    .map(|of| kernel.vfs().lookup_path(&path) == Some(of.inode))
                                    .unwrap_or(false)
                            }) {
                                let (fd, _) = fds.remove(pos);
                                kernel.close(&mut ctx, fd)?;
                                if let Ok(fd) = kernel.open(&mut ctx, &path) {
                                    fds.push((fd, false));
                                }
                            }
                        }
                        Op::Unlink(n) => match kernel.unlink(&mut ctx, &format!("/p{n}")) {
                            Ok(()) | Err(KernelError::NoEntry(_)) => {}
                            Err(e) => return Err(e),
                        },
                        Op::Socket => {
                            fds.push((kernel.socket(&mut ctx)?, true));
                        }
                        Op::NetRoundTrip(f, b) => {
                            if let Some(&(fd, true)) = fds.get(f % fds.len().max(1)) {
                                kernel.deliver(&mut ctx, fd, *b as u64)?;
                                kernel.recv(&mut ctx, fd, *b as u64)?;
                                kernel.send(&mut ctx, fd, *b as u64)?;
                            }
                        }
                        Op::Tick(_) => {}
                    }
                    Ok(())
                })();
                assert!(r.is_ok(), "case {case} {policy_kind:?}: kernel error {r:?}");
            }
            if let Op::Tick(n) = op {
                for _ in 0..n {
                    mem.charge(Nanos::from_micros(300));
                    policy.tick(&kernel, &mut mem);
                }
            }

            // Invariants.
            let now = mem.now();
            assert!(now >= last_now, "case {case}: clock ran backwards");
            last_now = now;
            let fast = mem.tier_alloc(TierId::FAST).unwrap();
            assert!(
                fast.used_frames() <= fast_frames,
                "case {case} {policy_kind:?}: fast tier overcommitted"
            );
        }
    }
}
