//! Property tests over the policies: every policy must survive arbitrary
//! kernel activity without panicking, never corrupt capacity accounting,
//! and never move a pinned page.

use proptest::prelude::*;

use kloc_kernel::hooks::Ctx;
use kloc_kernel::{Fd, Kernel, KernelError, KernelParams};
use kloc_mem::{MemorySystem, Nanos, TierId, PAGE_SIZE};
use kloc_policy::PolicyKind;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write(usize, u8, u16),
    Read(usize, u8, u16),
    CloseReopen(u8),
    Unlink(u8),
    Socket,
    NetRoundTrip(usize, u16),
    Tick(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..10).prop_map(Op::Create),
        (0usize..8, 0u8..8, 1u16..8192).prop_map(|(f, o, l)| Op::Write(f, o, l)),
        (0usize..8, 0u8..8, 1u16..8192).prop_map(|(f, o, l)| Op::Read(f, o, l)),
        (0u8..10).prop_map(Op::CloseReopen),
        (0u8..10).prop_map(Op::Unlink),
        Just(Op::Socket),
        (0usize..8, 1u16..4096).prop_map(|(f, b)| Op::NetRoundTrip(f, b)),
        (1u8..8).prop_map(Op::Tick),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Naive),
        Just(PolicyKind::Nimble),
        Just(PolicyKind::NimblePlusPlus),
        Just(PolicyKind::KlocNoMigration),
        Just(PolicyKind::Kloc),
        Just(PolicyKind::AllSlow),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any policy and any op sequence: capacity accounting holds,
    /// pinned pages never leave the tier they were allocated on, and the
    /// clock is monotone.
    #[test]
    fn policies_preserve_substrate_invariants(
        policy_kind in policy_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let fast_frames = 64u64;
        let mut mem = MemorySystem::two_tier(fast_frames * PAGE_SIZE, 8);
        let mut policy = policy_kind.build();
        mem.set_migration_cost(policy.migration_cost());
        let mut kernel = Kernel::new(KernelParams {
            page_cache_budget: 96,
            ..KernelParams::default()
        });
        let mut fds: Vec<(Fd, bool)> = Vec::new(); // (fd, is_socket)
        let mut last_now = mem.now();

        for op in ops {
            {
                let mut ctx = Ctx::new(&mut mem, policy.as_mut());
                let r: Result<(), KernelError> = (|| {
                    match op {
                        Op::Create(n) => {
                            match kernel.create(&mut ctx, &format!("/p{n}")) {
                                Ok(fd) => fds.push((fd, false)),
                                Err(KernelError::Exists(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                        Op::Write(f, o, l) => {
                            if let Some(&(fd, false)) = fds.get(f % fds.len().max(1)) {
                                kernel.write(&mut ctx, fd, o as u64 * 4096, l as u64)?;
                            }
                        }
                        Op::Read(f, o, l) => {
                            if let Some(&(fd, false)) = fds.get(f % fds.len().max(1)) {
                                kernel.read(&mut ctx, fd, o as u64 * 4096, l as u64)?;
                            }
                        }
                        Op::CloseReopen(n) => {
                            let path = format!("/p{n}");
                            // Close every fd on this path, then reopen once.
                            if let Some(pos) = fds.iter().position(|&(fd, s)| {
                                !s && kernel.vfs().fd(fd).map(|of| {
                                    kernel.vfs().lookup_path(&path) == Some(of.inode)
                                }).unwrap_or(false)
                            }) {
                                let (fd, _) = fds.remove(pos);
                                kernel.close(&mut ctx, fd)?;
                                if let Ok(fd) = kernel.open(&mut ctx, &path) {
                                    fds.push((fd, false));
                                }
                            }
                        }
                        Op::Unlink(n) => {
                            match kernel.unlink(&mut ctx, &format!("/p{n}")) {
                                Ok(()) | Err(KernelError::NoEntry(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                        Op::Socket => {
                            fds.push((kernel.socket(&mut ctx)?, true));
                        }
                        Op::NetRoundTrip(f, b) => {
                            if let Some(&(fd, true)) = fds.get(f % fds.len().max(1)) {
                                kernel.deliver(&mut ctx, fd, b as u64)?;
                                kernel.recv(&mut ctx, fd, b as u64)?;
                                kernel.send(&mut ctx, fd, b as u64)?;
                            }
                        }
                        Op::Tick(_) => {}
                    }
                    Ok(())
                })();
                prop_assert!(r.is_ok(), "{policy_kind:?}: kernel error {r:?}");
            }
            if let Op::Tick(n) = op {
                for _ in 0..n {
                    mem.charge(Nanos::from_micros(300));
                    policy.tick(&kernel, &mut mem);
                }
            }

            // Invariants.
            let now = mem.now();
            prop_assert!(now >= last_now, "clock ran backwards");
            last_now = now;
            let fast = mem.tier_alloc(TierId::FAST).unwrap();
            prop_assert!(
                fast.used_frames() <= fast_frames,
                "{policy_kind:?}: fast tier overcommitted"
            );
        }
    }
}
