//! Randomized model tests for the kernel: arbitrary syscall sequences
//! must never leak frames or objects, and object accounting must stay
//! consistent.
//!
//! Sequences come from the in-tree seeded `SplitMix64` PRNG (fixed
//! seeds, so failures reproduce exactly).

use kloc_kernel::hooks::{Ctx, NullHooks};
use kloc_kernel::{Fd, Kernel, KernelError, KernelParams};
use kloc_mem::{MemorySystem, SplitMix64};

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Open(u8),
    Write(usize, u8, u16),
    Read(usize, u8, u16),
    Fsync(usize),
    Close(usize),
    Unlink(u8),
    Socket,
    Send(usize, u16),
    Deliver(usize, u16),
    Recv(usize),
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_below(11) {
        0 => Op::Create(rng.gen_below(8) as u8),
        1 => Op::Open(rng.gen_below(8) as u8),
        2 => Op::Write(
            rng.gen_below(8) as usize,
            rng.gen_below(16) as u8,
            rng.gen_range(1..16384) as u16,
        ),
        3 => Op::Read(
            rng.gen_below(8) as usize,
            rng.gen_below(16) as u8,
            rng.gen_range(1..16384) as u16,
        ),
        4 => Op::Fsync(rng.gen_below(8) as usize),
        5 => Op::Close(rng.gen_below(8) as usize),
        6 => Op::Unlink(rng.gen_below(8) as u8),
        7 => Op::Socket,
        8 => Op::Send(rng.gen_below(8) as usize, rng.gen_range(1..8192) as u16),
        9 => Op::Deliver(rng.gen_below(8) as usize, rng.gen_range(1..8192) as u16),
        _ => Op::Recv(rng.gen_below(8) as usize),
    }
}

fn gen_ops(rng: &mut SplitMix64, min: u64, max: u64) -> Vec<Op> {
    (0..rng.gen_range(min..max)).map(|_| gen_op(rng)).collect()
}

fn pick(fds: &[Fd], i: usize) -> Option<Fd> {
    if fds.is_empty() {
        None
    } else {
        Some(fds[i % fds.len()])
    }
}

/// After closing everything, unlinking every path, and committing the
/// journal, no frames or kernel objects remain.
#[test]
fn no_leaks_after_full_teardown() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(0x7EA2_0000 + case);
        let ops = gen_ops(&mut rng, 1, 120);

        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut fds: Vec<Fd> = Vec::new();
        let mut paths: Vec<String> = Vec::new();

        for op in ops {
            let r: Result<(), KernelError> = (|| {
                match op {
                    Op::Create(n) => {
                        let path = format!("/f{n}");
                        match k.create(&mut ctx, &path) {
                            Ok(fd) => {
                                fds.push(fd);
                                paths.push(path);
                            }
                            Err(KernelError::Exists(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                    Op::Open(n) => match k.open(&mut ctx, &format!("/f{n}")) {
                        Ok(fd) => fds.push(fd),
                        Err(KernelError::NoEntry(_)) => {}
                        Err(e) => return Err(e),
                    },
                    Op::Write(f, o, l) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.write(&mut ctx, fd, o as u64 * 4096, l as u64) {
                                Ok(_)
                                | Err(KernelError::BadFd(_))
                                | Err(KernelError::WrongKind(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Read(f, o, l) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.read(&mut ctx, fd, o as u64 * 4096, l as u64) {
                                Ok(_)
                                | Err(KernelError::BadFd(_))
                                | Err(KernelError::WrongKind(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Fsync(f) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.fsync(&mut ctx, fd) {
                                Ok(_) | Err(KernelError::BadFd(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Close(f) => {
                        if !fds.is_empty() {
                            let fd = fds.remove(f % fds.len());
                            match k.close(&mut ctx, fd) {
                                Ok(_) | Err(KernelError::BadFd(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Unlink(n) => {
                        let path = format!("/f{n}");
                        match k.unlink(&mut ctx, &path) {
                            Ok(_) => paths.retain(|p| *p != path),
                            Err(KernelError::NoEntry(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                    Op::Socket => {
                        fds.push(k.socket(&mut ctx)?);
                    }
                    Op::Send(f, b) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.send(&mut ctx, fd, b as u64) {
                                Ok(_)
                                | Err(KernelError::BadFd(_))
                                | Err(KernelError::WrongKind(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Deliver(f, b) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.deliver(&mut ctx, fd, b as u64) {
                                Ok(_)
                                | Err(KernelError::BadFd(_))
                                | Err(KernelError::WrongKind(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Recv(f) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.recv(&mut ctx, fd, 65536) {
                                Ok(_)
                                | Err(KernelError::BadFd(_))
                                | Err(KernelError::WrongKind(_))
                                | Err(KernelError::WouldBlock(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
                Ok(())
            })();
            assert!(r.is_ok(), "case {case}: unexpected kernel error: {r:?}");

            // Live object count and live frame count stay consistent:
            // every page-backed object is a frame; slab frames hold >= 1.
            let live_objs = k.objects().len();
            let live_frames = ctx.mem.live_frames();
            assert!(
                live_frames <= live_objs + k.stats().app_pages_allocated as usize + 8,
                "case {case}: frames ({live_frames}) exceed objects ({live_objs})"
            );
        }

        // Teardown: close all fds, unlink all paths, flush everything.
        for fd in fds.drain(..) {
            let _ = k.close(&mut ctx, fd);
        }
        for p in paths.drain(..) {
            let _ = k.unlink(&mut ctx, &p);
        }
        k.writeback(&mut ctx, usize::MAX).unwrap();
        k.commit_journal(&mut ctx).unwrap();

        // Cached (closed but linked) inodes may survive; destroy them by
        // unlinking through the VFS paths we tracked — anything left is
        // inode caches, which we account for explicitly.
        let cached_inodes = k.vfs().inode_count();
        let live = k.objects().len();
        // Every remaining object must belong to a cached inode.
        for obj in k.objects().iter() {
            assert!(
                obj.info.inode.is_some(),
                "case {case}: orphan object {obj:?} after teardown"
            );
        }
        assert!(
            cached_inodes > 0 || live == 0,
            "case {case}: objects without cached inodes: {live}"
        );
        assert_eq!(
            k.dirty_pages(),
            0,
            "case {case}: dirty pages after full flush"
        );
    }
}

/// The virtual clock is monotone across any syscall sequence.
#[test]
fn clock_monotone() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(0xC10C_0000 + case);
        let ops = gen_ops(&mut rng, 1, 60);

        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut fds: Vec<Fd> = Vec::new();
        let mut last = ctx.mem.now();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Create(n) => {
                    if let Ok(fd) = k.create(&mut ctx, &format!("/g{i}_{n}")) {
                        fds.push(fd);
                    }
                }
                Op::Write(f, o, l) => {
                    if let Some(fd) = pick(&fds, f) {
                        let _ = k.write(&mut ctx, fd, o as u64 * 4096, l as u64);
                    }
                }
                Op::Socket => {
                    fds.push(k.socket(&mut ctx).unwrap());
                }
                Op::Deliver(f, b) => {
                    if let Some(fd) = pick(&fds, f) {
                        let _ = k.deliver(&mut ctx, fd, b as u64);
                    }
                }
                _ => {}
            }
            let now = ctx.mem.now();
            assert!(now >= last, "case {case}: clock ran backwards");
            last = now;
        }
    }
}
