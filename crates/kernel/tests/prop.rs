//! Property tests for the kernel: arbitrary syscall sequences must never
//! leak frames or objects, and object accounting must stay consistent.

use proptest::prelude::*;

use kloc_kernel::hooks::{Ctx, NullHooks};
use kloc_kernel::{Fd, Kernel, KernelError, KernelParams};
use kloc_mem::MemorySystem;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Open(u8),
    Write(usize, u8, u16),
    Read(usize, u8, u16),
    Fsync(usize),
    Close(usize),
    Unlink(u8),
    Socket,
    Send(usize, u16),
    Deliver(usize, u16),
    Recv(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Create),
        (0u8..8).prop_map(Op::Open),
        (0usize..8, 0u8..16, 1u16..16384).prop_map(|(f, o, l)| Op::Write(f, o, l)),
        (0usize..8, 0u8..16, 1u16..16384).prop_map(|(f, o, l)| Op::Read(f, o, l)),
        (0usize..8).prop_map(Op::Fsync),
        (0usize..8).prop_map(Op::Close),
        (0u8..8).prop_map(Op::Unlink),
        Just(Op::Socket),
        (0usize..8, 1u16..8192).prop_map(|(f, b)| Op::Send(f, b)),
        (0usize..8, 1u16..8192).prop_map(|(f, b)| Op::Deliver(f, b)),
        (0usize..8).prop_map(Op::Recv),
    ]
}

fn pick(fds: &[Fd], i: usize) -> Option<Fd> {
    if fds.is_empty() {
        None
    } else {
        Some(fds[i % fds.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After closing everything, unlinking every path, and committing the
    /// journal, no frames or kernel objects remain.
    #[test]
    fn no_leaks_after_full_teardown(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut fds: Vec<Fd> = Vec::new();
        let mut paths: Vec<String> = Vec::new();

        for op in ops {
            let r: Result<(), KernelError> = (|| {
                match op {
                    Op::Create(n) => {
                        let path = format!("/f{n}");
                        match k.create(&mut ctx, &path) {
                            Ok(fd) => {
                                fds.push(fd);
                                paths.push(path);
                            }
                            Err(KernelError::Exists(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                    Op::Open(n) => {
                        match k.open(&mut ctx, &format!("/f{n}")) {
                            Ok(fd) => fds.push(fd),
                            Err(KernelError::NoEntry(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                    Op::Write(f, o, l) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.write(&mut ctx, fd, o as u64 * 4096, l as u64) {
                                Ok(_) | Err(KernelError::BadFd(_)) | Err(KernelError::WrongKind(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Read(f, o, l) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.read(&mut ctx, fd, o as u64 * 4096, l as u64) {
                                Ok(_) | Err(KernelError::BadFd(_)) | Err(KernelError::WrongKind(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Fsync(f) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.fsync(&mut ctx, fd) {
                                Ok(_) | Err(KernelError::BadFd(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Close(f) => {
                        if !fds.is_empty() {
                            let fd = fds.remove(f % fds.len());
                            match k.close(&mut ctx, fd) {
                                Ok(_) | Err(KernelError::BadFd(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Unlink(n) => {
                        let path = format!("/f{n}");
                        match k.unlink(&mut ctx, &path) {
                            Ok(_) => paths.retain(|p| *p != path),
                            Err(KernelError::NoEntry(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                    Op::Socket => {
                        fds.push(k.socket(&mut ctx)?);
                    }
                    Op::Send(f, b) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.send(&mut ctx, fd, b as u64) {
                                Ok(_) | Err(KernelError::BadFd(_)) | Err(KernelError::WrongKind(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Deliver(f, b) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.deliver(&mut ctx, fd, b as u64) {
                                Ok(_) | Err(KernelError::BadFd(_)) | Err(KernelError::WrongKind(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Op::Recv(f) => {
                        if let Some(fd) = pick(&fds, f) {
                            match k.recv(&mut ctx, fd, 65536) {
                                Ok(_)
                                | Err(KernelError::BadFd(_))
                                | Err(KernelError::WrongKind(_))
                                | Err(KernelError::WouldBlock(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
                Ok(())
            })();
            prop_assert!(r.is_ok(), "unexpected kernel error: {:?}", r);

            // Live object count and live frame count stay consistent:
            // every page-backed object is a frame; slab frames hold >= 1.
            let live_objs = k.objects().len();
            let live_frames = ctx.mem.live_frames();
            prop_assert!(
                live_frames <= live_objs + k.stats().app_pages_allocated as usize + 8,
                "frames ({live_frames}) exceed objects ({live_objs})"
            );
        }

        // Teardown: close all fds, unlink all paths, flush everything.
        for fd in fds.drain(..) {
            let _ = k.close(&mut ctx, fd);
        }
        for p in paths.drain(..) {
            let _ = k.unlink(&mut ctx, &p);
        }
        k.writeback(&mut ctx, usize::MAX).unwrap();
        k.commit_journal(&mut ctx).unwrap();

        // Cached (closed but linked) inodes may survive; destroy them by
        // unlinking through the VFS paths we tracked — anything left is
        // inode caches, which we account for explicitly.
        let cached_inodes = k.vfs().inode_count();
        let live = k.objects().len();
        // Every remaining object must belong to a cached inode.
        for obj in k.objects().iter() {
            prop_assert!(
                obj.info.inode.is_some(),
                "orphan object {:?} after teardown",
                obj
            );
        }
        prop_assert!(
            cached_inodes > 0 || live == 0,
            "objects without cached inodes: {live}"
        );
        prop_assert_eq!(k.dirty_pages(), 0, "dirty pages after full flush");
    }

    /// The virtual clock is monotone across any syscall sequence.
    #[test]
    fn clock_monotone(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut fds: Vec<Fd> = Vec::new();
        let mut last = ctx.mem.now();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Create(n) => {
                    if let Ok(fd) = k.create(&mut ctx, &format!("/g{i}_{n}")) {
                        fds.push(fd);
                    }
                }
                Op::Write(f, o, l) => {
                    if let Some(fd) = pick(&fds, f) {
                        let _ = k.write(&mut ctx, fd, o as u64 * 4096, l as u64);
                    }
                }
                Op::Socket => {
                    fds.push(k.socket(&mut ctx).unwrap());
                }
                Op::Deliver(f, b) => {
                    if let Some(fd) = pick(&fds, f) {
                        let _ = k.deliver(&mut ctx, fd, b as u64);
                    }
                }
                _ => {}
            }
            let now = ctx.mem.now();
            prop_assert!(now >= last);
            last = now;
        }
    }
}
