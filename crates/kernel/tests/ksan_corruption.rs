//! Corruption-injection tests for the kernel-side sanitizer: desync each
//! audited structure pair and assert the audit reports exactly that pair.
//!
//! Gated on the `ksan` feature (see `[[test]]` in Cargo.toml); run with
//! `cargo test -p kloc-kernel --features ksan`.

use kloc_kernel::hooks::{Ctx, NullHooks};
use kloc_kernel::lru::{List, PageLru};
use kloc_kernel::{Kernel, KernelParams};
use kloc_mem::ksan::Violation;
use kloc_mem::{FrameId, MemorySystem};

fn setup() -> (MemorySystem, NullHooks, Kernel) {
    (
        MemorySystem::two_tier(1024 * kloc_mem::PAGE_SIZE, 8),
        NullHooks::fast_first(),
        Kernel::new(KernelParams::default()),
    )
}

/// A kernel with a few cached (and dirty) file pages.
fn populated() -> (MemorySystem, NullHooks, Kernel) {
    let (mut mem, mut hooks, mut kernel) = setup();
    {
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = kernel.create(&mut ctx, "/ksan").unwrap();
        kernel.write(&mut ctx, fd, 0, 3 * 4096).unwrap();
        kernel.read(&mut ctx, fd, 0, 4096).unwrap();
    }
    (mem, hooks, kernel)
}

fn audited(kernel: &Kernel, mem: &MemorySystem) -> Vec<Violation> {
    let mut out = Vec::new();
    kernel.ksan_audit(mem, &mut out);
    out
}

#[test]
fn populated_kernel_audits_clean() {
    let (mem, _hooks, kernel) = populated();
    assert_eq!(audited(&kernel, &mem), vec![]);
}

#[test]
fn cache_index_desync_is_caught() {
    let (mem, _hooks, mut kernel) = populated();
    kernel.ksan_break_cache_index();
    let out = audited(&kernel, &mem);
    assert!(
        out.iter()
            .any(|v| v.structures == "PageCache <-> Kernel.cache_index"),
        "{out:#?}"
    );
    assert!(
        out.iter().all(|v| v.structures.contains("cache_index")),
        "only the reverse-map pair should fire: {out:#?}"
    );
}

#[test]
fn cache_lru_desync_is_caught() {
    let (mem, _hooks, mut kernel) = populated();
    kernel.ksan_break_cache_lru();
    let out = audited(&kernel, &mem);
    assert!(
        out.iter()
            .any(|v| v.structures == "PageCache <-> Kernel.cache_lru"),
        "{out:#?}"
    );
    assert!(
        out.iter()
            .any(|v| v.structures == "Kernel.cache_lru <-> PageCache"),
        "the LRU population count should also disagree: {out:#?}"
    );
}

#[test]
fn lru_index_desync_is_caught() {
    let mut lru = PageLru::new();
    for i in 0..4 {
        lru.insert(
            FrameId(i),
            if i % 2 == 0 {
                List::Active
            } else {
                List::Inactive
            },
        );
    }
    let mut out = Vec::new();
    lru.ksan_audit(&mut out);
    assert_eq!(out, vec![]);

    lru.ksan_break_index(FrameId(2));
    lru.ksan_audit(&mut out);
    assert!(
        out.iter()
            .any(|v| v.structures == "PageLru list links <-> PageLru.index"
                && v.object == "frame frame2"),
        "{out:#?}"
    );
    assert!(
        out.iter()
            .any(|v| v.structures == "PageLru.index <-> PageLru.tracked"),
        "{out:#?}"
    );
}

#[test]
fn lru_shard_homing_desync_is_caught() {
    let (mem, _hooks, mut kernel) = populated();
    kernel.ksan_break_lru_homing();
    let out = audited(&kernel, &mem);
    assert!(
        out.iter()
            .any(|v| v.structures == "ShardedPageLru homing <-> FrameId.slot"),
        "{out:#?}"
    );
}

#[test]
fn lru_stamp_order_desync_is_caught() {
    use kloc_kernel::lru::ShardedPageLru;
    // Drive two shards, then splice a frame with a too-old stamp by
    // misusing the stamped single-shard API directly.
    let mut lru = PageLru::new();
    let mut stamp = 100u64;
    lru.insert_stamped(FrameId(0), List::Inactive, &mut stamp);
    lru.insert_stamped(FrameId(2), List::Inactive, &mut stamp);
    let mut out = Vec::new();
    lru.ksan_audit(&mut out);
    assert_eq!(out, vec![]);
    // A stale (non-ascending) stamp at the tail violates the ordering
    // the sharded merge depends on.
    let mut stale = 0u64;
    lru.insert_stamped(FrameId(4), List::Inactive, &mut stale);
    lru.ksan_audit(&mut out);
    assert!(
        out.iter()
            .any(|v| v.structures == "PageLru list links <-> Node.stamp"),
        "{out:#?}"
    );
    // And a well-formed sharded LRU audits clean.
    let mut sharded = ShardedPageLru::new(4);
    for i in 0..16 {
        sharded.insert(FrameId(i), List::Inactive);
        sharded.mark_accessed(FrameId(i));
    }
    sharded.scan_inactive(4);
    let mut out = Vec::new();
    sharded.ksan_audit(&mut out);
    assert_eq!(out, vec![]);
}

#[test]
fn slab_cache_link_desync_is_caught() {
    let (mut mem, mut hooks, mut kernel) = setup();
    {
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = kernel.create(&mut ctx, "/slab").unwrap();
        kernel.write(&mut ctx, fd, 0, 4096).unwrap();
    }
    assert_eq!(audited(&kernel, &mem), vec![]);
    // Reach the slab allocator indirectly: breaking the kernel's own
    // allocator state is not exposed, so corrupt a standalone one.
    use kloc_kernel::slab::PackedAllocator;
    use kloc_kernel::KernelObjectType;
    use kloc_mem::PageKind;
    let mut slab = PackedAllocator::new(PageKind::Slab, None);
    {
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        slab.alloc(&mut ctx, KernelObjectType::Dentry, None, false)
            .unwrap();
    }
    let mut out = Vec::new();
    slab.ksan_audit(&mem, &mut out);
    assert_eq!(out, vec![]);
    slab.ksan_break_frame_key();
    slab.ksan_audit(&mem, &mut out);
    assert!(
        out.iter()
            .any(|v| v.structures == "PackedAllocator.frames <-> PackedAllocator.caches"),
        "{out:#?}"
    );
}
