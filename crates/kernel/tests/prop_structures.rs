//! Model-based property tests for the kernel's core data structures:
//! the page-cache radix tree against a `BTreeMap` model, the LRU lists
//! against a recency model, and the packed allocator against byte
//! accounting.

use std::collections::{BTreeMap, HashMap};

use proptest::prelude::*;

use kloc_kernel::hooks::{Ctx, NullHooks};
use kloc_kernel::lru::{List, PageLru};
use kloc_kernel::pagecache::PageCache;
use kloc_kernel::slab::PackedAllocator;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{KernelObjectType, ObjectId};
use kloc_mem::{FrameId, MemorySystem, PageKind};

// ---------------------------------------------------------------------
// Page cache vs BTreeMap model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PcOp {
    Insert(u64, bool),
    Remove(u64),
    MarkDirty(u64),
    MarkClean(u64),
}

fn pc_op() -> impl Strategy<Value = PcOp> {
    prop_oneof![
        (0u64..256, any::<bool>()).prop_map(|(i, d)| PcOp::Insert(i, d)),
        (0u64..256).prop_map(PcOp::Remove),
        (0u64..256).prop_map(PcOp::MarkDirty),
        (0u64..256).prop_map(PcOp::MarkClean),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The radix tree agrees with a flat map on membership, dirtiness,
    /// dirty counts, and node bookkeeping (one node per populated chunk).
    #[test]
    fn pagecache_matches_model(fanout in 1u64..70, ops in proptest::collection::vec(pc_op(), 1..250)) {
        let mut pc = PageCache::new(fanout);
        let mut model: BTreeMap<u64, bool> = BTreeMap::new(); // idx -> dirty
        let mut next_obj = 0u64;

        for op in ops {
            match op {
                PcOp::Insert(idx, dirty) => {
                    if model.contains_key(&idx) { continue; }
                    if pc.needs_node(idx) {
                        pc.install_node(idx, ObjectId(1_000_000 + idx / fanout));
                    }
                    pc.insert(idx, ObjectId(next_obj), FrameId(next_obj), dirty);
                    next_obj += 1;
                    model.insert(idx, dirty);
                }
                PcOp::Remove(idx) => {
                    let removed = pc.remove(idx);
                    prop_assert_eq!(removed.is_some(), model.remove(&idx).is_some());
                    if let Some(r) = removed {
                        // Node freed iff the chunk emptied.
                        let chunk = idx / fanout;
                        let chunk_live = model.keys().any(|k| k / fanout == chunk);
                        prop_assert_eq!(r.freed_node.is_some(), !chunk_live);
                    }
                }
                PcOp::MarkDirty(idx) => {
                    let ok = pc.mark_dirty(idx);
                    prop_assert_eq!(ok, model.contains_key(&idx));
                    if let Some(d) = model.get_mut(&idx) { *d = true; }
                }
                PcOp::MarkClean(idx) => {
                    let ok = pc.mark_clean(idx);
                    prop_assert_eq!(ok, model.contains_key(&idx));
                    if let Some(d) = model.get_mut(&idx) { *d = false; }
                }
            }

            prop_assert_eq!(pc.len(), model.len());
            prop_assert_eq!(
                pc.dirty_pages(),
                model.values().filter(|d| **d).count() as u64
            );
            let chunks: std::collections::BTreeSet<u64> =
                model.keys().map(|k| k / fanout).collect();
            prop_assert_eq!(pc.node_count(), chunks.len());
            for (&idx, &dirty) in &model {
                let page = pc.get(idx).expect("model page present");
                prop_assert_eq!(page.dirty, dirty);
                prop_assert!(pc.node_for(idx).is_some());
            }
            let listed: Vec<u64> = pc.iter().map(|(i, _)| i).collect();
            let expect: Vec<u64> = model.keys().copied().collect();
            prop_assert_eq!(listed, expect, "iteration order is index order");
        }
    }
}

// ---------------------------------------------------------------------
// LRU vs recency model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LruOp {
    Insert(u64, bool),
    Access(u64),
    Remove(u64),
    Scan(u8),
    Age(u8),
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (0u64..64, any::<bool>()).prop_map(|(f, a)| LruOp::Insert(f, a)),
        (0u64..64).prop_map(LruOp::Access),
        (0u64..64).prop_map(LruOp::Remove),
        (1u8..16).prop_map(LruOp::Scan),
        (1u8..16).prop_map(LruOp::Age),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Membership never drifts, scans only evict unreferenced pages, and
    /// counts always balance.
    #[test]
    fn lru_membership_and_counts(ops in proptest::collection::vec(lru_op(), 1..300)) {
        let mut lru = PageLru::new();
        let mut member: HashMap<u64, ()> = HashMap::new();

        for op in ops {
            match op {
                LruOp::Insert(f, active) => {
                    if member.contains_key(&f) { continue; }
                    lru.insert(
                        FrameId(f),
                        if active { List::Active } else { List::Inactive },
                    );
                    member.insert(f, ());
                }
                LruOp::Access(f) => {
                    lru.mark_accessed(FrameId(f)); // no-op when untracked
                }
                LruOp::Remove(f) => {
                    prop_assert_eq!(lru.remove(FrameId(f)), member.remove(&f).is_some());
                }
                LruOp::Scan(n) => {
                    let before_inactive = lru.inactive_len();
                    let out = lru.scan_inactive(n as usize);
                    prop_assert!(out.scanned <= n as usize);
                    prop_assert!(out.scanned <= before_inactive);
                    prop_assert_eq!(out.scanned, out.evict.len() + out.promoted);
                    // Evicted frames left the structure entirely.
                    for f in &out.evict {
                        prop_assert!(!lru.contains(*f));
                        member.remove(&f.0);
                    }
                }
                LruOp::Age(n) => {
                    let before_active = lru.active_len();
                    let moved = lru.age_active(n as usize);
                    prop_assert!(moved <= before_active.min(n as usize));
                }
            }

            prop_assert_eq!(lru.len(), member.len());
            prop_assert_eq!(lru.active_len() + lru.inactive_len(), lru.len());
            for f in member.keys() {
                prop_assert!(lru.contains(FrameId(*f)));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Packed allocator vs byte accounting
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SlabOp {
    Alloc(u8, u8),
    Free(usize),
}

fn slab_op() -> impl Strategy<Value = SlabOp> {
    prop_oneof![
        (0u8..14, 0u8..6).prop_map(|(t, i)| SlabOp::Alloc(t, i)),
        (0usize..128).prop_map(SlabOp::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Live bytes never exceed frame capacity; the allocator never leaks
    /// frames; freeing everything returns every frame.
    #[test]
    fn packed_allocator_conserves_frames(
        sharded in any::<bool>(),
        ops in proptest::collection::vec(slab_op(), 1..250),
    ) {
        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let kind = if sharded { PageKind::KernelVma } else { PageKind::Slab };
        let mut alloc = PackedAllocator::new(kind, if sharded { Some(4) } else { None });
        // Live objects: (ty, inode, frame).
        let mut live: Vec<(KernelObjectType, Option<InodeId>, FrameId)> = Vec::new();

        for op in ops {
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            match op {
                SlabOp::Alloc(t, i) => {
                    let ty = KernelObjectType::ALL[t as usize % KernelObjectType::ALL.len()];
                    if !matches!(ty.backing(), kloc_kernel::Backing::Slab) {
                        continue;
                    }
                    let inode = if i == 0 { None } else { Some(InodeId(i as u64)) };
                    let f = alloc.alloc(&mut ctx, ty, inode, false).unwrap();
                    prop_assert!(ctx.mem.is_live(f));
                    live.push((ty, inode, f));
                }
                SlabOp::Free(i) => {
                    if live.is_empty() { continue; }
                    let (ty, inode, f) = live.remove(i % live.len());
                    alloc.free(&mut ctx, ty, inode, f).unwrap();
                }
            }
            let _ = ctx;

            // Frame count bounded by object count (packing can only help),
            // and bytes fit: per live frame, sum of resident object sizes
            // cannot exceed a page.
            prop_assert!(alloc.live_frames() <= live.len());
            let mut per_frame: HashMap<FrameId, u64> = HashMap::new();
            for (ty, _, f) in &live {
                *per_frame.entry(*f).or_default() += ty.size();
            }
            for (f, bytes) in &per_frame {
                prop_assert!(
                    *bytes <= kloc_mem::PAGE_SIZE,
                    "frame {f} overpacked: {bytes} bytes"
                );
            }
            prop_assert_eq!(per_frame.len(), alloc.live_frames());
        }

        // Full teardown: no leaked frames.
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        for (ty, inode, f) in live.drain(..) {
            alloc.free(&mut ctx, ty, inode, f).unwrap();
        }
        prop_assert_eq!(alloc.live_frames(), 0);
        prop_assert_eq!(ctx.mem.live_frames(), 0);
    }
}
