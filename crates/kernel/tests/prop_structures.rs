//! Randomized model tests for the kernel's core data structures: the
//! page-cache radix tree against a `BTreeMap` model, the LRU lists
//! against a recency model, and the packed allocator against byte
//! accounting.
//!
//! Sequences come from the in-tree seeded `SplitMix64` PRNG (fixed
//! seeds, so failures reproduce exactly).

use std::collections::{BTreeMap, HashMap};

use kloc_kernel::hooks::{Ctx, NullHooks};
use kloc_kernel::lru::{List, PageLru};
use kloc_kernel::pagecache::PageCache;
use kloc_kernel::slab::PackedAllocator;
use kloc_kernel::vfs::InodeId;
use kloc_kernel::{KernelObjectType, ObjectId};
use kloc_mem::{FrameId, MemorySystem, PageKind, SplitMix64};

// ---------------------------------------------------------------------
// Page cache vs BTreeMap model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PcOp {
    Insert(u64, bool),
    Remove(u64),
    MarkDirty(u64),
    MarkClean(u64),
}

fn pc_op(rng: &mut SplitMix64) -> PcOp {
    match rng.gen_below(4) {
        0 => PcOp::Insert(rng.gen_below(256), rng.gen_bool()),
        1 => PcOp::Remove(rng.gen_below(256)),
        2 => PcOp::MarkDirty(rng.gen_below(256)),
        _ => PcOp::MarkClean(rng.gen_below(256)),
    }
}

/// The radix tree agrees with a flat map on membership, dirtiness,
/// dirty counts, and node bookkeeping (one node per populated chunk).
#[test]
fn pagecache_matches_model() {
    for case in 0..192u64 {
        let mut rng = SplitMix64::seed_from_u64(0x9A6E_0000 + case);
        let fanout = rng.gen_range(1..70);
        let ops: Vec<PcOp> = (0..rng.gen_range(1..250))
            .map(|_| pc_op(&mut rng))
            .collect();

        let mut pc = PageCache::new(fanout);
        let mut model: BTreeMap<u64, bool> = BTreeMap::new(); // idx -> dirty
        let mut next_obj = 0u64;

        for op in ops {
            match op {
                PcOp::Insert(idx, dirty) => {
                    if model.contains_key(&idx) {
                        continue;
                    }
                    if pc.needs_node(idx) {
                        pc.install_node(idx, ObjectId(1_000_000 + idx / fanout));
                    }
                    pc.insert(idx, ObjectId(next_obj), FrameId(next_obj), dirty);
                    next_obj += 1;
                    model.insert(idx, dirty);
                }
                PcOp::Remove(idx) => {
                    let removed = pc.remove(idx);
                    assert_eq!(removed.is_some(), model.remove(&idx).is_some());
                    if let Some(r) = removed {
                        // Node freed iff the chunk emptied.
                        let chunk = idx / fanout;
                        let chunk_live = model.keys().any(|k| k / fanout == chunk);
                        assert_eq!(r.freed_node.is_some(), !chunk_live);
                    }
                }
                PcOp::MarkDirty(idx) => {
                    let ok = pc.mark_dirty(idx);
                    assert_eq!(ok, model.contains_key(&idx));
                    if let Some(d) = model.get_mut(&idx) {
                        *d = true;
                    }
                }
                PcOp::MarkClean(idx) => {
                    let ok = pc.mark_clean(idx);
                    assert_eq!(ok, model.contains_key(&idx));
                    if let Some(d) = model.get_mut(&idx) {
                        *d = false;
                    }
                }
            }

            assert_eq!(pc.len(), model.len());
            assert_eq!(
                pc.dirty_pages(),
                model.values().filter(|d| **d).count() as u64
            );
            let chunks: std::collections::BTreeSet<u64> =
                model.keys().map(|k| k / fanout).collect();
            assert_eq!(pc.node_count(), chunks.len());
            for (&idx, &dirty) in &model {
                let page = pc.get(idx).expect("model page present");
                assert_eq!(page.dirty, dirty);
                assert!(pc.node_for(idx).is_some());
            }
            let listed: Vec<u64> = pc.iter().map(|(i, _)| i).collect();
            let expect: Vec<u64> = model.keys().copied().collect();
            assert_eq!(
                listed, expect,
                "case {case}: iteration order is index order"
            );
        }
    }
}

// ---------------------------------------------------------------------
// LRU vs recency model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LruOp {
    Insert(u64, bool),
    Access(u64),
    Remove(u64),
    Scan(u8),
    Age(u8),
}

fn lru_op(rng: &mut SplitMix64) -> LruOp {
    match rng.gen_below(5) {
        0 => LruOp::Insert(rng.gen_below(64), rng.gen_bool()),
        1 => LruOp::Access(rng.gen_below(64)),
        2 => LruOp::Remove(rng.gen_below(64)),
        3 => LruOp::Scan(rng.gen_range(1..16) as u8),
        _ => LruOp::Age(rng.gen_range(1..16) as u8),
    }
}

/// Membership never drifts, scans only evict unreferenced pages, and
/// counts always balance.
#[test]
fn lru_membership_and_counts() {
    for case in 0..192u64 {
        let mut rng = SplitMix64::seed_from_u64(0x12C8_0000 + case);
        let ops: Vec<LruOp> = (0..rng.gen_range(1..300))
            .map(|_| lru_op(&mut rng))
            .collect();

        let mut lru = PageLru::new();
        let mut member: HashMap<u64, ()> = HashMap::new();

        for op in ops {
            match op {
                LruOp::Insert(f, active) => {
                    if member.contains_key(&f) {
                        continue;
                    }
                    lru.insert(
                        FrameId(f),
                        if active { List::Active } else { List::Inactive },
                    );
                    member.insert(f, ());
                }
                LruOp::Access(f) => {
                    lru.mark_accessed(FrameId(f)); // no-op when untracked
                }
                LruOp::Remove(f) => {
                    assert_eq!(lru.remove(FrameId(f)), member.remove(&f).is_some());
                }
                LruOp::Scan(n) => {
                    let before_inactive = lru.inactive_len();
                    let out = lru.scan_inactive(n as usize);
                    assert!(out.scanned <= n as usize);
                    assert!(out.scanned <= before_inactive);
                    assert_eq!(out.scanned, out.evict.len() + out.promoted);
                    // Evicted frames left the structure entirely.
                    for f in &out.evict {
                        assert!(!lru.contains(*f));
                        member.remove(&f.0);
                    }
                }
                LruOp::Age(n) => {
                    let before_active = lru.active_len();
                    let moved = lru.age_active(n as usize);
                    assert!(moved <= before_active.min(n as usize));
                }
            }

            assert_eq!(lru.len(), member.len(), "case {case}");
            assert_eq!(lru.active_len() + lru.inactive_len(), lru.len());
            // lint: ordered-ok — membership check only; order-insensitive.
            for f in member.keys() {
                assert!(lru.contains(FrameId(*f)));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Packed allocator vs byte accounting
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SlabOp {
    Alloc(u8, u8),
    Free(usize),
}

fn slab_op(rng: &mut SplitMix64) -> SlabOp {
    if rng.gen_bool() {
        SlabOp::Alloc(rng.gen_below(14) as u8, rng.gen_below(6) as u8)
    } else {
        SlabOp::Free(rng.gen_below(128) as usize)
    }
}

/// Live bytes never exceed frame capacity; the allocator never leaks
/// frames; freeing everything returns every frame.
#[test]
fn packed_allocator_conserves_frames() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(0x51AB_0000 + case);
        let sharded = rng.gen_bool();
        let ops: Vec<SlabOp> = (0..rng.gen_range(1..250))
            .map(|_| slab_op(&mut rng))
            .collect();

        let mut mem = MemorySystem::two_tier(u64::MAX, 8);
        let mut hooks = NullHooks::fast_first();
        let kind = if sharded {
            PageKind::KernelVma
        } else {
            PageKind::Slab
        };
        let mut alloc = PackedAllocator::new(kind, if sharded { Some(4) } else { None });
        // Live objects: (ty, inode, frame).
        let mut live: Vec<(KernelObjectType, Option<InodeId>, FrameId)> = Vec::new();

        for op in ops {
            let mut ctx = Ctx::new(&mut mem, &mut hooks);
            match op {
                SlabOp::Alloc(t, i) => {
                    let ty = KernelObjectType::ALL[t as usize % KernelObjectType::ALL.len()];
                    if !matches!(ty.backing(), kloc_kernel::Backing::Slab) {
                        continue;
                    }
                    let inode = if i == 0 {
                        None
                    } else {
                        Some(InodeId(i as u64))
                    };
                    let f = alloc.alloc(&mut ctx, ty, inode, false).unwrap();
                    assert!(ctx.mem.is_live(f));
                    live.push((ty, inode, f));
                }
                SlabOp::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (ty, inode, f) = live.remove(i % live.len());
                    alloc.free(&mut ctx, ty, inode, f).unwrap();
                }
            }
            let _ = ctx;

            // Frame count bounded by object count (packing can only help),
            // and bytes fit: per live frame, sum of resident object sizes
            // cannot exceed a page.
            assert!(alloc.live_frames() <= live.len());
            let mut per_frame: HashMap<FrameId, u64> = HashMap::new();
            for (ty, _, f) in &live {
                *per_frame.entry(*f).or_default() += ty.size();
            }
            // lint: ordered-ok — per-frame bound check; order-insensitive.
            for (f, bytes) in &per_frame {
                assert!(
                    *bytes <= kloc_mem::PAGE_SIZE,
                    "case {case}: frame {f} overpacked: {bytes} bytes"
                );
            }
            assert_eq!(per_frame.len(), alloc.live_frames());
        }

        // Full teardown: no leaked frames.
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        for (ty, inode, f) in live.drain(..) {
            alloc.free(&mut ctx, ty, inode, f).unwrap();
        }
        assert_eq!(alloc.live_frames(), 0);
        assert_eq!(ctx.mem.live_frames(), 0);
    }
}
