//! kfault corruption suite: proves the crash-consistency checker
//! actually detects each violation class it claims to (the same
//! self-test pattern as the `ksan_break_*` hooks), and exercises the
//! blk-mq retry path end to end against the real kernel.
//!
//! Gated on the `kfault` feature (see `Cargo.toml`).

use kloc_kernel::hooks::{Ctx, NullHooks};
use kloc_kernel::recovery::{recover_breaking, BreakMode};
use kloc_kernel::{check, recover, CrashViolation, Kernel, KernelError, KernelParams};
use kloc_mem::{CrashPoint, DiskOp, FaultPlan, MemorySystem, Nanos, PAGE_SIZE};

fn machine() -> (MemorySystem, NullHooks, Kernel) {
    (
        MemorySystem::two_tier(1024 * PAGE_SIZE, 8),
        NullHooks::fast_first(),
        Kernel::new(KernelParams::default()),
    )
}

/// Drives the kernel to a crash torn mid-commit: file `/a` is written
/// and fsync'd (commit 0, a durability promise), then `/b` is created
/// and its commit (ordinal 1) tears after one journal block.
fn crash_mid_commit() -> Kernel {
    let (mut mem, mut hooks, mut k) = machine();
    mem.set_fault_plan(FaultPlan::new().with_crash(CrashPoint::Commit {
        index: 1,
        after_blocks: 1,
    }));
    let mut ctx = Ctx::new(&mut mem, &mut hooks);
    let fd = k.create(&mut ctx, "/a").unwrap();
    k.write(&mut ctx, fd, 0, 2 * PAGE_SIZE).unwrap();
    k.fsync(&mut ctx, fd).unwrap();
    k.create(&mut ctx, "/b").unwrap();
    assert_eq!(k.commit_journal(&mut ctx), Err(KernelError::Crashed));
    k
}

#[test]
fn faithful_recovery_of_torn_commit_passes_check() {
    let k = crash_mid_commit();
    assert_eq!(k.durable().journal.len(), 2);
    assert!(k.durable().journal[0].is_complete());
    assert!(!k.durable().journal[1].is_complete(), "commit 1 tore");
    assert_eq!(k.promise().committed_records, 1);
    assert!(!k.promise().pages.is_empty(), "/a's pages were promised");

    let r = recover(k.durable());
    assert_eq!(r.replayed, 1);
    assert_eq!(r.torn, 1);
    assert_eq!(check(k.durable(), k.promise(), &r), Vec::new());
}

#[test]
fn checker_detects_lost_fsynced_page() {
    let k = crash_mid_commit();
    let r = recover_breaking(k.durable(), BreakMode::LosePromisedPage);
    let violations = check(k.durable(), k.promise(), &r);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, CrashViolation::LostPage { .. })),
        "got {violations:?}"
    );
}

#[test]
fn checker_detects_torn_commit_applied() {
    let k = crash_mid_commit();
    let r = recover_breaking(k.durable(), BreakMode::ApplyTorn);
    let violations = check(k.durable(), k.promise(), &r);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, CrashViolation::TornApplied { .. })),
        "/b must not survive replay; got {violations:?}"
    );
}

#[test]
fn checker_detects_stale_metadata_after_replay() {
    let k = crash_mid_commit();
    let r = recover_breaking(k.durable(), BreakMode::SkipLastCommitted);
    let violations = check(k.durable(), k.promise(), &r);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, CrashViolation::StaleMeta { .. })),
        "dropping /a's committed record must be caught; got {violations:?}"
    );
}

#[test]
fn transient_write_faults_retry_with_backoff_and_succeed() {
    let (mut mem, mut hooks, mut k) = machine();
    mem.set_fault_plan(FaultPlan::new().with_disk_fault(Nanos::ZERO, DiskOp::Write, 2));
    let mut ctx = Ctx::new(&mut mem, &mut hooks);
    let fd = k.create(&mut ctx, "/f").unwrap();
    k.write(&mut ctx, fd, 0, 2 * PAGE_SIZE).unwrap();
    k.fsync(&mut ctx, fd).unwrap();
    assert_eq!(k.disk().stats().io_errors, 2);
    assert_eq!(k.disk().stats().retries, 2, "both failures were retried");
    assert_eq!(k.promise().committed_records, 1, "fsync still succeeded");
}

#[test]
fn persistent_faults_exhaust_the_retry_budget() {
    let (mut mem, mut hooks, mut k) = machine();
    // More consecutive failures than io_max_retries allows.
    let budget = KernelParams::default().io_max_retries;
    mem.set_fault_plan(FaultPlan::new().with_disk_fault(Nanos::ZERO, DiskOp::Write, budget + 5));
    let mut ctx = Ctx::new(&mut mem, &mut hooks);
    let fd = k.create(&mut ctx, "/f").unwrap();
    k.write(&mut ctx, fd, 0, PAGE_SIZE).unwrap();
    assert_eq!(k.fsync(&mut ctx, fd), Err(KernelError::Io(DiskOp::Write)));
    assert_eq!(k.disk().stats().retries, u64::from(budget));
    assert_eq!(k.disk().stats().io_errors, u64::from(budget) + 1);
}

#[test]
fn time_scheduled_crash_aborts_the_next_syscall() {
    let (mut mem, mut hooks, mut k) = machine();
    mem.set_fault_plan(FaultPlan::new().with_crash(CrashPoint::At(Nanos::ZERO)));
    let mut ctx = Ctx::new(&mut mem, &mut hooks);
    assert_eq!(k.create(&mut ctx, "/f"), Err(KernelError::Crashed));
    // Nothing reached the disk; recovery of the empty store is clean.
    let r = recover(k.durable());
    assert_eq!(r.replayed, 0);
    assert_eq!(check(k.durable(), k.promise(), &r), Vec::new());
}
