//! Error-path coverage for the syscall facade: every user-facing
//! `KernelError` variant is produced through the public API (or, where
//! the facade guards make a variant unreachable from outside,
//! constructed directly) and asserted — including `MemError`
//! propagation from the memory substrate.

use kloc_kernel::hooks::{Ctx, KernelHooks, NullHooks, PageRequest, Placement};
use kloc_kernel::{Fd, InodeId, Kernel, KernelError, KernelParams};
use kloc_mem::{MemorySystem, TierId, PAGE_SIZE};

fn machine() -> (MemorySystem, NullHooks, Kernel) {
    (
        MemorySystem::two_tier(1024 * PAGE_SIZE, 8),
        NullHooks::fast_first(),
        Kernel::new(KernelParams::default()),
    )
}

#[test]
fn recv_on_empty_socket_would_block() {
    let (mut mem, mut hooks, mut k) = machine();
    let mut ctx = Ctx::new(&mut mem, &mut hooks);
    let fd = k.socket(&mut ctx).unwrap();
    assert_eq!(k.recv(&mut ctx, fd, 64), Err(KernelError::WouldBlock(fd)));
    // A delivery unblocks it.
    k.deliver(&mut ctx, fd, 100).unwrap();
    assert_eq!(k.recv(&mut ctx, fd, 1000), Ok(100));
}

#[test]
fn closed_and_never_opened_descriptors_are_bad_fds() {
    let (mut mem, mut hooks, mut k) = machine();
    let mut ctx = Ctx::new(&mut mem, &mut hooks);
    let fd = k.create(&mut ctx, "/f").unwrap();
    k.close(&mut ctx, fd).unwrap();
    assert_eq!(k.write(&mut ctx, fd, 0, 16), Err(KernelError::BadFd(fd)));
    assert_eq!(k.close(&mut ctx, fd), Err(KernelError::BadFd(fd)));
    let never = Fd(9999);
    assert_eq!(
        k.read(&mut ctx, never, 0, 16),
        Err(KernelError::BadFd(never))
    );
    assert_eq!(k.fsync(&mut ctx, never), Err(KernelError::BadFd(never)));
}

#[test]
fn bad_inode_reports_the_offending_id() {
    // The facade resolves inodes through fds and paths, so a dangling
    // InodeId cannot be fabricated from outside; the variant itself is
    // the kernel's internal-consistency error. Assert its shape and
    // message directly.
    let e = KernelError::BadInode(InodeId(42));
    assert!(matches!(e, KernelError::BadInode(InodeId(42))));
    assert_eq!(e.to_string(), format!("unknown inode {}", InodeId(42)));
}

#[test]
fn kind_mismatches_are_rejected_both_ways() {
    let (mut mem, mut hooks, mut k) = machine();
    let mut ctx = Ctx::new(&mut mem, &mut hooks);
    let sock = k.socket(&mut ctx).unwrap();
    assert!(matches!(
        k.read(&mut ctx, sock, 0, 16),
        Err(KernelError::WrongKind(_))
    ));
    assert!(matches!(
        k.write(&mut ctx, sock, 0, 16),
        Err(KernelError::WrongKind(_))
    ));
    let file = k.create(&mut ctx, "/f").unwrap();
    assert!(matches!(
        k.send(&mut ctx, file, 16),
        Err(KernelError::WrongKind(_))
    ));
    assert!(matches!(
        k.recv(&mut ctx, file, 16),
        Err(KernelError::WrongKind(_))
    ));
}

/// Pins every page to the fast tier with no spill, so exhausting it
/// surfaces the substrate's error through the syscall facade.
struct FastOnly;

impl KernelHooks for FastOnly {
    fn place_page(&mut self, _req: &PageRequest, _mem: &MemorySystem) -> Placement {
        Placement::only(TierId::FAST)
    }
}

/// TierOffline propagation through the syscall facade (kfault builds):
/// an `Offline` fault window must surface as the degradation cause —
/// never masked as plain capacity pressure — on every allocating
/// syscall path, spill placements must degrade to the slow tier instead
/// of erroring, and allocations must recover once the window closes.
#[cfg(feature = "kfault")]
mod tier_offline {
    use super::*;
    use kloc_mem::{FaultPlan, MemError, Nanos, TierFaultKind};

    /// Offlines the fast tier from `t = 0`, optionally until `until`.
    fn offline_fast(mem: &mut MemorySystem, until: Option<Nanos>) {
        mem.set_fault_plan(FaultPlan::new().with_tier_fault(
            TierId::FAST,
            TierFaultKind::Offline,
            Nanos::ZERO,
            until,
        ));
    }

    fn assert_offline(err: KernelError) {
        match err {
            KernelError::Mem(MemError::TierOffline(t)) => assert_eq!(t, TierId::FAST),
            other => panic!("want TierOffline(fast), got {other:?}"),
        }
    }

    #[test]
    fn write_surfaces_tier_offline_not_out_of_memory() {
        let mut mem = MemorySystem::two_tier(1024 * PAGE_SIZE, 8);
        let mut hooks = FastOnly;
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        // Set up the file before the window opens so create's slab
        // allocations succeed; the plan is installed afterwards.
        let fd = k.create(&mut ctx, "/f").unwrap();
        offline_fast(ctx.mem, None);
        let err = k.write(&mut ctx, fd, 0, 4 * PAGE_SIZE).unwrap_err();
        assert_offline(err);
    }

    #[test]
    fn app_alloc_and_socket_delivery_surface_tier_offline() {
        let mut mem = MemorySystem::two_tier(1024 * PAGE_SIZE, 8);
        let mut hooks = FastOnly;
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let sock = k.socket(&mut ctx).unwrap();
        offline_fast(ctx.mem, None);
        assert_offline(k.alloc_app_page(&mut ctx).unwrap_err());
        // A delivery needs receive-buffer pages; same propagation.
        assert_offline(k.deliver(&mut ctx, sock, 4 * PAGE_SIZE).unwrap_err());
    }

    #[test]
    fn fast_first_placement_degrades_to_slow_during_the_window() {
        let mut mem = MemorySystem::two_tier(1024 * PAGE_SIZE, 8);
        let mut hooks = NullHooks::fast_first();
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        offline_fast(ctx.mem, None);
        // A fast-preferring placement with a slow fallback keeps
        // working: the window diverts it instead of failing it.
        k.write(&mut ctx, fd, 0, 4 * PAGE_SIZE).unwrap();
        let frame = k.alloc_app_page(&mut ctx).unwrap();
        assert_eq!(ctx.mem.tier_of(frame), TierId::SLOW);
    }

    #[test]
    fn allocations_recover_when_the_window_closes() {
        let mut mem = MemorySystem::two_tier(1024 * PAGE_SIZE, 8);
        let mut hooks = FastOnly;
        let mut k = Kernel::new(KernelParams::default());
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        offline_fast(ctx.mem, Some(Nanos::from_micros(50)));
        assert_offline(k.write(&mut ctx, fd, 0, PAGE_SIZE).unwrap_err());
        // Sit out the window on the virtual clock; the same write
        // then lands on the recovered fast tier.
        ctx.mem.charge(Nanos::from_micros(60)); // lint: charge-ok
        k.write(&mut ctx, fd, 0, PAGE_SIZE).unwrap();
        let frame = k.alloc_app_page(&mut ctx).unwrap();
        assert_eq!(ctx.mem.tier_of(frame), TierId::FAST);
    }
}

#[test]
fn mem_errors_propagate_through_the_syscall_facade() {
    // 8 fast frames, nothing else allowed: a large write must fail with
    // a wrapped MemError once the tier fills.
    let mut mem = MemorySystem::two_tier(8 * PAGE_SIZE, 8);
    let mut hooks = FastOnly;
    let mut k = Kernel::new(KernelParams::default());
    let mut ctx = Ctx::new(&mut mem, &mut hooks);
    let fd = k.create(&mut ctx, "/big").unwrap();
    let err = k
        .write(&mut ctx, fd, 0, 64 * PAGE_SIZE)
        .expect_err("8-frame tier cannot hold a 64-page write");
    assert!(matches!(err, KernelError::Mem(_)), "got {err:?}");
    assert!(
        std::error::Error::source(&err).is_some(),
        "source is the MemError"
    );
}
