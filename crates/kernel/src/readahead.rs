//! Adaptive readahead.
//!
//! Models Linux's adaptive readahead (paper §4.4 cites Wu et al.): when a
//! file is read sequentially the window doubles up to a maximum; a random
//! access collapses it. The paper augments the prefetcher to *also*
//! prefetch the kernel objects associated with the inode via the KLOC
//! abstraction — in this model that happens naturally because prefetched
//! pages are allocated with `readahead = true` in their
//! [`crate::hooks::PageRequest`] and flow through the same KLOC hooks.

use std::collections::HashMap;

use crate::vfs::InodeId;

#[derive(Debug, Clone, Copy, Default)]
struct RaState {
    next_expected: u64,
    window: u64,
}

/// Readahead statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReadaheadStats {
    /// Pages prefetched.
    pub issued: u64,
    /// Prefetched pages that were later actually read (hits).
    pub useful: u64,
}

/// Per-inode adaptive readahead state.
#[derive(Debug, Clone, Default)]
pub struct Readahead {
    max_window: u64,
    files: HashMap<InodeId, RaState>,
    stats: ReadaheadStats,
}

impl Readahead {
    /// Creates a prefetcher with the given maximum window (pages).
    pub fn new(max_window: u64) -> Self {
        Readahead {
            max_window,
            ..Readahead::default()
        }
    }

    /// Statistics.
    pub fn stats(&self) -> &ReadaheadStats {
        &self.stats
    }

    /// Observes a read of page `idx` on `inode`; returns how many pages
    /// beyond `idx` to prefetch (0 when the pattern is random).
    pub fn on_read(&mut self, inode: InodeId, idx: u64) -> u64 {
        if self.max_window == 0 {
            return 0; // readahead disabled
        }
        let st = self.files.entry(inode).or_default();
        if idx == st.next_expected && st.next_expected != 0 || (idx == 0 && st.window == 0) {
            // Sequential continuation (or a fresh file starting at 0):
            // grow the window.
            st.window = (st.window * 2).clamp(1, self.max_window);
        } else if idx != st.next_expected {
            // Random jump: collapse.
            st.window = 0;
        }
        st.next_expected = idx + 1;
        st.window
    }

    /// Records that `n` pages were actually prefetched.
    pub fn record_issued(&mut self, n: u64) {
        self.stats.issued += n;
    }

    /// Records a read that hit a previously prefetched page.
    pub fn record_useful(&mut self) {
        self.stats.useful += 1;
    }

    /// Drops per-file state (file closed/unlinked).
    pub fn forget(&mut self, inode: InodeId) {
        self.files.remove(&inode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_grows_window() {
        let mut ra = Readahead::new(32);
        let w0 = ra.on_read(InodeId(1), 0);
        assert_eq!(w0, 1);
        let w1 = ra.on_read(InodeId(1), 1);
        assert_eq!(w1, 2);
        let w2 = ra.on_read(InodeId(1), 2);
        assert_eq!(w2, 4);
        // Window saturates at max.
        let mut w = w2;
        for i in 3..20 {
            w = ra.on_read(InodeId(1), i);
        }
        assert_eq!(w, 32);
    }

    #[test]
    fn random_access_collapses_window() {
        let mut ra = Readahead::new(32);
        ra.on_read(InodeId(1), 0);
        ra.on_read(InodeId(1), 1);
        let w = ra.on_read(InodeId(1), 100);
        assert_eq!(w, 0, "random jump disables prefetch");
        // Resuming sequentially from the new position restarts growth.
        let w = ra.on_read(InodeId(1), 101);
        assert_eq!(w, 1);
    }

    #[test]
    fn files_are_independent() {
        let mut ra = Readahead::new(8);
        ra.on_read(InodeId(1), 0);
        ra.on_read(InodeId(1), 1);
        let w_other = ra.on_read(InodeId(2), 0);
        assert_eq!(w_other, 1, "second file starts fresh");
    }

    #[test]
    fn stats_track_usefulness() {
        let mut ra = Readahead::new(8);
        ra.record_issued(4);
        ra.record_useful();
        assert_eq!(ra.stats().issued, 4);
        assert_eq!(ra.stats().useful, 1);
    }

    #[test]
    fn forget_resets_state() {
        let mut ra = Readahead::new(8);
        ra.on_read(InodeId(1), 0);
        ra.on_read(InodeId(1), 1);
        ra.forget(InodeId(1));
        assert_eq!(
            ra.on_read(InodeId(1), 2),
            0,
            "state gone; jump to 2 is random"
        );
    }
}
