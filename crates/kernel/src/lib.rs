//! # kloc-kernel — simulated kernel substrate
//!
//! The KLOCs paper modifies a real Linux 4.17 kernel; this crate is the
//! substitute: a deterministic, discrete-time model of the kernel
//! subsystems whose *objects* the paper tiers (Table 1 of the paper):
//!
//! * **VFS** — inodes, dentry cache, file handles ([`vfs`])
//! * **page cache** — per-inode radix trees with radix-node slab objects
//!   ([`pagecache`]), plus global reclaim and writeback
//! * **journal** — jbd2-style transactions with journal heads and journal
//!   blocks ([`journal`])
//! * **extents / block layer / disk** — extent trees, bio + blk-mq request
//!   objects, an NVMe model ([`extent`], [`block`], [`disk`])
//! * **network stack** — sockets, skbuffs, skbuff data pages, driver RX
//!   rings, layered delivery with optional early socket demux ([`net`])
//! * **LRU + readahead** — active/inactive page lists with a calibrated
//!   scan cost, and an adaptive readahead prefetcher ([`lru`],
//!   [`readahead`])
//!
//! Memory placement decisions are *not* made here: every page allocation
//! asks a [`hooks::KernelHooks`] implementation (a tiering policy from
//! `kloc-policy`, possibly wrapping the KLOC registry from `kloc-core`)
//! for a tier preference, and every object/inode lifecycle event is
//! reported back through the same trait. This mirrors the paper's design,
//! where KLOCs hook the existing syscall paths (§4.1).
//!
//! The facade type is [`Kernel`]; workloads drive it through the
//! syscall-like API (`create`/`open`/`read`/`write`/`fsync`/`close`/
//! `unlink`, `socket`/`send`/`deliver`/`recv`), always passing a
//! [`hooks::Ctx`] that bundles the memory system and the policy hooks.
//!
//! ```
//! use kloc_kernel::{Kernel, hooks::{Ctx, NullHooks}};
//! use kloc_mem::MemorySystem;
//!
//! # fn main() -> Result<(), kloc_kernel::KernelError> {
//! let mut mem = MemorySystem::two_tier(8 << 20, 8);
//! let mut hooks = NullHooks::fast_first();
//! let mut kernel = Kernel::new(Default::default());
//! let mut ctx = Ctx::new(&mut mem, &mut hooks);
//!
//! let fd = kernel.create(&mut ctx, "/data/f0")?;
//! kernel.write(&mut ctx, fd, 0, 8192)?;   // two page-cache pages
//! kernel.fsync(&mut ctx, fd)?;            // journal commit + writeback
//! kernel.close(&mut ctx, fd)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod disk;
pub mod error;
pub mod extent;
pub mod hooks;
pub mod journal;
pub mod kernel;
pub mod lru;
pub mod net;
pub mod obj;
pub mod pagecache;
pub mod params;
pub mod readahead;
pub mod recovery;
pub mod slab;
pub mod stats;
pub mod tenant;
pub mod vfs;

pub use error::KernelError;
pub use journal::MetaUpdate;
pub use kernel::Kernel;
pub use obj::{Backing, KernelObjectType, ObjectId, ObjectInfo};
pub use params::KernelParams;
pub use recovery::{check, recover, CrashViolation, DurableStore, Promise, RecoveredState};
pub use stats::KernelStats;
pub use tenant::{QosClass, TenantSpec, TenantStats, TenantTable};
pub use vfs::{Fd, InodeId, InodeKind};
