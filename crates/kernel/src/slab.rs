//! Slab-style packed object allocation.
//!
//! Small kernel objects are packed many-per-frame. Two instances exist in
//! the kernel:
//!
//! * the **slab allocator** proper — frames of [`PageKind::Slab`], fast
//!   but pinned (non-relocatable), shared across all inodes, exactly like
//!   `kmem_cache_alloc` (paper §3.3); and
//! * the **KLOC relocatable interface** — frames of
//!   [`PageKind::KernelVma`], slightly slower to allocate but migratable,
//!   with objects grouped into inode-sharded arenas so related contexts
//!   co-locate (the paper's new allocation interface, §4.4, that 400+
//!   allocation sites are redirected to).
//!
//! The allocator only manages frames and slot counts; CPU cost charging
//! and object-table bookkeeping are done by the [`crate::Kernel`] facade.

use kloc_mem::{FrameId, PageKind};

use crate::error::KernelError;
use crate::hooks::{Ctx, PageRequest};
use crate::obj::KernelObjectType;
use crate::vfs::InodeId;

/// Per-frame occupancy plus the cache the frame belongs to, stored in a
/// slot-direct table (see [`FrameMap`]).
#[derive(Debug, Clone, Copy)]
struct FrameUse {
    /// Full frame id occupying this slot, [`FrameMap::VACANT`] if none.
    id: u64,
    used_bytes: u64,
    live_objects: u32,
    /// Dense cache index (see [`PackedAllocator::cache_index`]).
    cache: u32,
}

/// Frame occupancy table, direct-mapped by [`FrameId::slot`]. Frame
/// slots are dense and at most one live frame occupies a slot, so
/// lookup is one array read against the stored full id — stale
/// generations miss, which is what makes lazily popped `partial`
/// entries safe.
#[derive(Debug, Default)]
struct FrameMap {
    slots: Vec<FrameUse>,
    len: usize,
}

impl FrameMap {
    /// Vacant-slot sentinel (no real id carries generation *and* slot
    /// `u32::MAX`).
    const VACANT: u64 = u64::MAX;

    fn get_mut(&mut self, frame: FrameId) -> Option<&mut FrameUse> {
        self.slots
            .get_mut(frame.slot() as usize)
            .filter(|u| u.id == frame.0)
    }

    fn insert(&mut self, frame: FrameId, used_bytes: u64, cache: u32) {
        let slot = frame.slot() as usize;
        if slot >= self.slots.len() {
            self.slots.resize(
                slot + 1,
                FrameUse {
                    id: Self::VACANT,
                    used_bytes: 0,
                    live_objects: 0,
                    cache: 0,
                },
            );
        }
        debug_assert_eq!(self.slots[slot].id, Self::VACANT, "slot {slot} occupied");
        self.slots[slot] = FrameUse {
            id: frame.0,
            used_bytes,
            live_objects: 1,
            cache,
        };
        self.len += 1;
    }

    fn remove(&mut self, frame: FrameId) {
        if let Some(u) = self.get_mut(frame) {
            u.id = Self::VACANT;
            self.len -= 1;
        }
    }

    /// Occupied entries in slot order.
    fn iter(&self) -> impl Iterator<Item = (FrameId, &FrameUse)> {
        self.slots
            .iter()
            .filter(|u| u.id != Self::VACANT)
            .map(|u| (FrameId(u.id), u))
    }
}

/// Frames of one cache with at least one free slot.
#[derive(Debug, Default)]
struct Cache {
    partial: Vec<FrameId>,
}

/// A packed (slab-like) allocator over one [`PageKind`].
///
/// Caches are keyed densely: shared (slab) mode packs by object type —
/// classic `kmem_cache` behaviour where objects of many files pack
/// together — while sharded (KLOC kvma) mode packs by `inode % shards`,
/// so one context's small objects share an arena of frames with at most
/// a shard's worth of co-residents: en-masse migration mostly moves
/// related objects and internal fragmentation stays bounded by the
/// shard count. Both keyings map to a small dense index, so the per
/// alloc/free cache lookup is an array access, not a map search.
#[derive(Debug)]
pub struct PackedAllocator {
    kind: PageKind,
    /// Inode sharding: objects of inodes in the same shard share arena
    /// frames. `None` = classic type-keyed slab packing; `Some(1)` =
    /// one global arena; a moderate shard count groups related contexts
    /// while bounding internal fragmentation to one partial frame per
    /// shard.
    inode_shards: Option<u64>,
    /// Dense cache table: indexes `0..shards` are inode shards, the
    /// tail indexes are per-type caches (for sharded allocators serving
    /// inode-less allocations, and for classic slab mode throughout).
    caches: Vec<Cache>,
    /// Frame -> (occupancy, owning cache), slot-direct.
    frames: FrameMap,
    frames_allocated: u64,
    frames_freed: u64,
}

impl PackedAllocator {
    /// Creates an allocator handing out frames of `kind`. With
    /// `inode_shards = Some(n)`, objects are grouped into `n` arenas by
    /// inode; with `None`, classic per-type slab packing is used.
    pub fn new(kind: PageKind, inode_shards: Option<u64>) -> Self {
        PackedAllocator {
            kind,
            inode_shards,
            caches: Vec::new(),
            frames: FrameMap::default(),
            frames_allocated: 0,
            frames_freed: 0,
        }
    }

    /// Page kind of frames handed out by this allocator.
    pub fn kind(&self) -> PageKind {
        self.kind
    }

    /// Number of live frames currently owned.
    pub fn live_frames(&self) -> usize {
        self.frames.len
    }

    /// Cumulative frames ever allocated.
    pub fn frames_allocated(&self) -> u64 {
        self.frames_allocated
    }

    /// Dense cache index: inode shard when sharding applies, else the
    /// per-type cache past the shard range.
    fn cache_index(&self, ty: KernelObjectType, inode: Option<InodeId>) -> usize {
        let shard_base = match self.inode_shards {
            Some(shards) => {
                let shards = shards.max(1);
                if let Some(i) = inode {
                    return (i.0 % shards) as usize;
                }
                shards as usize
            }
            None => 0,
        };
        shard_base + ty as usize
    }

    /// Allocates one slot for an object of `ty` (owned by `inode`),
    /// returning the frame the object lives on. Allocates a new frame via
    /// the placement hooks when no partial frame has room.
    ///
    /// # Errors
    /// Propagates allocation failure from the memory system (only
    /// possible if every tier in the placement preference is full).
    pub fn alloc(
        &mut self,
        ctx: &mut Ctx<'_>,
        ty: KernelObjectType,
        inode: Option<InodeId>,
        readahead: bool,
    ) -> Result<FrameId, KernelError> {
        let ci = self.cache_index(ty, inode);
        let size = ty.size().min(kloc_mem::PAGE_SIZE);
        if ci >= self.caches.len() {
            self.caches.resize_with(ci + 1, Cache::default);
        }
        let cache = &mut self.caches[ci];

        // Reuse a partial frame if one has room.
        while let Some(&frame) = cache.partial.last() {
            let Some(u) = self.frames.get_mut(frame) else {
                // Stale entry (frame emptied and freed).
                cache.partial.pop();
                continue;
            };
            if u.used_bytes + size <= kloc_mem::PAGE_SIZE {
                u.used_bytes += size;
                u.live_objects += 1;
                if u.used_bytes + size > kloc_mem::PAGE_SIZE {
                    cache.partial.pop();
                }
                return Ok(frame);
            }
            cache.partial.pop();
        }

        // Grab a new frame, placed by the policy. Slab frames are shared
        // infrastructure — one packed page can host many tenants'
        // objects — so the request (and the frame) stays on
        // `TenantId::DEFAULT` and per-tenant fast budgets do not apply.
        let req = PageRequest {
            kind: self.kind,
            ty: Some(ty),
            inode,
            readahead,
            cpu: ctx.cpu,
            tenant: kloc_mem::TenantId::DEFAULT,
        };
        let placement = ctx.hooks.place_page(&req, ctx.mem);
        let frame = ctx
            .mem
            .allocate_preferring(&placement.preference, self.kind)?;
        self.frames_allocated += 1;
        // lint: truncation-ok — cache indexes are small (shards + types)
        self.frames.insert(frame, size, ci as u32);
        if size * 2 <= kloc_mem::PAGE_SIZE {
            self.caches[ci].partial.push(frame);
        }
        Ok(frame)
    }

    /// Releases one slot on `frame` for an object of `ty`/`inode`. When
    /// the frame becomes empty it is returned to the memory system (and
    /// the policy is notified via `on_page_free`).
    ///
    /// # Errors
    /// [`KernelError::Mem`] if the frame is unknown to the memory system
    /// (indicates a double free).
    pub fn free(
        &mut self,
        ctx: &mut Ctx<'_>,
        ty: KernelObjectType,
        inode: Option<InodeId>,
        frame: FrameId,
    ) -> Result<(), KernelError> {
        let ci = self.cache_index(ty, inode);
        let size = ty.size().min(kloc_mem::PAGE_SIZE);
        // A frame freed under the wrong type/inode would resolve to a
        // different cache: reject it like the unknown-frame case.
        let u = self
            .frames
            .get_mut(frame)
            .filter(|u| u.cache as usize == ci)
            .ok_or(KernelError::Mem(kloc_mem::MemError::BadFrame(frame)))?;
        let was_full = u.used_bytes + size > kloc_mem::PAGE_SIZE;
        debug_assert!(u.live_objects > 0, "slot underflow on {frame}");
        u.live_objects -= 1;
        u.used_bytes = u.used_bytes.saturating_sub(size);
        let cache = &mut self.caches[ci];
        if u.live_objects == 0 {
            self.frames.remove(frame);
            if let Some(pos) = cache.partial.iter().position(|&f| f == frame) {
                cache.partial.swap_remove(pos);
            }
            self.frames_freed += 1;
            ctx.hooks.on_page_free(frame, ctx.mem);
            ctx.mem.free(frame)?;
        } else if was_full && !cache.partial.contains(&frame) {
            cache.partial.push(frame);
        }
        Ok(())
    }

    /// Iterates the live frames owned by this allocator, in frame-slot
    /// order.
    pub fn frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.frames.iter().map(|(f, _)| f)
    }
}

#[cfg(feature = "ksan")]
impl PackedAllocator {
    /// Cross-checks the frame table: every frame's cache association
    /// names an existing cache, per-frame occupancy (the structured
    /// form of the `slot underflow` debug assertion), packing bounds,
    /// the partial lists, and liveness of every owned frame in `mem`.
    /// Observation only.
    pub fn ksan_audit(
        &self,
        mem: &kloc_mem::MemorySystem,
        out: &mut Vec<kloc_mem::ksan::Violation>,
    ) {
        use kloc_mem::ksan::Violation;
        for (frame, u) in self.frames.iter() {
            if u.cache as usize >= self.caches.len() {
                out.push(Violation::new(
                    "PackedAllocator.frames <-> PackedAllocator.caches",
                    format!("frame {frame}"),
                    "the frame's cache association names an existing cache",
                    format!("cache < {}", self.caches.len()),
                    format!("cache {}", u.cache),
                ));
            }
            if u.live_objects == 0 {
                out.push(Violation::new(
                    "PackedAllocator FrameUse.live_objects",
                    format!("frame {frame}"),
                    "a tracked frame holds at least one live object",
                    "> 0 live objects".to_owned(),
                    "0 live objects".to_owned(),
                ));
            }
            if u.used_bytes > kloc_mem::PAGE_SIZE {
                out.push(Violation::new(
                    "PackedAllocator FrameUse.used_bytes",
                    format!("frame {frame}"),
                    "packed objects fit in one page",
                    format!("<= {} bytes", kloc_mem::PAGE_SIZE),
                    format!("{} bytes", u.used_bytes),
                ));
            }
            if !mem.is_live(frame) {
                out.push(Violation::new(
                    "PackedAllocator.frames <-> FrameTable",
                    format!("frame {frame}"),
                    "every owned frame is live in the memory system",
                    "live".to_owned(),
                    "freed".to_owned(),
                ));
            }
        }
        // Partial lists may hold stale ids of frames that emptied (they
        // are popped lazily), but a *live* entry must belong to the
        // cache whose list names it.
        for (ci, cache) in self.caches.iter().enumerate() {
            for &frame in &cache.partial {
                let slot = frame.slot() as usize;
                let Some(u) = self.frames.slots.get(slot).filter(|u| u.id == frame.0) else {
                    continue;
                };
                if u.cache as usize != ci {
                    out.push(Violation::new(
                        "PackedAllocator Cache.partial <-> PackedAllocator.frames",
                        format!("frame {frame}"),
                        "partial-list frames belong to the cache listing them",
                        format!("cache {ci}"),
                        format!("cache {}", u.cache),
                    ));
                }
            }
        }
    }

    /// Corruption hook for sanitizer self-tests: points the first owned
    /// frame's cache association at a cache that does not exist.
    #[doc(hidden)]
    pub fn ksan_break_frame_key(&mut self) {
        if let Some(u) = self
            .frames
            .slots
            .iter_mut()
            .find(|u| u.id != FrameMap::VACANT)
        {
            u.cache = u32::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHooks;
    use kloc_mem::{MemorySystem, TierId};

    fn ctx_parts() -> (MemorySystem, NullHooks) {
        (
            MemorySystem::two_tier(64 * kloc_mem::PAGE_SIZE, 8),
            NullHooks::fast_first(),
        )
    }

    #[test]
    fn objects_pack_into_one_frame() {
        let (mut mem, mut hooks) = ctx_parts();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut slab = PackedAllocator::new(PageKind::Slab, None);
        // Dentries are 192 B -> 21 per frame.
        let allocated: Vec<_> = (0..21)
            .map(|_| {
                slab.alloc(&mut ctx, KernelObjectType::Dentry, None, false)
                    .unwrap()
            })
            .collect();
        assert!(
            allocated.iter().all(|&f| f == allocated[0]),
            "all in one frame"
        );
        let next = slab
            .alloc(&mut ctx, KernelObjectType::Dentry, None, false)
            .unwrap();
        assert_ne!(next, allocated[0], "22nd dentry needs a second frame");
        assert_eq!(slab.live_frames(), 2);
    }

    #[test]
    fn page_sized_objects_get_own_frame() {
        let (mut mem, mut hooks) = ctx_parts();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut slab = PackedAllocator::new(PageKind::PageCache, None);
        let a = slab
            .alloc(&mut ctx, KernelObjectType::PageCache, None, false)
            .unwrap();
        let b = slab
            .alloc(&mut ctx, KernelObjectType::PageCache, None, false)
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn frame_freed_when_empty() {
        let (mut mem, mut hooks) = ctx_parts();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut slab = PackedAllocator::new(PageKind::Slab, None);
        let f1 = slab
            .alloc(&mut ctx, KernelObjectType::Extent, None, false)
            .unwrap();
        let f2 = slab
            .alloc(&mut ctx, KernelObjectType::Extent, None, false)
            .unwrap();
        assert_eq!(f1, f2);
        slab.free(&mut ctx, KernelObjectType::Extent, None, f1)
            .unwrap();
        assert!(ctx.mem.is_live(f1), "frame still has one object");
        slab.free(&mut ctx, KernelObjectType::Extent, None, f1)
            .unwrap();
        assert!(!ctx.mem.is_live(f1), "empty frame returned to the system");
        assert_eq!(slab.live_frames(), 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let (mut mem, mut hooks) = ctx_parts();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut slab = PackedAllocator::new(PageKind::Slab, None);
        // Fill a frame of inodes (1080 B -> 3 per frame).
        let f = slab
            .alloc(&mut ctx, KernelObjectType::Inode, None, false)
            .unwrap();
        slab.alloc(&mut ctx, KernelObjectType::Inode, None, false)
            .unwrap();
        slab.alloc(&mut ctx, KernelObjectType::Inode, None, false)
            .unwrap();
        // Frame is full; free one slot and the next alloc reuses it.
        slab.free(&mut ctx, KernelObjectType::Inode, None, f)
            .unwrap();
        let again = slab
            .alloc(&mut ctx, KernelObjectType::Inode, None, false)
            .unwrap();
        assert_eq!(again, f);
    }

    #[test]
    fn per_inode_mode_segregates_inodes() {
        let (mut mem, mut hooks) = ctx_parts();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut kvma = PackedAllocator::new(PageKind::KernelVma, Some(1024));
        let a = kvma
            .alloc(&mut ctx, KernelObjectType::Dentry, Some(InodeId(1)), false)
            .unwrap();
        let b = kvma
            .alloc(&mut ctx, KernelObjectType::Dentry, Some(InodeId(2)), false)
            .unwrap();
        assert_ne!(a, b, "different inodes must not share a kvma frame");
        // Same inode co-locates.
        let a2 = kvma
            .alloc(&mut ctx, KernelObjectType::Dentry, Some(InodeId(1)), false)
            .unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn shared_mode_ignores_inode() {
        let (mut mem, mut hooks) = ctx_parts();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut slab = PackedAllocator::new(PageKind::Slab, None);
        let a = slab
            .alloc(&mut ctx, KernelObjectType::Dentry, Some(InodeId(1)), false)
            .unwrap();
        let b = slab
            .alloc(&mut ctx, KernelObjectType::Dentry, Some(InodeId(2)), false)
            .unwrap();
        assert_eq!(a, b, "vanilla slab packs across inodes");
    }

    #[test]
    fn kvma_frames_are_relocatable_slab_frames_are_not() {
        let (mut mem, mut hooks) = ctx_parts();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut slab = PackedAllocator::new(PageKind::Slab, None);
        let mut kvma = PackedAllocator::new(PageKind::KernelVma, Some(1024));
        let fs = slab
            .alloc(&mut ctx, KernelObjectType::Dentry, None, false)
            .unwrap();
        let fk = kvma
            .alloc(&mut ctx, KernelObjectType::Dentry, None, false)
            .unwrap();
        assert!(ctx.mem.frame(fs).unwrap().pinned());
        assert!(!ctx.mem.frame(fk).unwrap().pinned());
        assert!(ctx.mem.migrate(fk, TierId::SLOW).is_ok());
        assert!(ctx.mem.migrate(fs, TierId::SLOW).is_err());
    }

    #[test]
    fn double_free_detected() {
        let (mut mem, mut hooks) = ctx_parts();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let mut slab = PackedAllocator::new(PageKind::Slab, None);
        let f = slab
            .alloc(&mut ctx, KernelObjectType::Bio, None, false)
            .unwrap();
        slab.free(&mut ctx, KernelObjectType::Bio, None, f).unwrap();
        // Frame is gone; a second free must error, not panic.
        assert!(slab.free(&mut ctx, KernelObjectType::Bio, None, f).is_err());
    }
}
