//! Block layer (bio + blk-mq).
//!
//! The block layer converts writeback batches into `bio` structures and
//! blk-mq requests — both slab objects in the paper's Table 1 ("block -
//! Block I/O structure", "blk_mq - Block layer multi-queue structure").
//! This module holds the sizing math and dispatch statistics; the kernel
//! facade allocates the objects and talks to the [`crate::disk::Disk`].

/// Dispatch statistics of the block layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockStats {
    /// Bios constructed.
    pub bios: u64,
    /// blk-mq requests dispatched.
    pub requests: u64,
    /// Pages submitted through the layer.
    pub pages: u64,
}

/// The block layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockLayer {
    stats: BlockStats,
}

impl BlockLayer {
    /// Creates an idle block layer.
    pub fn new() -> Self {
        BlockLayer::default()
    }

    /// Dispatch statistics.
    pub fn stats(&self) -> &BlockStats {
        &self.stats
    }

    /// Number of bios needed to submit `pages` pages with at most
    /// `pages_per_bio` pages each. Each bio gets one blk-mq request.
    pub fn bios_for(pages: usize, pages_per_bio: usize) -> usize {
        if pages == 0 {
            0
        } else {
            pages.div_ceil(pages_per_bio.max(1))
        }
    }

    /// Records a dispatch of `pages` pages split into `bios` bios.
    pub fn record_dispatch(&mut self, pages: usize, bios: usize) {
        self.stats.bios += bios as u64;
        self.stats.requests += bios as u64;
        self.stats.pages += pages as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bio_count_rounds_up() {
        assert_eq!(BlockLayer::bios_for(0, 16), 0);
        assert_eq!(BlockLayer::bios_for(1, 16), 1);
        assert_eq!(BlockLayer::bios_for(16, 16), 1);
        assert_eq!(BlockLayer::bios_for(17, 16), 2);
        assert_eq!(BlockLayer::bios_for(5, 0), 5, "degenerate bio size");
    }

    #[test]
    fn dispatch_stats() {
        let mut b = BlockLayer::new();
        b.record_dispatch(33, BlockLayer::bios_for(33, 16));
        assert_eq!(b.stats().bios, 3);
        assert_eq!(b.stats().requests, 3);
        assert_eq!(b.stats().pages, 33);
    }
}
