//! Kernel object model.
//!
//! Paper Table 1 lists the kernel objects that form the basis of KLOCs:
//! inodes, block I/O structures, journal buffers, page-cache pages,
//! dentries, extents, blk-mq requests, socks, skbuffs, skbuff data
//! buffers, and driver RX buffers. [`KernelObjectType`] enumerates them
//! (plus the radix-tree nodes and file handles that the paper's text
//! discusses), with canonical Linux sizes and the allocation backing each
//! uses — the backing determines relocatability (§3.3).

use std::fmt;

use kloc_mem::{FrameId, Nanos, PageKind};

use crate::vfs::InodeId;

/// Identifier of a live kernel object. Never reused within a [`crate::Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kobj{}", self.0)
    }
}

/// How a kernel object's memory is obtained (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Backing {
    /// Small object from a slab cache: fast, physically addressed,
    /// **not relocatable**.
    Slab,
    /// Whole page(s) from the page allocator: relocatable.
    Page(PageKind),
}

/// The kernel object types tiered by KLOCs (paper Table 1 + §4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum KernelObjectType {
    /// Per-file/per-socket inode (`inode_struct`).
    Inode,
    /// Name-resolution entry for a file (`dentry`).
    Dentry,
    /// Page-cache radix-tree node.
    RadixNode,
    /// Extent-status structure grouping contiguous disk blocks.
    Extent,
    /// Journal head (jbd2 bookkeeping for a journaled buffer).
    JournalHead,
    /// Journal descriptor/data block written to the journal area.
    JournalBlock,
    /// Block I/O structure (`bio`).
    Bio,
    /// Block-layer multi-queue request (`blk_mq`).
    BlkMqRequest,
    /// Per-open file handle (`struct file`).
    FileHandle,
    /// Socket object holding packet-buffer queues (`sock`).
    Sock,
    /// Packet buffer header (`skbuff`).
    SkBuff,
    /// Packet data buffer (`skbuff->data`).
    SkBuffData,
    /// Network receive driver ring buffer.
    RxBuf,
    /// Buffer-cache page for file data.
    PageCache,
    /// Directory block buffer (readdir; §3.3 lists "dir buffers" among
    /// the short-lived slab-class kernel objects).
    DirBuffer,
}

impl KernelObjectType {
    /// All object types, for iteration in reports (paper Fig. 2a / 5c).
    pub const ALL: [KernelObjectType; 15] = [
        KernelObjectType::Inode,
        KernelObjectType::Dentry,
        KernelObjectType::RadixNode,
        KernelObjectType::Extent,
        KernelObjectType::JournalHead,
        KernelObjectType::JournalBlock,
        KernelObjectType::Bio,
        KernelObjectType::BlkMqRequest,
        KernelObjectType::FileHandle,
        KernelObjectType::Sock,
        KernelObjectType::SkBuff,
        KernelObjectType::SkBuffData,
        KernelObjectType::RxBuf,
        KernelObjectType::PageCache,
        KernelObjectType::DirBuffer,
    ];

    /// Canonical object size in bytes (Linux slab-cache sizes for the
    /// slab-backed types; one page for page-backed types).
    pub fn size(self) -> u64 {
        match self {
            KernelObjectType::Inode => 1080,
            KernelObjectType::Dentry => 192,
            KernelObjectType::RadixNode => 576,
            KernelObjectType::Extent => 40,
            KernelObjectType::JournalHead => 120,
            KernelObjectType::JournalBlock => 4096,
            KernelObjectType::Bio => 200,
            KernelObjectType::BlkMqRequest => 384,
            KernelObjectType::FileHandle => 256,
            KernelObjectType::Sock => 760,
            KernelObjectType::SkBuff => 232,
            KernelObjectType::SkBuffData => 4096,
            KernelObjectType::RxBuf => 4096,
            KernelObjectType::PageCache => 4096,
            KernelObjectType::DirBuffer => 680,
        }
    }

    /// How objects of this type are allocated.
    pub fn backing(self) -> Backing {
        match self {
            KernelObjectType::PageCache => Backing::Page(PageKind::PageCache),
            // Journal blocks live their few microseconds on vmalloc'd
            // pages: keeping them out of PageKind::PageCache keeps the
            // buffer-cache lifetime statistics clean (Fig. 2d).
            KernelObjectType::JournalBlock | KernelObjectType::SkBuffData => {
                Backing::Page(PageKind::Vmalloc)
            }
            KernelObjectType::RxBuf => Backing::Page(PageKind::RxRing),
            _ => Backing::Slab,
        }
    }

    /// Whether this is a filesystem-side object (vs networking).
    /// Inodes serve both (every socket has one); they count as FS here,
    /// matching paper Table 1's "FS/Network" row collapsing into FS
    /// accounting.
    pub fn is_network(self) -> bool {
        matches!(
            self,
            KernelObjectType::Sock
                | KernelObjectType::SkBuff
                | KernelObjectType::SkBuffData
                | KernelObjectType::RxBuf
        )
    }

    /// Coarse category used by the paper's Fig. 2a breakdown.
    pub fn category(self) -> ObjectCategory {
        match self {
            KernelObjectType::PageCache => ObjectCategory::PageCache,
            KernelObjectType::JournalHead | KernelObjectType::JournalBlock => {
                ObjectCategory::Journal
            }
            t if t.is_network() => ObjectCategory::Network,
            _ => ObjectCategory::FsSlab,
        }
    }
}

impl fmt::Display for KernelObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelObjectType::Inode => "inode",
            KernelObjectType::Dentry => "dentry",
            KernelObjectType::RadixNode => "radix-node",
            KernelObjectType::Extent => "extent",
            KernelObjectType::JournalHead => "journal-head",
            KernelObjectType::JournalBlock => "journal-block",
            KernelObjectType::Bio => "bio",
            KernelObjectType::BlkMqRequest => "blk-mq",
            KernelObjectType::FileHandle => "file",
            KernelObjectType::Sock => "sock",
            KernelObjectType::SkBuff => "skbuff",
            KernelObjectType::SkBuffData => "skbuff-data",
            KernelObjectType::RxBuf => "rx-buf",
            KernelObjectType::PageCache => "page-cache",
            KernelObjectType::DirBuffer => "dir-buffer",
        };
        f.write_str(s)
    }
}

/// Coarse categories for the footprint breakdown (paper Fig. 2a bars:
/// application, page cache, journal, other FS slab, network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ObjectCategory {
    /// Buffer-cache pages.
    PageCache,
    /// Journal heads and blocks.
    Journal,
    /// Other filesystem slab objects (inode, dentry, radix, extent, bio…).
    FsSlab,
    /// Networking objects (sock, skbuff, data, RX rings).
    Network,
}

impl ObjectCategory {
    /// All categories in display order.
    pub const ALL: [ObjectCategory; 4] = [
        ObjectCategory::PageCache,
        ObjectCategory::Journal,
        ObjectCategory::FsSlab,
        ObjectCategory::Network,
    ];
}

impl fmt::Display for ObjectCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectCategory::PageCache => "page-cache",
            ObjectCategory::Journal => "journal",
            ObjectCategory::FsSlab => "fs-slab",
            ObjectCategory::Network => "network",
        };
        f.write_str(s)
    }
}

/// Immutable description of a live kernel object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ObjectInfo {
    /// Object type.
    pub ty: KernelObjectType,
    /// Size in bytes.
    pub size: u64,
    /// The file/socket inode this object belongs to, when known. This is
    /// exactly the association KLOCs group by (paper §4.2.3).
    pub inode: Option<InodeId>,
}

/// A live kernel object: its description plus where it lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KObject {
    /// Object id.
    pub id: ObjectId,
    /// Description.
    pub info: ObjectInfo,
    /// Backing frame (slab objects share frames; page objects own one).
    pub frame: FrameId,
    /// Allocation timestamp.
    pub allocated_at: Nanos,
}

/// Table of live kernel objects.
///
/// Ids are assigned sequentially and never reused, so the table is a
/// plain id-indexed vector: lookup on the object-access hot path is one
/// bounds-checked array read, no hashing. Dead slots stay `None`; the
/// simulator's live population is bounded, so slot memory is dominated
/// by the live high-water mark plus already-freed prefix.
#[derive(Debug, Default, Clone)]
pub struct ObjectTable {
    slots: Vec<Option<KObject>>,
    live: usize,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ObjectTable::default()
    }

    /// Registers a new object and returns its id.
    pub fn insert(&mut self, info: ObjectInfo, frame: FrameId, now: Nanos) -> ObjectId {
        let id = ObjectId(self.slots.len() as u64);
        self.slots.push(Some(KObject {
            id,
            info,
            frame,
            allocated_at: now,
        }));
        self.live += 1;
        id
    }

    /// Removes an object, returning its record.
    pub fn remove(&mut self, id: ObjectId) -> Option<KObject> {
        let obj = self.slots.get_mut(id.0 as usize)?.take();
        if obj.is_some() {
            self.live -= 1;
        }
        obj
    }

    /// Re-associates an object with an inode (late socket demux on the
    /// ingress path, paper §4.2.3). Returns the updated record.
    pub fn set_inode(&mut self, id: ObjectId, inode: InodeId) -> Option<&KObject> {
        let obj = self.slots.get_mut(id.0 as usize)?.as_mut()?;
        obj.info.inode = Some(inode);
        Some(obj)
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Option<&KObject> {
        self.slots.get(id.0 as usize)?.as_ref()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over all live objects in id order.
    pub fn iter(&self) -> impl Iterator<Item = &KObject> {
        self.slots.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_positive_and_page_types_are_page_sized() {
        for ty in KernelObjectType::ALL {
            assert!(ty.size() > 0);
            if let Backing::Page(_) = ty.backing() {
                assert_eq!(ty.size(), 4096, "{ty} should be page-sized");
            } else {
                assert!(ty.size() < 4096, "{ty} slab object should fit in a page");
            }
        }
    }

    #[test]
    fn network_types_classified() {
        assert!(KernelObjectType::SkBuff.is_network());
        assert!(!KernelObjectType::Dentry.is_network());
        assert_eq!(KernelObjectType::Sock.category(), ObjectCategory::Network);
        assert_eq!(
            KernelObjectType::JournalBlock.category(),
            ObjectCategory::Journal
        );
        assert_eq!(
            KernelObjectType::PageCache.category(),
            ObjectCategory::PageCache
        );
        assert_eq!(KernelObjectType::Inode.category(), ObjectCategory::FsSlab);
    }

    #[test]
    fn rx_rings_are_pinned_pages() {
        // RX rings are DMA targets: page-backed but non-relocatable.
        match KernelObjectType::RxBuf.backing() {
            Backing::Page(kind) => assert!(!kind.relocatable()),
            Backing::Slab => panic!("rx-buf should be page-backed"),
        }
    }

    #[test]
    fn object_table_round_trip() {
        let mut t = ObjectTable::new();
        let info = ObjectInfo {
            ty: KernelObjectType::Dentry,
            size: KernelObjectType::Dentry.size(),
            inode: Some(InodeId(7)),
        };
        let id = t.insert(info, FrameId(3), Nanos::ZERO);
        assert_eq!(t.len(), 1);
        let obj = t.get(id).unwrap();
        assert_eq!(obj.frame, FrameId(3));
        assert_eq!(obj.info.inode, Some(InodeId(7)));
        let removed = t.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert!(t.is_empty());
        assert!(t.remove(id).is_none());
    }

    #[test]
    fn object_ids_are_unique() {
        let mut t = ObjectTable::new();
        let info = ObjectInfo {
            ty: KernelObjectType::Bio,
            size: 200,
            inode: None,
        };
        let a = t.insert(info, FrameId(0), Nanos::ZERO);
        t.remove(a);
        let b = t.insert(info, FrameId(0), Nanos::ZERO);
        assert_ne!(a, b, "ids must never be reused");
    }
}
