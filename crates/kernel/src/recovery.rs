//! Journal crash recovery and the crash-consistency checker.
//!
//! The simulated machine can crash at an arbitrary virtual instant or at
//! a chosen journal commit (kfault, see [`kloc_mem::fault`]). Everything
//! volatile — the page cache, the running transaction, every kernel
//! object — is lost; what survives is the [`DurableStore`]: data pages
//! the kernel had submitted to the disk, and journal records with
//! however many of their blocks reached the journal area. [`recover`]
//! replays the store the way jbd2 does — committed records in order,
//! stopping at the first torn (incomplete) record — and [`check`]
//! compares the result against the [`Promise`], the oracle of everything
//! a successful `fsync` guaranteed: no promised page may be lost, no
//! committed record skipped, and nothing from a torn record may survive
//! replay.
//!
//! The bookkeeping is maintained unconditionally (it is a handful of
//! BTreeMap inserts on writeback/commit paths and charges no virtual
//! time), so the recovery path is testable without the `kfault` feature;
//! only crash *injection* is feature-gated.

use std::collections::BTreeMap;
use std::fmt;

use crate::journal::MetaUpdate;
use crate::vfs::InodeId;

/// One journal record as it reached the disk: the metadata effects of
/// one committed transaction plus how many of its blocks were written
/// before the machine (possibly) died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Metadata effects of the transaction, in journaling order.
    pub updates: Vec<(InodeId, MetaUpdate)>,
    /// Journal blocks the commit needed (descriptor + data + commit).
    pub blocks_total: u32,
    /// Journal blocks durably written; `< blocks_total` means the
    /// record is torn and must not be replayed.
    pub blocks_written: u32,
}

impl JournalRecord {
    /// Whether every block of the record reached the disk.
    pub fn is_complete(&self) -> bool {
        self.blocks_written >= self.blocks_total
    }
}

/// What survives a crash: data pages by submission version, and the
/// journal area. Data pages are durable once writeback *submits* them
/// (the device queue drains in bounded time and the simulation has no
/// device-cache loss model); only journal commits can tear.
#[derive(Debug, Clone, Default)]
pub struct DurableStore {
    /// `(inode, page index) ->` highest content version submitted to
    /// the disk.
    pub pages: BTreeMap<(InodeId, u64), u64>,
    /// Journal records in commit order.
    pub journal: Vec<JournalRecord>,
}

impl DurableStore {
    /// Records a data page submitted to the disk at `version`.
    pub fn record_page(&mut self, ino: InodeId, idx: u64, version: u64) {
        let slot = self.pages.entry((ino, idx)).or_insert(0);
        *slot = (*slot).max(version);
    }
}

/// The fsync oracle: everything a successfully returned `fsync`
/// guaranteed durable. Grows monotonically; entries survive unlink
/// (conservative — a checker that forgets promises can miss losses).
#[derive(Debug, Clone, Default)]
pub struct Promise {
    /// Promised `(inode, page index) ->` minimum durable version.
    pub pages: BTreeMap<(InodeId, u64), u64>,
    /// Complete journal records at the last successful fsync; recovery
    /// must replay at least this many.
    pub committed_records: usize,
}

/// Per-inode metadata reconstructed by journal replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InodeMeta {
    /// Size in bytes from the last replayed `Size` update.
    pub size: u64,
}

/// Filesystem state after crash recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredState {
    /// Metadata of inodes that exist after replay.
    pub meta: BTreeMap<InodeId, InodeMeta>,
    /// Recovered data pages by version (the durable pages).
    pub pages: BTreeMap<(InodeId, u64), u64>,
    /// Journal records replayed.
    pub replayed: usize,
    /// Torn records discarded (0 or 1: replay stops at the first).
    pub torn: usize,
}

/// One crash-consistency violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashViolation {
    /// A page a successful fsync promised durable is missing or stale.
    LostPage {
        /// Owning inode.
        ino: InodeId,
        /// Page index.
        idx: u64,
        /// Version the fsync promised.
        promised: u64,
        /// Version actually recovered (`None` = page gone).
        recovered: Option<u64>,
    },
    /// Recovery replayed fewer complete records than fsync promised.
    LostCommit {
        /// Records the last successful fsync had committed.
        promised: usize,
        /// Records recovery actually replayed.
        replayed: usize,
    },
    /// Recovered metadata contains effects replay should not have
    /// applied (a torn record leaked through).
    TornApplied {
        /// Inode with unexpected metadata.
        ino: InodeId,
    },
    /// Recovered metadata misses or mangles a committed effect.
    StaleMeta {
        /// Affected inode.
        ino: InodeId,
        /// Metadata replaying the committed records yields.
        expected: Option<InodeMeta>,
        /// Metadata recovery produced.
        actual: Option<InodeMeta>,
    },
}

impl fmt::Display for CrashViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashViolation::LostPage {
                ino,
                idx,
                promised,
                recovered,
            } => write!(
                f,
                "lost fsync'd page: {ino} page {idx} promised v{promised}, recovered {recovered:?}"
            ),
            CrashViolation::LostCommit { promised, replayed } => write!(
                f,
                "lost commit: fsync promised {promised} records, replay applied {replayed}"
            ),
            CrashViolation::TornApplied { ino } => {
                write!(
                    f,
                    "torn commit applied: {ino} has metadata replay never committed"
                )
            }
            CrashViolation::StaleMeta {
                ino,
                expected,
                actual,
            } => write!(
                f,
                "stale metadata after replay: {ino} expected {expected:?}, got {actual:?}"
            ),
        }
    }
}

/// Replays one record's updates into a metadata map.
fn apply(meta: &mut BTreeMap<InodeId, InodeMeta>, updates: &[(InodeId, MetaUpdate)]) {
    for &(ino, update) in updates {
        match update {
            MetaUpdate::Create => {
                meta.insert(ino, InodeMeta { size: 0 });
            }
            MetaUpdate::Size(bytes) => {
                meta.entry(ino).or_insert(InodeMeta { size: 0 }).size = bytes;
            }
            MetaUpdate::Unlink => {
                meta.remove(&ino);
            }
            MetaUpdate::Touch => {}
        }
    }
}

/// Recovers a crashed machine from its durable store: data pages carry
/// over, and journal records replay in commit order until the first
/// torn record (jbd2 semantics — a torn record and everything after it
/// is discarded).
pub fn recover(durable: &DurableStore) -> RecoveredState {
    let mut state = RecoveredState {
        pages: durable.pages.clone(),
        ..RecoveredState::default()
    };
    for record in &durable.journal {
        if !record.is_complete() {
            state.torn = 1;
            break;
        }
        apply(&mut state.meta, &record.updates);
        state.replayed += 1;
    }
    state
}

/// Verifies a recovered state against the durable store and the fsync
/// promise. Returns every violation found (empty = consistent).
///
/// The checker is an independent oracle: it re-derives the expected
/// metadata from the durable journal itself rather than trusting
/// [`recover`]'s output, so a recovery bug (applying a torn record,
/// skipping a committed one) is caught even though both read the same
/// store.
pub fn check(
    durable: &DurableStore,
    promise: &Promise,
    recovered: &RecoveredState,
) -> Vec<CrashViolation> {
    let mut out = Vec::new();

    // 1. No fsync'd data lost: every promised page recovered at >= the
    //    promised version.
    for (&(ino, idx), &promised) in &promise.pages {
        let got = recovered.pages.get(&(ino, idx)).copied();
        if got.is_none_or(|v| v < promised) {
            out.push(CrashViolation::LostPage {
                ino,
                idx,
                promised,
                recovered: got,
            });
        }
    }

    // 2. No committed metadata lost: at least the promised record count
    //    replayed. (Records an fsync returned for are complete by
    //    construction, so replay cannot legitimately stop short.)
    if recovered.replayed < promise.committed_records {
        out.push(CrashViolation::LostCommit {
            promised: promise.committed_records,
            replayed: recovered.replayed,
        });
    }

    // 3. Nothing torn survives and nothing committed is mangled:
    //    independently replay the complete prefix of the journal and
    //    diff against the recovered metadata.
    let mut expected: BTreeMap<InodeId, InodeMeta> = BTreeMap::new();
    for record in &durable.journal {
        if !record.is_complete() {
            break;
        }
        apply(&mut expected, &record.updates);
    }
    for (&ino, &meta) in &recovered.meta {
        if !expected.contains_key(&ino) {
            out.push(CrashViolation::TornApplied { ino });
        } else if expected[&ino] != meta {
            out.push(CrashViolation::StaleMeta {
                ino,
                expected: Some(expected[&ino]),
                actual: Some(meta),
            });
        }
    }
    for (&ino, &meta) in &expected {
        if !recovered.meta.contains_key(&ino) {
            out.push(CrashViolation::StaleMeta {
                ino,
                expected: Some(meta),
                actual: None,
            });
        }
    }
    out
}

/// Ways [`recover_breaking`] corrupts the recovery process, for checker
/// self-tests (the `ksan_break_*` pattern: prove each violation class
/// is actually detected).
#[cfg(feature = "kfault")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakMode {
    /// Drop one fsync-promised page from the recovered data.
    LosePromisedPage,
    /// Replay a torn record as if it were complete.
    ApplyTorn,
    /// Skip the last committed record during replay.
    SkipLastCommitted,
}

/// Corruption hook for checker self-tests: recovers wrongly on purpose.
/// Mirrors `ksan_break_*` — the store is never corrupted (the checker
/// replays the same store, so store corruption would be invisible);
/// instead the *recovery process* misbehaves in a controlled way.
#[cfg(feature = "kfault")]
#[doc(hidden)]
pub fn recover_breaking(durable: &DurableStore, mode: BreakMode) -> RecoveredState {
    let mut state = RecoveredState {
        pages: durable.pages.clone(),
        ..RecoveredState::default()
    };
    let complete = durable.journal.iter().filter(|r| r.is_complete()).count();
    for record in &durable.journal {
        if !record.is_complete() {
            if mode == BreakMode::ApplyTorn {
                apply(&mut state.meta, &record.updates);
            }
            state.torn = 1;
            break;
        }
        if mode == BreakMode::SkipLastCommitted && state.replayed == complete - 1 {
            state.replayed += 1; // pretend it was applied
            continue;
        }
        apply(&mut state.meta, &record.updates);
        state.replayed += 1;
    }
    if mode == BreakMode::LosePromisedPage {
        if let Some((&k, _)) = state.pages.iter().next() {
            state.pages.remove(&k);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ino(n: u64) -> InodeId {
        InodeId(n)
    }

    fn complete(updates: Vec<(InodeId, MetaUpdate)>, blocks: u32) -> JournalRecord {
        JournalRecord {
            updates,
            blocks_total: blocks,
            blocks_written: blocks,
        }
    }

    #[test]
    fn replay_applies_committed_records_in_order() {
        let mut d = DurableStore::default();
        d.journal.push(complete(
            vec![
                (ino(1), MetaUpdate::Create),
                (ino(1), MetaUpdate::Size(4096)),
            ],
            2,
        ));
        d.journal
            .push(complete(vec![(ino(1), MetaUpdate::Size(8192))], 2));
        d.record_page(ino(1), 0, 3);
        let r = recover(&d);
        assert_eq!(r.replayed, 2);
        assert_eq!(r.torn, 0);
        assert_eq!(r.meta[&ino(1)].size, 8192, "later size wins");
        assert_eq!(r.pages[&(ino(1), 0)], 3);
    }

    #[test]
    fn replay_stops_at_first_torn_record() {
        let mut d = DurableStore::default();
        d.journal
            .push(complete(vec![(ino(1), MetaUpdate::Create)], 2));
        d.journal.push(JournalRecord {
            updates: vec![(ino(2), MetaUpdate::Create)],
            blocks_total: 2,
            blocks_written: 1,
        });
        d.journal
            .push(complete(vec![(ino(3), MetaUpdate::Create)], 2));
        let r = recover(&d);
        assert_eq!(r.replayed, 1);
        assert_eq!(r.torn, 1);
        assert!(r.meta.contains_key(&ino(1)));
        assert!(!r.meta.contains_key(&ino(2)), "torn record discarded");
        assert!(
            !r.meta.contains_key(&ino(3)),
            "nothing after the tear replays"
        );
    }

    #[test]
    fn unlink_removes_recovered_inode() {
        let mut d = DurableStore::default();
        d.journal.push(complete(
            vec![(ino(1), MetaUpdate::Create), (ino(1), MetaUpdate::Unlink)],
            2,
        ));
        let r = recover(&d);
        assert!(r.meta.is_empty());
    }

    #[test]
    fn consistent_recovery_passes_check() {
        let mut d = DurableStore::default();
        d.journal.push(complete(
            vec![
                (ino(1), MetaUpdate::Create),
                (ino(1), MetaUpdate::Size(4096)),
            ],
            2,
        ));
        d.record_page(ino(1), 0, 2);
        let promise = Promise {
            pages: [((ino(1), 0), 2)].into_iter().collect(),
            committed_records: 1,
        };
        let r = recover(&d);
        assert_eq!(check(&d, &promise, &r), Vec::new());
    }

    #[test]
    fn check_flags_lost_page_and_stale_version() {
        let mut d = DurableStore::default();
        d.record_page(ino(1), 0, 1); // disk has v1 ...
        let promise = Promise {
            pages: [((ino(1), 0), 2), ((ino(1), 7), 1)].into_iter().collect(),
            committed_records: 0,
        };
        let r = recover(&d);
        let violations = check(&d, &promise, &r);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| matches!(
            v,
            CrashViolation::LostPage {
                idx: 0,
                promised: 2,
                recovered: Some(1),
                ..
            }
        )));
        assert!(violations.iter().any(|v| matches!(
            v,
            CrashViolation::LostPage {
                idx: 7,
                recovered: None,
                ..
            }
        )));
    }

    #[test]
    fn check_flags_lost_commit() {
        let mut d = DurableStore::default();
        d.journal.push(JournalRecord {
            updates: vec![(ino(1), MetaUpdate::Create)],
            blocks_total: 2,
            blocks_written: 0,
        });
        let promise = Promise {
            pages: BTreeMap::new(),
            // A buggy fsync promised a record that never became durable.
            committed_records: 1,
        };
        let r = recover(&d);
        let violations = check(&d, &promise, &r);
        assert!(violations.iter().any(|v| matches!(
            v,
            CrashViolation::LostCommit {
                promised: 1,
                replayed: 0
            }
        )));
    }
}
