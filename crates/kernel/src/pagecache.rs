//! Per-inode page cache (radix tree).
//!
//! Each inode's cached pages are tracked in a radix-tree-like structure:
//! pages are grouped into chunks of [`fanout`](PageCache::fanout) page
//! indices, and each populated chunk is backed by one **radix-node slab
//! object** — those nodes are themselves kernel objects that the paper's
//! Fig. 2a accounts for and that KLOCs tier.
//!
//! Storage mirrors the radix shape: a dense chunk directory indexed by
//! `idx / fanout`, each populated chunk holding a dense slot array of
//! `fanout` pages. Lookup is two array indexes — the previous
//! implementation kept every page of an inode in one `BTreeMap` and paid
//! an O(log n) descent on the simulator's hottest read path. Each chunk
//! also counts its dirty pages so writeback scans skip clean chunks.
//!
//! This module is a pure data structure: the caller (the [`crate::Kernel`]
//! facade) allocates/frees the radix-node and page objects and charges
//! access costs; the page cache only records the mapping.

use kloc_mem::FrameId;

use crate::obj::ObjectId;

/// One cached page of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedPage {
    /// Page-cache object backing this page.
    pub obj: ObjectId,
    /// Frame the page lives on.
    pub frame: FrameId,
    /// Whether the page has unwritten (dirty) data.
    pub dirty: bool,
    /// Monotone content version: bumped on every dirtying write, so the
    /// crash checker can compare what reached disk against what an
    /// `fsync` promised (a page flushed at version 3 then promised at
    /// version 3 must recover at version >= 3).
    pub version: u64,
}

#[derive(Debug, Clone)]
struct Chunk {
    node_obj: ObjectId,
    pages: u32,
    /// Dirty pages within this chunk (lets dirty scans skip clean
    /// chunks).
    dirty: u32,
    /// Dense page slots, indexed by `idx % fanout`.
    slots: Box<[Option<CachedPage>]>,
}

impl Chunk {
    fn new(node_obj: ObjectId, fanout: u64) -> Self {
        Chunk {
            node_obj,
            pages: 0,
            dirty: 0,
            slots: vec![None; fanout as usize].into_boxed_slice(),
        }
    }
}

/// Outcome of removing a page: the page record, plus the radix-node
/// object to free if its chunk became empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Removed {
    /// The removed page.
    pub page: CachedPage,
    /// Radix node freed because its chunk emptied, if any.
    pub freed_node: Option<ObjectId>,
}

/// Radix-tree page cache of one inode.
#[derive(Debug, Clone, Default)]
pub struct PageCache {
    fanout: u64,
    /// Chunk directory, indexed by `idx / fanout`; `None` marks an
    /// unpopulated chunk.
    chunks: Vec<Option<Chunk>>,
    pages: usize,
    nodes: usize,
    dirty: u64,
}

impl PageCache {
    /// Creates a cache whose radix nodes each cover `fanout` page indices.
    /// Zero (a node that covers nothing) is clamped to the documented
    /// minimum of 1, one node per page.
    pub fn new(fanout: u64) -> Self {
        PageCache {
            fanout: fanout.max(1),
            ..PageCache::default()
        }
    }

    /// Page indices per radix node.
    pub fn fanout(&self) -> u64 {
        self.fanout
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.pages
    }

    /// Whether no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Number of dirty pages.
    pub fn dirty_pages(&self) -> u64 {
        self.dirty
    }

    /// Number of live radix nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    fn chunk_of(&self, idx: u64) -> usize {
        (idx / self.fanout) as usize
    }

    #[inline]
    fn slot_of(&self, idx: u64) -> usize {
        (idx % self.fanout) as usize
    }

    #[inline]
    fn chunk(&self, idx: u64) -> Option<&Chunk> {
        self.chunks.get(self.chunk_of(idx))?.as_ref()
    }

    /// Whether inserting page `idx` requires a new radix node first.
    pub fn needs_node(&self, idx: u64) -> bool {
        self.chunk(idx).is_none()
    }

    /// The radix-node object covering page `idx`, if populated. The
    /// caller charges a memory access to it on every lookup (tree
    /// traversal cost, paper §4.2.3 measures ~10 references per lookup
    /// on a single big tree).
    pub fn node_for(&self, idx: u64) -> Option<ObjectId> {
        self.chunk(idx).map(|c| c.node_obj)
    }

    /// Installs a freshly allocated radix node for the chunk covering
    /// `idx`.
    ///
    /// # Panics
    /// Panics if the chunk already has a node.
    pub fn install_node(&mut self, idx: u64, node_obj: ObjectId) {
        let chunk = self.chunk_of(idx);
        if chunk >= self.chunks.len() {
            self.chunks.resize_with(chunk + 1, || None);
        }
        let entry = &mut self.chunks[chunk];
        assert!(entry.is_none(), "chunk {chunk} already has a radix node");
        *entry = Some(Chunk::new(node_obj, self.fanout));
        self.nodes += 1;
    }

    /// Inserts a page.
    ///
    /// # Panics
    /// Panics if the page is already present or the chunk has no node
    /// (call [`PageCache::install_node`] first).
    pub fn insert(&mut self, idx: u64, obj: ObjectId, frame: FrameId, dirty: bool) {
        let chunk = self.chunk_of(idx);
        let slot = self.slot_of(idx);
        let c = self
            .chunks
            .get_mut(chunk)
            .and_then(Option::as_mut)
            .expect("insert before install_node"); // lint: unwrap-ok — install_node requires a prior insert
        let prev = c.slots[slot].replace(CachedPage {
            obj,
            frame,
            dirty,
            version: u64::from(dirty),
        });
        assert!(prev.is_none(), "page {idx} already cached");
        c.pages += 1;
        if dirty {
            c.dirty += 1;
            self.dirty += 1;
        }
        self.pages += 1;
    }

    /// Looks up a page.
    #[inline]
    pub fn get(&self, idx: u64) -> Option<&CachedPage> {
        let slot = self.slot_of(idx);
        self.chunk(idx)?.slots[slot].as_ref()
    }

    /// Marks a page dirty, advancing its content version (every call is
    /// one more write the crash checker can account for). Returns
    /// whether the page exists.
    pub fn mark_dirty(&mut self, idx: u64) -> bool {
        let (chunk, slot) = (self.chunk_of(idx), self.slot_of(idx));
        let Some(c) = self.chunks.get_mut(chunk).and_then(Option::as_mut) else {
            return false;
        };
        match c.slots[slot].as_mut() {
            Some(p) => {
                if !p.dirty {
                    p.dirty = true;
                    c.dirty += 1;
                    self.dirty += 1;
                }
                p.version += 1;
                true
            }
            None => false,
        }
    }

    /// Marks a page clean. Returns whether the page exists.
    pub fn mark_clean(&mut self, idx: u64) -> bool {
        let (chunk, slot) = (self.chunk_of(idx), self.slot_of(idx));
        let Some(c) = self.chunks.get_mut(chunk).and_then(Option::as_mut) else {
            return false;
        };
        match c.slots[slot].as_mut() {
            Some(p) => {
                if p.dirty {
                    p.dirty = false;
                    c.dirty -= 1;
                    self.dirty -= 1;
                }
                true
            }
            None => false,
        }
    }

    /// Removes a page, reporting any radix node that must be freed.
    pub fn remove(&mut self, idx: u64) -> Option<Removed> {
        let (chunk, slot) = (self.chunk_of(idx), self.slot_of(idx));
        let c = self.chunks.get_mut(chunk).and_then(Option::as_mut)?;
        let page = c.slots[slot].take()?;
        if page.dirty {
            c.dirty -= 1;
            self.dirty -= 1;
        }
        c.pages -= 1;
        self.pages -= 1;
        let freed_node = if c.pages == 0 {
            let node = c.node_obj;
            self.chunks[chunk] = None;
            self.nodes -= 1;
            Some(node)
        } else {
            None
        };
        Some(Removed { page, freed_node })
    }

    /// Empties the cache, returning all pages and all radix-node objects
    /// (inode teardown). Dirty accounting is reset.
    pub fn take_all(&mut self) -> (Vec<CachedPage>, Vec<ObjectId>) {
        let mut pages = Vec::with_capacity(self.pages);
        let mut nodes = Vec::with_capacity(self.nodes);
        for chunk in std::mem::take(&mut self.chunks).into_iter().flatten() {
            nodes.push(chunk.node_obj);
            pages.extend(chunk.slots.into_vec().into_iter().flatten());
        }
        self.pages = 0;
        self.nodes = 0;
        self.dirty = 0;
        (pages, nodes)
    }

    /// Iterates `(index, page)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &CachedPage)> {
        let fanout = self.fanout;
        self.chunks
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| c.as_ref().map(|c| (ci, c)))
            .flat_map(move |(ci, c)| {
                c.slots.iter().enumerate().filter_map(move |(si, p)| {
                    p.as_ref().map(|p| (ci as u64 * fanout + si as u64, p))
                })
            })
    }

    /// Indices of all dirty pages, in order. Clean chunks are skipped
    /// via their dirty counters.
    pub fn dirty_indices(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.dirty as usize);
        for (ci, c) in self.chunks.iter().enumerate() {
            let Some(c) = c else { continue };
            if c.dirty == 0 {
                continue;
            }
            for (si, p) in c.slots.iter().enumerate() {
                if p.as_ref().is_some_and(|p| p.dirty) {
                    out.push(ci as u64 * self.fanout + si as u64);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> (ObjectId, FrameId) {
        (ObjectId(n), FrameId(n + 1000))
    }

    #[test]
    fn insert_requires_node_once_per_chunk() {
        let mut pc = PageCache::new(64);
        assert!(pc.needs_node(0));
        pc.install_node(0, ObjectId(900));
        assert!(!pc.needs_node(63), "same chunk");
        assert!(pc.needs_node(64), "next chunk");
        let (o, f) = page(1);
        pc.insert(0, o, f, false);
        assert_eq!(pc.node_for(0), Some(ObjectId(900)));
        assert_eq!(pc.node_count(), 1);
    }

    #[test]
    fn zero_fanout_clamped() {
        let pc = PageCache::new(0);
        assert_eq!(pc.fanout(), 1, "clamped to one page per node");
    }

    #[test]
    fn versions_advance_per_dirtying_write() {
        let mut pc = PageCache::new(64);
        pc.install_node(0, ObjectId(900));
        let (o, f) = page(1);
        pc.insert(0, o, f, false);
        assert_eq!(pc.get(0).unwrap().version, 0, "clean fill");
        pc.mark_dirty(0);
        pc.mark_dirty(0);
        assert_eq!(pc.get(0).unwrap().version, 2, "every write counts");
        pc.mark_clean(0);
        assert_eq!(pc.get(0).unwrap().version, 2, "flush preserves version");
        let (o1, f1) = page(2);
        pc.insert(1, o1, f1, true);
        assert_eq!(pc.get(1).unwrap().version, 1, "dirty insert is write one");
    }

    #[test]
    fn dirty_accounting() {
        let mut pc = PageCache::new(64);
        pc.install_node(0, ObjectId(900));
        let (o, f) = page(1);
        pc.insert(0, o, f, true);
        assert_eq!(pc.dirty_pages(), 1);
        assert!(pc.mark_clean(0));
        assert_eq!(pc.dirty_pages(), 0);
        assert!(pc.mark_dirty(0));
        assert!(pc.mark_dirty(0), "idempotent");
        assert_eq!(pc.dirty_pages(), 1);
        assert!(!pc.mark_dirty(99), "missing page");
        assert_eq!(pc.dirty_indices(), vec![0]);
    }

    #[test]
    fn remove_frees_node_when_chunk_empties() {
        let mut pc = PageCache::new(2);
        pc.install_node(0, ObjectId(900));
        let (o0, f0) = page(0);
        let (o1, f1) = page(1);
        pc.insert(0, o0, f0, false);
        pc.insert(1, o1, f1, true);
        let r = pc.remove(0).unwrap();
        assert_eq!(r.page.obj, o0);
        assert_eq!(r.freed_node, None, "chunk still has page 1");
        let r = pc.remove(1).unwrap();
        assert_eq!(r.freed_node, Some(ObjectId(900)));
        assert!(pc.is_empty());
        assert_eq!(pc.dirty_pages(), 0);
        assert!(pc.remove(1).is_none());
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_panics() {
        let mut pc = PageCache::new(64);
        pc.install_node(0, ObjectId(900));
        let (o, f) = page(1);
        pc.insert(0, o, f, false);
        pc.insert(0, o, f, false);
    }

    #[test]
    #[should_panic(expected = "insert before install_node")]
    fn insert_without_node_panics() {
        let mut pc = PageCache::new(64);
        let (o, f) = page(1);
        pc.insert(0, o, f, false);
    }

    #[test]
    fn iteration_in_index_order() {
        let mut pc = PageCache::new(64);
        pc.install_node(0, ObjectId(900));
        for i in [5u64, 1, 3] {
            let (o, f) = page(i);
            pc.insert(i, o, f, false);
        }
        let order: Vec<u64> = pc.iter().map(|(i, _)| i).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn reinstalling_a_freed_chunk_works() {
        let mut pc = PageCache::new(2);
        pc.install_node(0, ObjectId(900));
        let (o, f) = page(0);
        pc.insert(0, o, f, false);
        assert!(pc.remove(0).unwrap().freed_node.is_some());
        assert!(pc.needs_node(0), "chunk directory entry cleared");
        pc.install_node(0, ObjectId(901));
        pc.insert(1, o, f, true);
        assert_eq!(pc.node_for(1), Some(ObjectId(901)));
        assert_eq!(pc.dirty_indices(), vec![1]);
    }
}
